//! Offline stand-in for `crossbeam`.
//!
//! Two pieces the workspace relies on:
//!
//! * [`thread::scope`] — crossbeam's borrowing scoped threads, delegated
//!   to `std::thread::scope` (stable since 1.63), wrapped so existing
//!   `scope.spawn(|_| …)` call sites compile unchanged;
//! * [`channel`] — a multi-producer multi-consumer channel (bounded and
//!   unbounded) built on `Mutex` + `Condvar`. The lock-free performance
//!   of the real crate is not reproduced, but the blocking semantics —
//!   senders park when the buffer is full, receivers park when it is
//!   empty, disconnection wakes everyone — match, which is what the
//!   batched ingestion pipeline in `wsrep-serve` needs for correctness.

pub mod channel;
pub mod thread;
