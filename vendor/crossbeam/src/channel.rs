//! MPMC channels (bounded and unbounded) over `Mutex` + `Condvar`.
//!
//! Semantics follow `crossbeam-channel`: cloneable senders *and*
//! receivers, blocking `send` on a full bounded buffer, blocking `recv`
//! on an empty one, and disconnection (all peers of the other side
//! dropped) reported as an error after the buffer drains.

use std::collections::VecDeque;
use std::fmt;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

struct State<T> {
    queue: VecDeque<T>,
    senders: usize,
    receivers: usize,
}

struct Inner<T> {
    state: Mutex<State<T>>,
    not_empty: Condvar,
    not_full: Condvar,
    capacity: Option<usize>,
}

/// Sending half; clone freely across producer threads.
pub struct Sender<T> {
    inner: Arc<Inner<T>>,
}

/// Receiving half; clone freely across consumer threads.
pub struct Receiver<T> {
    inner: Arc<Inner<T>>,
}

impl<T> fmt::Debug for Sender<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Sender { .. }")
    }
}

impl<T> fmt::Debug for Receiver<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Receiver { .. }")
    }
}

/// The message could not be delivered: every receiver is gone.
pub struct SendError<T>(pub T);

/// Non-blocking send failure.
pub enum TrySendError<T> {
    /// The bounded buffer is full.
    Full(T),
    /// Every receiver is gone.
    Disconnected(T),
}

/// Every sender is gone and the buffer is drained.
#[derive(Debug, PartialEq, Eq)]
pub struct RecvError;

/// Timed receive failure.
#[derive(Debug, PartialEq, Eq)]
pub enum RecvTimeoutError {
    /// Nothing arrived in time.
    Timeout,
    /// Every sender is gone and the buffer is drained.
    Disconnected,
}

/// Non-blocking receive failure.
#[derive(Debug, PartialEq, Eq)]
pub enum TryRecvError {
    /// The buffer is currently empty.
    Empty,
    /// Every sender is gone and the buffer is drained.
    Disconnected,
}

impl<T> fmt::Debug for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("SendError(..)")
    }
}

impl<T> fmt::Debug for TrySendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TrySendError::Full(_) => f.write_str("TrySendError::Full(..)"),
            TrySendError::Disconnected(_) => f.write_str("TrySendError::Disconnected(..)"),
        }
    }
}

/// A channel buffering at most `capacity` messages; `send` blocks when
/// full. A capacity of 0 is bumped to 1 (true rendezvous channels are not
/// reproduced).
pub fn bounded<T>(capacity: usize) -> (Sender<T>, Receiver<T>) {
    with_capacity(Some(capacity.max(1)))
}

/// A channel with an unbounded buffer; `send` never blocks.
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    with_capacity(None)
}

fn with_capacity<T>(capacity: Option<usize>) -> (Sender<T>, Receiver<T>) {
    let inner = Arc::new(Inner {
        state: Mutex::new(State {
            queue: VecDeque::new(),
            senders: 1,
            receivers: 1,
        }),
        not_empty: Condvar::new(),
        not_full: Condvar::new(),
        capacity,
    });
    (
        Sender {
            inner: Arc::clone(&inner),
        },
        Receiver { inner },
    )
}

impl<T> Inner<T> {
    fn lock(&self) -> std::sync::MutexGuard<'_, State<T>> {
        self.state.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

impl<T> Sender<T> {
    /// Deliver `message`, blocking while a bounded buffer is full.
    pub fn send(&self, message: T) -> Result<(), SendError<T>> {
        let mut state = self.inner.lock();
        loop {
            if state.receivers == 0 {
                return Err(SendError(message));
            }
            match self.inner.capacity {
                Some(cap) if state.queue.len() >= cap => {
                    state = self
                        .inner
                        .not_full
                        .wait(state)
                        .unwrap_or_else(std::sync::PoisonError::into_inner);
                }
                _ => break,
            }
        }
        state.queue.push_back(message);
        drop(state);
        self.inner.not_empty.notify_one();
        Ok(())
    }

    /// Deliver without blocking; fails when full or disconnected.
    pub fn try_send(&self, message: T) -> Result<(), TrySendError<T>> {
        let mut state = self.inner.lock();
        if state.receivers == 0 {
            return Err(TrySendError::Disconnected(message));
        }
        if let Some(cap) = self.inner.capacity {
            if state.queue.len() >= cap {
                return Err(TrySendError::Full(message));
            }
        }
        state.queue.push_back(message);
        drop(state);
        self.inner.not_empty.notify_one();
        Ok(())
    }

    /// Messages currently buffered.
    pub fn len(&self) -> usize {
        self.inner.lock().queue.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T> Receiver<T> {
    /// Take the next message, blocking while the channel is empty and at
    /// least one sender survives.
    pub fn recv(&self) -> Result<T, RecvError> {
        let mut state = self.inner.lock();
        loop {
            if let Some(message) = state.queue.pop_front() {
                drop(state);
                self.inner.not_full.notify_one();
                return Ok(message);
            }
            if state.senders == 0 {
                return Err(RecvError);
            }
            state = self
                .inner
                .not_empty
                .wait(state)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
    }

    /// Take the next message, waiting at most `timeout`.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
        let deadline = Instant::now() + timeout;
        let mut state = self.inner.lock();
        loop {
            if let Some(message) = state.queue.pop_front() {
                drop(state);
                self.inner.not_full.notify_one();
                return Ok(message);
            }
            if state.senders == 0 {
                return Err(RecvTimeoutError::Disconnected);
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(RecvTimeoutError::Timeout);
            }
            let (guard, _timed_out) = self
                .inner
                .not_empty
                .wait_timeout(state, deadline - now)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            state = guard;
        }
    }

    /// Take the next message without blocking.
    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        let mut state = self.inner.lock();
        if let Some(message) = state.queue.pop_front() {
            drop(state);
            self.inner.not_full.notify_one();
            return Ok(message);
        }
        if state.senders == 0 {
            Err(TryRecvError::Disconnected)
        } else {
            Err(TryRecvError::Empty)
        }
    }

    /// Messages currently buffered.
    pub fn len(&self) -> usize {
        self.inner.lock().queue.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.inner.lock().senders += 1;
        Sender {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Self {
        self.inner.lock().receivers += 1;
        Receiver {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let mut state = self.inner.lock();
        state.senders -= 1;
        let last = state.senders == 0;
        drop(state);
        if last {
            // Wake receivers so they observe the disconnect.
            self.inner.not_empty.notify_all();
        }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        let mut state = self.inner.lock();
        state.receivers -= 1;
        let last = state.receivers == 0;
        drop(state);
        if last {
            // Wake blocked senders so they observe the disconnect.
            self.inner.not_full.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn fifo_order_single_thread() {
        let (tx, rx) = unbounded();
        for i in 0..10 {
            tx.send(i).unwrap();
        }
        let got: Vec<i32> = (0..10).map(|_| rx.recv().unwrap()).collect();
        assert_eq!(got, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn disconnect_after_drain() {
        let (tx, rx) = unbounded();
        tx.send(1u8).unwrap();
        drop(tx);
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Err(RecvError));
    }

    #[test]
    fn bounded_send_blocks_until_room() {
        let (tx, rx) = bounded(2);
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        assert!(matches!(tx.try_send(3), Err(TrySendError::Full(3))));
        let producer = thread::spawn(move || tx.send(3).unwrap());
        assert_eq!(rx.recv(), Ok(1));
        producer.join().unwrap();
        assert_eq!(rx.recv(), Ok(2));
        assert_eq!(rx.recv(), Ok(3));
    }

    #[test]
    fn mpmc_no_message_lost_or_duplicated() {
        let (tx, rx) = bounded(4);
        let producers: Vec<_> = (0..4)
            .map(|p| {
                let tx = tx.clone();
                thread::spawn(move || {
                    for i in 0..250u64 {
                        tx.send(p * 1000 + i).unwrap();
                    }
                })
            })
            .collect();
        drop(tx);
        let consumers: Vec<_> = (0..3)
            .map(|_| {
                let rx = rx.clone();
                thread::spawn(move || {
                    let mut got = Vec::new();
                    while let Ok(v) = rx.recv() {
                        got.push(v);
                    }
                    got
                })
            })
            .collect();
        drop(rx);
        for p in producers {
            p.join().unwrap();
        }
        let mut all: Vec<u64> = consumers
            .into_iter()
            .flat_map(|c| c.join().unwrap())
            .collect();
        all.sort_unstable();
        let mut expect: Vec<u64> = (0..4)
            .flat_map(|p| (0..250).map(move |i| p * 1000 + i))
            .collect();
        expect.sort_unstable();
        assert_eq!(all, expect);
    }

    #[test]
    fn recv_timeout_times_out_then_delivers() {
        let (tx, rx) = unbounded::<u8>();
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(10)),
            Err(RecvTimeoutError::Timeout)
        );
        tx.send(7).unwrap();
        assert_eq!(rx.recv_timeout(Duration::from_millis(10)), Ok(7));
    }
}
