//! Scoped threads with the crossbeam 0.8 calling convention, implemented
//! on `std::thread::scope`.

/// A scope handle; `spawn` closures receive `&Scope` like crossbeam's.
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawn a thread that may borrow from the enclosing scope.
    pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
    where
        F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        let inner = self.inner;
        self.inner.spawn(move || f(&Scope { inner }))
    }
}

/// Run `f` with a scope; all spawned threads are joined before returning.
///
/// crossbeam returns `Err` when a child panicked; std's scope re-raises
/// child panics instead, so the `Err` branch here is unreachable — callers
/// doing `.expect(…)` keep working, with the panic message surfacing from
/// the child directly.
pub fn scope<'env, F, R>(f: F) -> std::thread::Result<R>
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    Ok(std::thread::scope(|s| f(&Scope { inner: s })))
}

#[cfg(test)]
mod tests {
    #[test]
    fn scoped_threads_borrow_and_join() {
        let mut slots = vec![0u64; 8];
        super::scope(|s| {
            for (i, slot) in slots.iter_mut().enumerate() {
                s.spawn(move |_| *slot = i as u64 * 2);
            }
        })
        .unwrap();
        assert_eq!(slots, (0..8).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn nested_spawns_through_the_scope_argument() {
        let flag = std::sync::atomic::AtomicBool::new(false);
        super::scope(|s| {
            s.spawn(|s2| {
                s2.spawn(|_| flag.store(true, std::sync::atomic::Ordering::SeqCst));
            });
        })
        .unwrap();
        assert!(flag.load(std::sync::atomic::Ordering::SeqCst));
    }
}
