//! Sequence sampling: the `SliceRandom` / `IteratorRandom` subset the
//! workspace uses (`choose`, `shuffle`, `choose_multiple`).

use crate::RngCore;

/// Uniform index in `0..=max` working directly on `RngCore`, so these
/// helpers stay usable through `dyn RngCore`.
fn index_up_to<R: RngCore + ?Sized>(rng: &mut R, max: usize) -> usize {
    (rng.next_u64() % (max as u64 + 1)) as usize
}

/// Random operations on slices.
pub trait SliceRandom {
    /// Element type.
    type Item;

    /// A uniformly random element, or `None` when empty.
    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;

    /// In-place Fisher–Yates shuffle.
    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

    /// Up to `amount` distinct elements in random order.
    fn choose_multiple<R: RngCore + ?Sized>(
        &self,
        rng: &mut R,
        amount: usize,
    ) -> Vec<&Self::Item>;
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            Some(&self[index_up_to(rng, self.len() - 1)])
        }
    }

    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = index_up_to(rng, i);
            self.swap(i, j);
        }
    }

    fn choose_multiple<R: RngCore + ?Sized>(&self, rng: &mut R, amount: usize) -> Vec<&T> {
        let mut indexes: Vec<usize> = (0..self.len()).collect();
        indexes.shuffle(rng);
        indexes
            .into_iter()
            .take(amount)
            .map(|i| &self[i])
            .collect()
    }
}

/// Random operations on iterators (reservoir sampling, so the length need
/// not be known up front).
pub trait IteratorRandom: Iterator + Sized {
    /// One uniformly random item, or `None` when the iterator is empty.
    fn choose<R: RngCore + ?Sized>(self, rng: &mut R) -> Option<Self::Item> {
        let mut chosen = None;
        for (seen, item) in self.enumerate() {
            if index_up_to(rng, seen) == 0 {
                chosen = Some(item);
            }
        }
        chosen
    }

    /// Up to `amount` distinct items via reservoir sampling.
    fn choose_multiple<R: RngCore + ?Sized>(self, rng: &mut R, amount: usize) -> Vec<Self::Item> {
        let mut reservoir: Vec<Self::Item> = Vec::with_capacity(amount);
        for (seen, item) in self.enumerate() {
            if reservoir.len() < amount {
                reservoir.push(item);
            } else {
                let j = index_up_to(rng, seen);
                if j < amount {
                    reservoir[j] = item;
                }
            }
        }
        reservoir
    }
}

impl<I: Iterator> IteratorRandom for I {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;
    use crate::SeedableRng;

    #[test]
    fn choose_is_none_on_empty_and_covers_all() {
        let mut rng = StdRng::seed_from_u64(1);
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
        let v = [1, 2, 3];
        let mut seen = [false; 3];
        for _ in 0..200 {
            seen[*v.choose(&mut rng).unwrap() - 1] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut v: Vec<u32> = (0..20).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..20).collect::<Vec<_>>());
        assert_ne!(v, sorted, "a 20-element shuffle staying sorted is ~1e-18");
    }

    #[test]
    fn iterator_choose_multiple_is_distinct_and_bounded() {
        let mut rng = StdRng::seed_from_u64(3);
        let picked = (0..100u32).choose_multiple(&mut rng, 10);
        assert_eq!(picked.len(), 10);
        let mut d = picked.clone();
        d.sort_unstable();
        d.dedup();
        assert_eq!(d.len(), 10);
        let short = (0..3u32).choose_multiple(&mut rng, 10);
        assert_eq!(short.len(), 3);
    }
}
