//! Offline stand-in for the `rand` crate.
//!
//! The build container has no network access and no registry cache, so the
//! workspace vendors the small slice of the `rand 0.8` API it actually
//! uses: [`Rng`], [`SeedableRng`], [`rngs::StdRng`], and the slice /
//! iterator sampling helpers in [`seq`]. Randomness comes from
//! xoshiro256** seeded through SplitMix64 — deterministic for a given
//! seed, which is all the simulations and tests require. The API shapes
//! (trait bounds, blanket impls, method signatures) mirror the real crate
//! so swapping the genuine dependency back in is a one-line change in the
//! workspace manifest.

pub mod rngs;
pub mod seq;

/// The raw entropy source: everything else is derived from `next_u64`.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits (upper half of [`Self::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Deterministic construction from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Build a generator whose stream is a pure function of `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Types samplable uniformly from the generator's "standard" distribution
/// (the `rand::distributions::Standard` analogue).
pub trait StandardSample: Sized {
    /// Draw one value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl StandardSample for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl StandardSample for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl StandardSample for usize {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl StandardSample for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges a generator can sample a single value from (the
/// `rand::distributions::uniform::SampleRange` analogue).
pub trait SampleRange<T> {
    /// Draw one value from the range. Panics on an empty range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let draw = (rng.next_u64() as u128) % span;
                (self.start as i128 + draw as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let draw = (rng.next_u64() as u128) % span;
                (lo as i128 + draw as i128) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let f = <$t as StandardSample>::sample_standard(rng);
                self.start + f * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let f = <$t as StandardSample>::sample_standard(rng);
                lo + f * (hi - lo)
            }
        }
    )*};
}

float_sample_range!(f32, f64);

/// User-facing sampling methods, blanket-implemented for every entropy
/// source exactly like the real crate.
pub trait Rng: RngCore {
    /// A value from the standard distribution (`[0, 1)` for floats).
    fn gen<T: StandardSample>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// A value uniform in `range`.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_single(self)
    }

    /// A biased coin flip: `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;

    #[test]
    fn seeded_streams_are_deterministic() {
        let mut a = StdRng::seed_from_u64(9);
        let mut b = StdRng::seed_from_u64(9);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(
            (0..4).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..4).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn float_ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let x: f64 = rng.gen_range(0.25..0.75);
            assert!((0.25..0.75).contains(&x));
            let y: f64 = rng.gen();
            assert!((0.0..1.0).contains(&y));
        }
    }

    #[test]
    fn int_ranges_cover_endpoints() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut seen = [false; 5];
        for _ in 0..500 {
            seen[rng.gen_range(0usize..5)] = true;
        }
        assert!(seen.iter().all(|&s| s));
        for _ in 0..100 {
            let v = rng.gen_range(-3i64..=3);
            assert!((-3..=3).contains(&v));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(5);
        let hits = (0..2000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((450..750).contains(&hits), "got {hits}");
    }
}
