//! Concrete generators. Only [`StdRng`] is provided: a xoshiro256**
//! generator seeded via SplitMix64, matching the determinism contract of
//! the real `StdRng` (same seed, same stream) without its dependency
//! closure.

use crate::{RngCore, SeedableRng};

/// The workspace's standard deterministic generator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StdRng {
    s: [u64; 4],
}

impl SeedableRng for StdRng {
    fn seed_from_u64(state: u64) -> Self {
        // SplitMix64 expansion, the canonical way to seed xoshiro.
        let mut sm = state;
        let mut next = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        let s = [next(), next(), next(), next()];
        StdRng { s }
    }
}

impl RngCore for StdRng {
    fn next_u64(&mut self) -> u64 {
        // xoshiro256** by Blackman & Vigna (public domain reference).
        let result = self.s[1]
            .wrapping_mul(5)
            .rotate_left(7)
            .wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}
