//! No-op `Serialize` / `Deserialize` derives.
//!
//! The workspace never serializes anything (no `serde_json` or format
//! crate is in the tree); the derives exist so type definitions can keep
//! their `#[derive(Serialize, Deserialize)]` attributes, which documents
//! intent and keeps the code source-compatible with the real serde. The
//! companion `serde` stub blanket-implements the traits, so the derives
//! can expand to nothing at all.

use proc_macro::TokenStream;

/// Accepts and discards the item: the `serde` stub's blanket impl already
/// covers every type.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Accepts and discards the item (see [`derive_serialize`]).
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}
