//! Collection strategies (`vec`).

use crate::strategy::Strategy;
use rand::rngs::StdRng;
use rand::Rng;
use std::ops::{Range, RangeInclusive};

/// A size specification for generated collections (inclusive bounds).
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    min: usize,
    max: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { min: n, max: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty collection size range");
        SizeRange {
            min: r.start,
            max: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        SizeRange {
            min: *r.start(),
            max: *r.end(),
        }
    }
}

/// Generate `Vec`s whose elements come from `element` and whose length is
/// drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// Output of [`vec`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn new_value(&self, rng: &mut StdRng) -> Vec<S::Value> {
        let len = rng.gen_range(self.size.min..=self.size.max);
        (0..len).map(|_| self.element.new_value(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn vec_lengths_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(13);
        let strat = vec(0u32..5, 1..40);
        for _ in 0..100 {
            let v = strat.new_value(&mut rng);
            assert!((1..40).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 5));
        }
    }
}
