//! Runner configuration and failure plumbing for the [`proptest!`]
//! macro.

use rand::rngs::StdRng;
use rand::SeedableRng;
use std::fmt;

/// How many random cases each property runs.
#[derive(Debug, Clone)]
pub struct Config {
    /// Cases per property.
    pub cases: u32,
}

impl Config {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        Config { cases }
    }
}

impl Default for Config {
    fn default() -> Self {
        Config { cases: 64 }
    }
}

/// A failed property case (carries the formatted assertion message).
#[derive(Debug)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// Wrap a failure message.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError(message.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// A generator seeded from a test's identity: deterministic across runs
/// so failures reproduce, distinct across tests so cases decorrelate.
pub fn deterministic_rng(test_path: &str) -> StdRng {
    // FNV-1a over the fully qualified test name.
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for byte in test_path.bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    StdRng::seed_from_u64(hash)
}
