//! Glob-import surface mirroring `proptest::prelude`.

pub use crate::collection;
pub use crate::strategy::{Just, Strategy};
pub use crate::test_runner::Config as ProptestConfig;
pub use crate::test_runner::TestCaseError;
pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
