//! Value-generation strategies: numeric ranges, tuples, `Just`, and
//! `prop_map` composition. No shrinking — `new_value` draws one random
//! instance.

use rand::rngs::StdRng;
use rand::Rng;
use std::ops::{Range, RangeInclusive};

/// Something that can generate random values of an associated type.
pub trait Strategy {
    /// Generated type.
    type Value;

    /// Draw one value.
    fn new_value(&self, rng: &mut StdRng) -> Self::Value;

    /// Transform generated values with `map`.
    fn prop_map<O, F>(self, map: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map {
            source: self,
            map,
        }
    }
}

/// Output of [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    source: S,
    map: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn new_value(&self, rng: &mut StdRng) -> O {
        (self.map)(self.source.new_value(rng))
    }
}

/// Always yields a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn new_value(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.start..self.end)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(*self.start()..=*self.end())
            }
        }
    )*};
}

range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn new_value(&self, rng: &mut StdRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.new_value(rng),)+)
            }
        }
    };
}

tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);
tuple_strategy!(A, B, C, D, E, F, G);
tuple_strategy!(A, B, C, D, E, F, G, H);

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn ranges_tuples_and_map_compose() {
        let mut rng = StdRng::seed_from_u64(11);
        let strat = (0u64..10, 0.0f64..=1.0).prop_map(|(n, x)| n as f64 + x);
        for _ in 0..200 {
            let v = strat.new_value(&mut rng);
            assert!((0.0..11.0).contains(&v));
        }
        assert_eq!(Just(41u8).new_value(&mut rng), 41);
    }
}
