//! Offline stand-in for `proptest`.
//!
//! Supports the subset this workspace's property tests use: the
//! [`proptest!`] macro (with an optional `#![proptest_config(…)]`
//! header), range and tuple strategies, [`collection::vec`],
//! [`Strategy::prop_map`], and the `prop_assert*` macros. Each test runs
//! `cases` random inputs from a generator seeded deterministically from
//! the test's module path, so failures reproduce run-to-run. Shrinking
//! and persistence (`.proptest-regressions`) are not implemented — a
//! failing case reports the values that triggered it instead.

pub mod collection;
pub mod prelude;
pub mod strategy;
pub mod test_runner;

/// Define property tests.
///
/// ```
/// use proptest::prelude::*;
///
/// proptest! {
///     #[test]
///     fn addition_commutes(a in 0u64..1000, b in 0u64..1000) {
///         prop_assert_eq!(a + b, b + a);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_config ($config) $($rest)*);
    };
    (@with_config ($config:expr)
        $( $(#[$meta:meta])* fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                #[allow(unused_imports)]
                use $crate::strategy::Strategy as _;
                let config: $crate::test_runner::Config = $config;
                let mut rng = $crate::test_runner::deterministic_rng(concat!(
                    module_path!(), "::", stringify!($name)
                ));
                for case in 0..config.cases {
                    let ($($arg,)+) = (
                        $( $crate::strategy::Strategy::new_value(&($strat), &mut rng), )+
                    );
                    let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| { $body ::std::result::Result::Ok(()) })();
                    if let ::std::result::Result::Err(err) = outcome {
                        panic!(
                            "proptest {} failed at case {}/{}: {}",
                            stringify!($name), case + 1, config.cases, err
                        );
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@with_config ($crate::test_runner::Config::default()) $($rest)*);
    };
}

/// Assert inside a `proptest!` body; failure aborts the case with a
/// message instead of unwinding through generated values.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond));
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// Equality assertion inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: {:?} == {:?}",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: {:?} == {:?}: {}",
            left,
            right,
            format!($($fmt)*)
        );
    }};
}

/// Inequality assertion inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: {:?} != {:?}",
            left,
            right
        );
    }};
}
