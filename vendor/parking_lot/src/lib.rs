//! Offline stand-in for `parking_lot`.
//!
//! Wraps `std::sync` primitives behind the `parking_lot` API surface the
//! workspace uses: guard-returning `lock`/`read`/`write` with no poison
//! `Result`. Poisoning is erased the way parking_lot semantics dictate —
//! a panic while holding a lock does not poison it for later users (we
//! recover the inner value from the `PoisonError`). Fairness and the
//! word-sized footprint of the real crate are not reproduced; for this
//! workspace's shard counts the std primitives are adequate.

use std::sync::PoisonError;

/// Shared-read / exclusive-write lock with parking_lot's panic-free API.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

/// Read guard type alias (std guard underneath).
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
/// Write guard type alias (std guard underneath).
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Wrap a value.
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }

    /// Unwrap the value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard (never poisons).
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquire an exclusive write guard (never poisons).
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(PoisonError::into_inner)
    }

    /// Direct access through an exclusive borrow — no locking needed.
    pub fn get_mut(&mut self) -> &mut T {
        self.inner
            .get_mut()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

/// Mutual exclusion with parking_lot's panic-free API.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// Guard type alias (std guard underneath).
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Wrap a value.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Unwrap the value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock (never poisons).
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Direct access through an exclusive borrow — no locking needed.
    pub fn get_mut(&mut self) -> &mut T {
        self.inner
            .get_mut()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn rwlock_read_write_round_trip() {
        let lock = RwLock::new(1u32);
        assert_eq!(*lock.read(), 1);
        *lock.write() += 1;
        assert_eq!(*lock.read(), 2);
        assert_eq!(lock.into_inner(), 2);
    }

    #[test]
    fn poisoned_lock_stays_usable() {
        let lock = Arc::new(Mutex::new(5u32));
        let clone = Arc::clone(&lock);
        let _ = std::thread::spawn(move || {
            let _guard = clone.lock();
            panic!("poison attempt");
        })
        .join();
        assert_eq!(*lock.lock(), 5, "parking_lot semantics: no poisoning");
    }
}
