//! Offline stand-in for `serde`.
//!
//! Provides the two trait names and re-exports the no-op derives from the
//! vendored `serde_derive`, so `#[derive(Serialize, Deserialize)]` and
//! `T: Serialize` bounds compile unchanged. Both traits are blanket
//! -implemented: nothing in this workspace actually serializes (there is
//! no format crate in the tree), the annotations only declare intent for
//! the day the real dependency is restored.

pub use serde_derive::{Deserialize, Serialize};

/// Marker standing in for `serde::Serialize`.
pub trait Serialize {}

impl<T: ?Sized> Serialize for T {}

/// Marker standing in for `serde::Deserialize<'de>`.
pub trait Deserialize<'de> {}

impl<'de, T: ?Sized> Deserialize<'de> for T {}

/// Marker standing in for `serde::de::DeserializeOwned`.
pub trait DeserializeOwned {}

impl<T: ?Sized> DeserializeOwned for T {}

/// Namespace parity with the real crate.
pub mod de {
    pub use crate::{Deserialize, DeserializeOwned};
}

/// Namespace parity with the real crate.
pub mod ser {
    pub use crate::Serialize;
}
