//! Offline stand-in for `criterion`.
//!
//! Re-implements the API surface the workspace benches use —
//! [`Criterion::bench_function`], benchmark groups with
//! `bench_with_input` / `sample_size`, [`Bencher::iter`] /
//! [`Bencher::iter_batched`], [`BenchmarkId`], [`black_box`], and the
//! `criterion_group!` / `criterion_main!` macros — on a plain wall-clock
//! loop. No statistics, plots, or outlier rejection: each benchmark warms
//! up briefly, runs timed batches for a fixed budget, and prints the mean
//! time per iteration. Good enough to compare orders of magnitude and to
//! keep `cargo bench` wired end to end while offline.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Per-iteration timing budget knobs shared by every benchmark.
#[derive(Debug, Clone)]
pub struct Criterion {
    /// Total measurement budget per benchmark.
    measurement: Duration,
    /// Warm-up budget per benchmark.
    warm_up: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            measurement: Duration::from_millis(200),
            warm_up: Duration::from_millis(30),
        }
    }
}

impl Criterion {
    /// Benchmark a closure under `id`.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(self, &id.into().0, &mut f);
        self
    }

    /// Open a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API parity; the wall-clock harness sizes its own
    /// sample counts from the time budget instead.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Shrink or grow the per-benchmark measurement budget.
    pub fn measurement_time(&mut self, budget: Duration) -> &mut Self {
        self.criterion.measurement = budget;
        self
    }

    /// Benchmark a closure under `group/id`.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into().0);
        run_one(self.criterion, &label, &mut f);
        self
    }

    /// Benchmark a closure that borrows a prepared input.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.into().0);
        run_one(self.criterion, &label, &mut |b| f(b, input));
        self
    }

    /// End the group (printing happens per-benchmark already).
    pub fn finish(self) {}
}

/// A benchmark identifier; builds from strings or `name/parameter` pairs.
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// `name/parameter`.
    pub fn new(name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId(format!("{name}/{parameter}"))
    }

    /// Just the parameter (the group provides the function name).
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId(s.to_string())
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId(s)
    }
}

/// How `iter_batched` amortizes setup cost; accepted for API parity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// Fresh setup for every routine call.
    PerIteration,
}

/// Passed to the benchmark closure; drives the timing loop.
pub struct Bencher<'a> {
    criterion: &'a Criterion,
    /// (total elapsed, iterations) accumulated by the `iter*` calls.
    samples: Vec<(Duration, u64)>,
}

impl Bencher<'_> {
    /// Time `routine` repeatedly.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warm-up: let caches/branch predictors settle, untimed.
        let warm_deadline = Instant::now() + self.criterion.warm_up;
        while Instant::now() < warm_deadline {
            black_box(routine());
        }
        let deadline = Instant::now() + self.criterion.measurement;
        let mut batch = 1u64;
        while Instant::now() < deadline {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            let elapsed = start.elapsed();
            self.samples.push((elapsed, batch));
            // Grow batches until each takes ~1ms, bounding timer overhead.
            if elapsed < Duration::from_millis(1) && batch < 1 << 20 {
                batch *= 2;
            }
        }
    }

    /// Time `routine` over inputs built by `setup`; setup time excluded.
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        let warm_deadline = Instant::now() + self.criterion.warm_up;
        while Instant::now() < warm_deadline {
            let input = setup();
            black_box(routine(input));
        }
        let deadline = Instant::now() + self.criterion.measurement;
        while Instant::now() < deadline {
            let input = setup();
            let start = Instant::now();
            let output = routine(input);
            let elapsed = start.elapsed();
            black_box(output);
            self.samples.push((elapsed, 1));
        }
    }

    /// Like [`Bencher::iter_batched`] but the routine borrows the input.
    pub fn iter_batched_ref<I, O, S, F>(&mut self, setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(&mut I) -> O,
    {
        self.iter_batched(setup, |mut input| routine(&mut input), _size);
    }
}

fn run_one<F: FnMut(&mut Bencher)>(criterion: &Criterion, label: &str, f: &mut F) {
    let mut bencher = Bencher {
        criterion,
        samples: Vec::new(),
    };
    f(&mut bencher);
    let total: Duration = bencher.samples.iter().map(|(d, _)| *d).sum();
    let iters: u64 = bencher.samples.iter().map(|(_, n)| *n).sum();
    if iters == 0 {
        println!("{label:<40} (no samples)");
        return;
    }
    let per_iter = total.as_nanos() as f64 / iters as f64;
    println!("{label:<40} {:>12} / iter  ({iters} iterations)", format_ns(per_iter));
}

fn format_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// Bundle benchmark functions into a named group runner.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Emit `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_reports() {
        let mut c = Criterion {
            measurement: Duration::from_millis(5),
            warm_up: Duration::from_millis(1),
        };
        let mut calls = 0u64;
        c.bench_function("smoke", |b| {
            b.iter(|| {
                calls += 1;
                black_box(calls)
            })
        });
        assert!(calls > 0);
    }

    #[test]
    fn groups_and_batched_iters_run() {
        let mut c = Criterion {
            measurement: Duration::from_millis(5),
            warm_up: Duration::from_millis(1),
        };
        let mut group = c.benchmark_group("g");
        group.sample_size(10);
        group.bench_with_input(BenchmarkId::from_parameter(3), &3u64, |b, &n| {
            b.iter_batched(|| vec![0u64; n as usize], |v| v.len(), BatchSize::SmallInput)
        });
        group.finish();
    }
}
