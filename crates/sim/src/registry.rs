//! The UDDI-style registry and central QoS store of Figure 2.
//!
//! "It is based on a classical web service framework where a central UDDI
//! server is used to publish and search services … It is inevitable that
//! this server-centric framework will suffer a single point of failure."
//! The registry therefore has an explicit up/down switch, and search
//! results go stale (services deregistered while it was down are still
//! returned) — the staleness the paper attributes to dynamic environments.

use std::collections::BTreeMap;
use wsrep_core::id::{ProviderId, ServiceId};
use wsrep_core::store::FeedbackStore;
use wsrep_qos::value::QosVector;

/// A published service entry.
#[derive(Debug, Clone, PartialEq)]
pub struct Listing {
    /// The service.
    pub service: ServiceId,
    /// Its provider.
    pub provider: ProviderId,
    /// Function category consumers search by.
    pub category: u32,
    /// The advertised QoS claim.
    pub advertised: QosVector,
}

/// UDDI-like registry + central QoS feedback store.
#[derive(Debug, Default)]
pub struct UddiRegistry {
    listings: BTreeMap<ServiceId, Listing>,
    /// The central QoS registry of Figure 2.
    pub qos_store: FeedbackStore,
    down: bool,
}

impl UddiRegistry {
    /// Empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Publish (or update) a service listing. Fails silently while the
    /// registry is down — providers cannot reach it.
    pub fn publish(&mut self, listing: Listing) -> bool {
        if self.down {
            return false;
        }
        self.listings.insert(listing.service, listing);
        true
    }

    /// Remove a listing (provider withdrawal). No-op while down, which is
    /// exactly how stale entries accumulate.
    pub fn withdraw(&mut self, service: ServiceId) -> bool {
        if self.down {
            return false;
        }
        self.listings.remove(&service).is_some()
    }

    /// Search by function category. Returns `None` while the registry is
    /// down — the single point of failure in action.
    pub fn search(&self, category: u32) -> Option<Vec<&Listing>> {
        if self.down {
            return None;
        }
        Some(
            self.listings
                .values()
                .filter(|l| l.category == category)
                .collect(),
        )
    }

    /// Look up one listing.
    pub fn listing(&self, service: ServiceId) -> Option<&Listing> {
        if self.down {
            None
        } else {
            self.listings.get(&service)
        }
    }

    /// Take the registry down (failure injection).
    pub fn fail(&mut self) {
        self.down = true;
    }

    /// Bring it back.
    pub fn recover(&mut self) {
        self.down = false;
    }

    /// Whether the registry is up.
    pub fn is_up(&self) -> bool {
        !self.down
    }

    /// Number of listings.
    pub fn len(&self) -> usize {
        self.listings.len()
    }

    /// Whether nothing is listed.
    pub fn is_empty(&self) -> bool {
        self.listings.is_empty()
    }

    /// Accept a consumer feedback report into the central QoS store.
    /// Dropped while down.
    pub fn accept_feedback(&mut self, feedback: wsrep_core::feedback::Feedback) -> bool {
        if self.down {
            return false;
        }
        self.qos_store.push(feedback);
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wsrep_core::feedback::Feedback;
    use wsrep_core::id::AgentId;
    use wsrep_core::time::Time;

    fn listing(service: u64, category: u32) -> Listing {
        Listing {
            service: ServiceId::new(service),
            provider: ProviderId::new(service / 2),
            category,
            advertised: QosVector::new(),
        }
    }

    #[test]
    fn publish_and_search_by_category() {
        let mut r = UddiRegistry::new();
        assert!(r.publish(listing(1, 10)));
        assert!(r.publish(listing(2, 10)));
        assert!(r.publish(listing(3, 20)));
        assert_eq!(r.search(10).unwrap().len(), 2);
        assert_eq!(r.search(20).unwrap().len(), 1);
        assert_eq!(r.search(99).unwrap().len(), 0);
    }

    #[test]
    fn down_registry_serves_nothing_and_accepts_nothing() {
        let mut r = UddiRegistry::new();
        r.publish(listing(1, 10));
        r.fail();
        assert!(!r.is_up());
        assert_eq!(r.search(10), None);
        assert_eq!(r.listing(ServiceId::new(1)), None);
        assert!(!r.publish(listing(2, 10)));
        assert!(!r.accept_feedback(Feedback::scored(
            AgentId::new(0),
            ServiceId::new(1),
            0.5,
            Time::ZERO
        )));
        r.recover();
        assert_eq!(r.search(10).unwrap().len(), 1);
    }

    #[test]
    fn withdrawal_fails_while_down_leaving_stale_entries() {
        let mut r = UddiRegistry::new();
        r.publish(listing(1, 10));
        r.fail();
        assert!(!r.withdraw(ServiceId::new(1)));
        r.recover();
        // The stale entry is still served.
        assert_eq!(r.search(10).unwrap().len(), 1);
        assert!(r.withdraw(ServiceId::new(1)));
        assert!(r.is_empty());
    }

    #[test]
    fn feedback_lands_in_the_qos_store() {
        let mut r = UddiRegistry::new();
        r.accept_feedback(Feedback::scored(
            AgentId::new(0),
            ServiceId::new(1),
            0.9,
            Time::ZERO,
        ));
        assert_eq!(r.qos_store.len(), 1);
    }

    #[test]
    fn republish_updates_in_place() {
        let mut r = UddiRegistry::new();
        r.publish(listing(1, 10));
        let mut updated = listing(1, 10);
        updated.category = 30;
        r.publish(updated);
        assert_eq!(r.len(), 1);
        assert_eq!(r.listing(ServiceId::new(1)).unwrap().category, 30);
    }
}
