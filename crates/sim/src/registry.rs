//! The UDDI-style registry and central QoS store of Figure 2.
//!
//! "It is based on a classical web service framework where a central UDDI
//! server is used to publish and search services … It is inevitable that
//! this server-centric framework will suffer a single point of failure."
//! The registry therefore has an explicit up/down switch, and search
//! results go stale (services deregistered while it was down are still
//! returned) — the staleness the paper attributes to dynamic environments.

use std::collections::BTreeMap;
use std::fmt;
use wsrep_core::id::{ProviderId, ServiceId};
use wsrep_core::store::FeedbackStore;
use wsrep_qos::value::QosVector;

/// Why a registry operation was rejected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RegistryError {
    /// The central server is unreachable — Figure 2's single point of
    /// failure in action.
    Down,
    /// No listing exists for the given service.
    NotFound,
    /// The registry cannot make the mutation durable and its policy
    /// forbids lying about it (the served registry's fenced state after
    /// a journal failure under a read-only / fail-stop policy).
    NotDurable,
}

impl fmt::Display for RegistryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RegistryError::Down => write!(f, "registry is down"),
            RegistryError::NotFound => write!(f, "service is not listed"),
            RegistryError::NotDurable => {
                write!(f, "registry cannot make the write durable")
            }
        }
    }
}

impl std::error::Error for RegistryError {}

/// What a successful publish did to the listing table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PublishStatus {
    /// A new listing was created.
    Created,
    /// An existing listing was replaced in place.
    Updated,
}

/// Category search over any listing collection.
///
/// Both [`UddiRegistry::search`] and the served registry
/// (`wsrep-serve`) answer lookups through this one function, so the
/// simulated and served paths cannot drift apart.
pub fn search_category<'a, I>(listings: I, category: u32) -> Vec<&'a Listing>
where
    I: IntoIterator<Item = &'a Listing>,
{
    listings
        .into_iter()
        .filter(|l| l.category == category)
        .collect()
}

/// A published service entry.
#[derive(Debug, Clone, PartialEq)]
pub struct Listing {
    /// The service.
    pub service: ServiceId,
    /// Its provider.
    pub provider: ProviderId,
    /// Function category consumers search by.
    pub category: u32,
    /// The advertised QoS claim.
    pub advertised: QosVector,
}

/// UDDI-like registry + central QoS feedback store.
#[derive(Debug, Default)]
pub struct UddiRegistry {
    listings: BTreeMap<ServiceId, Listing>,
    /// The central QoS registry of Figure 2.
    pub qos_store: FeedbackStore,
    down: bool,
}

impl UddiRegistry {
    /// Empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Publish (or update) a service listing. Rejected while the registry
    /// is down — providers cannot reach it.
    pub fn publish(&mut self, listing: Listing) -> Result<PublishStatus, RegistryError> {
        if self.down {
            return Err(RegistryError::Down);
        }
        match self.listings.insert(listing.service, listing) {
            Some(_) => Ok(PublishStatus::Updated),
            None => Ok(PublishStatus::Created),
        }
    }

    /// Remove a listing (provider withdrawal). Rejected while down, which
    /// is exactly how stale entries accumulate.
    pub fn withdraw(&mut self, service: ServiceId) -> Result<(), RegistryError> {
        if self.down {
            return Err(RegistryError::Down);
        }
        if self.listings.remove(&service).is_some() {
            Ok(())
        } else {
            Err(RegistryError::NotFound)
        }
    }

    /// Search by function category. Returns `None` while the registry is
    /// down — the single point of failure in action.
    pub fn search(&self, category: u32) -> Option<Vec<&Listing>> {
        if self.down {
            return None;
        }
        Some(search_category(self.listings.values(), category))
    }

    /// Look up one listing.
    pub fn listing(&self, service: ServiceId) -> Option<&Listing> {
        if self.down {
            None
        } else {
            self.listings.get(&service)
        }
    }

    /// Take the registry down (failure injection).
    pub fn fail(&mut self) {
        self.down = true;
    }

    /// Bring it back.
    pub fn recover(&mut self) {
        self.down = false;
    }

    /// Whether the registry is up.
    pub fn is_up(&self) -> bool {
        !self.down
    }

    /// Number of listings.
    pub fn len(&self) -> usize {
        self.listings.len()
    }

    /// Whether nothing is listed.
    pub fn is_empty(&self) -> bool {
        self.listings.is_empty()
    }

    /// Accept a consumer feedback report into the central QoS store.
    /// Rejected while down.
    pub fn accept_feedback(
        &mut self,
        feedback: wsrep_core::feedback::Feedback,
    ) -> Result<(), RegistryError> {
        if self.down {
            return Err(RegistryError::Down);
        }
        self.qos_store.push(feedback);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wsrep_core::feedback::Feedback;
    use wsrep_core::id::AgentId;
    use wsrep_core::time::Time;

    fn listing(service: u64, category: u32) -> Listing {
        Listing {
            service: ServiceId::new(service),
            provider: ProviderId::new(service / 2),
            category,
            advertised: QosVector::new(),
        }
    }

    #[test]
    fn publish_and_search_by_category() {
        let mut r = UddiRegistry::new();
        assert_eq!(r.publish(listing(1, 10)), Ok(PublishStatus::Created));
        assert_eq!(r.publish(listing(2, 10)), Ok(PublishStatus::Created));
        assert_eq!(r.publish(listing(3, 20)), Ok(PublishStatus::Created));
        assert_eq!(r.search(10).unwrap().len(), 2);
        assert_eq!(r.search(20).unwrap().len(), 1);
        assert_eq!(r.search(99).unwrap().len(), 0);
    }

    #[test]
    fn down_registry_serves_nothing_and_accepts_nothing() {
        let mut r = UddiRegistry::new();
        r.publish(listing(1, 10)).unwrap();
        r.fail();
        assert!(!r.is_up());
        assert_eq!(r.search(10), None);
        assert_eq!(r.listing(ServiceId::new(1)), None);
        assert_eq!(r.publish(listing(2, 10)), Err(RegistryError::Down));
        assert_eq!(
            r.accept_feedback(Feedback::scored(
                AgentId::new(0),
                ServiceId::new(1),
                0.5,
                Time::ZERO
            )),
            Err(RegistryError::Down)
        );
        r.recover();
        assert_eq!(r.search(10).unwrap().len(), 1);
    }

    #[test]
    fn withdrawal_fails_while_down_leaving_stale_entries() {
        let mut r = UddiRegistry::new();
        r.publish(listing(1, 10)).unwrap();
        r.fail();
        assert_eq!(r.withdraw(ServiceId::new(1)), Err(RegistryError::Down));
        r.recover();
        // The stale entry is still served.
        assert_eq!(r.search(10).unwrap().len(), 1);
        assert_eq!(r.withdraw(ServiceId::new(1)), Ok(()));
        assert!(r.is_empty());
        // A second withdrawal reports the missing listing.
        assert_eq!(r.withdraw(ServiceId::new(1)), Err(RegistryError::NotFound));
    }

    #[test]
    fn feedback_lands_in_the_qos_store() {
        let mut r = UddiRegistry::new();
        r.accept_feedback(Feedback::scored(
            AgentId::new(0),
            ServiceId::new(1),
            0.9,
            Time::ZERO,
        ))
        .unwrap();
        assert_eq!(r.qos_store.len(), 1);
    }

    #[test]
    fn republish_updates_in_place() {
        let mut r = UddiRegistry::new();
        assert_eq!(r.publish(listing(1, 10)), Ok(PublishStatus::Created));
        let mut updated = listing(1, 10);
        updated.category = 30;
        assert_eq!(r.publish(updated), Ok(PublishStatus::Updated));
        assert_eq!(r.len(), 1);
        assert_eq!(r.listing(ServiceId::new(1)).unwrap().category, 30);
    }

    #[test]
    fn search_category_filters_any_listing_collection() {
        let ls = [listing(1, 10), listing(2, 20), listing(3, 10)];
        let hits = search_category(ls.iter(), 10);
        assert_eq!(hits.len(), 2);
        assert!(hits.iter().all(|l| l.category == 10));
    }
}
