//! Consumers: preference profiles and rater behaviours.
//!
//! Section 3.1-Q3: "it is inevitable that some users may provide false
//! feedback to badmouth or raise the reputation of a service on purpose."
//! The [`RaterBehavior`] enum models exactly those populations; the
//! defenses live in `wsrep-robust`.

use rand::Rng;
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use wsrep_core::feedback::Feedback;
use wsrep_core::id::{AgentId, ProviderId, ServiceId};
use wsrep_core::time::Time;
use wsrep_qos::metric::Metric;
use wsrep_qos::preference::Preferences;
use wsrep_qos::value::QosVector;

/// How a consumer reports after an interaction.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum RaterBehavior {
    /// Reports its true satisfaction and measurements.
    Honest,
    /// Rates the target providers' services with the maximum score
    /// regardless of experience (ballot stuffing).
    BallotStuffer {
        /// Providers whose services get inflated ratings.
        targets: BTreeSet<ProviderId>,
    },
    /// Rates the target providers' services with the minimum score
    /// (badmouthing), honest elsewhere.
    BadMouther {
        /// Providers whose services get trashed.
        targets: BTreeSet<ProviderId>,
    },
    /// Collusion ring: inflates ring providers, trashes everyone else.
    Collusive {
        /// The ring being promoted.
        ring: BTreeSet<ProviderId>,
    },
    /// Uniformly random scores (noise rater).
    Random,
}

/// A consumer in the market.
#[derive(Debug, Clone)]
pub struct Consumer {
    /// Identity (also the rater id on feedback).
    pub id: AgentId,
    /// QoS preference weights.
    pub prefs: Preferences,
    /// Rating behaviour.
    pub behavior: RaterBehavior,
}

impl Consumer {
    /// The consumer's *true* satisfaction with an observation, given the
    /// global bounds function (ground-truth normalization).
    pub fn satisfaction<F>(&self, observed: &QosVector, bounds: F) -> f64
    where
        F: Fn(Metric) -> (f64, f64),
    {
        self.prefs.utility_raw(observed, bounds)
    }

    /// Produce the feedback this consumer files after an interaction.
    ///
    /// Honest consumers report their satisfaction, the observed QoS values
    /// and per-facet ratings; dishonest ones distort the score (and, for
    /// QoS-reporting mechanisms, the claimed measurements) according to
    /// their behaviour.
    pub fn report<R, F>(
        &self,
        rng: &mut R,
        service: ServiceId,
        provider: ProviderId,
        observed: &QosVector,
        bounds: F,
        at: Time,
    ) -> Feedback
    where
        R: Rng + ?Sized,
        F: Fn(Metric) -> (f64, f64) + Copy,
    {
        let honest_score = self.satisfaction(observed, bounds);
        let (score, claimed) = match &self.behavior {
            RaterBehavior::Honest => (honest_score, observed.clone()),
            RaterBehavior::BallotStuffer { targets } => {
                if targets.contains(&provider) {
                    (1.0, best_case(observed, bounds))
                } else {
                    (honest_score, observed.clone())
                }
            }
            RaterBehavior::BadMouther { targets } => {
                if targets.contains(&provider) {
                    (0.0, worst_case(observed, bounds))
                } else {
                    (honest_score, observed.clone())
                }
            }
            RaterBehavior::Collusive { ring } => {
                if ring.contains(&provider) {
                    (1.0, best_case(observed, bounds))
                } else {
                    (0.0, worst_case(observed, bounds))
                }
            }
            RaterBehavior::Random => (rng.gen::<f64>(), observed.clone()),
        };
        let mut fb = Feedback::scored(self.id, service, score, at).with_observed(claimed);
        // Per-facet subjective ratings follow the (possibly distorted)
        // overall stance, one per metric the consumer cares about.
        for (m, _) in self.prefs.iter() {
            let facet = match &self.behavior {
                RaterBehavior::Honest => facet_score(observed, m, bounds),
                _ => score,
            };
            fb = fb.with_facet(m, facet);
        }
        fb
    }

    /// Whether this consumer reports honestly.
    pub fn is_honest(&self) -> bool {
        self.behavior == RaterBehavior::Honest
    }
}

fn facet_score<F>(observed: &QosVector, metric: Metric, bounds: F) -> f64
where
    F: Fn(Metric) -> (f64, f64),
{
    match observed.get(metric) {
        None => 0.5,
        Some(v) => {
            let (lo, hi) = bounds(metric);
            wsrep_qos::normalize::normalize_one(v, lo, hi, metric.monotonicity())
        }
    }
}

fn best_case<F>(observed: &QosVector, bounds: F) -> QosVector
where
    F: Fn(Metric) -> (f64, f64),
{
    observed
        .iter()
        .map(|(m, _)| {
            let (lo, hi) = bounds(m);
            let v = match m.monotonicity() {
                wsrep_qos::metric::Monotonicity::HigherBetter => hi,
                wsrep_qos::metric::Monotonicity::LowerBetter => lo,
            };
            (m, v)
        })
        .collect()
}

fn worst_case<F>(observed: &QosVector, bounds: F) -> QosVector
where
    F: Fn(Metric) -> (f64, f64),
{
    observed
        .iter()
        .map(|(m, _)| {
            let (lo, hi) = bounds(m);
            let v = match m.monotonicity() {
                wsrep_qos::metric::Monotonicity::HigherBetter => lo,
                wsrep_qos::metric::Monotonicity::LowerBetter => hi,
            };
            (m, v)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn bounds(m: Metric) -> (f64, f64) {
        crate::provider::metric_range(m)
    }

    fn consumer(behavior: RaterBehavior) -> Consumer {
        Consumer {
            id: AgentId::new(0),
            prefs: Preferences::uniform([Metric::ResponseTime, Metric::Availability]),
            behavior,
        }
    }

    fn good_observation() -> QosVector {
        QosVector::from_pairs([(Metric::ResponseTime, 30.0), (Metric::Availability, 0.99)])
    }

    fn bad_observation() -> QosVector {
        QosVector::from_pairs([(Metric::ResponseTime, 750.0), (Metric::Availability, 0.45)])
    }

    #[test]
    fn honest_scores_track_quality() {
        let c = consumer(RaterBehavior::Honest);
        let mut rng = StdRng::seed_from_u64(1);
        let good = c.report(
            &mut rng,
            ServiceId::new(1),
            ProviderId::new(0),
            &good_observation(),
            bounds,
            Time::ZERO,
        );
        let bad = c.report(
            &mut rng,
            ServiceId::new(1),
            ProviderId::new(0),
            &bad_observation(),
            bounds,
            Time::ZERO,
        );
        assert!(good.score > 0.8);
        assert!(bad.score < 0.2);
        assert_eq!(good.observed, good_observation());
    }

    #[test]
    fn ballot_stuffer_inflates_targets_only() {
        let mut targets = BTreeSet::new();
        targets.insert(ProviderId::new(7));
        let c = consumer(RaterBehavior::BallotStuffer { targets });
        let mut rng = StdRng::seed_from_u64(2);
        let on_target = c.report(
            &mut rng,
            ServiceId::new(1),
            ProviderId::new(7),
            &bad_observation(),
            bounds,
            Time::ZERO,
        );
        let off_target = c.report(
            &mut rng,
            ServiceId::new(2),
            ProviderId::new(8),
            &bad_observation(),
            bounds,
            Time::ZERO,
        );
        assert_eq!(on_target.score, 1.0);
        assert!(off_target.score < 0.2);
        // The claimed measurements are also falsified for the target.
        assert!(on_target.observed.get(Metric::ResponseTime).unwrap() < 100.0);
    }

    #[test]
    fn badmouther_trashes_targets_only() {
        let mut targets = BTreeSet::new();
        targets.insert(ProviderId::new(7));
        let c = consumer(RaterBehavior::BadMouther { targets });
        let mut rng = StdRng::seed_from_u64(3);
        let on_target = c.report(
            &mut rng,
            ServiceId::new(1),
            ProviderId::new(7),
            &good_observation(),
            bounds,
            Time::ZERO,
        );
        assert_eq!(on_target.score, 0.0);
        assert!(on_target.observed.get(Metric::ResponseTime).unwrap() > 700.0);
    }

    #[test]
    fn colluders_polarize_everything() {
        let mut ring = BTreeSet::new();
        ring.insert(ProviderId::new(1));
        let c = consumer(RaterBehavior::Collusive { ring });
        let mut rng = StdRng::seed_from_u64(4);
        let friend = c.report(
            &mut rng,
            ServiceId::new(1),
            ProviderId::new(1),
            &bad_observation(),
            bounds,
            Time::ZERO,
        );
        let foe = c.report(
            &mut rng,
            ServiceId::new(2),
            ProviderId::new(2),
            &good_observation(),
            bounds,
            Time::ZERO,
        );
        assert_eq!(friend.score, 1.0);
        assert_eq!(foe.score, 0.0);
    }

    #[test]
    fn random_rater_is_noisy_but_bounded() {
        let c = consumer(RaterBehavior::Random);
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..50 {
            let fb = c.report(
                &mut rng,
                ServiceId::new(1),
                ProviderId::new(0),
                &good_observation(),
                bounds,
                Time::ZERO,
            );
            assert!((0.0..=1.0).contains(&fb.score));
        }
    }

    #[test]
    fn facet_ratings_cover_preference_metrics() {
        let c = consumer(RaterBehavior::Honest);
        let mut rng = StdRng::seed_from_u64(6);
        let fb = c.report(
            &mut rng,
            ServiceId::new(1),
            ProviderId::new(0),
            &good_observation(),
            bounds,
            Time::ZERO,
        );
        assert!(fb.facet_ratings.contains_key(&Metric::ResponseTime));
        assert!(fb.facet_ratings.contains_key(&Metric::Availability));
        assert!(fb.facet_ratings[&Metric::ResponseTime] > 0.8);
    }

    #[test]
    fn is_honest_flags_behaviour() {
        assert!(consumer(RaterBehavior::Honest).is_honest());
        assert!(!consumer(RaterBehavior::Random).is_honest());
    }
}
