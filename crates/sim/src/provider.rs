//! Providers, their services, and behaviour dynamics.
//!
//! Section 2 of the paper: providers advertise QoS that is "not an
//! agreement or obligation" and "may exaggerate its capability … on
//! purpose to attract consumers"; Section 3 stresses that trust is
//! *dynamic* because service quality changes. Both knobs live here: the
//! advertisement exaggeration factor and the [`Behavior`] that drifts the
//! latent quality over time.

use serde::{Deserialize, Serialize};
use wsrep_core::id::{ProviderId, ServiceId};
use wsrep_core::time::Time;
use wsrep_qos::metric::Metric;
use wsrep_qos::profile::QualityProfile;
use wsrep_qos::value::QosVector;

/// How a provider's delivered quality evolves.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Behavior {
    /// Quality stays where it started.
    Stable,
    /// Quality improves by `rate` (normalized drift) per round.
    Improving {
        /// Per-round improvement fraction.
        rate: f64,
    },
    /// Quality degrades by `rate` per round.
    Degrading {
        /// Per-round degradation fraction.
        rate: f64,
    },
    /// Milking cycles: good for half a `period`, bad for the other half —
    /// the classic oscillation attack on slow-moving reputation.
    Oscillating {
        /// Full cycle length in rounds.
        period: u64,
        /// Drift applied each round (sign flips per half-cycle).
        amplitude: f64,
    },
}

/// A service: its identity, its latent quality and its advertisement.
#[derive(Debug, Clone)]
pub struct Service {
    /// Service identity.
    pub id: ServiceId,
    /// Owning provider.
    pub provider: ProviderId,
    /// Function category (consumers search by category).
    pub category: u32,
    /// The latent delivered quality.
    pub quality: QualityProfile,
    /// The published QoS claim.
    pub advertised: QosVector,
}

/// A provider with one or more services.
#[derive(Debug, Clone)]
pub struct Provider {
    /// Provider identity.
    pub id: ProviderId,
    /// Services this provider publishes.
    pub services: Vec<ServiceId>,
    /// Quality dynamics applied to all its services.
    pub behavior: Behavior,
    /// Advertisement exaggeration: 0 = honest, 0.5 = claims 50% better.
    pub exaggeration: f64,
}

impl Provider {
    /// Advance one service's quality one round according to the behaviour.
    pub fn step_quality(&self, quality: &mut QualityProfile, now: Time) {
        match self.behavior {
            Behavior::Stable => {}
            Behavior::Improving { rate } => quality.drift(rate),
            Behavior::Degrading { rate } => quality.drift(-rate),
            Behavior::Oscillating { period, amplitude } => {
                let phase = now.round() % period.max(1);
                if phase < period / 2 {
                    quality.drift(amplitude);
                } else {
                    quality.drift(-amplitude);
                }
            }
        }
    }

    /// The advertisement this provider would publish for a quality.
    ///
    /// Exaggeration moves each claim a fraction of the way from the truth
    /// toward the *best possible* value of the metric's canonical range —
    /// strong exaggerators all claim near-perfect QoS, which is what makes
    /// advertised-QoS selection gameable: saturated claims carry no
    /// ranking information.
    pub fn advertise(&self, quality: &QualityProfile) -> QosVector {
        quality
            .means()
            .iter()
            .map(|(m, v)| {
                let (lo, hi) = metric_range(m);
                let best = match m.monotonicity() {
                    wsrep_qos::metric::Monotonicity::HigherBetter => hi,
                    wsrep_qos::metric::Monotonicity::LowerBetter => lo,
                };
                (m, v + self.exaggeration.clamp(0.0, 1.0) * (best - v))
            })
            .collect()
    }
}

/// Canonical raw-value ranges per metric used by world generation and
/// ground-truth normalization. `(worst-ish, best-ish)` in raw units —
/// orientation still comes from the metric's monotonicity.
pub fn metric_range(metric: Metric) -> (f64, f64) {
    use Metric::*;
    match metric {
        ProcessingTime => (5.0, 300.0),
        Throughput => (10.0, 1000.0),
        ResponseTime => (20.0, 800.0),
        Latency => (1.0, 200.0),
        Capacity => (10.0, 500.0),
        Price => (1.0, 20.0),
        // Fraction-valued metrics.
        _ => (0.4, 1.0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quality() -> QualityProfile {
        QualityProfile::from_triples([
            (Metric::ResponseTime, 200.0, 10.0),
            (Metric::Availability, 0.8, 0.02),
        ])
    }

    fn provider(behavior: Behavior, exaggeration: f64) -> Provider {
        Provider {
            id: ProviderId::new(0),
            services: vec![ServiceId::new(0)],
            behavior,
            exaggeration,
        }
    }

    #[test]
    fn stable_provider_never_drifts() {
        let p = provider(Behavior::Stable, 0.0);
        let mut q = quality();
        for t in 0..50 {
            p.step_quality(&mut q, Time::new(t));
        }
        assert_eq!(q.get(Metric::ResponseTime).unwrap().mean, 200.0);
    }

    #[test]
    fn improving_and_degrading_move_opposite_ways() {
        let up = provider(Behavior::Improving { rate: 0.01 }, 0.0);
        let down = provider(Behavior::Degrading { rate: 0.01 }, 0.0);
        let mut qu = quality();
        let mut qd = quality();
        for t in 0..20 {
            up.step_quality(&mut qu, Time::new(t));
            down.step_quality(&mut qd, Time::new(t));
        }
        assert!(qu.get(Metric::ResponseTime).unwrap().mean < 200.0);
        assert!(qd.get(Metric::ResponseTime).unwrap().mean > 200.0);
        assert!(qu.get(Metric::Availability).unwrap().mean > 0.8);
        assert!(qd.get(Metric::Availability).unwrap().mean < 0.8);
    }

    #[test]
    fn oscillator_swings_and_returns() {
        let p = provider(
            Behavior::Oscillating {
                period: 10,
                amplitude: 0.02,
            },
            0.0,
        );
        let mut q = quality();
        let mut best = f64::INFINITY;
        let mut worst = f64::NEG_INFINITY;
        for t in 0..40 {
            p.step_quality(&mut q, Time::new(t));
            let rt = q.get(Metric::ResponseTime).unwrap().mean;
            best = best.min(rt);
            worst = worst.max(rt);
        }
        assert!(best < 200.0 && worst > 150.0);
        assert!(worst - best > 10.0, "oscillation has real amplitude");
    }

    #[test]
    fn exaggerated_advertisement_beats_truth() {
        let p = provider(Behavior::Stable, 0.3);
        let q = quality();
        let ad = p.advertise(&q);
        assert!(ad.get(Metric::ResponseTime).unwrap() < 200.0);
        assert!(ad.get(Metric::Availability).unwrap() > 0.8);
    }

    #[test]
    fn honest_advertisement_equals_means() {
        let p = provider(Behavior::Stable, 0.0);
        let q = quality();
        assert_eq!(p.advertise(&q), q.means());
    }

    #[test]
    fn metric_ranges_are_sane() {
        for m in Metric::ALL_STANDARD {
            let (lo, hi) = metric_range(m);
            assert!(lo < hi, "{m}");
            assert!(lo >= 0.0);
        }
    }
}
