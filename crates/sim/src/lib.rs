//! # wsrep-sim — a discrete-event web-service ecosystem
//!
//! The substrate the survey assumes: providers publishing services with
//! (possibly exaggerated) QoS advertisements, consumers invoking them and
//! experiencing the latent quality, a UDDI-like registry with a central
//! QoS store, SLAs, monitoring sensors and explorer agents, and the
//! mediated general-service scenario of Figure 1 B.
//!
//! * [`event`] — a small discrete-event queue driving scheduled dynamics;
//! * [`provider`] — providers with behaviour dynamics (stable, improving,
//!   degrading, oscillating, whitewashing) and advertisement honesty;
//! * [`consumer`] — consumers with preference profiles and rater
//!   behaviours (honest, ballot-stuffing, badmouthing, collusive, random);
//! * [`registry`] — the UDDI-style registry + central QoS store, with
//!   failure injection for the single-point-of-failure experiment;
//! * [`monitor`] — probing sensors and Maximilien–Singh explorer agents;
//! * [`scenario`] — the mediated (general-service) selection scenario;
//! * [`world`] — ties it together into a reproducible generated market.
//!
//! ```
//! use wsrep_sim::world::{World, WorldConfig};
//!
//! let world = World::generate(WorldConfig::small(42));
//! assert!(world.services().count() > 0);
//! ```

pub mod consumer;
pub mod event;
pub mod monitor;
pub mod provider;
pub mod registry;
pub mod scenario;
pub mod world;

pub use world::{World, WorldConfig};
