//! The two usage scenarios of Figure 1.
//!
//! **A — direct selection:** the consumer gets the result straight from
//! the web service (a weather report); selection is "mainly determined by
//! the properties of the web service itself".
//!
//! **B — mediated selection:** the web service is an intermediary (a
//! flight-booking site) to a *general service* (the flight). "The major
//! part of selecting a web service is decided by the general service
//! properties … the properties of the intermediary web service only play
//! a small part." This module models the composite interaction so
//! `exp_fig1` can measure how much of the consumer's utility each layer
//! explains, and how badly a selector that only looks at the intermediary
//! does.

use rand::Rng;
use serde::{Deserialize, Serialize};
use wsrep_core::id::ServiceId;
use wsrep_qos::metric::Metric;
use wsrep_qos::profile::QualityProfile;
use wsrep_qos::value::QosVector;

/// A general service behind an intermediary (hotel, flight, …) with
/// application-specific quality metrics.
#[derive(Debug, Clone)]
pub struct GeneralService {
    /// Identity in the general-service namespace.
    pub id: ServiceId,
    /// Latent quality over `Metric::AppSpecific(_)` facets.
    pub quality: QualityProfile,
}

/// A mediated offering: an intermediary web service brokering one general
/// service.
#[derive(Debug, Clone)]
pub struct MediatedOffer {
    /// The intermediary web service (booking site).
    pub intermediary: ServiceId,
    /// The intermediary's own technical quality (response time, …).
    pub intermediary_quality: QualityProfile,
    /// The general service actually consumed.
    pub general: GeneralService,
}

/// How strongly the general service dominates composite satisfaction in
/// scenario B. The paper's claim is that the intermediary "only plays a
/// small part"; 0.8 means 80% of the utility is the general service's.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MediationWeights {
    /// Share of composite utility attributed to the general service.
    pub general_share: f64,
}

impl Default for MediationWeights {
    fn default() -> Self {
        MediationWeights { general_share: 0.8 }
    }
}

impl MediationWeights {
    /// Weights with an explicit general-service share in `\[0, 1\]`.
    ///
    /// # Panics
    ///
    /// Panics if the share is out of range.
    pub fn new(general_share: f64) -> Self {
        assert!((0.0..=1.0).contains(&general_share), "share in [0,1]");
        MediationWeights { general_share }
    }
}

/// The outcome of one mediated interaction.
#[derive(Debug, Clone, PartialEq)]
pub struct MediatedOutcome {
    /// What the consumer observed of the intermediary's technical QoS.
    pub intermediary_observed: QosVector,
    /// What the consumer observed of the general service.
    pub general_observed: QosVector,
    /// Normalized utility contributed by the intermediary layer.
    pub intermediary_utility: f64,
    /// Normalized utility contributed by the general service.
    pub general_utility: f64,
    /// The composite satisfaction in `\[0, 1\]`.
    pub composite: f64,
}

/// Execute one mediated interaction: sample both layers and combine.
///
/// `tech_bounds` normalizes intermediary metrics; general-service facets
/// are fraction-valued (`AppSpecific` metrics live in `\[0, 1\]`).
pub fn invoke_mediated<R, F>(
    rng: &mut R,
    offer: &MediatedOffer,
    weights: MediationWeights,
    tech_bounds: F,
) -> MediatedOutcome
where
    R: Rng + ?Sized,
    F: Fn(Metric) -> (f64, f64),
{
    let intermediary_observed = offer.intermediary_quality.sample(rng);
    let general_observed = offer.general.quality.sample(rng);

    let tech_metrics: Vec<Metric> = intermediary_observed.metrics().collect();
    let intermediary_utility = if tech_metrics.is_empty() {
        0.0
    } else {
        tech_metrics
            .iter()
            .map(|&m| {
                let (lo, hi) = tech_bounds(m);
                wsrep_qos::normalize::normalize_one(
                    intermediary_observed.get(m).unwrap_or(lo),
                    lo,
                    hi,
                    m.monotonicity(),
                )
            })
            .sum::<f64>()
            / tech_metrics.len() as f64
    };

    let gen_metrics: Vec<Metric> = general_observed.metrics().collect();
    let general_utility = if gen_metrics.is_empty() {
        0.0
    } else {
        gen_metrics
            .iter()
            .map(|&m| general_observed.get(m).unwrap_or(0.0))
            .sum::<f64>()
            / gen_metrics.len() as f64
    };

    let composite = weights.general_share * general_utility
        + (1.0 - weights.general_share) * intermediary_utility;

    MediatedOutcome {
        intermediary_observed,
        general_observed,
        intermediary_utility,
        general_utility,
        composite,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn offer(tech_good: bool, general_good: bool) -> MediatedOffer {
        let (rt, rt_j) = if tech_good {
            (30.0, 2.0)
        } else {
            (700.0, 10.0)
        };
        let gq = if general_good { 0.95 } else { 0.15 };
        MediatedOffer {
            intermediary: ServiceId::new(1),
            intermediary_quality: QualityProfile::from_triples([(Metric::ResponseTime, rt, rt_j)]),
            general: GeneralService {
                id: ServiceId::new(100),
                quality: QualityProfile::from_triples([
                    (Metric::AppSpecific(0), gq, 0.02),
                    (Metric::AppSpecific(1), gq, 0.02),
                ]),
            },
        }
    }

    fn bounds(m: Metric) -> (f64, f64) {
        crate::provider::metric_range(m)
    }

    fn mean_composite(offer: &MediatedOffer, weights: MediationWeights, seed: u64) -> f64 {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..200)
            .map(|_| invoke_mediated(&mut rng, offer, weights, bounds).composite)
            .sum::<f64>()
            / 200.0
    }

    #[test]
    fn general_service_dominates_composite_satisfaction() {
        let w = MediationWeights::default();
        // Great booking site, terrible flight…
        let bad_flight = mean_composite(&offer(true, false), w, 1);
        // …versus sluggish booking site, great flight.
        let good_flight = mean_composite(&offer(false, true), w, 2);
        assert!(
            good_flight > bad_flight + 0.3,
            "good general service must dominate: {good_flight} vs {bad_flight}"
        );
    }

    #[test]
    fn intermediary_still_plays_a_small_part() {
        let w = MediationWeights::default();
        let fast = mean_composite(&offer(true, true), w, 3);
        let slow = mean_composite(&offer(false, true), w, 4);
        assert!(fast > slow, "better intermediary still helps");
        assert!(fast - slow < 0.3, "but only a small part: {}", fast - slow);
    }

    #[test]
    fn weights_shift_the_attribution() {
        let tech_only = MediationWeights::new(0.0);
        let fast = mean_composite(&offer(true, false), tech_only, 5);
        let slow = mean_composite(&offer(false, true), tech_only, 6);
        assert!(fast > slow, "with share 0 the intermediary decides");
    }

    #[test]
    fn outcome_fields_are_bounded() {
        let mut rng = StdRng::seed_from_u64(7);
        let out = invoke_mediated(
            &mut rng,
            &offer(true, true),
            MediationWeights::default(),
            bounds,
        );
        for v in [out.intermediary_utility, out.general_utility, out.composite] {
            assert!((0.0..=1.0).contains(&v));
        }
    }

    #[test]
    #[should_panic(expected = "share in [0,1]")]
    fn invalid_share_panics() {
        MediationWeights::new(1.5);
    }
}
