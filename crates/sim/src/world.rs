//! The generated market: providers, services, consumers, registry.
//!
//! A [`World`] is a reproducible (seeded) instance of the ecosystem all
//! experiments run against. It owns the ground truth — latent qualities,
//! behaviour dynamics, honest/dishonest populations — and exposes the
//! operations a selection loop needs: search, invoke, report, step.

use crate::consumer::{Consumer, RaterBehavior};
use crate::provider::{metric_range, Behavior, Provider, Service};
use crate::registry::{Listing, UddiRegistry};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::{BTreeMap, BTreeSet};
use wsrep_core::feedback::Feedback;
use wsrep_core::id::{AgentId, ProviderId, ServiceId};
use wsrep_core::time::Time;
use wsrep_qos::metric::Metric;
use wsrep_qos::preference::Preferences;
use wsrep_qos::profile::QualityProfile;
use wsrep_qos::value::QosVector;

/// Generation parameters for a market.
#[derive(Debug, Clone)]
pub struct WorldConfig {
    /// Number of providers.
    pub providers: usize,
    /// Services published per provider (all in category 0).
    pub services_per_provider: usize,
    /// Number of consumers.
    pub consumers: usize,
    /// QoS metrics in play.
    pub metrics: Vec<Metric>,
    /// Consumer preference heterogeneity in `\[0, 1\]` (0 = identical).
    pub preference_heterogeneity: f64,
    /// Fraction of providers that exaggerate their advertisements.
    pub exaggerating_fraction: f64,
    /// How much exaggerators inflate (0.4 = claims 40% better).
    pub exaggeration_amount: f64,
    /// Fraction of providers with non-stable quality dynamics.
    pub dynamic_fraction: f64,
    /// Width of the quality distribution: 1 = levels span the full
    /// `\[0, 1\]` range, 0.25 = a market of near-substitutes clustered
    /// around the middle. Narrow markets are where newcomer priors and
    /// whitewashing bite.
    pub quality_spread: f64,
    /// How strongly a provider's services share a common quality level
    /// (`0` = independent per service/metric, `1` = fully determined by
    /// the provider's skill). Section 5's provider-bootstrap argument
    /// only has teeth when this is positive.
    pub provider_quality_correlation: f64,
    /// Fraction of consumers with a dishonest rater behaviour.
    pub dishonest_fraction: f64,
    /// The dishonest behaviour to install (targets filled in generation).
    pub dishonest_behavior: DishonestKind,
    /// RNG seed.
    pub seed: u64,
}

/// Which unfair-rating population to generate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DishonestKind {
    /// Ballot-stuff the worst-quality provider (promotion attack).
    BallotStuffWorst,
    /// Badmouth the best-quality provider (demotion attack).
    BadmouthBest,
    /// Collude for the worst provider, trash everyone else.
    ColludeWorst,
    /// Pure noise.
    Random,
}

impl WorldConfig {
    /// A small, honest, stable market — the default experiment base.
    pub fn small(seed: u64) -> Self {
        WorldConfig {
            providers: 10,
            services_per_provider: 2,
            consumers: 30,
            metrics: vec![
                Metric::ResponseTime,
                Metric::Availability,
                Metric::Accuracy,
                Metric::Price,
            ],
            preference_heterogeneity: 0.3,
            exaggerating_fraction: 0.0,
            exaggeration_amount: 0.0,
            dynamic_fraction: 0.0,
            quality_spread: 1.0,
            provider_quality_correlation: 0.0,
            dishonest_fraction: 0.0,
            dishonest_behavior: DishonestKind::Random,
            seed,
        }
    }
}

/// The generated market.
#[derive(Debug)]
pub struct World {
    /// Providers by id.
    pub providers: BTreeMap<ProviderId, Provider>,
    services: BTreeMap<ServiceId, Service>,
    /// Consumers in id order.
    pub consumers: Vec<Consumer>,
    /// The UDDI registry + central QoS store.
    pub registry: UddiRegistry,
    rng: StdRng,
    now: Time,
    metrics: Vec<Metric>,
}

impl World {
    /// Generate a market from a config.
    pub fn generate(config: WorldConfig) -> Self {
        let mut rng = StdRng::seed_from_u64(config.seed);
        let mut providers = BTreeMap::new();
        let mut services = BTreeMap::new();
        let mut registry = UddiRegistry::new();
        let mut service_seq = 0u64;

        let n_exaggerating = (config.providers as f64 * config.exaggerating_fraction) as usize;
        let n_dynamic = (config.providers as f64 * config.dynamic_fraction) as usize;

        for p in 0..config.providers {
            let pid = ProviderId::new(p as u64);
            let skill: f64 = rng.gen();
            let exaggeration = if p < n_exaggerating {
                config.exaggeration_amount
            } else {
                0.0
            };
            let behavior = if p < n_dynamic {
                match p % 3 {
                    0 => Behavior::Degrading { rate: 0.005 },
                    1 => Behavior::Improving { rate: 0.005 },
                    _ => Behavior::Oscillating {
                        period: 40,
                        amplitude: 0.02,
                    },
                }
            } else {
                Behavior::Stable
            };
            let mut provider = Provider {
                id: pid,
                services: Vec::new(),
                behavior,
                exaggeration,
            };
            for _ in 0..config.services_per_provider {
                let sid = ServiceId::new(service_seq);
                service_seq += 1;
                let quality = random_quality(
                    &mut rng,
                    &config.metrics,
                    skill,
                    config.provider_quality_correlation,
                    config.quality_spread,
                );
                let advertised = provider.advertise(&quality);
                provider.services.push(sid);
                services.insert(
                    sid,
                    Service {
                        id: sid,
                        provider: pid,
                        category: 0,
                        quality,
                        advertised: advertised.clone(),
                    },
                );
                registry
                    .publish(Listing {
                        service: sid,
                        provider: pid,
                        category: 0,
                        advertised,
                    })
                    .expect("fresh registry is up during generation");
            }
            providers.insert(pid, provider);
        }

        // Attack targets depend on generated quality.
        let mut world = World {
            providers,
            services,
            consumers: Vec::new(),
            registry,
            rng,
            now: Time::ZERO,
            metrics: config.metrics.clone(),
        };
        let uniform = Preferences::uniform(config.metrics.clone());
        let best_provider = world.best_provider_by(&uniform);
        let worst_provider = world.worst_provider_by(&uniform);

        let n_dishonest = (config.consumers as f64 * config.dishonest_fraction) as usize;
        for c in 0..config.consumers {
            let id = AgentId::new(1000 + c as u64);
            let prefs = Preferences::sample(
                &mut world.rng,
                config.metrics.clone(),
                config.preference_heterogeneity,
            );
            let behavior = if c < n_dishonest {
                match config.dishonest_behavior {
                    DishonestKind::BallotStuffWorst => RaterBehavior::BallotStuffer {
                        targets: BTreeSet::from([worst_provider]),
                    },
                    DishonestKind::BadmouthBest => RaterBehavior::BadMouther {
                        targets: BTreeSet::from([best_provider]),
                    },
                    DishonestKind::ColludeWorst => RaterBehavior::Collusive {
                        ring: BTreeSet::from([worst_provider]),
                    },
                    DishonestKind::Random => RaterBehavior::Random,
                }
            } else {
                RaterBehavior::Honest
            };
            world.consumers.push(Consumer {
                id,
                prefs,
                behavior,
            });
        }
        world
    }

    /// The global normalization bounds (canonical metric ranges).
    pub fn bounds(&self) -> impl Fn(Metric) -> (f64, f64) + Copy {
        metric_range
    }

    /// Current simulation time.
    pub fn now(&self) -> Time {
        self.now
    }

    /// All services.
    pub fn services(&self) -> impl Iterator<Item = &Service> {
        self.services.values()
    }

    /// One service.
    pub fn service(&self, id: ServiceId) -> Option<&Service> {
        self.services.get(&id)
    }

    /// The provider of a service.
    pub fn provider_of(&self, id: ServiceId) -> Option<ProviderId> {
        self.services.get(&id).map(|s| s.provider)
    }

    /// The QoS metrics this market uses.
    pub fn metrics(&self) -> &[Metric] {
        &self.metrics
    }

    /// Expected (ground-truth) utility of a service for a consumer: the
    /// consumer's preference-weighted normalized latent means.
    pub fn expected_utility(&self, consumer: &Consumer, service: ServiceId) -> f64 {
        let Some(svc) = self.services.get(&service) else {
            return 0.0;
        };
        consumer
            .prefs
            .utility_raw(&svc.quality.means(), metric_range)
    }

    /// The oracle-best service for a consumer (maximal expected utility).
    pub fn oracle_best(&self, consumer: &Consumer) -> Option<ServiceId> {
        self.services.keys().copied().max_by(|&a, &b| {
            self.expected_utility(consumer, a)
                .partial_cmp(&self.expected_utility(consumer, b))
                .unwrap_or(std::cmp::Ordering::Equal)
        })
    }

    /// Provider whose mean service utility under `prefs` is highest.
    pub fn best_provider_by(&self, prefs: &Preferences) -> ProviderId {
        self.rank_providers(prefs)
            .first()
            .map(|&(p, _)| p)
            .unwrap_or(ProviderId::new(0))
    }

    /// Provider whose mean service utility under `prefs` is lowest.
    pub fn worst_provider_by(&self, prefs: &Preferences) -> ProviderId {
        self.rank_providers(prefs)
            .last()
            .map(|&(p, _)| p)
            .unwrap_or(ProviderId::new(0))
    }

    fn rank_providers(&self, prefs: &Preferences) -> Vec<(ProviderId, f64)> {
        let mut scores: Vec<(ProviderId, f64)> = self
            .providers
            .values()
            .map(|p| {
                let mean = if p.services.is_empty() {
                    0.0
                } else {
                    p.services
                        .iter()
                        .filter_map(|s| self.services.get(s))
                        .map(|s| prefs.utility_raw(&s.quality.means(), metric_range))
                        .sum::<f64>()
                        / p.services.len() as f64
                };
                (p.id, mean)
            })
            .collect();
        scores.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
        scores
    }

    /// Invoke a service: draw one observation from its latent quality.
    pub fn invoke(&mut self, service: ServiceId) -> Option<QosVector> {
        let svc = self.services.get(&service)?;
        Some(svc.quality.sample(&mut self.rng))
    }

    /// Invoke and have the consumer file its (possibly dishonest) report.
    /// Returns `(observed, feedback)`.
    pub fn invoke_and_report(
        &mut self,
        consumer_idx: usize,
        service: ServiceId,
    ) -> Option<(QosVector, Feedback)> {
        let provider = self.provider_of(service)?;
        let observed = self.invoke(service)?;
        let consumer = self.consumers.get(consumer_idx)?.clone();
        let fb = consumer.report(
            &mut self.rng,
            service,
            provider,
            &observed,
            metric_range,
            self.now,
        );
        Some((observed, fb))
    }

    /// Advance one round: provider dynamics update every service quality.
    pub fn step(&mut self) {
        self.now = self.now.next();
        let ids: Vec<ServiceId> = self.services.keys().copied().collect();
        for sid in ids {
            let provider = {
                let svc = &self.services[&sid];
                self.providers[&svc.provider].clone()
            };
            let svc = self.services.get_mut(&sid).expect("known id");
            provider.step_quality(&mut svc.quality, self.now);
        }
    }

    /// Direct RNG access for experiment drivers that need extra draws
    /// without carrying a second generator.
    pub fn rng(&mut self) -> &mut StdRng {
        &mut self.rng
    }

    /// Replace a service's latent quality in place (fault/repair
    /// injection: break a service, silently fix it later). The identity
    /// and advertisement are untouched — consumers only find out by
    /// invoking. Returns `false` for unknown services.
    pub fn set_service_quality(&mut self, service: ServiceId, quality: QualityProfile) -> bool {
        match self.services.get_mut(&service) {
            Some(svc) => {
                svc.quality = quality;
                true
            }
            None => false,
        }
    }

    /// Launch a genuinely new service for `provider`: a "v2" of the
    /// provider's best current service, `improvement` better (normalized
    /// drift), published under a fresh id. Returns the new id, or `None`
    /// when the provider is unknown, has no services, or the registry is
    /// down. This is what makes optimistic newcomer priors valuable —
    /// and what whitewashers mimic.
    pub fn launch_improved(&mut self, provider: ProviderId, improvement: f64) -> Option<ServiceId> {
        if !self.registry.is_up() {
            return None;
        }
        let prefs = Preferences::uniform(self.metrics.clone());
        let best = self
            .providers
            .get(&provider)?
            .services
            .iter()
            .copied()
            .max_by(|&a, &b| {
                let ua = self
                    .services
                    .get(&a)
                    .map(|s| prefs.utility_raw(&s.quality.means(), metric_range))
                    .unwrap_or(0.0);
                let ub = self
                    .services
                    .get(&b)
                    .map(|s| prefs.utility_raw(&s.quality.means(), metric_range))
                    .unwrap_or(0.0);
                ua.partial_cmp(&ub).unwrap_or(std::cmp::Ordering::Equal)
            })?;
        let template = self.services.get(&best)?.clone();
        let mut quality = template.quality.clone();
        quality.drift(improvement);
        let new_id = ServiceId::new(
            self.services
                .keys()
                .map(|s| s.raw())
                .max()
                .map(|m| m + 1)
                .unwrap_or(0),
        );
        let advertised = self.providers[&provider].advertise(&quality);
        self.services.insert(
            new_id,
            Service {
                id: new_id,
                provider,
                category: template.category,
                quality,
                advertised: advertised.clone(),
            },
        );
        self.providers
            .get_mut(&provider)
            .expect("checked above")
            .services
            .push(new_id);
        self.registry
            .publish(crate::registry::Listing {
                service: new_id,
                provider,
                category: template.category,
                advertised,
            })
            .expect("registry verified up above");
        Some(new_id)
    }

    /// **Whitewash** a service: the provider withdraws it and republishes
    /// the *same* latent quality under a fresh identity, shedding its
    /// accumulated reputation. Returns the new id, or `None` when the
    /// service does not exist or the registry is down (re-listing needs
    /// the registry). This is the identity-switching attack Sporas was
    /// designed to make unprofitable.
    pub fn whitewash(&mut self, service: ServiceId) -> Option<ServiceId> {
        if !self.registry.is_up() {
            return None;
        }
        let old = self.services.get(&service)?.clone();
        let new_id = ServiceId::new(
            self.services
                .keys()
                .map(|s| s.raw())
                .max()
                .map(|m| m + 1)
                .unwrap_or(0),
        );
        // A whitewashed service may already be unlisted (withdrawn during
        // an earlier outage); only a down registry would abort the attack,
        // and that was ruled out above.
        match self.registry.withdraw(service) {
            Ok(()) | Err(crate::registry::RegistryError::NotFound) => {}
            Err(e) => unreachable!("registry verified up above: {e}"),
        }
        self.services.remove(&service);
        if let Some(p) = self.providers.get_mut(&old.provider) {
            p.services.retain(|&s| s != service);
            p.services.push(new_id);
        }
        let advertised = old.advertised.clone();
        self.services.insert(
            new_id,
            Service {
                id: new_id,
                provider: old.provider,
                category: old.category,
                quality: old.quality,
                advertised: advertised.clone(),
            },
        );
        self.registry
            .publish(crate::registry::Listing {
                service: new_id,
                provider: old.provider,
                category: old.category,
                advertised,
            })
            .expect("registry verified up above");
        Some(new_id)
    }
}

/// Draw a latent quality. Each metric's *level* in `\[0, 1\]` (1 = best in
/// the metric's oriented range) blends the provider's skill with
/// independent per-metric noise according to `correlation`.
fn random_quality<R: Rng + ?Sized>(
    rng: &mut R,
    metrics: &[Metric],
    skill: f64,
    correlation: f64,
    spread: f64,
) -> QualityProfile {
    use wsrep_qos::metric::Monotonicity;
    let corr = correlation.clamp(0.0, 1.0);
    let spread = spread.clamp(0.0, 1.0);
    let mut q = QualityProfile::new();
    for &m in metrics {
        let (lo, hi) = metric_range(m);
        let noise: f64 = rng.gen();
        let raw = (0.5 + corr * (skill - 0.5) + (1.0 - corr) * (noise - 0.5)).clamp(0.0, 1.0);
        let level = 0.5 + spread * (raw - 0.5);
        let (worst, best) = match m.monotonicity() {
            Monotonicity::HigherBetter => (lo, hi),
            Monotonicity::LowerBetter => (hi, lo),
        };
        let mean = worst + level * (best - worst);
        let jitter = (hi - lo) * 0.03;
        q.set(m, mean, jitter);
    }
    q
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_reproducible() {
        let a = World::generate(WorldConfig::small(7));
        let b = World::generate(WorldConfig::small(7));
        for (sa, sb) in a.services().zip(b.services()) {
            assert_eq!(sa.quality, sb.quality);
        }
        for (ca, cb) in a.consumers.iter().zip(&b.consumers) {
            assert_eq!(ca.prefs, cb.prefs);
        }
    }

    #[test]
    fn population_counts_match_config() {
        let w = World::generate(WorldConfig::small(1));
        assert_eq!(w.providers.len(), 10);
        assert_eq!(w.services().count(), 20);
        assert_eq!(w.consumers.len(), 30);
        assert_eq!(w.registry.len(), 20);
    }

    #[test]
    fn oracle_best_maximizes_expected_utility() {
        let w = World::generate(WorldConfig::small(2));
        let c = &w.consumers[0];
        let best = w.oracle_best(c).unwrap();
        let best_u = w.expected_utility(c, best);
        for s in w.services() {
            assert!(w.expected_utility(c, s.id) <= best_u + 1e-12);
        }
    }

    #[test]
    fn exaggerators_advertise_better_than_truth() {
        let mut cfg = WorldConfig::small(3);
        cfg.exaggerating_fraction = 0.5;
        cfg.exaggeration_amount = 0.4;
        let w = World::generate(cfg);
        let mut found_gap = false;
        for s in w.services() {
            let truth = s.quality.means().get(Metric::ResponseTime).unwrap();
            let claim = s.advertised.get(Metric::ResponseTime).unwrap();
            if (claim - truth).abs() > 1.0 {
                assert!(claim < truth, "claims are better (lower RT)");
                found_gap = true;
            }
        }
        assert!(found_gap, "some provider must exaggerate");
    }

    #[test]
    fn dishonest_fraction_creates_attackers() {
        let mut cfg = WorldConfig::small(4);
        cfg.dishonest_fraction = 0.4;
        cfg.dishonest_behavior = DishonestKind::BadmouthBest;
        let w = World::generate(cfg);
        let dishonest = w.consumers.iter().filter(|c| !c.is_honest()).count();
        assert_eq!(dishonest, 12);
    }

    #[test]
    fn invoke_and_report_round_trips() {
        let mut w = World::generate(WorldConfig::small(5));
        let sid = w.services().next().unwrap().id;
        let (observed, fb) = w.invoke_and_report(0, sid).unwrap();
        assert_eq!(fb.subject, sid.into());
        assert!(!observed.is_empty());
        assert!((0.0..=1.0).contains(&fb.score));
    }

    #[test]
    fn dynamics_change_quality_over_time() {
        let mut cfg = WorldConfig::small(6);
        cfg.dynamic_fraction = 1.0;
        let mut w = World::generate(cfg);
        let sid = w.services().next().unwrap().id;
        let before = w.service(sid).unwrap().quality.clone();
        for _ in 0..30 {
            w.step();
        }
        let after = w.service(sid).unwrap().quality.clone();
        assert_ne!(before, after);
        assert_eq!(w.now(), Time::new(30));
    }

    #[test]
    fn stable_world_quality_is_constant() {
        let mut w = World::generate(WorldConfig::small(8));
        let sid = w.services().next().unwrap().id;
        let before = w.service(sid).unwrap().quality.clone();
        for _ in 0..10 {
            w.step();
        }
        assert_eq!(before, w.service(sid).unwrap().quality.clone());
    }

    #[test]
    fn whitewashing_reissues_identity_with_same_quality() {
        let mut w = World::generate(WorldConfig::small(21));
        let old = w.services().next().unwrap().id;
        let provider = w.provider_of(old).unwrap();
        let quality = w.service(old).unwrap().quality.clone();
        let new = w.whitewash(old).unwrap();
        assert_ne!(old, new);
        assert!(w.service(old).is_none());
        assert_eq!(w.service(new).unwrap().quality, quality);
        assert_eq!(w.provider_of(new), Some(provider));
        assert!(w.providers[&provider].services.contains(&new));
        assert!(!w.providers[&provider].services.contains(&old));
        // Registry reflects the swap.
        assert!(w.registry.listing(old).is_none());
        assert!(w.registry.listing(new).is_some());
        // Service count preserved.
        assert_eq!(w.services().count(), 20);
    }

    #[test]
    fn narrow_spread_clusters_quality_levels() {
        let mut wide_cfg = WorldConfig::small(25);
        wide_cfg.quality_spread = 1.0;
        let mut narrow_cfg = WorldConfig::small(25);
        narrow_cfg.quality_spread = 0.2;
        let prefs = Preferences::uniform(wide_cfg.metrics.clone());
        let utilities = |w: &World| -> Vec<f64> {
            w.services()
                .map(|s| prefs.utility_raw(&s.quality.means(), metric_range))
                .collect()
        };
        let spread = |us: &[f64]| {
            us.iter().cloned().fold(f64::MIN, f64::max)
                - us.iter().cloned().fold(f64::MAX, f64::min)
        };
        let wide = spread(&utilities(&World::generate(wide_cfg)));
        let narrow = spread(&utilities(&World::generate(narrow_cfg)));
        assert!(narrow < wide / 2.0, "narrow {narrow} vs wide {wide}");
    }

    #[test]
    fn launching_creates_an_improved_v2() {
        let mut w = World::generate(WorldConfig::small(23));
        let provider = *w.providers.keys().next().unwrap();
        let prefs = Preferences::uniform(w.metrics().to_vec());
        let before_best: f64 = w.providers[&provider]
            .services
            .iter()
            .map(|&s| prefs.utility_raw(&w.service(s).unwrap().quality.means(), metric_range))
            .fold(f64::MIN, f64::max);
        let v2 = w.launch_improved(provider, 0.1).unwrap();
        let v2_utility = prefs.utility_raw(&w.service(v2).unwrap().quality.means(), metric_range);
        assert!(v2_utility >= before_best, "{v2_utility} >= {before_best}");
        assert_eq!(w.provider_of(v2), Some(provider));
        assert!(w.registry.listing(v2).is_some());
        assert_eq!(w.services().count(), 21);
    }

    #[test]
    fn launching_needs_a_known_provider_and_live_registry() {
        let mut w = World::generate(WorldConfig::small(24));
        assert_eq!(w.launch_improved(ProviderId::new(999), 0.1), None);
        w.registry.fail();
        let p = *w.providers.keys().next().unwrap();
        assert_eq!(w.launch_improved(p, 0.1), None);
    }

    #[test]
    fn whitewashing_needs_a_live_registry() {
        let mut w = World::generate(WorldConfig::small(22));
        let old = w.services().next().unwrap().id;
        w.registry.fail();
        assert_eq!(w.whitewash(old), None);
        w.registry.recover();
        assert!(w.whitewash(old).is_some());
    }

    #[test]
    fn best_and_worst_provider_differ_in_utility() {
        let w = World::generate(WorldConfig::small(9));
        let prefs = Preferences::uniform(w.metrics().to_vec());
        let best = w.best_provider_by(&prefs);
        let worst = w.worst_provider_by(&prefs);
        assert_ne!(best, worst);
    }
}
