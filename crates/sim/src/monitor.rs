//! Monitoring: probing sensors and explorer agents.
//!
//! Figure 2's remaining information sources. Sensors implement Truong et
//! al.-style per-service QoS monitoring — accurate but, as the paper
//! says, "very costly since each web service needs a sensor to monitor
//! it". Explorer agents implement the Maximilien–Singh scheme: the central
//! node probes only the services with *negative* reputation so improved
//! services can re-enter the market.

use rand::Rng;
use wsrep_core::id::ServiceId;
use wsrep_qos::profile::QualityProfile;
use wsrep_qos::value::QosVector;

/// Cost/accounting for a probing fleet.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ProbeStats {
    /// Probes performed.
    pub probes: u64,
    /// Cost units spent (probes × unit cost).
    pub cost: f64,
}

/// A fleet of monitoring sensors with a unit cost per probe.
#[derive(Debug, Clone)]
pub struct SensorFleet {
    unit_cost: f64,
    stats: ProbeStats,
}

impl SensorFleet {
    /// A fleet whose probes cost `unit_cost` each.
    pub fn new(unit_cost: f64) -> Self {
        SensorFleet {
            unit_cost,
            stats: ProbeStats::default(),
        }
    }

    /// Probe a service: draws a real observation from its latent quality
    /// and pays the unit cost.
    pub fn probe<R: Rng + ?Sized>(
        &mut self,
        rng: &mut R,
        _service: ServiceId,
        quality: &QualityProfile,
    ) -> QosVector {
        self.stats.probes += 1;
        self.stats.cost += self.unit_cost;
        quality.sample(rng)
    }

    /// Accounting so far.
    pub fn stats(&self) -> ProbeStats {
        self.stats
    }
}

/// The explorer-agent policy: which services to probe this round.
///
/// Given each service's current reputation (or `None` when unknown),
/// selects those below `threshold` — Maximilien & Singh's negative-
/// reputation set — capped at `budget` probes per round.
pub fn explorer_targets<I>(reputations: I, threshold: f64, budget: usize) -> Vec<ServiceId>
where
    I: IntoIterator<Item = (ServiceId, Option<f64>)>,
{
    let mut targets: Vec<(ServiceId, f64)> = reputations
        .into_iter()
        .filter_map(|(s, rep)| rep.map(|r| (s, r)))
        .filter(|&(_, r)| r < threshold)
        .collect();
    // Worst first: the services most in need of a second chance.
    targets.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal));
    targets.truncate(budget);
    targets.into_iter().map(|(s, _)| s).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use wsrep_qos::metric::Metric;

    #[test]
    fn probes_cost_and_observe() {
        let mut fleet = SensorFleet::new(2.5);
        let mut rng = StdRng::seed_from_u64(1);
        let q = QualityProfile::from_triples([(Metric::ResponseTime, 100.0, 5.0)]);
        let obs = fleet.probe(&mut rng, ServiceId::new(1), &q);
        assert!(obs.contains(Metric::ResponseTime));
        assert_eq!(fleet.stats().probes, 1);
        assert_eq!(fleet.stats().cost, 2.5);
        fleet.probe(&mut rng, ServiceId::new(2), &q);
        assert_eq!(fleet.stats().cost, 5.0);
    }

    #[test]
    fn explorer_picks_only_negative_reputation_services() {
        let reps = [
            (ServiceId::new(1), Some(0.9)),
            (ServiceId::new(2), Some(0.2)),
            (ServiceId::new(3), Some(0.35)),
            (ServiceId::new(4), None), // unknown: not explored
        ];
        let targets = explorer_targets(reps, 0.4, 10);
        assert_eq!(targets, vec![ServiceId::new(2), ServiceId::new(3)]);
    }

    #[test]
    fn explorer_budget_caps_and_prioritizes_worst() {
        let reps = [
            (ServiceId::new(1), Some(0.30)),
            (ServiceId::new(2), Some(0.10)),
            (ServiceId::new(3), Some(0.20)),
        ];
        let targets = explorer_targets(reps, 0.4, 2);
        assert_eq!(targets, vec![ServiceId::new(2), ServiceId::new(3)]);
    }

    #[test]
    fn no_negative_reputation_no_probes() {
        let reps = [(ServiceId::new(1), Some(0.8))];
        assert!(explorer_targets(reps, 0.4, 5).is_empty());
    }
}
