//! A small discrete-event queue.
//!
//! Generic over the event payload; pops are ordered by time, with FIFO
//! tie-breaking at equal times so runs are deterministic.

use std::cmp::Ordering;
use std::collections::BinaryHeap;
use wsrep_core::time::Time;

#[derive(Debug)]
struct Scheduled<E> {
    at: Time,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Scheduled<E> {}
impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want earliest first.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A time-ordered event queue.
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Scheduled<E>>,
    seq: u64,
    now: Time,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Empty queue at time zero.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            seq: 0,
            now: Time::ZERO,
        }
    }

    /// Schedule an event at an absolute time.
    ///
    /// # Panics
    ///
    /// Panics when scheduling in the past (before the last popped time).
    pub fn schedule(&mut self, at: Time, event: E) {
        assert!(at >= self.now, "cannot schedule into the past");
        self.heap.push(Scheduled {
            at,
            seq: self.seq,
            event,
        });
        self.seq += 1;
    }

    /// Schedule an event `delay` rounds from the current time.
    pub fn schedule_in(&mut self, delay: u64, event: E) {
        self.schedule(self.now + delay, event);
    }

    /// Pop the earliest event, advancing the clock to its time.
    pub fn pop(&mut self) -> Option<(Time, E)> {
        let s = self.heap.pop()?;
        self.now = s.at;
        Some((s.at, s.event))
    }

    /// Pop every event due at or before `until`, advancing the clock to
    /// `until` even when nothing fires.
    pub fn pop_until(&mut self, until: Time) -> Vec<(Time, E)> {
        let mut out = Vec::new();
        while let Some(top) = self.heap.peek() {
            if top.at > until {
                break;
            }
            out.push(self.pop().expect("peeked"));
        }
        self.now = self.now.max(until);
        out
    }

    /// The queue's current time (time of the last pop).
    pub fn now(&self) -> Time {
        self.now
    }

    /// Pending event count.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether nothing is pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_pop_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(Time::new(5), "late");
        q.schedule(Time::new(1), "early");
        q.schedule(Time::new(3), "mid");
        let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec!["early", "mid", "late"]);
        assert_eq!(q.now(), Time::new(5));
    }

    #[test]
    fn equal_times_are_fifo() {
        let mut q = EventQueue::new();
        q.schedule(Time::new(2), "first");
        q.schedule(Time::new(2), "second");
        assert_eq!(q.pop().unwrap().1, "first");
        assert_eq!(q.pop().unwrap().1, "second");
    }

    #[test]
    fn pop_until_takes_only_due_events() {
        let mut q = EventQueue::new();
        q.schedule(Time::new(1), 1);
        q.schedule(Time::new(2), 2);
        q.schedule(Time::new(9), 9);
        let due = q.pop_until(Time::new(5));
        assert_eq!(due.len(), 2);
        assert_eq!(q.len(), 1);
        assert_eq!(q.now(), Time::new(5));
    }

    #[test]
    fn schedule_in_is_relative() {
        let mut q = EventQueue::new();
        q.schedule(Time::new(4), "a");
        q.pop();
        q.schedule_in(3, "b");
        assert_eq!(q.pop().unwrap().0, Time::new(7));
    }

    #[test]
    #[should_panic(expected = "cannot schedule into the past")]
    fn scheduling_into_the_past_panics() {
        let mut q = EventQueue::new();
        q.schedule(Time::new(5), "x");
        q.pop();
        q.schedule(Time::new(1), "too late");
    }
}
