//! Golden-file test pinning the version-1 on-disk layout.
//!
//! The journal must stay readable across releases, so the exact bytes of
//! the segment header and of framed records are part of the public
//! contract. If this test fails, the change broke compatibility with
//! every journal already on disk — either revert it, or bump
//! `FORMAT_VERSION` and add an upgrade path; **never** regenerate the
//! golden file to paper over an accidental layout change.
//!
//! (Deliberate, version-bumped regeneration:
//! `WSREP_UPDATE_GOLDEN=1 cargo test -p wsrep-journal --test golden`.)

use std::fmt::Write as _;
use wsrep_core::feedback::Feedback;
use wsrep_core::id::{AgentId, ProviderId, ServiceId};
use wsrep_core::time::Time;
use wsrep_journal::frame::write_frame;
use wsrep_journal::segment::segment_header;
use wsrep_journal::JournalRecord;
use wsrep_qos::metric::Metric;
use wsrep_qos::value::QosVector;
use wsrep_sim::registry::Listing;

fn golden_records() -> Vec<JournalRecord> {
    vec![
        // A feedback report exercising every field: rater, service
        // subject, score, time, observed QoS, facet rating.
        JournalRecord::Feedback(
            Feedback::scored(
                AgentId::new(0x0102030405060708),
                ServiceId::new(42),
                0.75,
                Time::new(1000),
            )
            .with_observed(QosVector::from_pairs([
                (Metric::ResponseTime, 250.0),
                (Metric::AppSpecific(7), 3.5),
            ]))
            .with_facet(Metric::Accuracy, 0.5),
        ),
        // A provider-subject feedback (distinct subject tag).
        JournalRecord::Feedback(Feedback::scored(
            AgentId::new(1),
            ProviderId::new(2),
            1.0,
            Time::ZERO,
        )),
        JournalRecord::Publish(Listing {
            service: ServiceId::new(7),
            provider: ProviderId::new(3),
            category: 0xDEAD,
            advertised: QosVector::from_pairs([
                (Metric::Price, 9.99),
                (Metric::Availability, 0.999),
            ]),
        }),
        JournalRecord::Deregister(ServiceId::new(7)),
    ]
}

fn hex(bytes: &[u8]) -> String {
    let mut out = String::with_capacity(bytes.len() * 2);
    for b in bytes {
        write!(out, "{b:02x}").unwrap();
    }
    out
}

fn render() -> String {
    let mut out = String::new();
    out.push_str("# wsrep-journal on-disk format v1 — golden bytes, do not edit\n");
    out.push_str(&format!(
        "segment_header {}\n",
        hex(&segment_header(0x1122334455667788))
    ));
    for (i, record) in golden_records().iter().enumerate() {
        let mut framed = Vec::new();
        write_frame(&mut framed, &record.to_bytes());
        out.push_str(&format!("record_{i} {}\n", hex(&framed)));
    }
    out
}

#[test]
fn on_disk_record_format_is_pinned() {
    let rendered = render();
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/data/record_v1.hex");
    if std::env::var_os("WSREP_UPDATE_GOLDEN").is_some() {
        std::fs::write(path, &rendered).expect("write golden file");
        return;
    }
    let expected = include_str!("data/record_v1.hex");
    assert_eq!(
        rendered, expected,
        "on-disk layout drifted from the version-1 golden bytes; \
         this breaks every journal already on disk"
    );
}

#[test]
fn golden_bytes_still_decode_to_the_same_records() {
    // The reverse direction: the pinned hex must decode to the same
    // logical records, so old journals stay readable.
    let expected = golden_records();
    for (i, line) in include_str!("data/record_v1.hex")
        .lines()
        .filter(|l| l.starts_with("record_"))
        .enumerate()
    {
        let hex_bytes = line.split_whitespace().nth(1).expect("hex column");
        let bytes: Vec<u8> = (0..hex_bytes.len())
            .step_by(2)
            .map(|j| u8::from_str_radix(&hex_bytes[j..j + 2], 16).unwrap())
            .collect();
        // Skip the 8-byte frame header (len + crc) to reach the payload.
        let record = JournalRecord::decode(&bytes[8..]).expect("golden payload decodes");
        assert_eq!(record, expected[i], "record_{i}");
    }
}
