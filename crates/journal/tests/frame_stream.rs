//! `split_frame` as a *streaming* decoder: property tests proving that
//! how bytes arrive — one at a time, in random chunks, or all at once —
//! never changes what a stream parser concludes.
//!
//! The wire client and the replication pull loop both sit in a loop of
//! "`split_frame`, and on `Incomplete` read more bytes". That loop is
//! only sound if classification is **monotone across chunk boundaries**:
//! `Incomplete` may progress to `Frame` or `Corrupt` as bytes arrive
//! (that is the protocol working), but a decision, once reached, must
//! never flip — a prefix judged `Corrupt` must stay corrupt under any
//! extension, a complete `Frame` must keep the same length, and two
//! decoders fed the same bytes under different chunkings must extract
//! identical frame sequences and identical terminal states.

use proptest::prelude::*;
use wsrep_journal::frame::{split_frame, write_frame, FrameSplit, FRAME_HEADER_LEN};

/// What a streaming decode of a whole byte sequence concluded.
#[derive(Debug, Clone, PartialEq, Eq)]
struct StreamOutcome {
    /// Every complete frame payload, in order.
    payloads: Vec<Vec<u8>>,
    /// True if the decoder hit `Corrupt` (it stops there); false means
    /// it ended waiting for more bytes (`Incomplete`, possibly empty).
    corrupt: bool,
    /// Bytes consumed by complete frames when the decode ended.
    consumed: usize,
}

/// Run the client/replica receive loop over `stream`, fed in `chunks`
/// pieces (chunk lengths are clamped to the bytes remaining; leftover
/// bytes after the last chunk arrive as one final chunk).
fn drive(stream: &[u8], chunks: &[usize]) -> StreamOutcome {
    let mut buf: Vec<u8> = Vec::new();
    let mut pos = 0usize;
    let mut fed = 0usize;
    let mut payloads = Vec::new();
    let feed_plan = chunks
        .iter()
        .copied()
        .chain(std::iter::once(stream.len()))
        .collect::<Vec<_>>();
    for take in feed_plan {
        let take = take.min(stream.len() - fed);
        buf.extend_from_slice(&stream[fed..fed + take]);
        fed += take;
        loop {
            match split_frame(&buf[pos..]) {
                FrameSplit::Frame { frame_len } => {
                    payloads.push(buf[pos + FRAME_HEADER_LEN..pos + frame_len].to_vec());
                    pos += frame_len;
                }
                FrameSplit::Incomplete => break,
                FrameSplit::Corrupt => {
                    return StreamOutcome {
                        payloads,
                        corrupt: true,
                        consumed: pos,
                    }
                }
            }
        }
    }
    StreamOutcome {
        payloads,
        corrupt: false,
        consumed: pos,
    }
}

/// Encode `payloads` into one contiguous frame stream.
fn encode(payloads: &[Vec<u8>]) -> Vec<u8> {
    let mut buf = Vec::new();
    for p in payloads {
        write_frame(&mut buf, p);
    }
    buf
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Byte-at-a-time delivery recovers exactly the frames that were
    /// written, with no corruption verdict, wherever a trailing
    /// truncation cuts.
    #[test]
    fn byte_at_a_time_equals_all_at_once(
        payloads in proptest::collection::vec(
            proptest::collection::vec(0u8..=255, 0..40),
            0..8,
        ),
        cut_back in 0usize..24,
    ) {
        let stream = encode(&payloads);
        let keep = stream.len().saturating_sub(cut_back);
        let stream = &stream[..keep];

        let trickled = drive(stream, &vec![1; stream.len()]);
        let whole = drive(stream, &[]);
        prop_assert_eq!(&trickled, &whole, "chunking changed the outcome");
        prop_assert!(!trickled.corrupt, "truncation is Incomplete, never Corrupt");
        // Every recovered frame matches what was written, in order.
        for (got, want) in trickled.payloads.iter().zip(payloads.iter()) {
            prop_assert_eq!(got, want);
        }
        // The cut only ever costs the trailing partial frame.
        prop_assert!(stream.len() - trickled.consumed <= FRAME_HEADER_LEN + 40);
    }

    /// Any random chunking of the same bytes yields the same frames and
    /// the same terminal classification — including streams damaged by a
    /// byte flip, where every chunking must converge on `Corrupt` at the
    /// same consumed offset.
    #[test]
    fn random_chunking_never_flips_the_classification(
        payloads in proptest::collection::vec(
            proptest::collection::vec(0u8..=255, 0..40),
            1..8,
        ),
        chunks_a in proptest::collection::vec(1usize..13, 0..64),
        chunks_b in proptest::collection::vec(1usize..13, 0..64),
        // mask 0 = undamaged stream (XOR by zero changes nothing).
        flip in (0usize..256, 0u8..=255),
    ) {
        let mut stream = encode(&payloads);
        let (at, mask) = flip;
        if !stream.is_empty() {
            let at = at % stream.len();
            stream[at] ^= mask;
        }
        let a = drive(&stream, &chunks_a);
        let b = drive(&stream, &chunks_b);
        prop_assert_eq!(&a, &b, "two chunkings disagreed on the same bytes");

        // A decoder that saw corruption consumed only whole valid
        // frames before stopping, and those frames are a prefix of the
        // originals (damage never rewrites an already-valid frame).
        for (got, want) in a.payloads.iter().zip(payloads.iter()) {
            prop_assert_eq!(got, want);
        }
        if !a.corrupt {
            // No corruption seen: the flip either missed (mask cancels
            // nothing — it cannot, XOR with nonzero always changes the
            // byte) or landed in the torn tail / produced a still-
            // incomplete longer length. All bytes short of a frame
            // remain pending.
            prop_assert!(a.consumed <= stream.len());
        }
    }

    /// Monotonicity of `split_frame` itself: a verdict on a prefix never
    /// flips when more bytes arrive. `Corrupt` stays `Corrupt`; a
    /// complete `Frame` keeps its exact length; `Incomplete` only ever
    /// progresses.
    #[test]
    fn verdicts_are_monotone_under_extension(
        payload in proptest::collection::vec(0u8..=255, 0..64),
        garbage in proptest::collection::vec(0u8..=255, 0..32),
        // mask 0 = undamaged frame (XOR by zero changes nothing).
        flip in (0usize..96, 0u8..=255),
    ) {
        let mut stream = Vec::new();
        write_frame(&mut stream, &payload);
        let (at, mask) = flip;
        let at = at % stream.len();
        stream[at] ^= mask;
        stream.extend_from_slice(&garbage);

        let mut verdict_at_full: Option<FrameSplit> = None;
        for cut in 0..=stream.len() {
            let verdict = split_frame(&stream[..cut]);
            match verdict {
                FrameSplit::Corrupt => {
                    // Once corrupt, every extension stays corrupt.
                    for later in cut..=stream.len() {
                        prop_assert_eq!(split_frame(&stream[..later]), FrameSplit::Corrupt);
                    }
                    verdict_at_full = Some(FrameSplit::Corrupt);
                    break;
                }
                FrameSplit::Frame { frame_len } => {
                    // A complete frame keeps its length under extension.
                    for later in cut..=stream.len() {
                        prop_assert_eq!(
                            split_frame(&stream[..later]),
                            FrameSplit::Frame { frame_len }
                        );
                    }
                    verdict_at_full = Some(FrameSplit::Frame { frame_len });
                    break;
                }
                FrameSplit::Incomplete => {}
            }
        }
        // The loop's conclusion matches judging the whole buffer at once.
        let full = split_frame(&stream);
        match verdict_at_full {
            Some(v) => prop_assert_eq!(full, v),
            None => prop_assert_eq!(full, FrameSplit::Incomplete),
        }
    }
}
