//! CRC32 and in-place framing equivalence properties.
//!
//! PR 9 swapped the frame checksum to a slicing-by-8 CRC32 and the
//! frame writers to an in-place `begin_frame`/`end_frame` pair. Neither
//! is allowed to be a *format* change: every byte already on disk and
//! on the wire was produced by the one-table bytewise CRC and the
//! buffer-then-copy `write_frame`, so the fast paths must be proven
//! bit-identical to the slow ones, not just plausible.

use proptest::prelude::*;
use wsrep_journal::frame::{
    begin_frame, crc32, crc32_bytewise, end_frame, split_frame, write_frame, FrameSplit,
    FRAME_HEADER_LEN,
};

/// The published check value for CRC-32/ISO-HDLC ("123456789"), plus
/// fixed vectors produced by the pre-slicing implementation. These pin
/// the *polynomial and conventions*; the property below pins the
/// implementation against the reference loop on everything else.
#[test]
fn golden_vectors_are_unchanged() {
    for (input, expected) in [
        (&b""[..], 0x0000_0000u32),
        (&b"123456789"[..], 0xCBF4_3926),
        (&b"hello"[..], 0x3610_A686),
        (
            &b"The quick brown fox jumps over the lazy dog"[..],
            0x414F_A339,
        ),
    ] {
        assert_eq!(crc32(input), expected, "crc32({input:?})");
        assert_eq!(crc32_bytewise(input), expected, "crc32_bytewise({input:?})");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Slicing-by-8 is an optimization, not a definition: on arbitrary
    /// input (lengths straddling the 8-byte step and its remainders) it
    /// must agree with the one-byte-at-a-time reference.
    #[test]
    fn sliced_crc_matches_the_bytewise_reference(
        bytes in proptest::collection::vec(0u8..=255, 0..200),
    ) {
        prop_assert_eq!(crc32(&bytes), crc32_bytewise(&bytes));
    }

    /// `begin_frame` + payload + `end_frame` must emit exactly the bytes
    /// `write_frame` emits for that payload — including when the
    /// destination buffer already holds earlier frames, which is how the
    /// batch append loop uses it.
    #[test]
    fn in_place_framing_equals_write_frame(
        prefix in proptest::collection::vec(0u8..=255, 0..32),
        payload in proptest::collection::vec(0u8..=255, 0..96),
    ) {
        let mut two_step = prefix.clone();
        write_frame(&mut two_step, &payload);

        let mut in_place = prefix.clone();
        let start = begin_frame(&mut in_place);
        in_place.extend_from_slice(&payload);
        end_frame(&mut in_place, start);

        prop_assert_eq!(&in_place, &two_step);

        // And the result must round-trip through the decoder.
        match split_frame(&in_place[prefix.len()..]) {
            FrameSplit::Frame { frame_len } => {
                prop_assert_eq!(frame_len, FRAME_HEADER_LEN + payload.len());
                prop_assert_eq!(&in_place[prefix.len() + FRAME_HEADER_LEN..], &payload[..]);
            }
            other => prop_assert!(false, "expected a complete frame, got {:?}", other),
        }
    }
}
