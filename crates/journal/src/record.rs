//! The journal's event vocabulary.
//!
//! The registry's durable state is fully determined by three event kinds:
//! consumer feedback (the reputation evidence), listing publication and
//! listing withdrawal. Everything else the service holds — per-subject
//! epochs, cached scores, normalization matrices — is derived and is
//! rebuilt by replay, never persisted. This is the log-then-derive
//! architecture: the WAL is the source of truth, the in-memory store is a
//! view.

use crate::codec::{
    get_feedback, get_listing, put_feedback, put_listing, put_u64, CodecError, Cursor,
};
use wsrep_core::feedback::Feedback;
use wsrep_core::id::ServiceId;
use wsrep_sim::registry::Listing;

const TAG_FEEDBACK: u8 = 1;
const TAG_PUBLISH: u8 = 2;
const TAG_DEREGISTER: u8 = 3;

/// One durable registry event.
#[derive(Debug, Clone, PartialEq)]
pub enum JournalRecord {
    /// A consumer feedback report was accepted.
    Feedback(Feedback),
    /// A listing was published or updated.
    Publish(Listing),
    /// A listing was withdrawn.
    Deregister(ServiceId),
}

impl JournalRecord {
    /// Encode into `out` (version-1 layout: a tag byte plus the payload).
    pub fn encode(&self, out: &mut Vec<u8>) {
        match self {
            JournalRecord::Feedback(feedback) => {
                out.push(TAG_FEEDBACK);
                put_feedback(out, feedback);
            }
            JournalRecord::Publish(listing) => {
                out.push(TAG_PUBLISH);
                put_listing(out, listing);
            }
            JournalRecord::Deregister(service) => {
                out.push(TAG_DEREGISTER);
                put_u64(out, service.raw());
            }
        }
    }

    /// Encode into a fresh buffer.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        self.encode(&mut out);
        out
    }

    /// Decode one record from `bytes`, requiring the buffer to be exactly
    /// one record long (frames delimit records, so trailing garbage means
    /// corruption).
    pub fn decode(bytes: &[u8]) -> Result<Self, CodecError> {
        let mut cur = Cursor::new(bytes);
        let record = match cur.u8()? {
            TAG_FEEDBACK => JournalRecord::Feedback(get_feedback(&mut cur)?),
            TAG_PUBLISH => JournalRecord::Publish(get_listing(&mut cur)?),
            TAG_DEREGISTER => JournalRecord::Deregister(ServiceId::new(cur.u64()?)),
            tag => {
                return Err(CodecError::BadTag {
                    what: "record",
                    tag,
                })
            }
        };
        if cur.remaining() != 0 {
            return Err(CodecError::BadTag {
                what: "record trailing bytes",
                tag: 0,
            });
        }
        Ok(record)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wsrep_core::id::{AgentId, ProviderId};
    use wsrep_core::time::Time;
    use wsrep_qos::metric::Metric;
    use wsrep_qos::value::QosVector;

    #[test]
    fn every_variant_round_trips() {
        let records = [
            JournalRecord::Feedback(Feedback::scored(
                AgentId::new(1),
                ServiceId::new(2),
                0.75,
                Time::new(3),
            )),
            JournalRecord::Publish(Listing {
                service: ServiceId::new(4),
                provider: ProviderId::new(5),
                category: 6,
                advertised: QosVector::from_pairs([(Metric::Accuracy, 0.9)]),
            }),
            JournalRecord::Deregister(ServiceId::new(7)),
        ];
        for record in records {
            let bytes = record.to_bytes();
            assert_eq!(JournalRecord::decode(&bytes).unwrap(), record);
        }
    }

    #[test]
    fn unknown_tag_is_rejected() {
        assert!(matches!(
            JournalRecord::decode(&[0x7F]),
            Err(CodecError::BadTag { .. })
        ));
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut bytes = JournalRecord::Deregister(ServiceId::new(1)).to_bytes();
        bytes.push(0);
        assert!(JournalRecord::decode(&bytes).is_err());
    }
}
