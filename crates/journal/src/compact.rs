//! Segment garbage collection.
//!
//! Once a snapshot at LSN `L` is durably on disk, every WAL record with
//! `lsn < L` is redundant: recovery loads the snapshot and replays only
//! the tail. The compactor therefore deletes each segment whose *entire*
//! record range lies below `L` — which, with dense LSNs, is exactly every
//! segment whose successor starts at or below `L`. The active (last)
//! segment is never deleted, and a segment straddling the snapshot
//! boundary is kept whole; recovery skips its covered prefix record by
//! record.
//!
//! Snapshots older than the newest one are removed at the same time —
//! they can no longer win [`crate::snapshot::latest_snapshot`].

use crate::segment::list_segments;
use crate::snapshot::list_snapshots;
use std::fs;
use std::io;
use std::path::Path;

/// What one compaction pass reclaimed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CompactReport {
    /// WAL segments deleted.
    pub segments_removed: u64,
    /// Superseded snapshot files deleted.
    pub snapshots_removed: u64,
    /// Total bytes reclaimed.
    pub bytes_reclaimed: u64,
}

/// Delete segments fully covered by a snapshot at `covered_lsn`, plus
/// snapshots superseded by a newer one.
pub fn compact_dir(dir: &Path, covered_lsn: u64) -> io::Result<CompactReport> {
    let mut report = CompactReport::default();
    let segments = list_segments(dir)?;
    // Pair each segment with its successor's start: that successor start
    // is one past the segment's last LSN.
    for window in segments.windows(2) {
        let (_, path) = &window[0];
        let (next_start, _) = &window[1];
        if *next_start <= covered_lsn {
            report.bytes_reclaimed += fs::metadata(path).map(|m| m.len()).unwrap_or(0);
            fs::remove_file(path)?;
            report.segments_removed += 1;
        }
    }
    let snapshots = list_snapshots(dir)?;
    if let Some(newest_lsn) = snapshots.last().map(|(lsn, _)| *lsn) {
        for (lsn, path) in snapshots {
            if lsn < newest_lsn {
                report.bytes_reclaimed += fs::metadata(&path).map(|m| m.len()).unwrap_or(0);
                fs::remove_file(&path)?;
                report.snapshots_removed += 1;
            }
        }
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::journal::{Journal, JournalConfig};
    use crate::record::JournalRecord;
    use crate::snapshot::{latest_snapshot, write_snapshot};
    use std::path::PathBuf;
    use wsrep_core::feedback::Feedback;
    use wsrep_core::id::{AgentId, ServiceId};
    use wsrep_core::time::Time;

    fn record(i: u64) -> JournalRecord {
        JournalRecord::Feedback(Feedback::scored(
            AgentId::new(i),
            ServiceId::new(0),
            0.5,
            Time::new(i),
        ))
    }

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "wsrep-journal-compact-{tag}-{}",
            std::process::id()
        ));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn covered_segments_are_dropped_but_the_boundary_and_tail_stay() {
        let dir = temp_dir("covered");
        let config = JournalConfig {
            max_segment_bytes: 200,
        };
        let mut journal = Journal::open(&dir, config).unwrap();
        for i in 0..30 {
            journal.append_batch(&[record(i)]).unwrap();
        }
        let before = list_segments(&dir).unwrap();
        assert!(before.len() >= 3, "need several segments: {}", before.len());

        // Snapshot covering the first 10 records.
        let report = journal.compact(10).unwrap();
        let after = list_segments(&dir).unwrap();
        assert_eq!(
            before.len() as u64 - report.segments_removed,
            after.len() as u64
        );
        assert!(report.segments_removed >= 1);
        assert!(report.bytes_reclaimed > 0);
        // Every surviving record with lsn >= 10 is still recoverable.
        let mut remaining = Vec::new();
        for (start, path) in &after {
            let scan = crate::segment::scan_segment(path).unwrap().unwrap();
            for (i, r) in scan.records.into_iter().enumerate() {
                remaining.push((start + i as u64, r));
            }
        }
        for lsn in 10..30 {
            assert!(
                remaining.iter().any(|(l, _)| *l == lsn),
                "record {lsn} must survive compaction"
            );
        }
        // The journal still appends after compaction.
        journal.append_batch(&[record(30)]).unwrap();
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn superseded_snapshots_are_pruned() {
        let dir = temp_dir("snapshots");
        fs::create_dir_all(&dir).unwrap();
        write_snapshot(&dir, 5, &[], &[]).unwrap();
        write_snapshot(&dir, 9, &[], &[]).unwrap();
        let report = compact_dir(&dir, 9).unwrap();
        assert_eq!(report.snapshots_removed, 1);
        assert_eq!(latest_snapshot(&dir).unwrap().unwrap().lsn, 9);
        assert_eq!(crate::snapshot::list_snapshots(&dir).unwrap().len(), 1);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn single_active_segment_is_never_deleted() {
        let dir = temp_dir("active");
        let mut journal = Journal::open(&dir, JournalConfig::default()).unwrap();
        journal.append_batch(&[record(0), record(1)]).unwrap();
        let report = journal.compact(u64::MAX).unwrap();
        assert_eq!(report.segments_removed, 0);
        assert_eq!(list_segments(&dir).unwrap().len(), 1);
        fs::remove_dir_all(&dir).unwrap();
    }
}
