//! Crash recovery: snapshot + WAL tail → registry state.
//!
//! Recovery is a pure function of the journal directory:
//!
//! 1. load the newest snapshot that validates (a damaged snapshot falls
//!    back to its predecessor, or to nothing — the WAL still holds every
//!    record);
//! 2. walk every log stream — the root's dense segments plus, in a
//!    partitioned journal, each `group-NNN/` directory's tagged
//!    segments — keeping each stream's valid prefix and stopping that
//!    stream at its first torn frame (a crashed append's tail was never
//!    acknowledged as durable, so dropping it cannot lose acknowledged
//!    data);
//! 3. merge the surviving records by LSN, skip what the snapshot already
//!    covers, and replay publish / deregister / feedback events in
//!    global order.
//!
//! With several writer groups, a crash can leave *interior gaps* in the
//! merged LSN sequence — one group's later batch hit the disk while
//! another group's earlier batch died in the page cache. Every record
//! past a gap is kept: acknowledgement (`flush`) only ever covered
//! prefixes all groups had fsynced, so the gap's records were never
//! acknowledged, while records above it may have been. [`Recovered`]
//! reports both views: `next_lsn` (past the highest survivor — where
//! allocation resumes) and `durable_lsn` (the contiguous frontier).
//!
//! The result carries everything a serving registry needs to resume:
//! live listings, the feedback log in per-subject order (replaying it
//! through a sharded store reproduces the exact pre-crash per-subject
//! epochs, because an epoch is just the count of applied reports), and
//! the LSN the journal writer should continue from.

use crate::record::JournalRecord;
use crate::segment::{list_group_dirs, list_segments, scan_segment_entries, SegmentEntries};
use crate::snapshot::latest_snapshot;
use std::collections::BTreeMap;
use std::io;
use std::path::{Path, PathBuf};
use wsrep_core::feedback::Feedback;
use wsrep_core::id::ServiceId;
use wsrep_sim::registry::Listing;

/// The state rebuilt from a journal directory.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Recovered {
    /// Live listings after replaying every publish/deregister.
    pub listings: Vec<Listing>,
    /// Every durably acknowledged feedback report, oldest first.
    pub feedback: Vec<Feedback>,
    /// Entries restored: snapshot entries + WAL records replayed.
    pub records_recovered: u64,
    /// LSN of the snapshot used, if any.
    pub snapshot_lsn: Option<u64>,
    /// Whether a torn/truncated record was skipped at the tail.
    pub torn_tail: bool,
    /// LSN of the last record processed + 1 — where appends resume.
    pub next_lsn: u64,
    /// The contiguous durable frontier: every LSN below this was
    /// recovered (or snapshot-covered). Equals `next_lsn` unless a crash
    /// left cross-group gaps in the partitioned log.
    pub durable_lsn: u64,
}

/// Rebuild registry state from the journal at `dir`.
///
/// A missing or empty directory recovers to the empty state — a fresh
/// boot and a recovery are the same code path. Handles single-log,
/// partitioned, and migrated (root segments + group directories)
/// layouts.
pub fn recover(dir: &Path) -> io::Result<Recovered> {
    if !dir.exists() {
        return Ok(Recovered::default());
    }
    let mut recovered = Recovered::default();
    let mut listings: BTreeMap<ServiceId, Listing> = BTreeMap::new();

    let mut covered_lsn = 0;
    if let Some(snapshot) = latest_snapshot(dir)? {
        covered_lsn = snapshot.lsn;
        recovered.snapshot_lsn = Some(snapshot.lsn);
        recovered.records_recovered += snapshot.entries();
        recovered.next_lsn = snapshot.lsn;
        for listing in snapshot.listings {
            listings.insert(listing.service, listing);
        }
        recovered.feedback = snapshot.feedback;
    }

    // One stream per log: the root's own segments, then each group's.
    let mut streams = vec![list_segments(dir)?];
    for (_, group_dir) in list_group_dirs(dir)? {
        streams.push(list_segments(&group_dir)?);
    }
    let flat: Vec<&(u64, PathBuf)> = streams.iter().flatten().collect();
    let mut scans = scan_segments_parallel(&flat).into_iter();

    let mut entries: Vec<(u64, JournalRecord)> = Vec::new();
    for stream in &streams {
        let mut stream_stopped = false;
        for _ in stream {
            let scan = scans.next().expect("one scan per listed segment");
            if stream_stopped {
                continue; // past this stream's torn point; scan already done
            }
            let Some(scan) = scan? else {
                // A header that never reached the disk: rotation crashed
                // before any record was acknowledged in this segment.
                recovered.torn_tail = true;
                stream_stopped = true;
                continue;
            };
            for (lsn, record) in scan.entries {
                if lsn >= covered_lsn {
                    entries.push((lsn, record));
                }
            }
            if scan.torn {
                recovered.torn_tail = true;
                stream_stopped = true;
            }
        }
    }

    // Global replay order. Streams are individually sorted, so this is
    // a nearly-sorted merge — cheap for the single-log layout.
    entries.sort_by_key(|(lsn, _)| *lsn);

    let mut frontier = covered_lsn;
    for (lsn, record) in entries {
        if lsn == frontier {
            frontier = lsn + 1;
        }
        match record {
            JournalRecord::Feedback(feedback) => recovered.feedback.push(feedback),
            JournalRecord::Publish(listing) => {
                listings.insert(listing.service, listing);
            }
            JournalRecord::Deregister(service) => {
                listings.remove(&service);
            }
        }
        recovered.records_recovered += 1;
        recovered.next_lsn = lsn + 1;
    }
    recovered.durable_lsn = frontier;

    recovered.listings = listings.into_values().collect();
    Ok(recovered)
}

/// Read and decode every segment concurrently, one contiguous chunk of
/// the flattened segment list per worker. Decoding dominates recovery
/// of a long WAL, and segments decode independently — ordering decisions
/// (skip-below-snapshot, stop-at-torn-tail, cross-group merge) stay in
/// the sequential merge above, so the result is byte-for-byte what
/// per-segment sequential scanning produces.
fn scan_segments_parallel(segments: &[&(u64, PathBuf)]) -> Vec<io::Result<Option<SegmentEntries>>> {
    let workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(segments.len());
    if workers <= 1 {
        return segments
            .iter()
            .map(|(_, path)| scan_segment_entries(path))
            .collect();
    }
    let chunk = segments.len().div_ceil(workers);
    std::thread::scope(|scope| {
        let handles: Vec<_> = segments
            .chunks(chunk)
            .map(|chunk| {
                scope.spawn(move || {
                    chunk
                        .iter()
                        .map(|(_, path)| scan_segment_entries(path))
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|handle| handle.join().expect("segment scan worker panicked"))
            .collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::journal::{Journal, JournalConfig};
    use crate::snapshot::write_snapshot;
    use std::fs;
    use std::path::PathBuf;
    use wsrep_core::id::{AgentId, ProviderId};
    use wsrep_core::time::Time;
    use wsrep_qos::metric::Metric;
    use wsrep_qos::value::QosVector;

    fn feedback(i: u64) -> Feedback {
        Feedback::scored(AgentId::new(i), ServiceId::new(i % 4), 0.6, Time::new(i))
    }

    fn listing(service: u64) -> Listing {
        Listing {
            service: ServiceId::new(service),
            provider: ProviderId::new(service),
            category: 2,
            advertised: QosVector::from_pairs([(Metric::Accuracy, 0.8)]),
        }
    }

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "wsrep-journal-recovery-{tag}-{}",
            std::process::id()
        ));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn missing_directory_recovers_empty() {
        let dir = temp_dir("missing");
        let recovered = recover(&dir).unwrap();
        assert_eq!(recovered, Recovered::default());
    }

    #[test]
    fn wal_only_replay_restores_everything_in_order() {
        let dir = temp_dir("wal-only");
        let mut journal = Journal::open(&dir, JournalConfig::default()).unwrap();
        journal
            .append_batch(&[
                JournalRecord::Publish(listing(1)),
                JournalRecord::Publish(listing(2)),
            ])
            .unwrap();
        let reports: Vec<Feedback> = (0..20).map(feedback).collect();
        journal
            .append_batch(
                &reports
                    .iter()
                    .cloned()
                    .map(JournalRecord::Feedback)
                    .collect::<Vec<_>>(),
            )
            .unwrap();
        journal
            .append_batch(&[JournalRecord::Deregister(ServiceId::new(2))])
            .unwrap();
        drop(journal);

        let recovered = recover(&dir).unwrap();
        assert_eq!(recovered.feedback, reports);
        assert_eq!(recovered.listings, vec![listing(1)]);
        assert_eq!(recovered.records_recovered, 23);
        assert_eq!(recovered.next_lsn, 23);
        assert!(!recovered.torn_tail);
        assert_eq!(recovered.snapshot_lsn, None);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn snapshot_plus_tail_equals_full_replay() {
        let dir = temp_dir("snapshot-tail");
        let config = JournalConfig {
            max_segment_bytes: 300,
        };
        let mut journal = Journal::open(&dir, config).unwrap();
        journal
            .append_batch(&[JournalRecord::Publish(listing(7))])
            .unwrap();
        let reports: Vec<Feedback> = (0..30).map(feedback).collect();
        for chunk in reports.chunks(5) {
            journal
                .append_batch(
                    &chunk
                        .iter()
                        .cloned()
                        .map(JournalRecord::Feedback)
                        .collect::<Vec<_>>(),
                )
                .unwrap();
        }
        // Snapshot covering the publish + first 15 reports (LSN 16).
        write_snapshot(&dir, 16, &[listing(7)], &reports[..15]).unwrap();
        journal.compact(16).unwrap();
        drop(journal);

        let recovered = recover(&dir).unwrap();
        assert_eq!(recovered.snapshot_lsn, Some(16));
        assert_eq!(recovered.feedback, reports, "snapshot + tail = full log");
        assert_eq!(recovered.listings, vec![listing(7)]);
        assert_eq!(recovered.next_lsn, 31);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_tail_is_skipped_without_error() {
        let dir = temp_dir("torn");
        let mut journal = Journal::open(&dir, JournalConfig::default()).unwrap();
        let reports: Vec<Feedback> = (0..8).map(feedback).collect();
        for report in &reports {
            journal
                .append_batch(&[JournalRecord::Feedback(report.clone())])
                .unwrap();
        }
        drop(journal);
        // Tear the final record mid-frame.
        let (_, path) = list_segments(&dir).unwrap().pop().unwrap();
        let len = fs::metadata(&path).unwrap().len();
        fs::OpenOptions::new()
            .write(true)
            .open(&path)
            .unwrap()
            .set_len(len - 5)
            .unwrap();

        let recovered = recover(&dir).unwrap();
        assert!(recovered.torn_tail);
        assert_eq!(recovered.feedback, reports[..7].to_vec());
        assert_eq!(recovered.next_lsn, 7);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn partitioned_log_merges_groups_by_lsn() {
        let dir = temp_dir("partitioned");
        let set = crate::group::GroupSet::open(&dir, 3, JournalConfig::default(), 0).unwrap();
        set.append_batch(0, &[JournalRecord::Publish(listing(1))])
            .unwrap(); // LSN 0
        let reports: Vec<Feedback> = (0..9).map(feedback).collect();
        // Interleave feedback across groups 1 and 2 out of group order.
        for (i, report) in reports.iter().enumerate() {
            let group = 1 + (i % 2);
            set.append_batch(group, &[JournalRecord::Feedback(report.clone())])
                .unwrap(); // LSNs 1..=9
        }
        drop(set);

        let recovered = recover(&dir).unwrap();
        assert_eq!(recovered.feedback, reports, "merged back into LSN order");
        assert_eq!(recovered.listings, vec![listing(1)]);
        assert_eq!(recovered.next_lsn, 10);
        assert_eq!(recovered.durable_lsn, 10);
        assert!(!recovered.torn_tail);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn migrated_layout_replays_root_then_groups() {
        let dir = temp_dir("migrated");
        {
            // A single-log past life…
            let mut journal = Journal::open(&dir, JournalConfig::default()).unwrap();
            journal
                .append_batch(&[
                    JournalRecord::Publish(listing(1)),
                    JournalRecord::Feedback(feedback(0)),
                ])
                .unwrap(); // LSNs 0-1
        }
        // …then the same directory reopened partitioned.
        let set = crate::group::GroupSet::open(&dir, 2, JournalConfig::default(), 0).unwrap();
        assert_eq!(set.allocator().next_lsn(), 2, "resumes past root segments");
        set.append_batch(1, &[JournalRecord::Feedback(feedback(1))])
            .unwrap(); // LSN 2
        drop(set);

        let recovered = recover(&dir).unwrap();
        assert_eq!(recovered.feedback, vec![feedback(0), feedback(1)]);
        assert_eq!(recovered.next_lsn, 3);
        assert_eq!(recovered.durable_lsn, 3);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn cross_group_gap_keeps_later_records_and_reports_the_frontier() {
        let dir = temp_dir("gap");
        let set = crate::group::GroupSet::open(&dir, 2, JournalConfig::default(), 0).unwrap();
        set.append_batch(0, &[JournalRecord::Feedback(feedback(0))])
            .unwrap(); // LSN 0, group 0
        set.append_batch(1, &[JournalRecord::Feedback(feedback(1))])
            .unwrap(); // LSN 1, group 1
        set.append_batch(0, &[JournalRecord::Feedback(feedback(2))])
            .unwrap(); // LSN 2, group 0
        drop(set);
        // Simulate group 1's batch dying in the page cache: its record
        // at LSN 1 is torn away, leaving a gap between groups.
        let group1 = dir.join(crate::segment::group_dir_name(1));
        let (_, path) = list_segments(&group1).unwrap().pop().unwrap();
        let len = fs::metadata(&path).unwrap().len();
        fs::OpenOptions::new()
            .write(true)
            .open(&path)
            .unwrap()
            .set_len(len - 3)
            .unwrap();

        let recovered = recover(&dir).unwrap();
        assert!(recovered.torn_tail);
        assert_eq!(
            recovered.feedback,
            vec![feedback(0), feedback(2)],
            "the survivor above the gap is kept"
        );
        assert_eq!(
            recovered.next_lsn, 3,
            "allocation resumes past the survivor"
        );
        assert_eq!(recovered.durable_lsn, 1, "frontier stops at the gap");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn republish_updates_and_deregister_removes() {
        let dir = temp_dir("listings");
        let mut journal = Journal::open(&dir, JournalConfig::default()).unwrap();
        let mut updated = listing(1);
        updated.category = 9;
        journal
            .append_batch(&[
                JournalRecord::Publish(listing(1)),
                JournalRecord::Publish(listing(3)),
                JournalRecord::Publish(updated.clone()),
                JournalRecord::Deregister(ServiceId::new(3)),
                JournalRecord::Deregister(ServiceId::new(99)), // unknown: no-op
            ])
            .unwrap();
        drop(journal);
        let recovered = recover(&dir).unwrap();
        assert_eq!(recovered.listings, vec![updated]);
        fs::remove_dir_all(&dir).unwrap();
    }
}
