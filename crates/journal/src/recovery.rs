//! Crash recovery: snapshot + WAL tail → registry state.
//!
//! Recovery is a pure function of the journal directory:
//!
//! 1. load the newest snapshot that validates (a damaged snapshot falls
//!    back to its predecessor, or to nothing — the WAL still holds every
//!    record);
//! 2. walk the WAL segments in LSN order, skipping records the snapshot
//!    already covers, and replay publish / deregister / feedback events;
//! 3. stop at the first torn frame — a crashed append's tail was never
//!    acknowledged as durable, so dropping it cannot lose acknowledged
//!    data.
//!
//! The result carries everything a serving registry needs to resume:
//! live listings, the feedback log in per-subject order (replaying it
//! through a sharded store reproduces the exact pre-crash per-subject
//! epochs, because an epoch is just the count of applied reports), and
//! the LSN the journal writer should continue from.

use crate::record::JournalRecord;
use crate::segment::{list_segments, scan_segment, SegmentScan};
use crate::snapshot::latest_snapshot;
use std::collections::BTreeMap;
use std::io;
use std::path::{Path, PathBuf};
use wsrep_core::feedback::Feedback;
use wsrep_core::id::ServiceId;
use wsrep_sim::registry::Listing;

/// The state rebuilt from a journal directory.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Recovered {
    /// Live listings after replaying every publish/deregister.
    pub listings: Vec<Listing>,
    /// Every durably acknowledged feedback report, oldest first.
    pub feedback: Vec<Feedback>,
    /// Entries restored: snapshot entries + WAL records replayed.
    pub records_recovered: u64,
    /// LSN of the snapshot used, if any.
    pub snapshot_lsn: Option<u64>,
    /// Whether a torn/truncated record was skipped at the tail.
    pub torn_tail: bool,
    /// LSN of the last record processed + 1 — where appends resume.
    pub next_lsn: u64,
}

/// Rebuild registry state from the journal at `dir`.
///
/// A missing or empty directory recovers to the empty state — a fresh
/// boot and a recovery are the same code path.
pub fn recover(dir: &Path) -> io::Result<Recovered> {
    if !dir.exists() {
        return Ok(Recovered::default());
    }
    let mut recovered = Recovered::default();
    let mut listings: BTreeMap<ServiceId, Listing> = BTreeMap::new();

    let mut covered_lsn = 0;
    if let Some(snapshot) = latest_snapshot(dir)? {
        covered_lsn = snapshot.lsn;
        recovered.snapshot_lsn = Some(snapshot.lsn);
        recovered.records_recovered += snapshot.entries();
        recovered.next_lsn = snapshot.lsn;
        for listing in snapshot.listings {
            listings.insert(listing.service, listing);
        }
        recovered.feedback = snapshot.feedback;
    }

    let segments = list_segments(dir)?;
    let scans = scan_segments_parallel(&segments);
    'segments: for ((start_lsn, _), scan) in segments.iter().zip(scans) {
        let start_lsn = *start_lsn;
        let Some(scan) = scan? else {
            // A header that never reached the disk: rotation crashed
            // before any record was acknowledged in this segment.
            recovered.torn_tail = true;
            break;
        };
        for (i, record) in scan.records.into_iter().enumerate() {
            let lsn = start_lsn + i as u64;
            if lsn < covered_lsn {
                continue; // the snapshot already has it
            }
            match record {
                JournalRecord::Feedback(feedback) => recovered.feedback.push(feedback),
                JournalRecord::Publish(listing) => {
                    listings.insert(listing.service, listing);
                }
                JournalRecord::Deregister(service) => {
                    listings.remove(&service);
                }
            }
            recovered.records_recovered += 1;
            recovered.next_lsn = lsn + 1;
        }
        if scan.torn {
            recovered.torn_tail = true;
            break 'segments;
        }
    }

    recovered.listings = listings.into_values().collect();
    Ok(recovered)
}

/// Read and decode every segment concurrently, one contiguous chunk of
/// the LSN-ordered segment list per worker. Decoding dominates recovery
/// of a long WAL, and segments decode independently — ordering decisions
/// (skip-below-snapshot, stop-at-torn-tail) stay in the sequential merge
/// above, so the result is byte-for-byte what per-segment sequential
/// scanning produces.
fn scan_segments_parallel(segments: &[(u64, PathBuf)]) -> Vec<io::Result<Option<SegmentScan>>> {
    let workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(segments.len());
    if workers <= 1 {
        return segments
            .iter()
            .map(|(_, path)| scan_segment(path))
            .collect();
    }
    let chunk = segments.len().div_ceil(workers);
    std::thread::scope(|scope| {
        let handles: Vec<_> = segments
            .chunks(chunk)
            .map(|chunk| {
                scope.spawn(move || {
                    chunk
                        .iter()
                        .map(|(_, path)| scan_segment(path))
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|handle| handle.join().expect("segment scan worker panicked"))
            .collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::journal::{Journal, JournalConfig};
    use crate::snapshot::write_snapshot;
    use std::fs;
    use std::path::PathBuf;
    use wsrep_core::id::{AgentId, ProviderId};
    use wsrep_core::time::Time;
    use wsrep_qos::metric::Metric;
    use wsrep_qos::value::QosVector;

    fn feedback(i: u64) -> Feedback {
        Feedback::scored(AgentId::new(i), ServiceId::new(i % 4), 0.6, Time::new(i))
    }

    fn listing(service: u64) -> Listing {
        Listing {
            service: ServiceId::new(service),
            provider: ProviderId::new(service),
            category: 2,
            advertised: QosVector::from_pairs([(Metric::Accuracy, 0.8)]),
        }
    }

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "wsrep-journal-recovery-{tag}-{}",
            std::process::id()
        ));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn missing_directory_recovers_empty() {
        let dir = temp_dir("missing");
        let recovered = recover(&dir).unwrap();
        assert_eq!(recovered, Recovered::default());
    }

    #[test]
    fn wal_only_replay_restores_everything_in_order() {
        let dir = temp_dir("wal-only");
        let mut journal = Journal::open(&dir, JournalConfig::default()).unwrap();
        journal
            .append_batch(&[
                JournalRecord::Publish(listing(1)),
                JournalRecord::Publish(listing(2)),
            ])
            .unwrap();
        let reports: Vec<Feedback> = (0..20).map(feedback).collect();
        journal
            .append_batch(
                &reports
                    .iter()
                    .cloned()
                    .map(JournalRecord::Feedback)
                    .collect::<Vec<_>>(),
            )
            .unwrap();
        journal
            .append_batch(&[JournalRecord::Deregister(ServiceId::new(2))])
            .unwrap();
        drop(journal);

        let recovered = recover(&dir).unwrap();
        assert_eq!(recovered.feedback, reports);
        assert_eq!(recovered.listings, vec![listing(1)]);
        assert_eq!(recovered.records_recovered, 23);
        assert_eq!(recovered.next_lsn, 23);
        assert!(!recovered.torn_tail);
        assert_eq!(recovered.snapshot_lsn, None);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn snapshot_plus_tail_equals_full_replay() {
        let dir = temp_dir("snapshot-tail");
        let config = JournalConfig {
            max_segment_bytes: 300,
        };
        let mut journal = Journal::open(&dir, config).unwrap();
        journal
            .append_batch(&[JournalRecord::Publish(listing(7))])
            .unwrap();
        let reports: Vec<Feedback> = (0..30).map(feedback).collect();
        for chunk in reports.chunks(5) {
            journal
                .append_batch(
                    &chunk
                        .iter()
                        .cloned()
                        .map(JournalRecord::Feedback)
                        .collect::<Vec<_>>(),
                )
                .unwrap();
        }
        // Snapshot covering the publish + first 15 reports (LSN 16).
        write_snapshot(&dir, 16, &[listing(7)], &reports[..15]).unwrap();
        journal.compact(16).unwrap();
        drop(journal);

        let recovered = recover(&dir).unwrap();
        assert_eq!(recovered.snapshot_lsn, Some(16));
        assert_eq!(recovered.feedback, reports, "snapshot + tail = full log");
        assert_eq!(recovered.listings, vec![listing(7)]);
        assert_eq!(recovered.next_lsn, 31);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_tail_is_skipped_without_error() {
        let dir = temp_dir("torn");
        let mut journal = Journal::open(&dir, JournalConfig::default()).unwrap();
        let reports: Vec<Feedback> = (0..8).map(feedback).collect();
        for report in &reports {
            journal
                .append_batch(&[JournalRecord::Feedback(report.clone())])
                .unwrap();
        }
        drop(journal);
        // Tear the final record mid-frame.
        let (_, path) = list_segments(&dir).unwrap().pop().unwrap();
        let len = fs::metadata(&path).unwrap().len();
        fs::OpenOptions::new()
            .write(true)
            .open(&path)
            .unwrap()
            .set_len(len - 5)
            .unwrap();

        let recovered = recover(&dir).unwrap();
        assert!(recovered.torn_tail);
        assert_eq!(recovered.feedback, reports[..7].to_vec());
        assert_eq!(recovered.next_lsn, 7);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn republish_updates_and_deregister_removes() {
        let dir = temp_dir("listings");
        let mut journal = Journal::open(&dir, JournalConfig::default()).unwrap();
        let mut updated = listing(1);
        updated.category = 9;
        journal
            .append_batch(&[
                JournalRecord::Publish(listing(1)),
                JournalRecord::Publish(listing(3)),
                JournalRecord::Publish(updated.clone()),
                JournalRecord::Deregister(ServiceId::new(3)),
                JournalRecord::Deregister(ServiceId::new(99)), // unknown: no-op
            ])
            .unwrap();
        drop(journal);
        let recovered = recover(&dir).unwrap();
        assert_eq!(recovered.listings, vec![updated]);
        fs::remove_dir_all(&dir).unwrap();
    }
}
