//! Log shipping: an incremental reader over a *live* journal directory.
//!
//! A [`ShipCursor`] walks the segment files of a journal that another
//! writer (in the same process or another one) is still appending to,
//! handing out decoded records in dense LSN order. It remembers the byte
//! offset it has consumed inside the current segment, so each
//! [`ShipCursor::next_batch`] call reads only the bytes appended since
//! the last call — the read side of primary → replica replication.
//!
//! Three conditions end or interrupt a walk:
//!
//! - **Live tail.** The current segment ends mid-frame or exactly on a
//!   frame boundary with no successor segment: the cursor has caught up
//!   with the writer. `next_batch` returns what it has; call again later.
//! - **Rotation.** The current segment ends cleanly and a segment whose
//!   start LSN equals the cursor position exists: the cursor follows the
//!   rotation and keeps reading.
//! - **Compaction.** The requested LSN lies below the oldest surviving
//!   segment: the history was compacted away and this cursor can never
//!   serve it. [`ShipCursor::open`] fails with [`io::ErrorKind::NotFound`];
//!   the follower must bootstrap from a snapshot instead.
//!
//! The cursor reads bytes the writer has `write(2)`-ed but possibly not
//! yet fsynced. Shipping such records is safe for replication: a record
//! that reaches a follower before the primary's fsync was never
//! acknowledged to any client, so a follower that applied it is merely
//! *ahead* of the acknowledged prefix, never divergent from it.

use crate::frame::{split_frame, FrameSplit, FRAME_HEADER_LEN};
use crate::record::JournalRecord;
use crate::segment::{
    list_segments, segment_file_name, FORMAT_VERSION, SEGMENT_HEADER_LEN, SEGMENT_MAGIC,
};
use std::fs::File;
use std::io::{self, Read, Seek, SeekFrom};
use std::path::{Path, PathBuf};

/// One `next_batch` result: records `first_lsn .. first_lsn + records.len()`.
#[derive(Debug)]
pub struct ShippedBatch {
    /// LSN of `records[0]` (meaningful only when records is non-empty).
    pub first_lsn: u64,
    /// Decoded records in dense LSN order. Empty means "caught up".
    pub records: Vec<JournalRecord>,
}

/// A stateful reader positioned at an LSN inside a live journal.
#[derive(Debug)]
pub struct ShipCursor {
    dir: PathBuf,
    /// LSN of the next record this cursor will return.
    next_lsn: u64,
    /// Start LSN of the segment the cursor is currently reading, when
    /// one has been located.
    segment_start: Option<u64>,
    /// Bytes consumed in the current segment, header included.
    offset: u64,
}

fn corrupt(message: String) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, message)
}

/// Validate a segment header against the start LSN its file name claims.
fn check_header(buf: &[u8], expect_start: u64, path: &Path) -> io::Result<()> {
    if buf.len() < SEGMENT_HEADER_LEN {
        return Err(corrupt(format!(
            "segment {} truncated header",
            path.display()
        )));
    }
    if buf[..4] != SEGMENT_MAGIC || buf[4] != FORMAT_VERSION {
        return Err(corrupt(format!(
            "segment {} bad magic/version",
            path.display()
        )));
    }
    let start = u64::from_le_bytes(buf[5..SEGMENT_HEADER_LEN].try_into().unwrap());
    if start != expect_start {
        return Err(corrupt(format!(
            "segment {} header start {start} != file name start {expect_start}",
            path.display()
        )));
    }
    Ok(())
}

impl ShipCursor {
    /// Position a cursor so its next record is `from_lsn`.
    ///
    /// Errors with [`io::ErrorKind::NotFound`] when `from_lsn` precedes
    /// the oldest surviving segment (compacted away), and with
    /// [`io::ErrorKind::InvalidData`] when `from_lsn` lies beyond the
    /// log's tail — a follower asking for history this log never wrote
    /// has diverged.
    pub fn open(dir: impl Into<PathBuf>, from_lsn: u64) -> io::Result<ShipCursor> {
        let mut cursor = ShipCursor {
            dir: dir.into(),
            next_lsn: from_lsn,
            segment_start: None,
            offset: 0,
        };
        cursor.locate()?;
        Ok(cursor)
    }

    /// LSN of the next record `next_batch` will return.
    pub fn next_lsn(&self) -> u64 {
        self.next_lsn
    }

    /// Find the segment containing `next_lsn` and scan to its byte
    /// offset. Leaves the cursor unlocated when the directory holds no
    /// segments yet and the cursor wants LSN 0 (a journal about to be
    /// created).
    fn locate(&mut self) -> io::Result<()> {
        let segments = list_segments(&self.dir)?;
        let Some((start, path)) = segments
            .iter()
            .rev()
            .find(|(start, _)| *start <= self.next_lsn)
        else {
            if segments.is_empty() && self.next_lsn == 0 {
                return Ok(());
            }
            return Err(io::Error::new(
                io::ErrorKind::NotFound,
                format!(
                    "lsn {} precedes the oldest segment{}; history was compacted",
                    self.next_lsn,
                    segments
                        .first()
                        .map(|(s, _)| format!(" (starts at {s})"))
                        .unwrap_or_default(),
                ),
            ));
        };
        let bytes = std::fs::read(path)?;
        check_header(&bytes, *start, path)?;
        // Walk frames without decoding until the target LSN's offset.
        let mut lsn = *start;
        let mut offset = SEGMENT_HEADER_LEN;
        while lsn < self.next_lsn {
            match split_frame(&bytes[offset..]) {
                FrameSplit::Frame { frame_len } => {
                    offset += frame_len;
                    lsn += 1;
                }
                // Dense LSNs guarantee the target lives in this segment
                // if it lives anywhere; running out of frames means the
                // follower is ahead of this log.
                FrameSplit::Incomplete | FrameSplit::Corrupt => {
                    return Err(corrupt(format!(
                        "lsn {} is beyond the tail of segment {} (reached {lsn})",
                        self.next_lsn,
                        path.display()
                    )));
                }
            }
        }
        self.segment_start = Some(*start);
        self.offset = offset as u64;
        Ok(())
    }

    /// Read up to `max_records` records appended at or after the cursor
    /// position, following segment rotations. An empty batch means the
    /// cursor is caught up with the writer's durable tail.
    pub fn next_batch(&mut self, max_records: usize) -> io::Result<ShippedBatch> {
        let first_lsn = self.next_lsn;
        let mut records = Vec::new();
        if max_records == 0 {
            return Ok(ShippedBatch { first_lsn, records });
        }
        if self.segment_start.is_none() {
            self.locate()?;
            if self.segment_start.is_none() {
                return Ok(ShippedBatch { first_lsn, records });
            }
        }
        loop {
            let segment_start = self.segment_start.expect("located above");
            let path = self.dir.join(segment_file_name(segment_start));
            let mut file = File::open(&path)?;
            file.seek(SeekFrom::Start(self.offset))?;
            let mut buf = Vec::new();
            file.read_to_end(&mut buf)?;

            let mut pos = 0;
            let leftover = loop {
                if records.len() >= max_records {
                    break buf.len() - pos;
                }
                match split_frame(&buf[pos..]) {
                    FrameSplit::Frame { frame_len } => {
                        let payload = &buf[pos + FRAME_HEADER_LEN..pos + frame_len];
                        let record = JournalRecord::decode(payload).map_err(|err| {
                            corrupt(format!(
                                "undecodable record at lsn {} in {}: {err}",
                                self.next_lsn,
                                path.display()
                            ))
                        })?;
                        records.push(record);
                        pos += frame_len;
                        self.next_lsn += 1;
                    }
                    FrameSplit::Incomplete => break buf.len() - pos,
                    FrameSplit::Corrupt => {
                        return Err(corrupt(format!(
                            "corrupt frame at lsn {} in {}",
                            self.next_lsn,
                            path.display()
                        )));
                    }
                }
            };
            self.offset += pos as u64;
            if records.len() >= max_records {
                break;
            }

            // End of what this segment holds right now. A successor
            // starting exactly at our position means the writer rotated;
            // follow it. Otherwise we are at the live tail.
            let successor = list_segments(&self.dir)?
                .into_iter()
                .find(|(start, _)| *start == self.next_lsn && *start > segment_start);
            match successor {
                Some((start, _)) => {
                    if leftover > 0 {
                        // Rotation seals segments on frame boundaries;
                        // trailing garbage before a successor is damage.
                        return Err(corrupt(format!(
                            "{leftover} trailing bytes in sealed segment {}",
                            path.display()
                        )));
                    }
                    // Verify the successor's header before trusting it; a
                    // header still in flight (crash mid-rotation) means
                    // stay on the sealed segment and retry next call.
                    let successor_path = self.dir.join(segment_file_name(start));
                    let mut header = [0u8; SEGMENT_HEADER_LEN];
                    let mut file = File::open(&successor_path)?;
                    match file.read_exact(&mut header) {
                        Ok(()) => {
                            check_header(&header, start, &successor_path)?;
                            self.segment_start = Some(start);
                            self.offset = SEGMENT_HEADER_LEN as u64;
                        }
                        Err(_) => break,
                    }
                }
                None => break,
            }
        }
        Ok(ShippedBatch { first_lsn, records })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::journal::{Journal, JournalConfig};
    use crate::snapshot::write_snapshot;
    use std::fs;
    use wsrep_core::feedback::Feedback;
    use wsrep_core::id::{AgentId, ServiceId};
    use wsrep_core::time::Time;

    fn record(i: u64) -> JournalRecord {
        JournalRecord::Feedback(Feedback::scored(
            AgentId::new(i),
            ServiceId::new(i % 5),
            0.5,
            Time::new(i),
        ))
    }

    fn temp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("wsrep-journal-ship-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn cursor_follows_live_appends() {
        let dir = temp_dir("live");
        let mut journal = Journal::open(&dir, JournalConfig::default()).unwrap();
        let mut cursor = ShipCursor::open(&dir, 0).unwrap();
        assert!(cursor.next_batch(100).unwrap().records.is_empty());

        journal
            .append_batch(&(0..7).map(record).collect::<Vec<_>>())
            .unwrap();
        let batch = cursor.next_batch(100).unwrap();
        assert_eq!(batch.first_lsn, 0);
        assert_eq!(batch.records.len(), 7);
        assert_eq!(batch.records[3], record(3));
        assert_eq!(cursor.next_lsn(), 7);

        // Caught up: empty batch, position unchanged.
        assert!(cursor.next_batch(100).unwrap().records.is_empty());
        assert_eq!(cursor.next_lsn(), 7);

        journal.append_batch(&[record(7)]).unwrap();
        let batch = cursor.next_batch(100).unwrap();
        assert_eq!(batch.first_lsn, 7);
        assert_eq!(batch.records, vec![record(7)]);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn cursor_follows_rotation_and_respects_max_records() {
        let dir = temp_dir("rotate");
        let config = JournalConfig {
            max_segment_bytes: 200,
        };
        let mut journal = Journal::open(&dir, config).unwrap();
        for i in 0..40 {
            journal.append_batch(&[record(i)]).unwrap();
        }
        assert!(journal.stats().segments > 2, "rotation must have happened");

        let mut cursor = ShipCursor::open(&dir, 0).unwrap();
        let mut got = Vec::new();
        loop {
            let batch = cursor.next_batch(6).unwrap();
            if batch.records.is_empty() {
                break;
            }
            assert!(batch.records.len() <= 6);
            assert_eq!(batch.first_lsn, got.len() as u64);
            got.extend(batch.records);
        }
        assert_eq!(got.len(), 40);
        for (i, r) in got.iter().enumerate() {
            assert_eq!(*r, record(i as u64), "lsn {i}");
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn cursor_opens_mid_log_and_mid_segment() {
        let dir = temp_dir("mid");
        let config = JournalConfig {
            max_segment_bytes: 300,
        };
        let mut journal = Journal::open(&dir, config).unwrap();
        for i in 0..30 {
            journal.append_batch(&[record(i)]).unwrap();
        }
        for from in [0u64, 1, 13, 29, 30] {
            let mut cursor = ShipCursor::open(&dir, from).unwrap();
            let batch = cursor.next_batch(1000).unwrap();
            assert_eq!(batch.records.len() as u64, 30 - from, "from {from}");
            if from < 30 {
                assert_eq!(batch.first_lsn, from);
                assert_eq!(batch.records[0], record(from));
            }
        }
        // Beyond the tail: divergence.
        let err = ShipCursor::open(&dir, 31).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn compacted_history_refuses_to_open() {
        let dir = temp_dir("compacted");
        let config = JournalConfig {
            max_segment_bytes: 200,
        };
        let mut journal = Journal::open(&dir, config).unwrap();
        for i in 0..30 {
            journal.append_batch(&[record(i)]).unwrap();
        }
        write_snapshot(&dir, 20, &[], &[]).unwrap();
        let report = journal.compact(20).unwrap();
        assert!(report.segments_removed >= 1);
        let err = ShipCursor::open(&dir, 0).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::NotFound);
        // Everything at or after the oldest surviving segment still ships.
        let oldest = crate::segment::list_segments(&dir).unwrap()[0].0;
        let mut cursor = ShipCursor::open(&dir, oldest).unwrap();
        let batch = cursor.next_batch(1000).unwrap();
        assert_eq!(batch.first_lsn, oldest);
        assert_eq!(batch.records.len() as u64, 30 - oldest);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn empty_directory_at_lsn_zero_waits_for_the_journal() {
        let dir = temp_dir("empty");
        fs::create_dir_all(&dir).unwrap();
        let mut cursor = ShipCursor::open(&dir, 0).unwrap();
        assert!(cursor.next_batch(10).unwrap().records.is_empty());
        let mut journal = Journal::open(&dir, JournalConfig::default()).unwrap();
        journal.append_batch(&[record(0)]).unwrap();
        assert_eq!(cursor.next_batch(10).unwrap().records, vec![record(0)]);
        fs::remove_dir_all(&dir).unwrap();
    }
}
