//! Log shipping: an incremental reader over a *live* journal directory.
//!
//! A [`ShipCursor`] walks the segment files of a journal that another
//! writer (in the same process or another one) is still appending to,
//! handing out decoded records in LSN order. It remembers the byte
//! offset it has consumed inside each segment, so each
//! [`ShipCursor::next_batch`] call reads only the bytes appended since
//! the last call — the read side of primary → replica replication.
//!
//! Over a **partitioned** journal (one with `group-NNN/` writer-group
//! directories, see [`crate::group`]) the cursor opens one sub-cursor
//! per log — each group's, plus the root's own dense segments if the
//! directory was migrated from a single-log life — and merges their
//! LSN-tagged streams back into one ordered stream. The root stream is
//! *sealed*: once partitioned, no writer appends dense segments again,
//! so exhausting it ends that stream rather than meaning "caught up".
//!
//! Three conditions end or interrupt a walk:
//!
//! - **Live tail.** A segment ends mid-frame or exactly on a frame
//!   boundary with no successor segment: the cursor has caught up with
//!   that writer. `next_batch` returns what it has; call again later.
//! - **Rotation.** The current segment ends cleanly and a successor
//!   segment exists: the cursor follows the rotation and keeps reading.
//! - **Compaction.** The requested LSN lies below the oldest surviving
//!   history: the cursor can never serve it. [`ShipCursor::open`] fails
//!   with [`io::ErrorKind::NotFound`]; the follower must bootstrap from
//!   a snapshot instead.
//!
//! The cursor reads bytes the writer has `write(2)`-ed but possibly not
//! yet fsynced. Shipping such records is safe for replication: a record
//! that reaches a follower before the primary's fsync was never
//! acknowledged to any client, so a follower that applied it is merely
//! *ahead* of the acknowledged prefix, never divergent from it.
//!
//! # Gaps in the merged stream
//!
//! While the partition is healthy the merged stream is dense — the
//! allocator hands out contiguous LSNs and every claimed run lands in
//! some group. A crash can leave permanent interior gaps (see
//! [`crate::recovery`]). The merged cursor never guesses: an LSN `k` may
//! be skipped only when *every* live stream's next visible record is
//! above `k` — within one group LSNs strictly increase and writes land
//! in file order, so a later visible record proves `k` will never
//! appear there — and a skip only happens at the *start* of a batch, so
//! every returned batch is dense (`first_lsn + i`). A follower that
//! requires density (the replica pull loop does) sees the skip as
//! `first_lsn != requested` and falls back to re-seeding. One edge is
//! accepted: if a group stays idle forever after a crash, a gap can
//! never be proven permanent and the cursor holds position rather than
//! risk skipping an in-flight write.

use crate::frame::{split_frame, FrameSplit, FRAME_HEADER_LEN};
use crate::record::JournalRecord;
use crate::segment::{
    list_group_dirs, list_segments, segment_file_name, FORMAT_VERSION, LSN_TAG_LEN,
    SEGMENT_HEADER_LEN, SEGMENT_MAGIC, TAGGED_FORMAT_VERSION,
};
use crate::snapshot::list_snapshots;
use std::collections::VecDeque;
use std::fs::File;
use std::io::{self, Read, Seek, SeekFrom};
use std::path::{Path, PathBuf};

/// One `next_batch` result: records `first_lsn .. first_lsn + records.len()`.
#[derive(Debug)]
pub struct ShippedBatch {
    /// LSN of `records[0]` (meaningful only when records is non-empty).
    pub first_lsn: u64,
    /// Decoded records in dense LSN order. Empty means "caught up".
    pub records: Vec<JournalRecord>,
}

/// A stateful reader positioned at an LSN inside a live journal —
/// single-log or partitioned, decided by the directory's layout at open.
#[derive(Debug)]
pub struct ShipCursor {
    inner: Inner,
}

#[derive(Debug)]
enum Inner {
    Single(DirCursor),
    Merged(Merged),
}

fn corrupt(message: String) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, message)
}

/// Validate a segment header against the start LSN its file name claims;
/// returns whether the segment is LSN-tagged.
fn check_header(buf: &[u8], expect_start: u64, path: &Path) -> io::Result<bool> {
    if buf.len() < SEGMENT_HEADER_LEN {
        return Err(corrupt(format!(
            "segment {} truncated header",
            path.display()
        )));
    }
    if buf[..4] != SEGMENT_MAGIC {
        return Err(corrupt(format!("segment {} bad magic", path.display())));
    }
    let tagged = match buf[4] {
        FORMAT_VERSION => false,
        TAGGED_FORMAT_VERSION => true,
        version => {
            return Err(corrupt(format!(
                "segment {} unknown format version {version}",
                path.display()
            )))
        }
    };
    let start = u64::from_le_bytes(buf[5..SEGMENT_HEADER_LEN].try_into().unwrap());
    if start != expect_start {
        return Err(corrupt(format!(
            "segment {} header start {start} != file name start {expect_start}",
            path.display()
        )));
    }
    Ok(tagged)
}

impl ShipCursor {
    /// Position a cursor so its next record is `from_lsn`. A directory
    /// with `group-NNN/` subdirectories opens in merged mode; otherwise
    /// this is the classic single-log cursor.
    ///
    /// Errors with [`io::ErrorKind::NotFound`] when `from_lsn` precedes
    /// the oldest surviving history (compacted away), and with
    /// [`io::ErrorKind::InvalidData`] when `from_lsn` lies beyond a
    /// single log's tail — a follower asking for history this log never
    /// wrote has diverged.
    pub fn open(dir: impl Into<PathBuf>, from_lsn: u64) -> io::Result<ShipCursor> {
        let dir = dir.into();
        let groups = list_group_dirs(&dir)?;
        if groups.is_empty() {
            let mut cursor = DirCursor::new(dir, from_lsn, true);
            cursor.locate()?;
            return Ok(ShipCursor {
                inner: Inner::Single(cursor),
            });
        }

        // Merged mode. A group log cannot tell "LSN below my oldest
        // segment because it was compacted" from "…because another group
        // owns it", so compaction is detected against the snapshot: a
        // target below the newest snapshot is only servable if every
        // stream still has segments reaching down to it.
        let snapshot_lsn = list_snapshots(&dir)?
            .last()
            .map(|(lsn, _)| *lsn)
            .unwrap_or(0);
        let mut stream_dirs = Vec::new();
        if !list_segments(&dir)?.is_empty() {
            stream_dirs.push((dir.clone(), true)); // sealed pre-partition log
        }
        for (_, group_dir) in groups {
            stream_dirs.push((group_dir, false));
        }
        if from_lsn < snapshot_lsn {
            for (stream_dir, _) in &stream_dirs {
                let oldest = list_segments(stream_dir)?.first().map(|(start, _)| *start);
                if oldest.is_none_or(|start| start > from_lsn) {
                    return Err(io::Error::new(
                        io::ErrorKind::NotFound,
                        format!(
                            "lsn {from_lsn} precedes the snapshot at {snapshot_lsn} and \
                             stream {} no longer reaches it; history was compacted",
                            stream_dir.display()
                        ),
                    ));
                }
            }
        }
        let mut subs = Vec::with_capacity(stream_dirs.len());
        for (stream_dir, sealed) in stream_dirs {
            let mut cursor = DirCursor::new(stream_dir, from_lsn, false);
            cursor.locate()?;
            subs.push(SubCursor {
                cursor,
                buffer: VecDeque::new(),
                sealed,
            });
        }
        Ok(ShipCursor {
            inner: Inner::Merged(Merged {
                subs,
                next_lsn: from_lsn,
            }),
        })
    }

    /// LSN of the next record `next_batch` will return.
    pub fn next_lsn(&self) -> u64 {
        match &self.inner {
            Inner::Single(cursor) => cursor.next_lsn,
            Inner::Merged(merged) => merged.next_lsn,
        }
    }

    /// Read up to `max_records` records appended at or after the cursor
    /// position, following segment rotations. An empty batch means the
    /// cursor is caught up with the writer's durable tail.
    pub fn next_batch(&mut self, max_records: usize) -> io::Result<ShippedBatch> {
        match &mut self.inner {
            Inner::Single(cursor) => {
                let mut entries = VecDeque::new();
                cursor.next_entries(max_records, &mut entries)?;
                let first_lsn = entries
                    .front()
                    .map(|(lsn, _)| *lsn)
                    .unwrap_or(cursor.next_lsn);
                Ok(ShippedBatch {
                    first_lsn,
                    records: entries.into_iter().map(|(_, record)| record).collect(),
                })
            }
            Inner::Merged(merged) => merged.next_batch(max_records),
        }
    }
}

/// The N sub-cursors of a merged view over a partitioned journal.
#[derive(Debug)]
struct Merged {
    subs: Vec<SubCursor>,
    /// LSN of the next record the merged stream will return.
    next_lsn: u64,
}

#[derive(Debug)]
struct SubCursor {
    cursor: DirCursor,
    /// Entries read from this stream, not yet emitted by the merge.
    buffer: VecDeque<(u64, JournalRecord)>,
    /// A sealed stream never grows; exhausted means finished, not
    /// "caught up", so it stops vetoing gap skips.
    sealed: bool,
}

impl Merged {
    fn next_batch(&mut self, max_records: usize) -> io::Result<ShippedBatch> {
        let mut records = Vec::new();
        let mut first_lsn = self.next_lsn;
        while records.len() < max_records {
            // Refill empty buffers, then find the lowest buffered head.
            // A live stream with nothing visible blocks any gap skip:
            // the missing LSN may be its in-flight write.
            let mut blocked = false;
            let mut best: Option<(usize, u64)> = None;
            for (i, sub) in self.subs.iter_mut().enumerate() {
                if sub.buffer.is_empty() {
                    sub.cursor
                        .next_entries(max_records.max(64), &mut sub.buffer)?;
                }
                match sub.buffer.front() {
                    Some(&(lsn, _)) => {
                        if best.is_none_or(|(_, b)| lsn < b) {
                            best = Some((i, lsn));
                        }
                    }
                    None => blocked |= !sub.sealed,
                }
            }
            let Some((best, head)) = best else { break };
            if head < self.next_lsn {
                return Err(corrupt(format!(
                    "lsn {head} appeared twice across writer groups in {}",
                    self.subs[best].cursor.dir.display()
                )));
            }
            if head > self.next_lsn {
                if !records.is_empty() || blocked {
                    // Keep batches dense; and never skip a gap that a
                    // live stream could still fill.
                    break;
                }
                // Every stream's next record is above the gap: it is
                // permanently empty. Skip it at the batch boundary.
                self.next_lsn = head;
                first_lsn = head;
            }
            // Emit this stream's contiguous run.
            let sub = &mut self.subs[best];
            while records.len() < max_records {
                match sub.buffer.front() {
                    Some(&(lsn, _)) if lsn == self.next_lsn => {
                        let (_, record) = sub.buffer.pop_front().expect("front checked");
                        records.push(record);
                        self.next_lsn += 1;
                    }
                    _ => break,
                }
            }
        }
        Ok(ShippedBatch { first_lsn, records })
    }
}

/// A cursor over one directory's segment sequence — the whole journal in
/// single-log mode, one stream of a partitioned journal in merged mode.
#[derive(Debug)]
struct DirCursor {
    dir: PathBuf,
    /// For dense segments, the LSN of the frame at `offset`; for tagged
    /// segments, a lower bound on the next emitted LSN.
    next_lsn: u64,
    /// Start LSN of the segment the cursor is currently reading, when
    /// one has been located.
    segment_start: Option<u64>,
    /// Bytes consumed in the current segment, header included.
    offset: u64,
    /// Whether the current segment is LSN-tagged (set from its header).
    tagged: bool,
    /// Single-log semantics: positioning beyond the tail or below the
    /// oldest segment is an error. A merged stream is lenient — LSNs
    /// absent here live in sibling streams.
    strict: bool,
}

impl DirCursor {
    fn new(dir: PathBuf, from_lsn: u64, strict: bool) -> DirCursor {
        DirCursor {
            dir,
            next_lsn: from_lsn,
            segment_start: None,
            offset: 0,
            tagged: false,
            strict,
        }
    }

    /// Find the segment containing `next_lsn` and scan to its byte
    /// offset. Leaves the cursor unlocated when the directory holds no
    /// segments yet (strict mode additionally requires the cursor to
    /// want LSN 0 — a journal about to be created).
    fn locate(&mut self) -> io::Result<()> {
        let segments = list_segments(&self.dir)?;
        let candidate = segments
            .iter()
            .rev()
            .find(|(start, _)| *start <= self.next_lsn);
        let (start, path) = match candidate {
            Some(found) => found,
            None if segments.is_empty() => {
                if self.strict && self.next_lsn != 0 {
                    return Err(io::Error::new(
                        io::ErrorKind::NotFound,
                        format!(
                            "lsn {} precedes the oldest segment; history was compacted",
                            self.next_lsn
                        ),
                    ));
                }
                return Ok(());
            }
            None => {
                if self.strict {
                    return Err(io::Error::new(
                        io::ErrorKind::NotFound,
                        format!(
                            "lsn {} precedes the oldest segment (starts at {}); \
                             history was compacted",
                            self.next_lsn, segments[0].0,
                        ),
                    ));
                }
                // Lenient: LSNs below the oldest segment live in sibling
                // streams (or are a merged-level compaction concern the
                // open checked already). Start at the front.
                &segments[0]
            }
        };
        let bytes = std::fs::read(path)?;
        self.tagged = check_header(&bytes, *start, path)?;
        let mut offset = SEGMENT_HEADER_LEN;
        if self.tagged {
            // Walk frames until one reaches the target LSN.
            while let FrameSplit::Frame { frame_len } = split_frame(&bytes[offset..]) {
                let payload = &bytes[offset + FRAME_HEADER_LEN..offset + frame_len];
                if payload.len() < LSN_TAG_LEN {
                    break; // torn tail; reads stop here too
                }
                let lsn = u64::from_le_bytes(payload[..LSN_TAG_LEN].try_into().unwrap());
                if lsn >= self.next_lsn {
                    break;
                }
                offset += frame_len;
            }
        } else {
            // Dense LSNs: count frames up to the target.
            let mut lsn = *start;
            while lsn < self.next_lsn {
                match split_frame(&bytes[offset..]) {
                    FrameSplit::Frame { frame_len } => {
                        offset += frame_len;
                        lsn += 1;
                    }
                    // Dense LSNs guarantee the target lives in this
                    // segment if it lives anywhere; running out of frames
                    // means the follower is ahead of this log.
                    FrameSplit::Incomplete | FrameSplit::Corrupt => {
                        if self.strict {
                            return Err(corrupt(format!(
                                "lsn {} is beyond the tail of segment {} (reached {lsn})",
                                self.next_lsn,
                                path.display()
                            )));
                        }
                        // Lenient: a sealed pre-partition log simply ends
                        // here; rebase so later frames keep dense labels.
                        self.next_lsn = lsn;
                        break;
                    }
                }
            }
        }
        self.segment_start = Some(*start);
        self.offset = offset as u64;
        Ok(())
    }

    /// Read up to `max` entries at or after the cursor position into
    /// `out`, following segment rotations. For tagged streams, entries
    /// below the cursor's lower bound are skipped, not emitted.
    fn next_entries(
        &mut self,
        max: usize,
        out: &mut VecDeque<(u64, JournalRecord)>,
    ) -> io::Result<()> {
        if max == 0 {
            return Ok(());
        }
        if self.segment_start.is_none() {
            self.locate()?;
            if self.segment_start.is_none() {
                return Ok(());
            }
        }
        let mut added = 0;
        loop {
            let segment_start = self.segment_start.expect("located above");
            let path = self.dir.join(segment_file_name(segment_start));
            let mut file = File::open(&path)?;
            file.seek(SeekFrom::Start(self.offset))?;
            let mut buf = Vec::new();
            file.read_to_end(&mut buf)?;

            let mut pos = 0;
            let leftover = loop {
                if added >= max {
                    break buf.len() - pos;
                }
                match split_frame(&buf[pos..]) {
                    FrameSplit::Frame { frame_len } => {
                        let payload = &buf[pos + FRAME_HEADER_LEN..pos + frame_len];
                        let (lsn, body) = if self.tagged {
                            if payload.len() < LSN_TAG_LEN {
                                return Err(corrupt(format!(
                                    "tagged frame shorter than its LSN prefix in {}",
                                    path.display()
                                )));
                            }
                            let lsn =
                                u64::from_le_bytes(payload[..LSN_TAG_LEN].try_into().unwrap());
                            (lsn, &payload[LSN_TAG_LEN..])
                        } else {
                            (self.next_lsn, payload)
                        };
                        if lsn < self.next_lsn {
                            // Tagged stream positioned past this entry.
                            pos += frame_len;
                            continue;
                        }
                        let record = JournalRecord::decode(body).map_err(|err| {
                            corrupt(format!(
                                "undecodable record at lsn {lsn} in {}: {err}",
                                path.display()
                            ))
                        })?;
                        out.push_back((lsn, record));
                        added += 1;
                        pos += frame_len;
                        self.next_lsn = lsn + 1;
                    }
                    FrameSplit::Incomplete => break buf.len() - pos,
                    FrameSplit::Corrupt => {
                        return Err(corrupt(format!(
                            "corrupt frame at lsn {} in {}",
                            self.next_lsn,
                            path.display()
                        )));
                    }
                }
            };
            self.offset += pos as u64;
            if added >= max {
                break;
            }

            // End of what this segment holds right now. For dense logs a
            // successor must start exactly at our position; a tagged
            // log's successor is simply the next segment (its name is a
            // lower bound, not a position). Otherwise: live tail.
            let successor = list_segments(&self.dir)?.into_iter().find(|(start, _)| {
                *start > segment_start && (self.tagged || *start == self.next_lsn)
            });
            match successor {
                Some((start, _)) => {
                    if leftover > 0 {
                        // Rotation seals segments on frame boundaries;
                        // trailing garbage before a successor is damage.
                        return Err(corrupt(format!(
                            "{leftover} trailing bytes in sealed segment {}",
                            path.display()
                        )));
                    }
                    // Verify the successor's header before trusting it; a
                    // header still in flight (crash mid-rotation) means
                    // stay on the sealed segment and retry next call.
                    let successor_path = self.dir.join(segment_file_name(start));
                    let mut header = [0u8; SEGMENT_HEADER_LEN];
                    let mut file = File::open(&successor_path)?;
                    match file.read_exact(&mut header) {
                        Ok(()) => {
                            self.tagged = check_header(&header, start, &successor_path)?;
                            self.segment_start = Some(start);
                            self.offset = SEGMENT_HEADER_LEN as u64;
                        }
                        Err(_) => break,
                    }
                }
                None => break,
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::group::GroupSet;
    use crate::journal::{Journal, JournalConfig};
    use crate::snapshot::write_snapshot;
    use std::fs;
    use wsrep_core::feedback::Feedback;
    use wsrep_core::id::{AgentId, ServiceId};
    use wsrep_core::time::Time;

    fn record(i: u64) -> JournalRecord {
        JournalRecord::Feedback(Feedback::scored(
            AgentId::new(i),
            ServiceId::new(i % 5),
            0.5,
            Time::new(i),
        ))
    }

    fn temp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("wsrep-journal-ship-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn cursor_follows_live_appends() {
        let dir = temp_dir("live");
        let mut journal = Journal::open(&dir, JournalConfig::default()).unwrap();
        let mut cursor = ShipCursor::open(&dir, 0).unwrap();
        assert!(cursor.next_batch(100).unwrap().records.is_empty());

        journal
            .append_batch(&(0..7).map(record).collect::<Vec<_>>())
            .unwrap();
        let batch = cursor.next_batch(100).unwrap();
        assert_eq!(batch.first_lsn, 0);
        assert_eq!(batch.records.len(), 7);
        assert_eq!(batch.records[3], record(3));
        assert_eq!(cursor.next_lsn(), 7);

        // Caught up: empty batch, position unchanged.
        assert!(cursor.next_batch(100).unwrap().records.is_empty());
        assert_eq!(cursor.next_lsn(), 7);

        journal.append_batch(&[record(7)]).unwrap();
        let batch = cursor.next_batch(100).unwrap();
        assert_eq!(batch.first_lsn, 7);
        assert_eq!(batch.records, vec![record(7)]);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn cursor_follows_rotation_and_respects_max_records() {
        let dir = temp_dir("rotate");
        let config = JournalConfig {
            max_segment_bytes: 200,
        };
        let mut journal = Journal::open(&dir, config).unwrap();
        for i in 0..40 {
            journal.append_batch(&[record(i)]).unwrap();
        }
        assert!(journal.stats().segments > 2, "rotation must have happened");

        let mut cursor = ShipCursor::open(&dir, 0).unwrap();
        let mut got = Vec::new();
        loop {
            let batch = cursor.next_batch(6).unwrap();
            if batch.records.is_empty() {
                break;
            }
            assert!(batch.records.len() <= 6);
            assert_eq!(batch.first_lsn, got.len() as u64);
            got.extend(batch.records);
        }
        assert_eq!(got.len(), 40);
        for (i, r) in got.iter().enumerate() {
            assert_eq!(*r, record(i as u64), "lsn {i}");
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn cursor_opens_mid_log_and_mid_segment() {
        let dir = temp_dir("mid");
        let config = JournalConfig {
            max_segment_bytes: 300,
        };
        let mut journal = Journal::open(&dir, config).unwrap();
        for i in 0..30 {
            journal.append_batch(&[record(i)]).unwrap();
        }
        for from in [0u64, 1, 13, 29, 30] {
            let mut cursor = ShipCursor::open(&dir, from).unwrap();
            let batch = cursor.next_batch(1000).unwrap();
            assert_eq!(batch.records.len() as u64, 30 - from, "from {from}");
            if from < 30 {
                assert_eq!(batch.first_lsn, from);
                assert_eq!(batch.records[0], record(from));
            }
        }
        // Beyond the tail: divergence.
        let err = ShipCursor::open(&dir, 31).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn compacted_history_refuses_to_open() {
        let dir = temp_dir("compacted");
        let config = JournalConfig {
            max_segment_bytes: 200,
        };
        let mut journal = Journal::open(&dir, config).unwrap();
        for i in 0..30 {
            journal.append_batch(&[record(i)]).unwrap();
        }
        write_snapshot(&dir, 20, &[], &[]).unwrap();
        let report = journal.compact(20).unwrap();
        assert!(report.segments_removed >= 1);
        let err = ShipCursor::open(&dir, 0).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::NotFound);
        // Everything at or after the oldest surviving segment still ships.
        let oldest = crate::segment::list_segments(&dir).unwrap()[0].0;
        let mut cursor = ShipCursor::open(&dir, oldest).unwrap();
        let batch = cursor.next_batch(1000).unwrap();
        assert_eq!(batch.first_lsn, oldest);
        assert_eq!(batch.records.len() as u64, 30 - oldest);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn empty_directory_at_lsn_zero_waits_for_the_journal() {
        let dir = temp_dir("empty");
        fs::create_dir_all(&dir).unwrap();
        let mut cursor = ShipCursor::open(&dir, 0).unwrap();
        assert!(cursor.next_batch(10).unwrap().records.is_empty());
        let mut journal = Journal::open(&dir, JournalConfig::default()).unwrap();
        journal.append_batch(&[record(0)]).unwrap();
        assert_eq!(cursor.next_batch(10).unwrap().records, vec![record(0)]);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn merged_cursor_interleaves_groups_into_one_dense_stream() {
        let dir = temp_dir("merged");
        let set = GroupSet::open(&dir, 3, JournalConfig::default(), 0).unwrap();
        // Spray 30 single-record batches across groups out of order.
        for i in 0..30u64 {
            set.append_batch((i % 3) as usize, &[record(i)]).unwrap();
        }
        let mut cursor = ShipCursor::open(&dir, 0).unwrap();
        let mut got = Vec::new();
        loop {
            let batch = cursor.next_batch(7).unwrap();
            if batch.records.is_empty() {
                break;
            }
            assert_eq!(batch.first_lsn, got.len() as u64, "batches stay dense");
            got.extend(batch.records);
        }
        assert_eq!(got.len(), 30);
        for (i, r) in got.iter().enumerate() {
            assert_eq!(*r, record(i as u64), "lsn {i}");
        }
        assert_eq!(cursor.next_lsn(), 30);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn merged_cursor_follows_live_appends_and_waits_for_stragglers() {
        let dir = temp_dir("merged-live");
        let set = GroupSet::open(&dir, 2, JournalConfig::default(), 0).unwrap();
        let mut cursor = ShipCursor::open(&dir, 0).unwrap();
        assert!(cursor.next_batch(100).unwrap().records.is_empty());

        // Group 1 claims LSN 0 but its write has not landed yet; group 0
        // writes LSN 1. The cursor must not skip LSN 0.
        let first = set.allocator().allocate(1, 1);
        assert_eq!(first, 0);
        set.append_batch(0, &[record(1)]).unwrap();
        let batch = cursor.next_batch(100).unwrap();
        assert!(
            batch.records.is_empty(),
            "must hold for the in-flight record at LSN 0"
        );

        // The straggler lands: both records ship in LSN order.
        set.lock(1).append_batch_at(0, &[record(0)]).unwrap();
        set.allocator().complete(1);
        let batch = cursor.next_batch(100).unwrap();
        assert_eq!(batch.first_lsn, 0);
        assert_eq!(batch.records, vec![record(0), record(1)]);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn merged_cursor_reads_migrated_root_then_groups() {
        let dir = temp_dir("merged-migrated");
        {
            let mut journal = Journal::open(&dir, JournalConfig::default()).unwrap();
            journal
                .append_batch(&(0..5).map(record).collect::<Vec<_>>())
                .unwrap();
        }
        let set = GroupSet::open(&dir, 2, JournalConfig::default(), 0).unwrap();
        for i in 5..12u64 {
            set.append_batch((i % 2) as usize, &[record(i)]).unwrap();
        }
        let mut cursor = ShipCursor::open(&dir, 0).unwrap();
        let mut got = Vec::new();
        loop {
            let batch = cursor.next_batch(4).unwrap();
            if batch.records.is_empty() {
                break;
            }
            got.extend(batch.records);
        }
        assert_eq!(got.len(), 12, "root records then group records");
        for (i, r) in got.iter().enumerate() {
            assert_eq!(*r, record(i as u64), "lsn {i}");
        }
        // Positioning mid-way through the sealed root also works.
        let mut cursor = ShipCursor::open(&dir, 3).unwrap();
        let batch = cursor.next_batch(100).unwrap();
        assert_eq!(batch.first_lsn, 3);
        assert_eq!(batch.records.len(), 9);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn merged_cursor_rotates_within_groups() {
        let dir = temp_dir("merged-rotate");
        let config = JournalConfig {
            max_segment_bytes: 160,
        };
        let set = GroupSet::open(&dir, 2, config, 0).unwrap();
        for i in 0..40u64 {
            set.append_batch((i % 2) as usize, &[record(i)]).unwrap();
        }
        assert!(set.stats().segments > 4, "rotation must have happened");
        let mut cursor = ShipCursor::open(&dir, 0).unwrap();
        let batch = cursor.next_batch(1000).unwrap();
        assert_eq!(batch.records.len(), 40);
        for (i, r) in batch.records.iter().enumerate() {
            assert_eq!(*r, record(i as u64), "lsn {i}");
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn merged_cursor_skips_a_proven_permanent_gap_at_batch_start() {
        let dir = temp_dir("merged-gap");
        let set = GroupSet::open(&dir, 2, JournalConfig::default(), 0).unwrap();
        set.append_batch(0, &[record(0)]).unwrap(); // LSN 0
        set.append_batch(1, &[record(1)]).unwrap(); // LSN 1 (will be torn)
        set.append_batch(0, &[record(2)]).unwrap(); // LSN 2
        set.append_batch(1, &[record(3)]).unwrap(); // LSN 3
        drop(set);
        // Tear group 1's record at LSN 1 out of its log, leaving a gap…
        let group1 = dir.join(crate::segment::group_dir_name(1));
        let (_, path) = list_segments(&group1).unwrap().pop().unwrap();
        let bytes = fs::read(&path).unwrap();
        let scan = crate::segment::scan_segment_entries(&path)
            .unwrap()
            .unwrap();
        assert_eq!(scan.entries.len(), 2);
        // Keep header + drop the first frame by rewriting the file with
        // only the second frame's bytes — a gap with a visible successor.
        let first_frame_end = {
            let mut offset = SEGMENT_HEADER_LEN;
            if let FrameSplit::Frame { frame_len } = split_frame(&bytes[offset..]) {
                offset += frame_len;
            }
            offset
        };
        let mut rewritten = bytes[..SEGMENT_HEADER_LEN].to_vec();
        rewritten.extend_from_slice(&bytes[first_frame_end..]);
        fs::write(&path, &rewritten).unwrap();

        let mut cursor = ShipCursor::open(&dir, 0).unwrap();
        let batch = cursor.next_batch(100).unwrap();
        assert_eq!(batch.first_lsn, 0);
        assert_eq!(batch.records, vec![record(0)], "stops before the gap");
        // Both streams now show records above LSN 1: the gap is provably
        // permanent and the next batch skips it — density broken only at
        // the batch boundary, where a replica detects and re-seeds.
        let batch = cursor.next_batch(100).unwrap();
        assert_eq!(batch.first_lsn, 2);
        assert_eq!(batch.records, vec![record(2), record(3)]);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn merged_compacted_history_refuses_to_open() {
        let dir = temp_dir("merged-compacted");
        let config = JournalConfig {
            max_segment_bytes: 160,
        };
        let set = GroupSet::open(&dir, 2, config, 0).unwrap();
        for i in 0..40u64 {
            set.append_batch((i % 2) as usize, &[record(i)]).unwrap();
        }
        write_snapshot(&dir, 30, &[], &[]).unwrap();
        let report = set.compact(30).unwrap();
        assert!(report.segments_removed >= 1);
        let err = ShipCursor::open(&dir, 0).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::NotFound);
        // At/after the snapshot still ships.
        let mut cursor = ShipCursor::open(&dir, 30).unwrap();
        let batch = cursor.next_batch(1000).unwrap();
        assert_eq!(batch.first_lsn, 30);
        assert_eq!(batch.records.len(), 10);
        fs::remove_dir_all(&dir).unwrap();
    }
}
