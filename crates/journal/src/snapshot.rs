//! Point-in-time snapshots of the registry state.
//!
//! A snapshot at LSN `L` captures everything the journal's first `L`
//! records would rebuild: the live listing table and the full feedback
//! log (per-subject order preserved). Recovery then only replays WAL
//! records with `lsn >= L`, and the compactor may delete every segment
//! whose records all have `lsn < L`.
//!
//! File layout (`snap-{lsn:016x}.snap`):
//!
//! ```text
//! magic "WSRS" | version u8 | lsn u64 | body_len u64 | body_crc u32 | body
//! body = n_listings u64, listings…, n_feedback u64, feedback…
//! ```
//!
//! Snapshots are written to a temp file, fsynced, then renamed into
//! place, so a crash mid-snapshot leaves either the old snapshot or the
//! new one — never a half file with a valid name. The checksum guards the
//! rename-visible content anyway; an invalid snapshot is skipped and the
//! previous one is used.

use crate::codec::{get_feedback, get_listing, put_feedback, put_listing, put_u64, Cursor};
use crate::frame::crc32;
use std::fs::{self, File, OpenOptions};
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use wsrep_core::feedback::Feedback;
use wsrep_sim::registry::Listing;

/// Magic bytes opening every snapshot file.
pub const SNAPSHOT_MAGIC: [u8; 4] = *b"WSRS";
const HEADER_LEN: usize = 4 + 1 + 8 + 8 + 4;

/// The file name of the snapshot covering records `[0, lsn)`.
pub fn snapshot_file_name(lsn: u64) -> String {
    format!("snap-{lsn:016x}.snap")
}

/// Parse a snapshot file name back to its covered LSN.
pub fn parse_snapshot_name(name: &str) -> Option<u64> {
    let hex = name.strip_prefix("snap-")?.strip_suffix(".snap")?;
    if hex.len() != 16 {
        return None;
    }
    u64::from_str_radix(hex, 16).ok()
}

/// A decoded snapshot.
#[derive(Debug, Clone, PartialEq)]
pub struct Snapshot {
    /// The snapshot covers journal records `[0, lsn)`.
    pub lsn: u64,
    /// Live listings at the snapshot point.
    pub listings: Vec<Listing>,
    /// Every feedback report applied before the snapshot point, in
    /// original order per subject.
    pub feedback: Vec<Feedback>,
}

impl Snapshot {
    /// Total entries carried (listings + feedback).
    pub fn entries(&self) -> u64 {
        self.listings.len() as u64 + self.feedback.len() as u64
    }
}

/// Snapshot paths in the directory, ordered by covered LSN.
pub fn list_snapshots(dir: &Path) -> io::Result<Vec<(u64, PathBuf)>> {
    let mut snapshots = Vec::new();
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        if let Some(lsn) = entry.file_name().to_str().and_then(parse_snapshot_name) {
            snapshots.push((lsn, entry.path()));
        }
    }
    snapshots.sort_by_key(|(lsn, _)| *lsn);
    Ok(snapshots)
}

/// Write a snapshot atomically (temp file + fsync + rename) and return
/// its final path.
pub fn write_snapshot(
    dir: &Path,
    lsn: u64,
    listings: &[Listing],
    feedback: &[Feedback],
) -> io::Result<PathBuf> {
    let mut body = Vec::new();
    put_u64(&mut body, listings.len() as u64);
    for listing in listings {
        put_listing(&mut body, listing);
    }
    put_u64(&mut body, feedback.len() as u64);
    for report in feedback {
        put_feedback(&mut body, report);
    }

    let mut bytes = Vec::with_capacity(HEADER_LEN + body.len());
    bytes.extend_from_slice(&SNAPSHOT_MAGIC);
    bytes.push(crate::segment::FORMAT_VERSION);
    bytes.extend_from_slice(&lsn.to_le_bytes());
    bytes.extend_from_slice(&(body.len() as u64).to_le_bytes());
    bytes.extend_from_slice(&crc32(&body).to_le_bytes());
    bytes.extend_from_slice(&body);

    let final_path = dir.join(snapshot_file_name(lsn));
    let tmp_path = dir.join(format!("{}.tmp", snapshot_file_name(lsn)));
    let mut file = OpenOptions::new()
        .create(true)
        .truncate(true)
        .write(true)
        .open(&tmp_path)?;
    file.write_all(&bytes)?;
    file.sync_data()?;
    drop(file);
    fs::rename(&tmp_path, &final_path)?;
    if let Ok(handle) = File::open(dir) {
        let _ = handle.sync_all();
    }
    Ok(final_path)
}

/// Read and validate one snapshot file; `Ok(None)` if it is damaged.
pub fn read_snapshot(path: &Path) -> io::Result<Option<Snapshot>> {
    let bytes = fs::read(path)?;
    if bytes.len() < HEADER_LEN
        || bytes[..4] != SNAPSHOT_MAGIC
        || bytes[4] != crate::segment::FORMAT_VERSION
    {
        return Ok(None);
    }
    let lsn = u64::from_le_bytes(bytes[5..13].try_into().unwrap());
    let body_len = u64::from_le_bytes(bytes[13..21].try_into().unwrap()) as usize;
    let body_crc = u32::from_le_bytes(bytes[21..25].try_into().unwrap());
    let body = &bytes[HEADER_LEN..];
    if body.len() != body_len || crc32(body) != body_crc {
        return Ok(None);
    }
    let mut cur = Cursor::new(body);
    let mut decode = || -> Result<(Vec<Listing>, Vec<Feedback>), crate::codec::CodecError> {
        let n_listings = cur.u64()?;
        let mut listings = Vec::with_capacity(n_listings.min(1 << 20) as usize);
        for _ in 0..n_listings {
            listings.push(get_listing(&mut cur)?);
        }
        let n_feedback = cur.u64()?;
        let mut feedback = Vec::with_capacity(n_feedback.min(1 << 20) as usize);
        for _ in 0..n_feedback {
            feedback.push(get_feedback(&mut cur)?);
        }
        Ok((listings, feedback))
    };
    match decode() {
        Ok((listings, feedback)) => Ok(Some(Snapshot {
            lsn,
            listings,
            feedback,
        })),
        Err(_) => Ok(None),
    }
}

/// The newest snapshot that validates, if any.
pub fn latest_snapshot(dir: &Path) -> io::Result<Option<Snapshot>> {
    for (_, path) in list_snapshots(dir)?.into_iter().rev() {
        if let Some(snapshot) = read_snapshot(&path)? {
            return Ok(Some(snapshot));
        }
    }
    Ok(None)
}

#[cfg(test)]
mod tests {
    use super::*;
    use wsrep_core::id::{AgentId, ProviderId, ServiceId};
    use wsrep_core::time::Time;
    use wsrep_qos::metric::Metric;
    use wsrep_qos::value::QosVector;

    fn listing(service: u64) -> Listing {
        Listing {
            service: ServiceId::new(service),
            provider: ProviderId::new(service),
            category: 1,
            advertised: QosVector::from_pairs([(Metric::Price, service as f64)]),
        }
    }

    fn feedback(i: u64) -> Feedback {
        Feedback::scored(AgentId::new(i), ServiceId::new(i % 2), 0.25, Time::new(i))
    }

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "wsrep-journal-snapshot-{tag}-{}",
            std::process::id()
        ));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn snapshot_round_trips() {
        let dir = temp_dir("roundtrip");
        let listings: Vec<Listing> = (0..3).map(listing).collect();
        let feedback: Vec<Feedback> = (0..10).map(feedback).collect();
        let path = write_snapshot(&dir, 42, &listings, &feedback).unwrap();
        let snapshot = read_snapshot(&path).unwrap().expect("valid snapshot");
        assert_eq!(snapshot.lsn, 42);
        assert_eq!(snapshot.listings, listings);
        assert_eq!(snapshot.feedback, feedback);
        assert_eq!(snapshot.entries(), 13);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupted_snapshot_is_skipped_for_the_previous_one() {
        let dir = temp_dir("fallback");
        write_snapshot(&dir, 10, &[listing(1)], &[feedback(0)]).unwrap();
        let newer = write_snapshot(&dir, 20, &[listing(2)], &[feedback(1)]).unwrap();
        // Damage the newer snapshot's body.
        let mut bytes = fs::read(&newer).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF;
        fs::write(&newer, &bytes).unwrap();
        let snapshot = latest_snapshot(&dir).unwrap().expect("older one survives");
        assert_eq!(snapshot.lsn, 10);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn empty_dir_has_no_snapshot() {
        let dir = temp_dir("none");
        assert_eq!(latest_snapshot(&dir).unwrap(), None);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn names_round_trip() {
        assert_eq!(parse_snapshot_name(&snapshot_file_name(77)), Some(77));
        assert_eq!(parse_snapshot_name("wal-0000000000000000.log"), None);
        assert_eq!(parse_snapshot_name("snap-0000000000000000.snap.tmp"), None);
    }
}
