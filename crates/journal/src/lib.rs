//! # wsrep-journal — durability for the reputation registry
//!
//! The paper's activities model centers on a **central QoS registry that
//! accumulates consumer feedback over time**; a registry that forgets its
//! feedback on restart defeats the whole selection mechanism. This crate
//! is the durability layer under `wsrep-serve`: an append-only,
//! CRC32-framed, segment-rotated **write-ahead log** of registry events,
//! point-in-time **snapshots**, and a **recovery** path that replays
//! `snapshot + WAL tail` back into a serving registry — the same
//! log-then-derive architecture rs-eigentrust uses for its attestation
//! log.
//!
//! - [`record`] — the event vocabulary: feedback, publish, deregister;
//! - [`codec`] — the hand-rolled, version-pinned binary layout;
//! - [`faults`] — failpoint-style fault injection over
//!   append/fsync/rotate/snapshot, so durability claims are testable
//!   under disk failures, not just SIGKILL;
//! - [`frame`] — CRC32 framing with torn-write detection;
//! - [`segment`] — LSN-named segment files (dense and LSN-tagged) and
//!   their scanners;
//! - [`journal`] — the group-committing writer (one fsync per batch);
//! - [`group`] — the partitioned write path: N writer-group journals
//!   sharing one LSN space via a global allocator, with a cross-group
//!   durable watermark;
//! - [`snapshot`] — atomic point-in-time state captures;
//! - [`recovery`] — snapshot + tail replay, merging all log streams by
//!   LSN, tolerant of torn final records;
//! - [`compact`] — deletion of segments fully covered by a snapshot;
//! - [`ship`] — incremental reads of a live log (single or merged
//!   across writer groups), for replication followers.
//!
//! ## Durability contract
//!
//! A record is *acknowledged* once the [`Journal::append_batch`] call
//! that carried it returns `Ok`: it has been written and fdatasync'd.
//! Recovery restores **at least the acknowledged prefix** of the log — a
//! crash mid-append loses only unacknowledged records, which the framing
//! detects and truncates per log stream. Acknowledged data is never
//! silently dropped: a torn *non-final* segment refuses to open. In a
//! partitioned journal the acknowledged prefix is bounded by the
//! cross-group watermark ([`group::LsnAllocator::durable_lsn`]); a crash
//! may additionally preserve unacknowledged records above a gap, which
//! recovery keeps (they are a superset of every acknowledged record).

pub mod codec;
pub mod compact;
pub mod faults;
pub mod frame;
pub mod group;
pub mod journal;
pub mod record;
pub mod recovery;
pub mod segment;
pub mod ship;
pub mod snapshot;

pub use compact::{compact_dir, CompactReport};
pub use faults::{Fault, FaultCounters, FaultScript, IoOp, IoPolicy, PeriodicFaults};
pub use group::{GroupSet, LsnAllocator};
pub use journal::{AppendReceipt, Journal, JournalConfig, JournalStats};
pub use record::JournalRecord;
pub use recovery::{recover, Recovered};
pub use segment::{group_dir_name, list_group_dirs};
pub use ship::{ShipCursor, ShippedBatch};
pub use snapshot::{latest_snapshot, write_snapshot, Snapshot};
