//! # wsrep-journal — durability for the reputation registry
//!
//! The paper's activities model centers on a **central QoS registry that
//! accumulates consumer feedback over time**; a registry that forgets its
//! feedback on restart defeats the whole selection mechanism. This crate
//! is the durability layer under `wsrep-serve`: an append-only,
//! CRC32-framed, segment-rotated **write-ahead log** of registry events,
//! point-in-time **snapshots**, and a **recovery** path that replays
//! `snapshot + WAL tail` back into a serving registry — the same
//! log-then-derive architecture rs-eigentrust uses for its attestation
//! log.
//!
//! - [`record`] — the event vocabulary: feedback, publish, deregister;
//! - [`codec`] — the hand-rolled, version-pinned binary layout;
//! - [`frame`] — CRC32 framing with torn-write detection;
//! - [`segment`] — LSN-named segment files and their scanner;
//! - [`journal`] — the group-committing writer (one fsync per batch);
//! - [`snapshot`] — atomic point-in-time state captures;
//! - [`recovery`] — snapshot + tail replay, tolerant of a torn final
//!   record;
//! - [`compact`] — deletion of segments fully covered by a snapshot;
//! - [`ship`] — incremental reads of a live log, for replication
//!   followers.
//!
//! ## Durability contract
//!
//! A record is *acknowledged* once the [`Journal::append_batch`] call
//! that carried it returns `Ok`: it has been written and fdatasync'd.
//! Recovery restores **exactly the acknowledged prefix** of the log — a
//! crash mid-append loses only the unacknowledged tail, which the framing
//! detects and truncates. Acknowledged data is never silently dropped: a
//! torn *non-final* segment refuses to open.

pub mod codec;
pub mod compact;
pub mod frame;
pub mod journal;
pub mod record;
pub mod recovery;
pub mod segment;
pub mod ship;
pub mod snapshot;

pub use compact::{compact_dir, CompactReport};
pub use journal::{AppendReceipt, Journal, JournalConfig, JournalStats};
pub use record::JournalRecord;
pub use recovery::{recover, Recovered};
pub use ship::{ShipCursor, ShippedBatch};
pub use snapshot::{latest_snapshot, write_snapshot, Snapshot};
