//! Failpoint-style fault injection for journal I/O.
//!
//! Every durability claim in this crate is only as good as its behavior
//! when the disk misbehaves — and SIGKILL-style crash tests exercise one
//! failure shape only. This module is the pluggable seam that makes the
//! others reachable: an [`IoPolicy`] installed on a [`Journal`] (or a
//! whole [`GroupSet`]) is consulted before each append, fsync, rotation
//! and snapshot, and may fail the operation with an `ENOSPC`-style
//! error, tear the write (leave a partial frame on disk, as a crash
//! mid-`write` would), or delay it.
//!
//! Two deterministic policies cover the two testing styles:
//!
//! - [`FaultScript`] — an explicit per-operation queue ("let two appends
//!   pass, then tear the third"), for unit tests and generated chaos
//!   schedules;
//! - [`PeriodicFaults`] — every-Nth-operation faults with running
//!   counters, for long smoke runs (loadgen, the CI chaos job) where the
//!   gate needs a guaranteed-nonzero injected-fault count.
//!
//! The contract the [`Journal`] upholds under injection: a failed append
//! restores the active segment to its pre-append length (best effort),
//! so a rejected batch can never become durable later by riding a
//! subsequent batch's fsync — except [`Fault::Torn`], which deliberately
//! leaves the partial bytes so recovery's torn-tail repair is exercised.
//!
//! [`Journal`]: crate::journal::Journal
//! [`GroupSet`]: crate::group::GroupSet

use std::collections::VecDeque;
use std::fmt;
use std::io;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Duration;

/// The journal I/O operations a policy can intercept.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IoOp {
    /// Writing a framed batch to the active segment.
    Append,
    /// The group-commit `fdatasync` that acknowledges a batch.
    Fsync,
    /// Sealing the active segment and creating its successor.
    Rotate,
    /// Writing a point-in-time snapshot (consulted by the checkpointer).
    Snapshot,
}

impl IoOp {
    /// Every interceptable operation, in counter-index order.
    pub const ALL: [IoOp; 4] = [IoOp::Append, IoOp::Fsync, IoOp::Rotate, IoOp::Snapshot];

    fn index(self) -> usize {
        match self {
            IoOp::Append => 0,
            IoOp::Fsync => 1,
            IoOp::Rotate => 2,
            IoOp::Snapshot => 3,
        }
    }

    /// Lower-case operation name, for error messages and logs.
    pub fn name(self) -> &'static str {
        match self {
            IoOp::Append => "append",
            IoOp::Fsync => "fsync",
            IoOp::Rotate => "rotate",
            IoOp::Snapshot => "snapshot",
        }
    }
}

impl fmt::Display for IoOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// What to do to an intercepted operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// Fail the operation with an error of this kind before it touches
    /// the file.
    Error(io::ErrorKind),
    /// Write only the first `keep` bytes of the batch, then fail — the
    /// on-disk shape of a crash mid-`write`. Appends only; on other
    /// operations it degenerates to an error.
    Torn { keep: usize },
    /// Sleep, then let the operation proceed (a stalling disk).
    Delay(Duration),
}

impl Fault {
    /// The classic disk-full failure.
    pub fn enospc() -> Fault {
        Fault::Error(io::ErrorKind::StorageFull)
    }

    /// Render this fault as the `io::Error` the intercepted operation
    /// reports. [`Fault::Delay`] never surfaces as an error from the
    /// journal itself, but callers consulting a policy around their own
    /// I/O (e.g. the checkpointer's snapshot write) use this too.
    pub fn into_error(self, op: IoOp) -> io::Error {
        let kind = match self {
            Fault::Error(kind) => kind,
            _ => io::ErrorKind::Other,
        };
        io::Error::new(kind, format!("injected {op} fault"))
    }
}

/// Per-operation counts of injected faults (delays included).
#[derive(Debug, Default)]
pub struct FaultCounters {
    injected: [AtomicU64; 4],
}

impl FaultCounters {
    fn record(&self, op: IoOp) {
        self.injected[op.index()].fetch_add(1, Ordering::Relaxed);
    }

    /// Faults injected into one operation.
    pub fn for_op(&self, op: IoOp) -> u64 {
        self.injected[op.index()].load(Ordering::Relaxed)
    }

    /// Faults injected across all operations.
    pub fn total(&self) -> u64 {
        IoOp::ALL.iter().map(|&op| self.for_op(op)).sum()
    }
}

/// A fault-injection policy consulted before each journal I/O
/// operation. `None` lets the operation proceed untouched; the default
/// (no policy installed) is a no-op with zero cost on the append path.
pub trait IoPolicy: Send + Sync + fmt::Debug {
    /// Decide the fate of one `op` occurrence.
    fn inject(&self, op: IoOp) -> Option<Fault>;

    /// Total faults this policy has injected so far (for gates that
    /// require the chaos to have actually happened).
    fn injected(&self) -> u64;
}

#[derive(Debug)]
struct ScriptEntry {
    /// Occurrences of the operation to let pass before firing.
    skip: u64,
    fault: Fault,
}

/// An explicit, deterministic fault schedule: per-operation FIFO queues
/// of "let `skip` pass, then inject `fault`" entries. Exhausted queues
/// inject nothing, so a script's effect is exactly what was pushed.
#[derive(Debug, Default)]
pub struct FaultScript {
    queues: Mutex<[VecDeque<ScriptEntry>; 4]>,
    counters: FaultCounters,
}

impl FaultScript {
    pub fn new() -> FaultScript {
        FaultScript::default()
    }

    /// Inject `fault` on the next occurrence of `op`.
    pub fn push(&self, op: IoOp, fault: Fault) {
        self.push_after(op, 0, fault);
    }

    /// Let `skip` occurrences of `op` pass, then inject `fault`. The
    /// skip count starts when this entry reaches the front of `op`'s
    /// queue, so pushes compose sequentially.
    pub fn push_after(&self, op: IoOp, skip: u64, fault: Fault) {
        let mut queues = self.queues.lock().unwrap_or_else(|e| e.into_inner());
        queues[op.index()].push_back(ScriptEntry { skip, fault });
    }

    /// The running injected-fault counters.
    pub fn counters(&self) -> &FaultCounters {
        &self.counters
    }
}

impl IoPolicy for FaultScript {
    fn inject(&self, op: IoOp) -> Option<Fault> {
        let mut queues = self.queues.lock().unwrap_or_else(|e| e.into_inner());
        let queue = &mut queues[op.index()];
        let entry = queue.front_mut()?;
        if entry.skip > 0 {
            entry.skip -= 1;
            return None;
        }
        let fault = queue.pop_front().expect("front entry exists").fault;
        self.counters.record(op);
        Some(fault)
    }

    fn injected(&self) -> u64 {
        self.counters.total()
    }
}

/// Deterministic background chaos: every `n`th occurrence of an
/// operation errors, and independently every `m`th is delayed. Built
/// for long smoke runs where a CI gate needs the injected-fault count
/// to be provably nonzero.
#[derive(Debug)]
pub struct PeriodicFaults {
    error_every: [u64; 4],
    error_kind: io::ErrorKind,
    delay_every: [u64; 4],
    delay: Duration,
    error_seen: [AtomicU64; 4],
    delay_seen: [AtomicU64; 4],
    counters: FaultCounters,
}

impl Default for PeriodicFaults {
    fn default() -> Self {
        PeriodicFaults {
            error_every: [0; 4],
            error_kind: io::ErrorKind::StorageFull,
            delay_every: [0; 4],
            delay: Duration::from_millis(1),
            error_seen: Default::default(),
            delay_seen: Default::default(),
            counters: FaultCounters::default(),
        }
    }
}

impl PeriodicFaults {
    pub fn new() -> PeriodicFaults {
        PeriodicFaults::default()
    }

    /// Error every `n`th occurrence of `op` (`0` disables).
    pub fn error_every(mut self, op: IoOp, n: u64) -> Self {
        self.error_every[op.index()] = n;
        self
    }

    /// The error kind injected by [`PeriodicFaults::error_every`].
    pub fn error_kind(mut self, kind: io::ErrorKind) -> Self {
        self.error_kind = kind;
        self
    }

    /// Delay every `n`th occurrence of `op` by `delay` (`0` disables).
    pub fn delay_every(mut self, op: IoOp, n: u64, delay: Duration) -> Self {
        self.delay_every[op.index()] = n;
        self.delay = delay;
        self
    }

    /// The running injected-fault counters.
    pub fn counters(&self) -> &FaultCounters {
        &self.counters
    }
}

impl IoPolicy for PeriodicFaults {
    fn inject(&self, op: IoOp) -> Option<Fault> {
        let i = op.index();
        let every = self.error_every[i];
        if every > 0 {
            let seen = self.error_seen[i].fetch_add(1, Ordering::Relaxed) + 1;
            if seen.is_multiple_of(every) {
                self.counters.record(op);
                return Some(Fault::Error(self.error_kind));
            }
        }
        let every = self.delay_every[i];
        if every > 0 {
            let seen = self.delay_seen[i].fetch_add(1, Ordering::Relaxed) + 1;
            if seen.is_multiple_of(every) {
                self.counters.record(op);
                return Some(Fault::Delay(self.delay));
            }
        }
        None
    }

    fn injected(&self) -> u64 {
        self.counters.total()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn script_fires_in_push_order_with_skips() {
        let script = FaultScript::new();
        script.push_after(IoOp::Append, 2, Fault::enospc());
        script.push(IoOp::Append, Fault::Torn { keep: 3 });
        script.push(IoOp::Fsync, Fault::Delay(Duration::from_millis(5)));

        assert_eq!(script.inject(IoOp::Append), None);
        assert_eq!(script.inject(IoOp::Append), None);
        assert_eq!(
            script.inject(IoOp::Append),
            Some(Fault::Error(io::ErrorKind::StorageFull))
        );
        assert_eq!(script.inject(IoOp::Append), Some(Fault::Torn { keep: 3 }));
        assert_eq!(script.inject(IoOp::Append), None, "queue exhausted");
        assert_eq!(
            script.inject(IoOp::Fsync),
            Some(Fault::Delay(Duration::from_millis(5)))
        );
        assert_eq!(script.inject(IoOp::Rotate), None);
        assert_eq!(script.counters().for_op(IoOp::Append), 2);
        assert_eq!(script.injected(), 3);
    }

    #[test]
    fn periodic_faults_fire_on_schedule() {
        let plan = PeriodicFaults::new()
            .error_every(IoOp::Append, 3)
            .error_kind(io::ErrorKind::WriteZero);
        assert_eq!(plan.inject(IoOp::Append), None);
        assert_eq!(plan.inject(IoOp::Append), None);
        assert_eq!(
            plan.inject(IoOp::Append),
            Some(Fault::Error(io::ErrorKind::WriteZero))
        );
        assert_eq!(plan.inject(IoOp::Append), None);
        assert_eq!(plan.inject(IoOp::Fsync), None, "other ops untouched");
        assert_eq!(plan.injected(), 1);
    }

    #[test]
    fn fault_errors_carry_the_operation_name() {
        let err = Fault::enospc().into_error(IoOp::Fsync);
        assert_eq!(err.kind(), io::ErrorKind::StorageFull);
        assert!(err.to_string().contains("fsync"));
    }
}
