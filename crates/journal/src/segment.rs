//! WAL segment files.
//!
//! A journal directory holds a sequence of segment files named by the
//! **log sequence number (LSN)** of their first record:
//!
//! ```text
//! wal-0000000000000000.log      records [0, 181)
//! wal-00000000000000b5.log      records [181, 402)
//! wal-0000000000000192.log      records [402, …)   ← active segment
//! snap-0000000000000192.snap    snapshot covering records [0, 402)
//! ```
//!
//! Each segment starts with a 13-byte header (`WSRJ`, format version,
//! start LSN) followed by CRC32 frames (see [`crate::frame`]). Two frame
//! layouts exist:
//!
//! - **Version 1 (dense).** The frame payload is the record encoding and
//!   LSNs are dense — record *n* of a segment has LSN `start_lsn + n` —
//!   so a snapshot LSN alone decides which segments the compactor may
//!   drop and which records recovery must replay.
//! - **Version 2 (tagged).** Written by the per-group logs of a
//!   partitioned journal (see [`crate::group`]): each frame payload
//!   carries its record's global LSN as an 8-byte LE prefix, because a
//!   group's log holds an increasing but *non-dense* subset of the global
//!   LSN space. The header's start LSN is a lower bound on every record
//!   in the segment, not necessarily the first record's LSN.
//!
//! A partitioned journal keeps each group's segments in a `group-NNN/`
//! subdirectory of the journal root; the root itself may still hold
//! dense segments from a pre-partition life, and recovery merges both.

use crate::frame::{FrameEnd, FrameReader};
use crate::record::JournalRecord;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Magic bytes opening every segment file.
pub const SEGMENT_MAGIC: [u8; 4] = *b"WSRJ";
/// On-disk format version of dense segments (payload = record).
pub const FORMAT_VERSION: u8 = 1;
/// On-disk format version of LSN-tagged segments (payload = LSN ‖ record).
pub const TAGGED_FORMAT_VERSION: u8 = 2;
/// Segment header bytes: magic + version + start LSN.
pub const SEGMENT_HEADER_LEN: usize = 13;
/// Bytes of the LSN prefix inside every tagged frame payload.
pub const LSN_TAG_LEN: usize = 8;

/// The file name of the segment whose first record has `start_lsn`.
pub fn segment_file_name(start_lsn: u64) -> String {
    format!("wal-{start_lsn:016x}.log")
}

/// Parse a segment file name back to its start LSN.
pub fn parse_segment_name(name: &str) -> Option<u64> {
    let hex = name.strip_prefix("wal-")?.strip_suffix(".log")?;
    if hex.len() != 16 {
        return None;
    }
    u64::from_str_radix(hex, 16).ok()
}

/// Encode a dense (version-1) segment header.
pub fn segment_header(start_lsn: u64) -> [u8; SEGMENT_HEADER_LEN] {
    segment_header_versioned(start_lsn, FORMAT_VERSION)
}

/// Encode a tagged (version-2) segment header.
pub fn tagged_segment_header(start_lsn: u64) -> [u8; SEGMENT_HEADER_LEN] {
    segment_header_versioned(start_lsn, TAGGED_FORMAT_VERSION)
}

fn segment_header_versioned(start_lsn: u64, version: u8) -> [u8; SEGMENT_HEADER_LEN] {
    let mut header = [0u8; SEGMENT_HEADER_LEN];
    header[..4].copy_from_slice(&SEGMENT_MAGIC);
    header[4] = version;
    header[5..].copy_from_slice(&start_lsn.to_le_bytes());
    header
}

/// The subdirectory name of writer group `group` in a partitioned
/// journal root.
pub fn group_dir_name(group: usize) -> String {
    format!("group-{group:03}")
}

/// Parse a group directory name back to its group index.
pub fn parse_group_dir_name(name: &str) -> Option<usize> {
    let digits = name.strip_prefix("group-")?;
    if digits.len() != 3 || !digits.bytes().all(|b| b.is_ascii_digit()) {
        return None;
    }
    digits.parse().ok()
}

/// Writer-group directories under a journal root, ordered by group
/// index. A missing or unpartitioned root yields an empty list.
pub fn list_group_dirs(root: &Path) -> io::Result<Vec<(usize, PathBuf)>> {
    let entries = match fs::read_dir(root) {
        Ok(entries) => entries,
        Err(err) if err.kind() == io::ErrorKind::NotFound => return Ok(Vec::new()),
        Err(err) => return Err(err),
    };
    let mut dirs = Vec::new();
    for entry in entries {
        let entry = entry?;
        if let Some(group) = entry.file_name().to_str().and_then(parse_group_dir_name) {
            if entry.file_type()?.is_dir() {
                dirs.push((group, entry.path()));
            }
        }
    }
    dirs.sort_by_key(|(group, _)| *group);
    Ok(dirs)
}

/// Segment paths in the directory, ordered by start LSN.
pub fn list_segments(dir: &Path) -> io::Result<Vec<(u64, PathBuf)>> {
    let mut segments = Vec::new();
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        if let Some(start_lsn) = entry.file_name().to_str().and_then(parse_segment_name) {
            segments.push((start_lsn, entry.path()));
        }
    }
    segments.sort_by_key(|(lsn, _)| *lsn);
    Ok(segments)
}

/// The decoded contents of one segment file.
#[derive(Debug)]
pub struct SegmentScan {
    /// LSN of the segment's first record, from the header.
    pub start_lsn: u64,
    /// The valid record prefix, in LSN order.
    pub records: Vec<JournalRecord>,
    /// File offset just past the last valid frame (header included).
    pub valid_len: u64,
    /// Whether bytes after the valid prefix were torn/corrupt.
    pub torn: bool,
}

/// Read and validate one dense (version-1) segment file.
///
/// A header that is missing or corrupt yields `Ok(None)` — the file is
/// not a usable segment (e.g. a crash tore the very first write) and the
/// caller decides whether that is fatal. A valid header carrying an
/// unexpected format version is an error: the file *is* a segment, just
/// not one this scanner may interpret (silently treating it as garbage
/// would let `Journal::open` delete it). Frame-level damage is *not* an
/// error: the valid prefix is returned with `torn = true`.
pub fn scan_segment(path: &Path) -> io::Result<Option<SegmentScan>> {
    let entries = match scan_segment_entries(path)? {
        Some(entries) => entries,
        None => return Ok(None),
    };
    if entries.tagged {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!(
                "segment {} is LSN-tagged (format v{TAGGED_FORMAT_VERSION}); \
                 expected a dense v{FORMAT_VERSION} segment",
                path.display()
            ),
        ));
    }
    Ok(Some(SegmentScan {
        start_lsn: entries.start_lsn,
        records: entries
            .entries
            .into_iter()
            .map(|(_, record)| record)
            .collect(),
        valid_len: entries.valid_len,
        torn: entries.torn,
    }))
}

/// The decoded contents of one segment file, LSN attached to every
/// record, in either on-disk format.
#[derive(Debug)]
pub struct SegmentEntries {
    /// Start LSN from the header. For dense segments the first record's
    /// LSN; for tagged segments a lower bound on every record.
    pub start_lsn: u64,
    /// The valid `(lsn, record)` prefix, in strictly increasing LSN
    /// order. Dense segments get their LSNs synthesized from the start.
    pub entries: Vec<(u64, JournalRecord)>,
    /// File offset just past the last valid frame (header included).
    pub valid_len: u64,
    /// Whether bytes after the valid prefix were torn/corrupt.
    pub torn: bool,
    /// Whether the segment is LSN-tagged (format version 2).
    pub tagged: bool,
}

/// Read and validate one segment file of either format.
///
/// Same contract as [`scan_segment`] — `Ok(None)` for a missing/corrupt
/// header, torn frames keep the valid prefix — except both dense and
/// tagged segments are accepted; only an unknown format version errors.
/// A tagged frame whose payload is shorter than the LSN prefix, or whose
/// LSN breaks the segment's strictly-increasing order, is treated as
/// torn data.
pub fn scan_segment_entries(path: &Path) -> io::Result<Option<SegmentEntries>> {
    let bytes = fs::read(path)?;
    if bytes.len() < SEGMENT_HEADER_LEN || bytes[..4] != SEGMENT_MAGIC {
        return Ok(None);
    }
    let tagged = match bytes[4] {
        FORMAT_VERSION => false,
        TAGGED_FORMAT_VERSION => true,
        version => {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!(
                    "segment {} has unknown format version {version}",
                    path.display()
                ),
            ))
        }
    };
    let start_lsn = u64::from_le_bytes(bytes[5..SEGMENT_HEADER_LEN].try_into().unwrap());
    let mut reader = FrameReader::new(&bytes[SEGMENT_HEADER_LEN..]);
    let mut entries = Vec::new();
    let mut valid_len = SEGMENT_HEADER_LEN;
    let mut torn = false;
    let mut floor = start_lsn;
    while let Some(payload) = reader.next() {
        let (lsn, body) = if tagged {
            if payload.len() < LSN_TAG_LEN {
                torn = true;
                break;
            }
            let lsn = u64::from_le_bytes(payload[..LSN_TAG_LEN].try_into().unwrap());
            (lsn, &payload[LSN_TAG_LEN..])
        } else {
            (start_lsn + entries.len() as u64, payload)
        };
        if lsn < floor {
            // An out-of-order LSN cannot come from a healthy writer;
            // treat everything from here on as damage.
            torn = true;
            break;
        }
        match JournalRecord::decode(body) {
            Ok(record) => {
                floor = lsn + 1;
                entries.push((lsn, record));
                valid_len = SEGMENT_HEADER_LEN + reader.valid_len();
            }
            // A frame whose checksum passes but whose payload does not
            // decode is treated like torn data: keep the prefix, stop.
            Err(_) => {
                torn = true;
                break;
            }
        }
    }
    if reader.end() == Some(FrameEnd::Torn) {
        torn = true;
    }
    Ok(Some(SegmentEntries {
        start_lsn,
        entries,
        valid_len: valid_len as u64,
        torn,
        tagged,
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::write_frame;
    use wsrep_core::feedback::Feedback;
    use wsrep_core::id::{AgentId, ServiceId};
    use wsrep_core::time::Time;

    fn record(i: u64) -> JournalRecord {
        JournalRecord::Feedback(Feedback::scored(
            AgentId::new(i),
            ServiceId::new(1),
            0.5,
            Time::new(i),
        ))
    }

    fn write_segment(path: &Path, start_lsn: u64, n: u64) -> Vec<u8> {
        let mut bytes = segment_header(start_lsn).to_vec();
        for i in 0..n {
            write_frame(&mut bytes, &record(start_lsn + i).to_bytes());
        }
        fs::write(path, &bytes).unwrap();
        bytes
    }

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "wsrep-journal-segment-{tag}-{}",
            std::process::id()
        ));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn names_round_trip() {
        assert_eq!(segment_file_name(0), "wal-0000000000000000.log");
        assert_eq!(parse_segment_name(&segment_file_name(0xb5)), Some(0xb5));
        assert_eq!(parse_segment_name("snap-0000000000000000.snap"), None);
        assert_eq!(parse_segment_name("wal-xyz.log"), None);
    }

    #[test]
    fn scan_reads_records_back_in_order() {
        let dir = temp_dir("scan");
        let path = dir.join(segment_file_name(7));
        write_segment(&path, 7, 5);
        let scan = scan_segment(&path).unwrap().expect("valid header");
        assert_eq!(scan.start_lsn, 7);
        assert_eq!(scan.records.len(), 5);
        assert!(!scan.torn);
        assert_eq!(scan.records[2], record(9));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn truncated_tail_keeps_the_prefix() {
        let dir = temp_dir("torn");
        let path = dir.join(segment_file_name(0));
        let bytes = write_segment(&path, 0, 4);
        fs::write(&path, &bytes[..bytes.len() - 3]).unwrap();
        let scan = scan_segment(&path).unwrap().unwrap();
        assert_eq!(scan.records.len(), 3);
        assert!(scan.torn);
        assert!(scan.valid_len < bytes.len() as u64);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn bad_header_is_not_a_segment() {
        let dir = temp_dir("header");
        let path = dir.join(segment_file_name(0));
        fs::write(&path, b"WS").unwrap();
        assert!(scan_segment(&path).unwrap().is_none());
        fs::write(&path, b"NOPE_________").unwrap();
        assert!(scan_segment(&path).unwrap().is_none());
        fs::remove_dir_all(&dir).unwrap();
    }

    fn write_tagged_segment(path: &Path, start_lsn: u64, lsns: &[u64]) -> Vec<u8> {
        let mut bytes = tagged_segment_header(start_lsn).to_vec();
        for &lsn in lsns {
            let mut payload = lsn.to_le_bytes().to_vec();
            payload.extend_from_slice(&record(lsn).to_bytes());
            write_frame(&mut bytes, &payload);
        }
        fs::write(path, &bytes).unwrap();
        bytes
    }

    #[test]
    fn tagged_segments_round_trip_sparse_lsns() {
        let dir = temp_dir("tagged");
        let path = dir.join(segment_file_name(3));
        write_tagged_segment(&path, 3, &[3, 7, 8, 20]);
        let scan = scan_segment_entries(&path).unwrap().expect("valid header");
        assert!(scan.tagged);
        assert_eq!(scan.start_lsn, 3);
        let lsns: Vec<u64> = scan.entries.iter().map(|(l, _)| *l).collect();
        assert_eq!(lsns, vec![3, 7, 8, 20]);
        assert_eq!(scan.entries[1].1, record(7));
        assert!(!scan.torn);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn dense_scan_refuses_tagged_segment() {
        let dir = temp_dir("tagged-refuse");
        let path = dir.join(segment_file_name(0));
        write_tagged_segment(&path, 0, &[0, 2]);
        let err = scan_segment(&path).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn unknown_version_is_an_error_not_garbage() {
        let dir = temp_dir("version");
        let path = dir.join(segment_file_name(0));
        let mut bytes = segment_header(0).to_vec();
        bytes[4] = 9;
        fs::write(&path, &bytes).unwrap();
        assert!(scan_segment(&path).is_err());
        assert!(scan_segment_entries(&path).is_err());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn out_of_order_tagged_lsn_is_torn() {
        let dir = temp_dir("tagged-order");
        let path = dir.join(segment_file_name(0));
        write_tagged_segment(&path, 0, &[4, 9, 6]);
        let scan = scan_segment_entries(&path).unwrap().unwrap();
        assert_eq!(scan.entries.len(), 2);
        assert!(scan.torn);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn group_dir_names_round_trip() {
        assert_eq!(group_dir_name(0), "group-000");
        assert_eq!(parse_group_dir_name("group-007"), Some(7));
        assert_eq!(parse_group_dir_name("group-7"), None);
        assert_eq!(parse_group_dir_name("groups"), None);

        let dir = temp_dir("groups");
        for g in [2usize, 0, 1] {
            fs::create_dir_all(dir.join(group_dir_name(g))).unwrap();
        }
        fs::write(dir.join("group-003"), b"a file, not a dir").unwrap();
        let groups = list_group_dirs(&dir).unwrap();
        let indices: Vec<usize> = groups.iter().map(|(g, _)| *g).collect();
        assert_eq!(indices, vec![0, 1, 2]);
        assert!(list_group_dirs(&dir.join("missing")).unwrap().is_empty());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn listing_orders_by_start_lsn() {
        let dir = temp_dir("list");
        for lsn in [40u64, 0, 17] {
            write_segment(&dir.join(segment_file_name(lsn)), lsn, 1);
        }
        fs::write(dir.join("unrelated.txt"), b"x").unwrap();
        let segments = list_segments(&dir).unwrap();
        let lsns: Vec<u64> = segments.iter().map(|(l, _)| *l).collect();
        assert_eq!(lsns, vec![0, 17, 40]);
        fs::remove_dir_all(&dir).unwrap();
    }
}
