//! WAL segment files.
//!
//! The journal directory holds a sequence of segment files named by the
//! **log sequence number (LSN)** of their first record:
//!
//! ```text
//! wal-0000000000000000.log      records [0, 181)
//! wal-00000000000000b5.log      records [181, 402)
//! wal-0000000000000192.log      records [402, …)   ← active segment
//! snap-0000000000000192.snap    snapshot covering records [0, 402)
//! ```
//!
//! Each segment starts with a 13-byte header (`WSRJ`, format version,
//! start LSN) followed by CRC32 frames (see [`crate::frame`]). LSNs are
//! dense — record *n* of a segment has LSN `start_lsn + n` — so a
//! snapshot LSN alone decides which segments the compactor may drop and
//! which records recovery must replay.

use crate::frame::{FrameEnd, FrameReader};
use crate::record::JournalRecord;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Magic bytes opening every segment file.
pub const SEGMENT_MAGIC: [u8; 4] = *b"WSRJ";
/// On-disk format version this code writes and reads.
pub const FORMAT_VERSION: u8 = 1;
/// Segment header bytes: magic + version + start LSN.
pub const SEGMENT_HEADER_LEN: usize = 13;

/// The file name of the segment whose first record has `start_lsn`.
pub fn segment_file_name(start_lsn: u64) -> String {
    format!("wal-{start_lsn:016x}.log")
}

/// Parse a segment file name back to its start LSN.
pub fn parse_segment_name(name: &str) -> Option<u64> {
    let hex = name.strip_prefix("wal-")?.strip_suffix(".log")?;
    if hex.len() != 16 {
        return None;
    }
    u64::from_str_radix(hex, 16).ok()
}

/// Encode a segment header.
pub fn segment_header(start_lsn: u64) -> [u8; SEGMENT_HEADER_LEN] {
    let mut header = [0u8; SEGMENT_HEADER_LEN];
    header[..4].copy_from_slice(&SEGMENT_MAGIC);
    header[4] = FORMAT_VERSION;
    header[5..].copy_from_slice(&start_lsn.to_le_bytes());
    header
}

/// Segment paths in the directory, ordered by start LSN.
pub fn list_segments(dir: &Path) -> io::Result<Vec<(u64, PathBuf)>> {
    let mut segments = Vec::new();
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        if let Some(start_lsn) = entry.file_name().to_str().and_then(parse_segment_name) {
            segments.push((start_lsn, entry.path()));
        }
    }
    segments.sort_by_key(|(lsn, _)| *lsn);
    Ok(segments)
}

/// The decoded contents of one segment file.
#[derive(Debug)]
pub struct SegmentScan {
    /// LSN of the segment's first record, from the header.
    pub start_lsn: u64,
    /// The valid record prefix, in LSN order.
    pub records: Vec<JournalRecord>,
    /// File offset just past the last valid frame (header included).
    pub valid_len: u64,
    /// Whether bytes after the valid prefix were torn/corrupt.
    pub torn: bool,
}

/// Read and validate one segment file.
///
/// A header that is missing or corrupt yields `Ok(None)` — the file is
/// not a usable segment (e.g. a crash tore the very first write) and the
/// caller decides whether that is fatal. Frame-level damage is *not* an
/// error: the valid prefix is returned with `torn = true`.
pub fn scan_segment(path: &Path) -> io::Result<Option<SegmentScan>> {
    let bytes = fs::read(path)?;
    if bytes.len() < SEGMENT_HEADER_LEN || bytes[..4] != SEGMENT_MAGIC || bytes[4] != FORMAT_VERSION
    {
        return Ok(None);
    }
    let start_lsn = u64::from_le_bytes(bytes[5..SEGMENT_HEADER_LEN].try_into().unwrap());
    let mut reader = FrameReader::new(&bytes[SEGMENT_HEADER_LEN..]);
    let mut records = Vec::new();
    let mut valid_len = SEGMENT_HEADER_LEN;
    let mut torn = false;
    while let Some(payload) = reader.next() {
        match JournalRecord::decode(payload) {
            Ok(record) => {
                records.push(record);
                valid_len = SEGMENT_HEADER_LEN + reader.valid_len();
            }
            // A frame whose checksum passes but whose payload does not
            // decode is treated like torn data: keep the prefix, stop.
            Err(_) => {
                torn = true;
                break;
            }
        }
    }
    if reader.end() == Some(FrameEnd::Torn) {
        torn = true;
    }
    Ok(Some(SegmentScan {
        start_lsn,
        records,
        valid_len: valid_len as u64,
        torn,
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::write_frame;
    use wsrep_core::feedback::Feedback;
    use wsrep_core::id::{AgentId, ServiceId};
    use wsrep_core::time::Time;

    fn record(i: u64) -> JournalRecord {
        JournalRecord::Feedback(Feedback::scored(
            AgentId::new(i),
            ServiceId::new(1),
            0.5,
            Time::new(i),
        ))
    }

    fn write_segment(path: &Path, start_lsn: u64, n: u64) -> Vec<u8> {
        let mut bytes = segment_header(start_lsn).to_vec();
        for i in 0..n {
            write_frame(&mut bytes, &record(start_lsn + i).to_bytes());
        }
        fs::write(path, &bytes).unwrap();
        bytes
    }

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "wsrep-journal-segment-{tag}-{}",
            std::process::id()
        ));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn names_round_trip() {
        assert_eq!(segment_file_name(0), "wal-0000000000000000.log");
        assert_eq!(parse_segment_name(&segment_file_name(0xb5)), Some(0xb5));
        assert_eq!(parse_segment_name("snap-0000000000000000.snap"), None);
        assert_eq!(parse_segment_name("wal-xyz.log"), None);
    }

    #[test]
    fn scan_reads_records_back_in_order() {
        let dir = temp_dir("scan");
        let path = dir.join(segment_file_name(7));
        write_segment(&path, 7, 5);
        let scan = scan_segment(&path).unwrap().expect("valid header");
        assert_eq!(scan.start_lsn, 7);
        assert_eq!(scan.records.len(), 5);
        assert!(!scan.torn);
        assert_eq!(scan.records[2], record(9));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn truncated_tail_keeps_the_prefix() {
        let dir = temp_dir("torn");
        let path = dir.join(segment_file_name(0));
        let bytes = write_segment(&path, 0, 4);
        fs::write(&path, &bytes[..bytes.len() - 3]).unwrap();
        let scan = scan_segment(&path).unwrap().unwrap();
        assert_eq!(scan.records.len(), 3);
        assert!(scan.torn);
        assert!(scan.valid_len < bytes.len() as u64);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn bad_header_is_not_a_segment() {
        let dir = temp_dir("header");
        let path = dir.join(segment_file_name(0));
        fs::write(&path, b"WS").unwrap();
        assert!(scan_segment(&path).unwrap().is_none());
        fs::write(&path, b"NOPE_________").unwrap();
        assert!(scan_segment(&path).unwrap().is_none());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn listing_orders_by_start_lsn() {
        let dir = temp_dir("list");
        for lsn in [40u64, 0, 17] {
            write_segment(&dir.join(segment_file_name(lsn)), lsn, 1);
        }
        fs::write(dir.join("unrelated.txt"), b"x").unwrap();
        let segments = list_segments(&dir).unwrap();
        let lsns: Vec<u64> = segments.iter().map(|(l, _)| *l).collect();
        assert_eq!(lsns, vec![0, 17, 40]);
        fs::remove_dir_all(&dir).unwrap();
    }
}
