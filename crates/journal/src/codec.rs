//! Binary encoding of the journal's domain types.
//!
//! The on-disk format is a hand-rolled little-endian byte layout rather
//! than a generic serializer: the journal must be readable by any future
//! version of the code, so every discriminant below is part of the
//! **format version 1 contract** and may never be renumbered — new
//! variants get new tags. The golden-file test in `tests/golden.rs` pins
//! these bytes.
//!
//! Layout primitives: `u8`/`u32`/`u64` little-endian, `f64` as the
//! little-endian bytes of its IEEE-754 bit pattern. Collections are a
//! `u32` count followed by the elements in order.

use std::fmt;
use wsrep_core::feedback::Feedback;
use wsrep_core::id::{AgentId, ProviderId, ServiceId, SubjectId};
use wsrep_core::time::Time;
use wsrep_qos::metric::Metric;
use wsrep_qos::value::QosVector;
use wsrep_sim::registry::Listing;

/// Decoding failed: the bytes are not a valid version-1 record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CodecError {
    /// The buffer ended before the value was complete.
    UnexpectedEof,
    /// A discriminant byte is outside the version-1 vocabulary.
    BadTag {
        /// Which kind of value was being decoded.
        what: &'static str,
        /// The offending byte.
        tag: u8,
    },
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::UnexpectedEof => write!(f, "record truncated mid-value"),
            CodecError::BadTag { what, tag } => write!(f, "invalid {what} tag {tag:#04x}"),
        }
    }
}

impl std::error::Error for CodecError {}

/// A reading position over an encoded byte slice.
pub struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    /// Start reading at the front of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Cursor { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        if self.remaining() < n {
            return Err(CodecError::UnexpectedEof);
        }
        let slice = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    /// Read one byte.
    pub fn u8(&mut self) -> Result<u8, CodecError> {
        Ok(self.take(1)?[0])
    }

    /// Read a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, CodecError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Read a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, CodecError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Read an `f64` stored as its little-endian bit pattern.
    pub fn f64(&mut self) -> Result<f64, CodecError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Read a `u32`-length-prefixed byte string.
    pub fn bytes(&mut self) -> Result<&'a [u8], CodecError> {
        let len = self.u32()? as usize;
        self.take(len)
    }

    /// Read a boolean encoded as a single `0`/`1` byte.
    pub fn bool(&mut self) -> Result<bool, CodecError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            tag => Err(CodecError::BadTag { what: "bool", tag }),
        }
    }
}

/// Append a little-endian `u32`.
pub fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Append a little-endian `u64`.
pub fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Append an `f64` as its little-endian bit pattern.
pub fn put_f64(out: &mut Vec<u8>, v: f64) {
    put_u64(out, v.to_bits());
}

/// Append a `u32`-length-prefixed byte string.
pub fn put_bytes(out: &mut Vec<u8>, bytes: &[u8]) {
    put_u32(out, bytes.len() as u32);
    out.extend_from_slice(bytes);
}

/// Append a boolean as a single `0`/`1` byte.
pub fn put_bool(out: &mut Vec<u8>, v: bool) {
    out.push(v as u8);
}

// Metric discriminants — format contract, never renumber.
const METRIC_TAGS: [(Metric, u8); 22] = [
    (Metric::ProcessingTime, 0),
    (Metric::Throughput, 1),
    (Metric::ResponseTime, 2),
    (Metric::Latency, 3),
    (Metric::Availability, 4),
    (Metric::Accessibility, 5),
    (Metric::Accuracy, 6),
    (Metric::Reliability, 7),
    (Metric::Capacity, 8),
    (Metric::Scalability, 9),
    (Metric::Stability, 10),
    (Metric::Robustness, 11),
    (Metric::DataIntegrity, 12),
    (Metric::TransactionalIntegrity, 13),
    (Metric::Authentication, 14),
    (Metric::Authorization, 15),
    (Metric::Traceability, 16),
    (Metric::NonRepudiation, 17),
    (Metric::Confidentiality, 18),
    (Metric::Encryption, 19),
    (Metric::Accountability, 20),
    (Metric::Price, 21),
];
const METRIC_APP_SPECIFIC_TAG: u8 = 22;

/// Encode a metric as its stable tag (plus the index byte for
/// `AppSpecific`).
pub fn put_metric(out: &mut Vec<u8>, metric: Metric) {
    if let Metric::AppSpecific(k) = metric {
        out.push(METRIC_APP_SPECIFIC_TAG);
        out.push(k);
        return;
    }
    let tag = METRIC_TAGS
        .iter()
        .find(|(m, _)| *m == metric)
        .map(|(_, t)| *t)
        .expect("every non-app-specific metric has a tag");
    out.push(tag);
}

/// Decode a metric tag.
pub fn get_metric(cur: &mut Cursor<'_>) -> Result<Metric, CodecError> {
    let tag = cur.u8()?;
    if tag == METRIC_APP_SPECIFIC_TAG {
        return Ok(Metric::AppSpecific(cur.u8()?));
    }
    METRIC_TAGS
        .iter()
        .find(|(_, t)| *t == tag)
        .map(|(m, _)| *m)
        .ok_or(CodecError::BadTag {
            what: "metric",
            tag,
        })
}

const SUBJECT_AGENT: u8 = 0;
const SUBJECT_SERVICE: u8 = 1;
const SUBJECT_PROVIDER: u8 = 2;

/// Encode a subject as a kind tag plus the raw 64-bit id.
pub fn put_subject(out: &mut Vec<u8>, subject: SubjectId) {
    match subject {
        SubjectId::Agent(a) => {
            out.push(SUBJECT_AGENT);
            put_u64(out, a.raw());
        }
        SubjectId::Service(s) => {
            out.push(SUBJECT_SERVICE);
            put_u64(out, s.raw());
        }
        SubjectId::Provider(p) => {
            out.push(SUBJECT_PROVIDER);
            put_u64(out, p.raw());
        }
    }
}

/// Decode a subject tag + id.
pub fn get_subject(cur: &mut Cursor<'_>) -> Result<SubjectId, CodecError> {
    let tag = cur.u8()?;
    let raw = cur.u64()?;
    match tag {
        SUBJECT_AGENT => Ok(AgentId::new(raw).into()),
        SUBJECT_SERVICE => Ok(ServiceId::new(raw).into()),
        SUBJECT_PROVIDER => Ok(ProviderId::new(raw).into()),
        _ => Err(CodecError::BadTag {
            what: "subject",
            tag,
        }),
    }
}

/// Encode a QoS vector as a count followed by `(metric, f64)` pairs in
/// the vector's stable metric order.
pub fn put_qos_vector(out: &mut Vec<u8>, vector: &QosVector) {
    put_u32(out, vector.len() as u32);
    for (metric, value) in vector.iter() {
        put_metric(out, metric);
        put_f64(out, value);
    }
}

/// Decode a QoS vector.
pub fn get_qos_vector(cur: &mut Cursor<'_>) -> Result<QosVector, CodecError> {
    let n = cur.u32()?;
    let mut vector = QosVector::new();
    for _ in 0..n {
        let metric = get_metric(cur)?;
        let value = cur.f64()?;
        vector.set(metric, value);
    }
    Ok(vector)
}

/// Encode one feedback report.
pub fn put_feedback(out: &mut Vec<u8>, feedback: &Feedback) {
    put_u64(out, feedback.rater.raw());
    put_subject(out, feedback.subject);
    put_f64(out, feedback.score);
    put_u64(out, feedback.at.round());
    put_qos_vector(out, &feedback.observed);
    put_u32(out, feedback.facet_ratings.len() as u32);
    for (&metric, &rating) in &feedback.facet_ratings {
        put_metric(out, metric);
        put_f64(out, rating);
    }
}

/// Decode one feedback report.
pub fn get_feedback(cur: &mut Cursor<'_>) -> Result<Feedback, CodecError> {
    let rater = AgentId::new(cur.u64()?);
    let subject = get_subject(cur)?;
    let score = cur.f64()?;
    let at = Time::new(cur.u64()?);
    let observed = get_qos_vector(cur)?;
    let mut feedback = Feedback::scored(rater, subject, score, at).with_observed(observed);
    let facets = cur.u32()?;
    for _ in 0..facets {
        let metric = get_metric(cur)?;
        let rating = cur.f64()?;
        feedback = feedback.with_facet(metric, rating);
    }
    Ok(feedback)
}

/// Encode one registry listing.
pub fn put_listing(out: &mut Vec<u8>, listing: &Listing) {
    put_u64(out, listing.service.raw());
    put_u64(out, listing.provider.raw());
    put_u32(out, listing.category);
    put_qos_vector(out, &listing.advertised);
}

/// Decode one registry listing.
pub fn get_listing(cur: &mut Cursor<'_>) -> Result<Listing, CodecError> {
    Ok(Listing {
        service: ServiceId::new(cur.u64()?),
        provider: ProviderId::new(cur.u64()?),
        category: cur.u32()?,
        advertised: get_qos_vector(cur)?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip_feedback(original: &Feedback) -> Feedback {
        let mut buf = Vec::new();
        put_feedback(&mut buf, original);
        let mut cur = Cursor::new(&buf);
        let decoded = get_feedback(&mut cur).expect("decodes");
        assert_eq!(cur.remaining(), 0, "no trailing bytes");
        decoded
    }

    #[test]
    fn feedback_round_trips_with_all_fields() {
        let original = Feedback::scored(AgentId::new(7), ServiceId::new(3), 0.625, Time::new(99))
            .with_observed(QosVector::from_pairs([
                (Metric::ResponseTime, 123.5),
                (Metric::AppSpecific(4), 2.0),
            ]))
            .with_facet(Metric::Accuracy, 0.75);
        assert_eq!(roundtrip_feedback(&original), original);
    }

    #[test]
    fn feedback_round_trips_for_every_subject_kind() {
        for subject in [
            SubjectId::from(AgentId::new(1)),
            SubjectId::from(ServiceId::new(2)),
            SubjectId::from(ProviderId::new(3)),
        ] {
            let original = Feedback::scored(AgentId::new(0), subject, 0.5, Time::ZERO);
            assert_eq!(roundtrip_feedback(&original), original);
        }
    }

    #[test]
    fn every_metric_round_trips() {
        let mut metrics: Vec<Metric> = Metric::ALL_STANDARD.to_vec();
        metrics.extend((0..=3).map(Metric::AppSpecific));
        for metric in metrics {
            let mut buf = Vec::new();
            put_metric(&mut buf, metric);
            let mut cur = Cursor::new(&buf);
            assert_eq!(get_metric(&mut cur).unwrap(), metric);
        }
    }

    #[test]
    fn listing_round_trips() {
        let original = Listing {
            service: ServiceId::new(11),
            provider: ProviderId::new(5),
            category: 9,
            advertised: QosVector::from_pairs([(Metric::Price, 4.25)]),
        };
        let mut buf = Vec::new();
        put_listing(&mut buf, &original);
        assert_eq!(get_listing(&mut Cursor::new(&buf)).unwrap(), original);
    }

    #[test]
    fn truncated_input_is_an_eof_not_a_panic() {
        let mut buf = Vec::new();
        put_feedback(
            &mut buf,
            &Feedback::scored(AgentId::new(1), ServiceId::new(2), 0.5, Time::ZERO),
        );
        for cut in 0..buf.len() {
            let err = get_feedback(&mut Cursor::new(&buf[..cut]));
            assert_eq!(err, Err(CodecError::UnexpectedEof), "cut at {cut}");
        }
    }

    #[test]
    fn bytes_and_bools_round_trip() {
        let mut buf = Vec::new();
        put_bytes(&mut buf, b"hello wire");
        put_bytes(&mut buf, b"");
        put_bool(&mut buf, true);
        put_bool(&mut buf, false);
        let mut cur = Cursor::new(&buf);
        assert_eq!(cur.bytes().unwrap(), b"hello wire");
        assert_eq!(cur.bytes().unwrap(), b"");
        assert!(cur.bool().unwrap());
        assert!(!cur.bool().unwrap());
        assert_eq!(cur.remaining(), 0);
        // A truncated byte string is an EOF, a stray bool byte a bad tag.
        assert_eq!(
            Cursor::new(&buf[..5]).bytes(),
            Err(CodecError::UnexpectedEof)
        );
        assert_eq!(
            Cursor::new(&[7u8]).bool(),
            Err(CodecError::BadTag {
                what: "bool",
                tag: 7
            })
        );
    }

    #[test]
    fn bad_tags_are_rejected() {
        assert_eq!(
            get_metric(&mut Cursor::new(&[0xEE])),
            Err(CodecError::BadTag {
                what: "metric",
                tag: 0xEE
            })
        );
        let mut buf = vec![9u8];
        put_u64(&mut buf, 1);
        assert_eq!(
            get_subject(&mut Cursor::new(&buf)),
            Err(CodecError::BadTag {
                what: "subject",
                tag: 9
            })
        );
    }
}
