//! The partitioned write path: N writer groups, one LSN space.
//!
//! A [`GroupSet`] holds one LSN-tagged [`Journal`] per writer group,
//! each in its own `group-NNN/` subdirectory of the journal root, so N
//! writer threads can group-commit concurrently — one fsync per group
//! per batch — instead of serializing on a single commit lock. Record
//! order across groups is preserved by a shared [`LsnAllocator`]: every
//! batch takes a contiguous run of global LSNs before it is written, and
//! readers (recovery, the ship cursor) merge the per-group logs back
//! into one stream by sorting on LSN.
//!
//! # The durable watermark
//!
//! With one log, "durable up to LSN x" is just the writer's position.
//! With N logs, group A may have fsynced LSN 900 while group B is still
//! writing LSN 850, so the *contiguous* durable frontier — the largest
//! `w` such that every LSN below `w` is on stable storage — trails the
//! fastest writer. The allocator tracks it exactly: each group registers
//! the first LSN of its in-flight batch when it allocates and clears it
//! after its fsync returns, so the frontier is
//!
//! ```text
//! durable_lsn = min(next_unallocated, min over groups of in-flight first LSN)
//! ```
//!
//! recomputed under the allocator lock and published through an atomic
//! for lock-free readers. It is monotone by construction. Replication
//! ships and heartbeats against this watermark, exactly as it did
//! against the single writer's position.
//!
//! # Crash shape
//!
//! After a crash the union of the groups' valid prefixes may have
//! *interior gaps*: group A's batch at LSNs 10–13 can be on disk while
//! group B's 8–9 died in the page cache. That is safe — a `flush()`
//! acknowledgement only ever covered prefixes all groups had fsynced —
//! but it means recovery must take the union of what survived (never
//! truncate a group back to the watermark: LSNs *above* a gap may have
//! been acknowledged by a later flush) and the merged stream must treat
//! a gap as permanently empty once every group has moved past it.

use crate::compact::{compact_dir, CompactReport};
use crate::journal::{AppendReceipt, Journal, JournalConfig, JournalStats};
use crate::record::JournalRecord;
use crate::segment::{group_dir_name, list_group_dirs, list_segments};
use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard};

/// A group with no batch in flight.
const IDLE: u64 = u64::MAX;

/// Hands out contiguous runs of global LSNs to writer groups and tracks
/// the cross-group durable watermark.
#[derive(Debug)]
pub struct LsnAllocator {
    state: Mutex<AllocState>,
    /// Cached `min(next, min(in-flight))`, recomputed under the lock on
    /// every allocate/complete; reads are lock-free.
    watermark: AtomicU64,
}

#[derive(Debug)]
struct AllocState {
    /// Next unallocated LSN.
    next: u64,
    /// Per group: first LSN of the batch being written, or [`IDLE`].
    in_flight: Vec<u64>,
}

impl LsnAllocator {
    /// An allocator starting at `next_lsn` for `groups` writer groups.
    pub fn new(next_lsn: u64, groups: usize) -> LsnAllocator {
        LsnAllocator {
            state: Mutex::new(AllocState {
                next: next_lsn,
                in_flight: vec![IDLE; groups.max(1)],
            }),
            watermark: AtomicU64::new(next_lsn),
        }
    }

    /// Writer groups this allocator serves.
    pub fn groups(&self) -> usize {
        self.lock().in_flight.len()
    }

    /// Next unallocated LSN. With every group idle (e.g. all commit
    /// locks held), this is a consistent cut: every LSN below it is both
    /// journaled and applied or about to be applied by its committer.
    pub fn next_lsn(&self) -> u64 {
        self.lock().next
    }

    /// Claim `[returned, returned + count)` for `group` and mark the run
    /// in flight. Call with the group's commit lock held, and pair with
    /// [`LsnAllocator::complete`] once the batch's fsync returns (or
    /// fails — an abandoned claim would freeze the watermark forever).
    pub fn allocate(&self, group: usize, count: u64) -> u64 {
        let mut state = self.lock();
        let first = state.next;
        state.next += count;
        debug_assert_eq!(state.in_flight[group], IDLE, "group already in flight");
        state.in_flight[group] = first;
        self.publish(&state);
        first
    }

    /// Mark `group`'s in-flight batch settled, advancing the watermark.
    pub fn complete(&self, group: usize) {
        let mut state = self.lock();
        state.in_flight[group] = IDLE;
        self.publish(&state);
    }

    /// The contiguous durable frontier: every LSN below this is settled.
    pub fn durable_lsn(&self) -> u64 {
        self.watermark.load(Ordering::Acquire)
    }

    fn publish(&self, state: &AllocState) {
        let floor = state.in_flight.iter().copied().min().unwrap_or(IDLE);
        self.watermark
            .store(state.next.min(floor), Ordering::Release);
    }

    fn lock(&self) -> MutexGuard<'_, AllocState> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }
}

/// The N per-group journals of a partitioned log, plus their allocator.
#[derive(Debug)]
pub struct GroupSet {
    root: PathBuf,
    groups: Vec<Mutex<Journal>>,
    allocator: LsnAllocator,
}

impl GroupSet {
    /// Open (or create) a partitioned journal under `root` with at least
    /// `writer_groups` groups — an on-disk layout with more groups wins,
    /// so reopening with a smaller setting never strands a group's
    /// records. The allocator resumes past `floor_lsn` (the recovered
    /// `next_lsn`, when the caller ran recovery), every group's highest
    /// LSN, and any dense pre-partition segments still in the root.
    pub fn open(
        root: impl Into<PathBuf>,
        writer_groups: usize,
        config: JournalConfig,
        floor_lsn: u64,
    ) -> io::Result<GroupSet> {
        let root = root.into();
        fs::create_dir_all(&root)?;
        let on_disk = list_group_dirs(&root)?
            .last()
            .map(|(group, _)| group + 1)
            .unwrap_or(0);
        let count = writer_groups.max(on_disk).max(1);

        let mut next = floor_lsn;
        // A root migrated from a single-log life still holds dense
        // segments. Opening them as a journal repairs a torn tail left
        // by the pre-partition writer's crash (readers of the sealed
        // root assume clean frames) and yields the LSN the allocator
        // must clear even when the caller skipped recovery.
        if !list_segments(&root)?.is_empty() {
            let sealed = Journal::open(&root, config)?;
            next = next.max(sealed.next_lsn());
        }

        let mut groups = Vec::with_capacity(count);
        for group in 0..count {
            let journal = Journal::open_tagged(root.join(group_dir_name(group)), config)?;
            next = next.max(journal.next_lsn());
            groups.push(Mutex::new(journal));
        }
        Ok(GroupSet {
            root,
            groups,
            allocator: LsnAllocator::new(next, count),
        })
    }

    /// The journal root (the directory holding the group subdirectories
    /// and the snapshots).
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// Number of writer groups.
    pub fn group_count(&self) -> usize {
        self.groups.len()
    }

    /// The shared LSN allocator.
    pub fn allocator(&self) -> &LsnAllocator {
        &self.allocator
    }

    /// Install a fault-injection policy on every group's journal (see
    /// [`Journal::set_io_policy`]).
    pub fn set_io_policy(&self, policy: std::sync::Arc<dyn crate::faults::IoPolicy>) {
        for group in 0..self.groups.len() {
            self.lock(group)
                .set_io_policy(std::sync::Arc::clone(&policy));
        }
    }

    /// Lock one group's journal (its commit lock).
    pub fn lock(&self, group: usize) -> MutexGuard<'_, Journal> {
        self.groups[group].lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Allocate LSNs for `records` and group-commit them to `group`,
    /// whose lock the caller already holds. The in-flight claim is
    /// always settled, even when the append fails — otherwise one I/O
    /// error would freeze the watermark for the whole partition.
    pub fn append_locked(
        &self,
        group: usize,
        journal: &mut Journal,
        records: &[JournalRecord],
    ) -> io::Result<AppendReceipt> {
        let first_lsn = self.allocator.allocate(group, records.len() as u64);
        let result = journal.append_batch_at(first_lsn, records);
        self.allocator.complete(group);
        result
    }

    /// Convenience: lock `group`, then [`GroupSet::append_locked`].
    pub fn append_batch(
        &self,
        group: usize,
        records: &[JournalRecord],
    ) -> io::Result<AppendReceipt> {
        let mut journal = self.lock(group);
        self.append_locked(group, &mut journal, records)
    }

    /// The cross-group contiguous durable frontier.
    pub fn durable_lsn(&self) -> u64 {
        self.allocator.durable_lsn()
    }

    /// Aggregated counters: segments, bytes and commits summed over
    /// groups; `last_fsync_nanos` is the slowest group's most recent
    /// fsync. Each group is sampled under its own lock, so the sums are
    /// monotone but not a consistent cut.
    pub fn stats(&self) -> JournalStats {
        let mut total = JournalStats::default();
        for group in 0..self.groups.len() {
            let stats = self.lock(group).stats();
            total.segments += stats.segments;
            total.bytes_appended += stats.bytes_appended;
            total.commits += stats.commits;
            total.last_fsync_nanos = total.last_fsync_nanos.max(stats.last_fsync_nanos);
        }
        total
    }

    /// Compact every group's log — and any dense pre-partition segments
    /// in the root, along with stale snapshots — up to `covered_lsn`.
    /// The per-group deletion rule is the single-log one: a segment may
    /// go once its successor's start LSN is covered, which stays valid
    /// because a group's LSNs increase strictly within and across its
    /// segments.
    pub fn compact(&self, covered_lsn: u64) -> io::Result<CompactReport> {
        let mut total = compact_dir(&self.root, covered_lsn)?;
        for group in 0..self.groups.len() {
            let report = self.lock(group).compact(covered_lsn)?;
            total.segments_removed += report.segments_removed;
            total.snapshots_removed += report.snapshots_removed;
            total.bytes_reclaimed += report.bytes_reclaimed;
        }
        Ok(total)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;
    use wsrep_core::feedback::Feedback;
    use wsrep_core::id::{AgentId, ServiceId};
    use wsrep_core::time::Time;

    fn record(i: u64) -> JournalRecord {
        JournalRecord::Feedback(Feedback::scored(
            AgentId::new(i),
            ServiceId::new(1),
            0.5,
            Time::new(i),
        ))
    }

    fn temp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("wsrep-journal-group-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn allocator_hands_out_disjoint_runs_and_tracks_the_frontier() {
        let alloc = LsnAllocator::new(0, 2);
        assert_eq!(alloc.durable_lsn(), 0);
        let a = alloc.allocate(0, 3); // [0, 3) in flight on group 0
        assert_eq!(a, 0);
        let b = alloc.allocate(1, 2); // [3, 5) in flight on group 1
        assert_eq!(b, 3);
        assert_eq!(alloc.durable_lsn(), 0, "both batches still in flight");
        alloc.complete(1);
        assert_eq!(alloc.durable_lsn(), 0, "group 0 still holds the floor");
        alloc.complete(0);
        assert_eq!(alloc.durable_lsn(), 5, "all settled: frontier = next");
    }

    #[test]
    fn watermark_is_monotone_under_concurrent_writers() {
        let alloc = std::sync::Arc::new(LsnAllocator::new(0, 4));
        let mut watchers = Vec::new();
        for _ in 0..2 {
            let alloc = std::sync::Arc::clone(&alloc);
            watchers.push(thread::spawn(move || {
                let mut last = 0;
                for _ in 0..10_000 {
                    let now = alloc.durable_lsn();
                    assert!(now >= last, "watermark went backwards: {last} -> {now}");
                    last = now;
                }
            }));
        }
        let mut writers = Vec::new();
        for group in 0..4 {
            let alloc = std::sync::Arc::clone(&alloc);
            writers.push(thread::spawn(move || {
                for i in 0..1_000 {
                    let first = alloc.allocate(group, 1 + (i % 3));
                    assert!(first >= alloc.durable_lsn());
                    alloc.complete(group);
                }
            }));
        }
        for handle in writers.into_iter().chain(watchers) {
            handle.join().unwrap();
        }
        assert_eq!(alloc.durable_lsn(), alloc.next_lsn());
    }

    #[test]
    fn group_set_reopens_past_every_groups_highest_lsn() {
        let dir = temp_dir("reopen");
        {
            let set = GroupSet::open(&dir, 3, JournalConfig::default(), 0).unwrap();
            set.append_batch(0, &[record(0)]).unwrap(); // LSN 0
            set.append_batch(2, &[record(1), record(2)]).unwrap(); // LSNs 1-2
            set.append_batch(1, &[record(3)]).unwrap(); // LSN 3
            assert_eq!(set.durable_lsn(), 4);
        }
        // Reopen asking for fewer groups: the on-disk three win.
        let set = GroupSet::open(&dir, 1, JournalConfig::default(), 0).unwrap();
        assert_eq!(set.group_count(), 3);
        assert_eq!(set.allocator().next_lsn(), 4);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn append_error_does_not_freeze_the_watermark() {
        let dir = temp_dir("error");
        let set = GroupSet::open(&dir, 2, JournalConfig::default(), 0).unwrap();
        set.append_batch(0, &[record(0)]).unwrap();
        // A claim completed without an append (the failed-fsync path in
        // append_locked) must still release the watermark floor.
        let first = set.allocator().allocate(1, 5);
        assert_eq!(first, 1);
        assert_eq!(set.durable_lsn(), 1);
        set.allocator().complete(1);
        assert_eq!(set.durable_lsn(), 6, "abandoned claim settled");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn stats_aggregate_across_groups() {
        let dir = temp_dir("stats");
        let set = GroupSet::open(&dir, 2, JournalConfig::default(), 0).unwrap();
        set.append_batch(0, &[record(0)]).unwrap();
        set.append_batch(1, &[record(1)]).unwrap();
        set.append_batch(1, &[record(2)]).unwrap();
        let stats = set.stats();
        assert_eq!(stats.commits, 3);
        assert_eq!(stats.segments, 2);
        assert!(stats.bytes_appended > 0);
        assert!(stats.last_fsync_nanos > 0);
        fs::remove_dir_all(&dir).unwrap();
    }
}
