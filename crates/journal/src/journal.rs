//! The append side: group-committed writes to the active segment.
//!
//! A [`Journal`] owns the active segment file. [`Journal::append_batch`]
//! frames a whole batch of records into one buffer, issues a single
//! `write` and a single `fdatasync` — **group commit** — so durability
//! costs one disk round-trip per batch, not per record. When the batch
//! returns, every record in it is on stable storage.
//!
//! Opening an existing journal repairs crash damage the same way
//! recovery tolerates it: a torn tail on the *final* segment is truncated
//! away (those records were never acknowledged durable), while damage to
//! an earlier segment is real corruption and refuses to open.
//!
//! A journal writes one of two segment formats (see [`crate::segment`]):
//! **dense** (v1), where LSNs follow from the segment start, or
//! **tagged** (v2), where every frame carries its global LSN — the format
//! of a partitioned journal's per-group logs, opened with
//! [`Journal::open_tagged`] and appended with
//! [`Journal::append_batch_at`] at LSNs handed out by a
//! [`LsnAllocator`](crate::group::LsnAllocator).

use crate::faults::{Fault, IoOp, IoPolicy};
use crate::frame::{begin_frame, end_frame};
use crate::record::JournalRecord;
use crate::segment::{
    list_segments, scan_segment_entries, segment_file_name, segment_header, tagged_segment_header,
    SEGMENT_HEADER_LEN,
};
use std::fs::{self, File, OpenOptions};
use std::io::{self, Seek, Write};
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Instant;

/// Journal tuning knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JournalConfig {
    /// Rotate to a fresh segment once the active one exceeds this size.
    pub max_segment_bytes: u64,
}

impl Default for JournalConfig {
    fn default() -> Self {
        JournalConfig {
            // Small enough that compaction has segments to reclaim under
            // sustained load, large enough that rotation is rare.
            max_segment_bytes: 8 * 1024 * 1024,
        }
    }
}

/// What one [`Journal::append_batch`] call made durable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AppendReceipt {
    /// LSN of the batch's first record.
    pub first_lsn: u64,
    /// Records in the batch.
    pub count: u64,
    /// Wall time of the `fdatasync` for this batch.
    pub fsync_nanos: u64,
}

/// Operational counters of a journal writer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct JournalStats {
    /// Segment files currently on disk.
    pub segments: u64,
    /// Bytes appended by this writer since open.
    pub bytes_appended: u64,
    /// Wall time of the most recent fsync.
    pub last_fsync_nanos: u64,
    /// Group commits (fsyncs) issued since open.
    pub commits: u64,
}

/// An open, appendable write-ahead log.
#[derive(Debug)]
pub struct Journal {
    dir: PathBuf,
    config: JournalConfig,
    file: File,
    segment_start: u64,
    segment_bytes: u64,
    next_lsn: u64,
    segments: u64,
    bytes_appended: u64,
    last_fsync_nanos: u64,
    commits: u64,
    tagged: bool,
    policy: Option<Arc<dyn IoPolicy>>,
}

fn sync_dir(dir: &Path) -> io::Result<()> {
    // Directory fsync makes freshly created/renamed files durable; on
    // platforms where directories cannot be fsynced this is best-effort.
    if let Ok(handle) = File::open(dir) {
        let _ = handle.sync_all();
    }
    Ok(())
}

fn create_segment(dir: &Path, start_lsn: u64, tagged: bool) -> io::Result<File> {
    let path = dir.join(segment_file_name(start_lsn));
    let mut file = OpenOptions::new()
        .create_new(true)
        .write(true)
        .open(&path)?;
    let header = if tagged {
        tagged_segment_header(start_lsn)
    } else {
        segment_header(start_lsn)
    };
    file.write_all(&header)?;
    file.sync_data()?;
    sync_dir(dir)?;
    Ok(file)
}

impl Journal {
    /// Open (or create) a dense journal in `dir` and position the writer
    /// after the last durable record.
    ///
    /// A torn tail on the final segment — the signature of a crashed
    /// append — is truncated. A torn or unreadable *non-final* segment is
    /// an [`io::ErrorKind::InvalidData`] error: the log lost acknowledged
    /// history and must not be silently extended.
    pub fn open(dir: impl Into<PathBuf>, config: JournalConfig) -> io::Result<Journal> {
        Self::open_inner(dir.into(), config, false)
    }

    /// Open (or create) an LSN-tagged journal in `dir` — one writer
    /// group's log of a partitioned journal. Same crash-repair rules as
    /// [`Journal::open`]; the writer resumes past the highest LSN on
    /// disk, though the real resume point is the partition-wide
    /// allocator's, which is at least this.
    pub fn open_tagged(dir: impl Into<PathBuf>, config: JournalConfig) -> io::Result<Journal> {
        Self::open_inner(dir.into(), config, true)
    }

    fn open_inner(dir: PathBuf, config: JournalConfig, tagged: bool) -> io::Result<Journal> {
        fs::create_dir_all(&dir)?;
        let mut segments = list_segments(&dir)?;

        // A final segment whose header never hit the disk holds zero
        // acknowledged records; drop it and fall back to its predecessor.
        while let Some((_, path)) = segments.last() {
            if scan_segment_entries(path)?.is_some() {
                break;
            }
            fs::remove_file(path)?;
            segments.pop();
        }

        if segments.is_empty() {
            let file = create_segment(&dir, 0, tagged)?;
            return Ok(Journal {
                dir,
                config,
                file,
                segment_start: 0,
                segment_bytes: SEGMENT_HEADER_LEN as u64,
                next_lsn: 0,
                segments: 1,
                bytes_appended: 0,
                last_fsync_nanos: 0,
                commits: 0,
                tagged,
                policy: None,
            });
        }

        let last_index = segments.len() - 1;
        let mut next_lsn = 0;
        for (i, (start_lsn, path)) in segments.iter().enumerate() {
            let scan = scan_segment_entries(path)?.ok_or_else(|| {
                io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("segment {} has a corrupt header", path.display()),
                )
            })?;
            if scan.tagged != tagged {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!(
                        "segment {} has format v{}, but this journal writes v{}",
                        path.display(),
                        if scan.tagged { 2 } else { 1 },
                        if tagged { 2 } else { 1 },
                    ),
                ));
            }
            if scan.torn && i != last_index {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!(
                        "non-final segment {} is torn; acknowledged history is damaged",
                        path.display()
                    ),
                ));
            }
            if scan.torn {
                // Crashed append: the tail was never acknowledged.
                let file = OpenOptions::new().write(true).open(path)?;
                file.set_len(scan.valid_len)?;
                file.sync_data()?;
            }
            next_lsn = scan
                .entries
                .last()
                .map(|(lsn, _)| lsn + 1)
                .unwrap_or(*start_lsn)
                .max(next_lsn);
        }

        let (segment_start, last_path) = segments[last_index].clone();
        let segment_bytes = fs::metadata(&last_path)?.len();
        let file = OpenOptions::new().append(true).open(&last_path)?;
        Ok(Journal {
            dir,
            config,
            file,
            segment_start,
            segment_bytes,
            next_lsn,
            segments: segments.len() as u64,
            bytes_appended: 0,
            last_fsync_nanos: 0,
            commits: 0,
            tagged,
            policy: None,
        })
    }

    /// Install a fault-injection policy, consulted before every append,
    /// fsync and rotation from now on. Testing and chaos harness only;
    /// without one the write path is untouched.
    pub fn set_io_policy(&mut self, policy: Arc<dyn IoPolicy>) {
        self.policy = Some(policy);
    }

    /// Consult the installed fault policy for `op`. Delays are served in
    /// place, errors are returned, and a torn-write fault surfaces as
    /// `Ok(Some(keep_bytes))` for the append path to honor.
    fn consult(&self, op: IoOp) -> io::Result<Option<usize>> {
        let Some(policy) = &self.policy else {
            return Ok(None);
        };
        match policy.inject(op) {
            None => Ok(None),
            Some(Fault::Delay(delay)) => {
                std::thread::sleep(delay);
                Ok(None)
            }
            Some(Fault::Torn { keep }) if op == IoOp::Append => Ok(Some(keep)),
            Some(fault) => Err(fault.into_error(op)),
        }
    }

    /// After a failed append: drop the unacknowledged bytes (best
    /// effort) so they cannot ride a later batch's fsync into the
    /// acknowledged log.
    fn restore_segment_len(&mut self) {
        let _ = self.file.set_len(self.segment_bytes);
        let _ = self.file.seek(io::SeekFrom::Start(self.segment_bytes));
    }

    /// The journal directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// LSN the next appended record will get.
    pub fn next_lsn(&self) -> u64 {
        self.next_lsn
    }

    /// Start LSN of the active segment.
    pub fn active_segment_start(&self) -> u64 {
        self.segment_start
    }

    /// Current operational counters.
    pub fn stats(&self) -> JournalStats {
        JournalStats {
            segments: self.segments,
            bytes_appended: self.bytes_appended,
            last_fsync_nanos: self.last_fsync_nanos,
            commits: self.commits,
        }
    }

    /// Group-commit a batch: one buffered write, one `fdatasync`.
    ///
    /// When this returns `Ok`, every record of the batch is durable. An
    /// empty batch is a no-op that costs nothing. Dense journals only —
    /// a tagged journal's LSNs come from its partition's allocator, via
    /// [`Journal::append_batch_at`].
    pub fn append_batch(&mut self, records: &[JournalRecord]) -> io::Result<AppendReceipt> {
        assert!(
            !self.tagged,
            "append_batch on a tagged journal; LSNs must come from the allocator"
        );
        self.append_at(self.next_lsn, records)
    }

    /// Group-commit a batch whose first record has the globally allocated
    /// LSN `first_lsn` (the batch occupies `[first_lsn, first_lsn + n)`).
    /// Tagged journals only; `first_lsn` must not go backwards.
    pub fn append_batch_at(
        &mut self,
        first_lsn: u64,
        records: &[JournalRecord],
    ) -> io::Result<AppendReceipt> {
        assert!(self.tagged, "append_batch_at on a dense journal");
        assert!(
            first_lsn >= self.next_lsn,
            "LSN {first_lsn} would rewind a journal already at {}",
            self.next_lsn
        );
        self.append_at(first_lsn, records)
    }

    fn append_at(
        &mut self,
        first_lsn: u64,
        records: &[JournalRecord],
    ) -> io::Result<AppendReceipt> {
        if records.is_empty() {
            return Ok(AppendReceipt {
                first_lsn,
                count: 0,
                fsync_nanos: 0,
            });
        }
        // Never rotate an empty segment: there is nothing to seal, and
        // the successor would collide with the active segment's name.
        if self.segment_bytes >= self.config.max_segment_bytes
            && self.segment_bytes > SEGMENT_HEADER_LEN as u64
        {
            self.rotate_to(first_lsn)?;
        }
        let torn = self.consult(IoOp::Append)?;
        // Records are framed in place: reserve the header, encode the
        // payload straight into the batch buffer, backfill len+CRC — no
        // per-record scratch Vec and no second copy.
        let mut buf = Vec::new();
        for (i, record) in records.iter().enumerate() {
            let frame_start = begin_frame(&mut buf);
            if self.tagged {
                buf.extend_from_slice(&(first_lsn + i as u64).to_le_bytes());
            }
            record.encode(&mut buf);
            end_frame(&mut buf, frame_start);
        }
        if let Some(keep) = torn {
            // Land the partial bytes the way a crash mid-`write` would,
            // then fail: the tail garbage stays for reopen to repair.
            let keep = keep.min(buf.len());
            let _ = self.file.write_all(&buf[..keep]);
            let _ = self.file.sync_data();
            return Err(Fault::Torn { keep }.into_error(IoOp::Append));
        }
        if let Err(err) = self.file.write_all(&buf) {
            self.restore_segment_len();
            return Err(err);
        }
        if let Err(err) = self.consult(IoOp::Fsync) {
            self.restore_segment_len();
            return Err(err);
        }
        let sync_started = Instant::now();
        if let Err(err) = self.file.sync_data() {
            self.restore_segment_len();
            return Err(err);
        }
        let fsync_nanos = sync_started.elapsed().as_nanos() as u64;

        self.segment_bytes += buf.len() as u64;
        self.bytes_appended += buf.len() as u64;
        self.next_lsn = first_lsn + records.len() as u64;
        self.last_fsync_nanos = fsync_nanos;
        self.commits += 1;
        Ok(AppendReceipt {
            first_lsn,
            count: records.len() as u64,
            fsync_nanos,
        })
    }

    /// Close the active segment and start a fresh one at the current LSN.
    pub fn rotate(&mut self) -> io::Result<()> {
        self.rotate_to(self.next_lsn)
    }

    /// Close the active segment and start a fresh one named `start_lsn` —
    /// the LSN of the first record the new segment will hold (for a
    /// tagged journal, a lower bound on it).
    fn rotate_to(&mut self, start_lsn: u64) -> io::Result<()> {
        self.consult(IoOp::Rotate)?;
        self.file.sync_data()?;
        self.file = create_segment(&self.dir, start_lsn, self.tagged)?;
        self.segment_start = start_lsn;
        self.segment_bytes = SEGMENT_HEADER_LEN as u64;
        self.segments += 1;
        Ok(())
    }

    /// Drop segments and stale snapshots fully covered by a snapshot at
    /// `covered_lsn`, then refresh the segment counter.
    pub fn compact(&mut self, covered_lsn: u64) -> io::Result<crate::compact::CompactReport> {
        let report = crate::compact::compact_dir(&self.dir, covered_lsn)?;
        self.segments = list_segments(&self.dir)?.len() as u64;
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::segment::scan_segment;
    use wsrep_core::feedback::Feedback;
    use wsrep_core::id::{AgentId, ServiceId};
    use wsrep_core::time::Time;

    fn record(i: u64) -> JournalRecord {
        JournalRecord::Feedback(Feedback::scored(
            AgentId::new(i),
            ServiceId::new(i % 3),
            0.5,
            Time::new(i),
        ))
    }

    fn temp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("wsrep-journal-writer-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn all_records(dir: &Path) -> Vec<JournalRecord> {
        let mut out = Vec::new();
        for (_, path) in list_segments(dir).unwrap() {
            out.extend(scan_segment(&path).unwrap().unwrap().records);
        }
        out
    }

    #[test]
    fn append_then_reopen_resumes_the_lsn() {
        let dir = temp_dir("resume");
        {
            let mut journal = Journal::open(&dir, JournalConfig::default()).unwrap();
            let receipt = journal
                .append_batch(&[record(0), record(1), record(2)])
                .unwrap();
            assert_eq!(receipt.first_lsn, 0);
            assert_eq!(receipt.count, 3);
            assert_eq!(journal.next_lsn(), 3);
        }
        {
            let mut journal = Journal::open(&dir, JournalConfig::default()).unwrap();
            assert_eq!(journal.next_lsn(), 3);
            journal.append_batch(&[record(3)]).unwrap();
        }
        let records = all_records(&dir);
        assert_eq!(records.len(), 4);
        assert_eq!(records[3], record(3));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn rotation_spreads_records_over_segments() {
        let dir = temp_dir("rotate");
        let config = JournalConfig {
            max_segment_bytes: 256,
        };
        let mut journal = Journal::open(&dir, config).unwrap();
        for i in 0..40 {
            journal.append_batch(&[record(i)]).unwrap();
        }
        assert!(
            journal.stats().segments > 1,
            "256-byte cap must force rotation"
        );
        assert_eq!(all_records(&dir).len(), 40);
        // Dense LSNs: each segment starts where the previous ended.
        let mut expected_start = 0;
        for (start, path) in list_segments(&dir).unwrap() {
            assert_eq!(start, expected_start);
            expected_start += scan_segment(&path).unwrap().unwrap().records.len() as u64;
        }
        assert_eq!(expected_start, 40);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_final_tail_is_truncated_on_open() {
        let dir = temp_dir("torn-tail");
        {
            let mut journal = Journal::open(&dir, JournalConfig::default()).unwrap();
            journal
                .append_batch(&(0..5).map(record).collect::<Vec<_>>())
                .unwrap();
        }
        let (_, path) = list_segments(&dir).unwrap().pop().unwrap();
        let len = fs::metadata(&path).unwrap().len();
        OpenOptions::new()
            .write(true)
            .open(&path)
            .unwrap()
            .set_len(len - 4)
            .unwrap();
        let mut journal = Journal::open(&dir, JournalConfig::default()).unwrap();
        assert_eq!(journal.next_lsn(), 4, "torn record dropped");
        journal.append_batch(&[record(4)]).unwrap();
        assert_eq!(all_records(&dir).len(), 5);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_middle_segment_refuses_to_open() {
        let dir = temp_dir("torn-middle");
        let config = JournalConfig {
            max_segment_bytes: 128,
        };
        {
            let mut journal = Journal::open(&dir, config).unwrap();
            for i in 0..20 {
                journal.append_batch(&[record(i)]).unwrap();
            }
            assert!(journal.stats().segments >= 3);
        }
        let segments = list_segments(&dir).unwrap();
        let (_, middle) = &segments[segments.len() / 2];
        let len = fs::metadata(middle).unwrap().len();
        OpenOptions::new()
            .write(true)
            .open(middle)
            .unwrap()
            .set_len(len - 2)
            .unwrap();
        let err = Journal::open(&dir, config).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn headerless_final_segment_is_discarded() {
        let dir = temp_dir("headerless");
        {
            let mut journal = Journal::open(&dir, JournalConfig::default()).unwrap();
            journal.append_batch(&[record(0)]).unwrap();
        }
        // Simulate a crash during rotation: the new segment file exists
        // but its header never made it to disk.
        fs::write(dir.join(segment_file_name(1)), b"WS").unwrap();
        let journal = Journal::open(&dir, JournalConfig::default()).unwrap();
        assert_eq!(journal.next_lsn(), 1);
        assert_eq!(journal.stats().segments, 1);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn empty_batch_is_free() {
        let dir = temp_dir("empty");
        let mut journal = Journal::open(&dir, JournalConfig::default()).unwrap();
        let receipt = journal.append_batch(&[]).unwrap();
        assert_eq!(receipt.count, 0);
        assert_eq!(journal.stats().commits, 0);
        fs::remove_dir_all(&dir).unwrap();
    }

    fn tagged_lsns(dir: &Path) -> Vec<u64> {
        let mut out = Vec::new();
        for (_, path) in list_segments(dir).unwrap() {
            let scan = scan_segment_entries(&path).unwrap().unwrap();
            assert!(scan.tagged);
            out.extend(scan.entries.iter().map(|(lsn, _)| *lsn));
        }
        out
    }

    #[test]
    fn tagged_journal_persists_sparse_lsns_and_resumes() {
        let dir = temp_dir("tagged-resume");
        {
            let mut journal = Journal::open_tagged(&dir, JournalConfig::default()).unwrap();
            journal.append_batch_at(2, &[record(2), record(3)]).unwrap();
            // LSNs 4..7 went to other groups.
            journal.append_batch_at(7, &[record(7)]).unwrap();
            assert_eq!(journal.next_lsn(), 8);
        }
        {
            let journal = Journal::open_tagged(&dir, JournalConfig::default()).unwrap();
            assert_eq!(journal.next_lsn(), 8, "resumes past the highest LSN");
        }
        assert_eq!(tagged_lsns(&dir), vec![2, 3, 7]);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn tagged_rotation_names_segments_by_incoming_lsn() {
        let dir = temp_dir("tagged-rotate");
        let config = JournalConfig {
            max_segment_bytes: 128,
        };
        let mut journal = Journal::open_tagged(&dir, config).unwrap();
        let mut lsn = 0;
        for _ in 0..20 {
            journal.append_batch_at(lsn, &[record(lsn)]).unwrap();
            lsn += 3; // sparse: two of every three LSNs live elsewhere
        }
        assert!(journal.stats().segments > 1);
        // Every segment's name is a lower bound on its records.
        for (start, path) in list_segments(&dir).unwrap() {
            let scan = scan_segment_entries(&path).unwrap().unwrap();
            for (lsn, _) in &scan.entries {
                assert!(*lsn >= start);
            }
        }
        assert_eq!(tagged_lsns(&dir).len(), 20);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn tagged_torn_tail_is_truncated_on_open() {
        let dir = temp_dir("tagged-torn");
        {
            let mut journal = Journal::open_tagged(&dir, JournalConfig::default()).unwrap();
            journal
                .append_batch_at(10, &(10..15).map(record).collect::<Vec<_>>())
                .unwrap();
        }
        let (_, path) = list_segments(&dir).unwrap().pop().unwrap();
        let len = fs::metadata(&path).unwrap().len();
        OpenOptions::new()
            .write(true)
            .open(&path)
            .unwrap()
            .set_len(len - 4)
            .unwrap();
        let journal = Journal::open_tagged(&dir, JournalConfig::default()).unwrap();
        assert_eq!(journal.next_lsn(), 14, "torn record dropped");
        assert_eq!(tagged_lsns(&dir), vec![10, 11, 12, 13]);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn injected_append_error_rejects_the_batch_and_leaves_the_log_clean() {
        use crate::faults::{Fault, FaultScript, IoOp};
        let dir = temp_dir("inject-enospc");
        let mut journal = Journal::open(&dir, JournalConfig::default()).unwrap();
        let script = std::sync::Arc::new(FaultScript::new());
        script.push_after(IoOp::Append, 1, Fault::enospc());
        journal.set_io_policy(script.clone());

        journal.append_batch(&[record(0)]).unwrap();
        let err = journal.append_batch(&[record(1)]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::StorageFull);
        assert_eq!(journal.next_lsn(), 1, "rejected batch claims no LSNs");
        assert_eq!(script.injected(), 1);

        // The log is untouched by the failure: a retry lands cleanly and
        // recovery sees exactly the acknowledged records.
        journal.append_batch(&[record(1)]).unwrap();
        drop(journal);
        assert_eq!(all_records(&dir), vec![record(0), record(1)]);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn injected_torn_write_is_repaired_on_reopen() {
        use crate::faults::{Fault, FaultScript, IoOp};
        let dir = temp_dir("inject-torn");
        let mut journal = Journal::open(&dir, JournalConfig::default()).unwrap();
        let script = std::sync::Arc::new(FaultScript::new());
        script.push_after(IoOp::Append, 1, Fault::Torn { keep: 5 });
        journal.set_io_policy(script);

        journal.append_batch(&[record(0), record(1)]).unwrap();
        journal.append_batch(&[record(2)]).unwrap_err();
        drop(journal);

        // The partial frame is on disk; reopen truncates it away and the
        // acknowledged prefix survives untouched.
        let journal = Journal::open(&dir, JournalConfig::default()).unwrap();
        assert_eq!(journal.next_lsn(), 2);
        drop(journal);
        assert_eq!(all_records(&dir), vec![record(0), record(1)]);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn injected_fsync_failure_drops_the_unacknowledged_bytes() {
        use crate::faults::{Fault, FaultScript, IoOp};
        let dir = temp_dir("inject-fsync");
        let mut journal = Journal::open(&dir, JournalConfig::default()).unwrap();
        let script = std::sync::Arc::new(FaultScript::new());
        script.push(IoOp::Fsync, Fault::Error(io::ErrorKind::Other));
        journal.set_io_policy(script);

        journal.append_batch(&[record(0)]).unwrap_err();
        // The written-but-never-synced frame was truncated away, so the
        // next batch cannot smuggle it into the acknowledged log.
        journal.append_batch(&[record(7)]).unwrap();
        drop(journal);
        let records = all_records(&dir);
        assert_eq!(records, vec![record(7)], "rejected batch never surfaces");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn injected_rotate_failure_surfaces_before_the_write() {
        use crate::faults::{Fault, FaultScript, IoOp};
        let dir = temp_dir("inject-rotate");
        // A 1-byte cap forces a rotation before every append.
        let config = JournalConfig {
            max_segment_bytes: 1,
        };
        let mut journal = Journal::open(&dir, config).unwrap();
        let script = std::sync::Arc::new(FaultScript::new());
        script.push(IoOp::Rotate, Fault::enospc());
        journal.set_io_policy(script);

        // The empty initial segment is never rotated, so the first
        // append proceeds; the second must rotate, which the script
        // fails before anything is written.
        journal.append_batch(&[record(0)]).unwrap();
        let err = journal.append_batch(&[record(1)]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::StorageFull);
        assert_eq!(journal.next_lsn(), 1, "nothing written by the failure");
        // The next attempt rotates cleanly and proceeds.
        journal.append_batch(&[record(1)]).unwrap();
        drop(journal);
        assert_eq!(all_records(&dir), vec![record(0), record(1)]);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn format_mismatch_refuses_to_open() {
        let dir = temp_dir("format-mismatch");
        {
            let mut journal = Journal::open_tagged(&dir, JournalConfig::default()).unwrap();
            journal.append_batch_at(0, &[record(0)]).unwrap();
        }
        let err = Journal::open(&dir, JournalConfig::default()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        fs::remove_dir_all(&dir).unwrap();
    }
}
