//! CRC32 record framing.
//!
//! Every journal record is wrapped in a fixed 8-byte frame header:
//!
//! ```text
//! ┌──────────────┬───────────────┬────────────────┐
//! │ len: u32 LE  │ crc32: u32 LE │ payload (len)  │
//! └──────────────┴───────────────┴────────────────┘
//! ```
//!
//! `crc32` is the IEEE CRC-32 (the zlib/Ethernet polynomial, reflected
//! 0xEDB88320) of the payload bytes alone. A reader walks frames front to
//! back and stops at the first header that does not fit, length that
//! overruns the buffer, or checksum that does not match — which is
//! exactly the torn-write tolerance a crashed append needs: the valid
//! prefix is kept, the torn tail is ignored.

/// Frame header bytes: `len` + `crc`.
pub const FRAME_HEADER_LEN: usize = 8;

/// Records larger than this are rejected at append time; a corrupted
/// length field can therefore never make a reader attempt an absurd
/// allocation.
pub const MAX_PAYLOAD_LEN: u32 = 16 * 1024 * 1024;

const fn crc32_tables() -> [[u32; 256]; 8] {
    let mut tables = [[0u32; 256]; 8];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        tables[0][i] = crc;
        i += 1;
    }
    // Table k folds one more byte of zeros through the polynomial:
    // T[k][b] = crc of byte b followed by k zero bytes. Eight tables let
    // the hot loop consume 64 bits per step with no data dependency
    // between the eight lookups.
    let mut k = 1;
    while k < 8 {
        let mut i = 0;
        while i < 256 {
            let prev = tables[k - 1][i];
            tables[k][i] = (prev >> 8) ^ tables[0][(prev & 0xFF) as usize];
            i += 1;
        }
        k += 1;
    }
    tables
}

static CRC32_TABLES: [[u32; 256]; 8] = crc32_tables();

/// IEEE CRC-32 of `bytes` (the zlib `crc32` function), slicing-by-8:
/// eight bytes per step through eight precomputed tables. Bit-identical
/// to [`crc32_bytewise`] (proptest-enforced in `tests/crc.rs`); both the
/// wire frames and the WAL/group-commit path go through this.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    let mut chunks = bytes.chunks_exact(8);
    for chunk in &mut chunks {
        let lo = u32::from_le_bytes(chunk[0..4].try_into().unwrap()) ^ crc;
        let hi = u32::from_le_bytes(chunk[4..8].try_into().unwrap());
        crc = CRC32_TABLES[7][(lo & 0xFF) as usize]
            ^ CRC32_TABLES[6][((lo >> 8) & 0xFF) as usize]
            ^ CRC32_TABLES[5][((lo >> 16) & 0xFF) as usize]
            ^ CRC32_TABLES[4][(lo >> 24) as usize]
            ^ CRC32_TABLES[3][(hi & 0xFF) as usize]
            ^ CRC32_TABLES[2][((hi >> 8) & 0xFF) as usize]
            ^ CRC32_TABLES[1][((hi >> 16) & 0xFF) as usize]
            ^ CRC32_TABLES[0][(hi >> 24) as usize];
    }
    for &b in chunks.remainder() {
        crc = (crc >> 8) ^ CRC32_TABLES[0][((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

/// The one-byte-at-a-time reference CRC-32. The format contract is
/// defined by this loop; [`crc32`] is the fast path proven equal to it.
pub fn crc32_bytewise(bytes: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in bytes {
        crc = (crc >> 8) ^ CRC32_TABLES[0][((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

/// Append one framed payload to `out`.
///
/// # Panics
///
/// Panics if the payload exceeds [`MAX_PAYLOAD_LEN`] — a record that
/// large is a logic error, not an I/O condition.
pub fn write_frame(out: &mut Vec<u8>, payload: &[u8]) {
    assert!(
        payload.len() <= MAX_PAYLOAD_LEN as usize,
        "journal record of {} bytes exceeds the {} byte frame limit",
        payload.len(),
        MAX_PAYLOAD_LEN
    );
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32(payload).to_le_bytes());
    out.extend_from_slice(payload);
}

/// Reserve a frame header at the end of `out` and return its offset.
///
/// In-place framing for encoders that can write their payload directly
/// into the destination buffer: `begin_frame`, append the payload bytes,
/// then [`end_frame`] backfills the length and CRC. Byte-identical to
/// encoding the payload separately and calling [`write_frame`], without
/// the intermediate allocation and copy (proptest-enforced in
/// `tests/crc.rs`).
pub fn begin_frame(out: &mut Vec<u8>) -> usize {
    let start = out.len();
    out.extend_from_slice(&[0u8; FRAME_HEADER_LEN]);
    start
}

/// Backfill the header reserved by [`begin_frame`] at `start`: everything
/// appended to `out` since is the frame's payload.
///
/// # Panics
///
/// Panics if the payload exceeds [`MAX_PAYLOAD_LEN`], or if `out` shrank
/// below the reserved header (a caller bug).
pub fn end_frame(out: &mut [u8], start: usize) {
    let payload_start = start + FRAME_HEADER_LEN;
    assert!(
        payload_start <= out.len(),
        "end_frame: buffer shrank past the reserved header"
    );
    let payload_len = out.len() - payload_start;
    assert!(
        payload_len <= MAX_PAYLOAD_LEN as usize,
        "journal record of {} bytes exceeds the {} byte frame limit",
        payload_len,
        MAX_PAYLOAD_LEN
    );
    let crc = crc32(&out[payload_start..]);
    out[start..start + 4].copy_from_slice(&(payload_len as u32).to_le_bytes());
    out[start + 4..payload_start].copy_from_slice(&crc.to_le_bytes());
}

/// What the front of a byte buffer holds, for incremental stream
/// parsers.
///
/// [`FrameReader`] folds every anomaly into "torn" because a journal
/// tail is read once, after the fact. A network stream is different: an
/// incomplete frame means *wait for more bytes*, while a corrupt one
/// means the peer (or the wire) is broken and the connection must be
/// torn down — no amount of further reading can resynchronize a
/// length-prefixed stream after a bad header. [`split_frame`] makes that
/// distinction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameSplit {
    /// Not enough bytes yet for a complete frame; read more and retry.
    Incomplete,
    /// The header or checksum is invalid — the stream cannot be trusted
    /// past this point.
    Corrupt,
    /// A complete, checksummed frame: the payload spans
    /// `buf[FRAME_HEADER_LEN..frame_len]` and the next frame (if any)
    /// starts at `frame_len`.
    Frame {
        /// Total length of the frame including its header.
        frame_len: usize,
    },
}

/// Classify the front of `buf`: a complete valid frame, an incomplete
/// prefix, or corruption (oversized length field or checksum mismatch).
pub fn split_frame(buf: &[u8]) -> FrameSplit {
    if buf.len() < FRAME_HEADER_LEN {
        return FrameSplit::Incomplete;
    }
    let len = u32::from_le_bytes(buf[0..4].try_into().unwrap());
    if len > MAX_PAYLOAD_LEN {
        return FrameSplit::Corrupt;
    }
    let frame_len = FRAME_HEADER_LEN + len as usize;
    if buf.len() < frame_len {
        return FrameSplit::Incomplete;
    }
    let expected_crc = u32::from_le_bytes(buf[4..8].try_into().unwrap());
    if crc32(&buf[FRAME_HEADER_LEN..frame_len]) != expected_crc {
        return FrameSplit::Corrupt;
    }
    FrameSplit::Frame { frame_len }
}

/// Why frame iteration stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameEnd {
    /// The buffer ended exactly on a frame boundary.
    Clean,
    /// Trailing bytes did not form a complete, checksummed frame — a torn
    /// or truncated final record.
    Torn,
}

/// Iterates the valid frame prefix of a byte buffer.
pub struct FrameReader<'a> {
    buf: &'a [u8],
    pos: usize,
    end: Option<FrameEnd>,
}

impl<'a> FrameReader<'a> {
    /// Read frames from the front of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        FrameReader {
            buf,
            pos: 0,
            end: None,
        }
    }

    /// Byte offset of the end of the last *valid* frame returned so far.
    pub fn valid_len(&self) -> usize {
        self.pos
    }

    /// How iteration ended; `None` while frames remain.
    pub fn end(&self) -> Option<FrameEnd> {
        self.end
    }

    /// The next valid payload, or `None` at the end of the valid prefix.
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> Option<&'a [u8]> {
        if self.end.is_some() {
            return None;
        }
        let remaining = &self.buf[self.pos..];
        if remaining.is_empty() {
            self.end = Some(FrameEnd::Clean);
            return None;
        }
        if remaining.len() < FRAME_HEADER_LEN {
            self.end = Some(FrameEnd::Torn);
            return None;
        }
        let len = u32::from_le_bytes(remaining[0..4].try_into().unwrap());
        let expected_crc = u32::from_le_bytes(remaining[4..8].try_into().unwrap());
        if len > MAX_PAYLOAD_LEN || remaining.len() - FRAME_HEADER_LEN < len as usize {
            self.end = Some(FrameEnd::Torn);
            return None;
        }
        let payload = &remaining[FRAME_HEADER_LEN..FRAME_HEADER_LEN + len as usize];
        if crc32(payload) != expected_crc {
            self.end = Some(FrameEnd::Torn);
            return None;
        }
        self.pos += FRAME_HEADER_LEN + len as usize;
        Some(payload)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_known_vectors() {
        // Standard zlib/IEEE check values.
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b"hello"), 0x3610_A686);
    }

    #[test]
    fn frames_round_trip_in_order() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"alpha");
        write_frame(&mut buf, b"");
        write_frame(&mut buf, b"gamma");
        let mut reader = FrameReader::new(&buf);
        assert_eq!(reader.next(), Some(&b"alpha"[..]));
        assert_eq!(reader.next(), Some(&b""[..]));
        assert_eq!(reader.next(), Some(&b"gamma"[..]));
        assert_eq!(reader.next(), None);
        assert_eq!(reader.end(), Some(FrameEnd::Clean));
        assert_eq!(reader.valid_len(), buf.len());
    }

    #[test]
    fn any_truncation_yields_a_valid_prefix() {
        let payloads: Vec<Vec<u8>> = (0..5u8).map(|i| vec![i; 3 + i as usize]).collect();
        let mut buf = Vec::new();
        for p in &payloads {
            write_frame(&mut buf, p);
        }
        for cut in 0..buf.len() {
            let mut reader = FrameReader::new(&buf[..cut]);
            let mut got = 0;
            while let Some(payload) = reader.next() {
                assert_eq!(payload, payloads[got].as_slice(), "cut at {cut}");
                got += 1;
            }
            assert!(got <= payloads.len());
            if cut < buf.len() {
                // The cut landed mid-frame unless it hit a boundary.
                let boundary = reader.valid_len() == cut;
                assert_eq!(
                    reader.end(),
                    Some(if boundary {
                        FrameEnd::Clean
                    } else {
                        FrameEnd::Torn
                    }),
                    "cut at {cut}"
                );
            }
        }
    }

    #[test]
    fn corrupted_byte_stops_iteration_at_the_damage() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"first");
        let first_end = buf.len();
        write_frame(&mut buf, b"second");
        // Flip a payload byte of the second frame.
        let target = first_end + FRAME_HEADER_LEN + 2;
        buf[target] ^= 0x40;
        let mut reader = FrameReader::new(&buf);
        assert_eq!(reader.next(), Some(&b"first"[..]));
        assert_eq!(reader.next(), None);
        assert_eq!(reader.end(), Some(FrameEnd::Torn));
        assert_eq!(reader.valid_len(), first_end);
    }

    #[test]
    fn split_frame_distinguishes_incomplete_from_corrupt() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"payload");
        // Every strict prefix is incomplete, never corrupt.
        for cut in 0..buf.len() {
            assert_eq!(
                split_frame(&buf[..cut]),
                FrameSplit::Incomplete,
                "cut {cut}"
            );
        }
        assert_eq!(
            split_frame(&buf),
            FrameSplit::Frame {
                frame_len: buf.len()
            }
        );
        // A flipped payload byte is corruption.
        let mut bad = buf.clone();
        bad[FRAME_HEADER_LEN + 1] ^= 0x10;
        assert_eq!(split_frame(&bad), FrameSplit::Corrupt);
        // An absurd length field is corruption even with few bytes.
        let mut absurd = Vec::new();
        absurd.extend_from_slice(&u32::MAX.to_le_bytes());
        absurd.extend_from_slice(&0u32.to_le_bytes());
        assert_eq!(split_frame(&absurd), FrameSplit::Corrupt);
        // Trailing bytes beyond one frame do not affect the split.
        let mut extra = buf.clone();
        extra.extend_from_slice(&[1, 2, 3]);
        assert_eq!(
            split_frame(&extra),
            FrameSplit::Frame {
                frame_len: buf.len()
            }
        );
    }

    #[test]
    fn absurd_length_field_is_torn_not_an_allocation() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&u32::MAX.to_le_bytes());
        buf.extend_from_slice(&0u32.to_le_bytes());
        buf.extend_from_slice(&[0; 16]);
        let mut reader = FrameReader::new(&buf);
        assert_eq!(reader.next(), None);
        assert_eq!(reader.end(), Some(FrameEnd::Torn));
    }
}
