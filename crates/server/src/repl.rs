//! The server's replication seam.
//!
//! The reactor stays ignorant of *how* records are shipped: a node that
//! can serve [`crate::proto::Request::ReplPull`] plugs a [`Replicator`]
//! into [`crate::Server`], and a node that wants its staleness visible
//! in `Stats` plugs in a [`ReplicationGauge`]. The cluster crate owns
//! the actual log shipping; this module only defines the hooks, which
//! keeps the dependency arrow pointing cluster → server and not both
//! ways.

use crate::proto::{ReplBatch, ReplRole, ReplWatermark, ReplicationStats};
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, AtomicU8, Ordering};

/// Why a [`Replicator::pull`] could not be served. Carried to the wire
/// as [`crate::proto::ErrorCode::ReplUnavailable`] with this message.
#[derive(Debug)]
pub struct ReplError(pub String);

impl fmt::Display for ReplError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for ReplError {}

/// Serves the replication opcode family: a primary's log, pullable.
pub trait Replicator: Send + Sync {
    /// Records starting at `from_lsn`, at most `max_records` of them,
    /// plus this node's durable watermark.
    fn pull(&self, from_lsn: u64, max_records: u32) -> Result<ReplBatch, ReplError>;

    /// Register a follower's applied watermark; answers with the
    /// primary's view of the topology.
    fn heartbeat(&self, replica: u64, durable_lsn: u64) -> ReplWatermark;
}

/// Lock-free replication watermarks, snapshotted by the stats path.
///
/// Writers (the replication loop on a replica, the [`Replicator`] on a
/// primary) store plain relaxed atomics; a snapshot is the same
/// not-a-consistent-cut contract every other counter in the stats
/// response follows.
#[derive(Debug)]
pub struct ReplicationGauge {
    /// 0 = primary, 1 = replica.
    role: AtomicU8,
    /// This node's own durable LSN.
    local: AtomicU64,
    /// The other side's durable watermark (primary LSN on a replica; the
    /// slowest replica's acked LSN on a primary).
    remote: AtomicU64,
    /// Recently heartbeating followers (primary side).
    replicas: AtomicU32,
    /// Replication link currently up.
    connected: AtomicBool,
}

impl ReplicationGauge {
    /// A primary's gauge: connected to itself by definition.
    pub fn primary() -> Self {
        ReplicationGauge {
            role: AtomicU8::new(0),
            local: AtomicU64::new(0),
            remote: AtomicU64::new(0),
            replicas: AtomicU32::new(0),
            connected: AtomicBool::new(true),
        }
    }

    /// A replica's gauge: disconnected until its pull loop says otherwise.
    pub fn replica() -> Self {
        ReplicationGauge {
            role: AtomicU8::new(1),
            local: AtomicU64::new(0),
            remote: AtomicU64::new(0),
            replicas: AtomicU32::new(0),
            connected: AtomicBool::new(false),
        }
    }

    /// Flip the role to primary — the observable half of a promotion.
    pub fn promote(&self) {
        self.role.store(0, Ordering::Relaxed);
        self.connected.store(true, Ordering::Relaxed);
        self.replicas.store(0, Ordering::Relaxed);
    }

    /// Record this node's own durable LSN.
    pub fn set_local(&self, lsn: u64) {
        self.local.store(lsn, Ordering::Relaxed);
    }

    /// Record the other side's durable watermark.
    pub fn set_remote(&self, lsn: u64) {
        self.remote.store(lsn, Ordering::Relaxed);
    }

    /// Record the follower count (primary side).
    pub fn set_replicas(&self, n: u32) {
        self.replicas.store(n, Ordering::Relaxed);
    }

    /// Record whether the replication link is up.
    pub fn set_connected(&self, connected: bool) {
        self.connected.store(connected, Ordering::Relaxed);
    }

    /// The staleness picture as of now; `lag` is the distance between
    /// the local and remote watermarks. A primary with no live follower
    /// trails nobody: its remote watermark reads as its own and lag is 0
    /// (a freshly promoted node would otherwise report the stale
    /// watermark of the primary it replaced).
    pub fn snapshot(&self) -> ReplicationStats {
        let local = self.local.load(Ordering::Relaxed);
        let mut remote = self.remote.load(Ordering::Relaxed);
        let role = if self.role.load(Ordering::Relaxed) == 0 {
            ReplRole::Primary
        } else {
            ReplRole::Replica
        };
        let replicas = self.replicas.load(Ordering::Relaxed);
        if role == ReplRole::Primary && replicas == 0 {
            remote = local;
        }
        ReplicationStats {
            role,
            local_durable_lsn: local,
            remote_durable_lsn: remote,
            lag: local.abs_diff(remote),
            replicas,
            connected: self.connected.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gauge_reports_lag_in_both_directions() {
        let gauge = ReplicationGauge::replica();
        gauge.set_local(90);
        gauge.set_remote(100);
        gauge.set_connected(true);
        let stats = gauge.snapshot();
        assert_eq!(stats.role, ReplRole::Replica);
        assert_eq!(stats.lag, 10);
        assert!(stats.connected);

        gauge.promote();
        let stats = gauge.snapshot();
        assert_eq!(stats.role, ReplRole::Primary);
        assert_eq!(stats.lag, 0, "no follower ⇒ a primary trails nobody");

        gauge.set_replicas(1);
        gauge.set_remote(80);
        let stats = gauge.snapshot();
        assert_eq!(stats.lag, 10, "slowest follower trails by 10");
    }
}
