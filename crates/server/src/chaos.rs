//! Chaos harness: an in-test flaky TCP proxy.
//!
//! [`FlakyProxy`] sits between a client and a server on loopback and
//! misbehaves on a deterministic schedule: it can **drop** connections
//! mid-stream, **delay** chunks, **split** chunks into byte-dribbles
//! (so frame parsers see every partial-read shape), and **corrupt**
//! server-to-client bytes (so CRC checks actually fire). Composed with
//! the journal's [`IoPolicy`](wsrep_journal::IoPolicy) failpoints, this
//! is the whole failure lab: disk faults below the service, link faults
//! in front of it, and counters proving each fault actually happened —
//! a chaos test whose injection counters read zero tested nothing.
//!
//! The schedules are counter-modulo rules offset by a seed, not real
//! randomness, so a failing chaos test replays byte-for-byte.

use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// What the proxy does to the traffic, as every-Nth-chunk rules.
/// A "chunk" is one successful `read()` from either side, counted on a
/// shared counter, so rules interleave across directions the way real
/// interleaved traffic would.
#[derive(Debug, Clone, Copy)]
pub struct ChaosConfig {
    /// Offsets the modulo schedules so different seeds fault at
    /// different points in the stream.
    pub seed: u64,
    /// Sever the connection (both directions) on every Nth chunk,
    /// after forwarding a prefix of it — an ack can be lost in flight.
    pub drop_conn_every: Option<u64>,
    /// Sleep [`ChaosConfig::delay`] before forwarding every Nth chunk.
    pub delay_every: Option<u64>,
    /// The stall injected by `delay_every`.
    pub delay: Duration,
    /// Forward every chunk as two writes (first byte, then the rest),
    /// forcing partial-frame reads on the far side.
    pub split_chunks: bool,
    /// Flip one byte in every Nth **server-to-client** chunk, tripping
    /// the frame CRC on the receiving side.
    pub corrupt_downstream_every: Option<u64>,
}

impl Default for ChaosConfig {
    fn default() -> Self {
        ChaosConfig {
            seed: 0,
            drop_conn_every: None,
            delay_every: None,
            delay: Duration::from_millis(2),
            split_chunks: false,
            corrupt_downstream_every: None,
        }
    }
}

/// Snapshot of how much chaos was actually injected.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ChaosCounters {
    /// Chunks forwarded (both directions).
    pub chunks: u64,
    /// Connections severed by the drop rule.
    pub dropped_conns: u64,
    /// Chunks stalled by the delay rule.
    pub delayed_chunks: u64,
    /// Chunks with a flipped byte (downstream only).
    pub corrupted_chunks: u64,
    /// Connections accepted from clients.
    pub accepted_conns: u64,
}

impl ChaosCounters {
    /// Total faults injected (drops + delays + corruptions). Chaos
    /// tests gate on this being nonzero — otherwise they proved
    /// nothing.
    pub fn injected(&self) -> u64 {
        self.dropped_conns + self.delayed_chunks + self.corrupted_chunks
    }
}

#[derive(Default)]
struct Counters {
    chunks: AtomicU64,
    dropped_conns: AtomicU64,
    delayed_chunks: AtomicU64,
    corrupted_chunks: AtomicU64,
    accepted_conns: AtomicU64,
}

/// A loopback TCP proxy that forwards to `upstream` while injecting
/// the faults described by its [`ChaosConfig`].
pub struct FlakyProxy {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    counters: Arc<Counters>,
    accept_thread: Option<JoinHandle<()>>,
}

impl FlakyProxy {
    /// Start the proxy on an ephemeral loopback port, forwarding every
    /// accepted connection to `upstream`.
    pub fn start(upstream: SocketAddr, config: ChaosConfig) -> std::io::Result<FlakyProxy> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let addr = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let counters = Arc::new(Counters::default());
        let accept_thread = {
            let shutdown = Arc::clone(&shutdown);
            let counters = Arc::clone(&counters);
            std::thread::Builder::new()
                .name("flaky-proxy-accept".to_string())
                .spawn(move || accept_loop(listener, upstream, config, shutdown, counters))?
        };
        Ok(FlakyProxy {
            addr,
            shutdown,
            counters,
            accept_thread: Some(accept_thread),
        })
    }

    /// The address clients should connect to instead of the upstream.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// How much chaos has been injected so far.
    pub fn counters(&self) -> ChaosCounters {
        ChaosCounters {
            chunks: self.counters.chunks.load(Ordering::Relaxed),
            dropped_conns: self.counters.dropped_conns.load(Ordering::Relaxed),
            delayed_chunks: self.counters.delayed_chunks.load(Ordering::Relaxed),
            corrupted_chunks: self.counters.corrupted_chunks.load(Ordering::Relaxed),
            accepted_conns: self.counters.accepted_conns.load(Ordering::Relaxed),
        }
    }

    /// Stop accepting and tear down. In-flight pump threads notice the
    /// flag on their next chunk and exit; established sockets are left
    /// to die with them.
    pub fn stop(&mut self) {
        self.shutdown.store(true, Ordering::Release);
        // Unblock the accept() with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(handle) = self.accept_thread.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for FlakyProxy {
    fn drop(&mut self) {
        self.stop();
    }
}

fn accept_loop(
    listener: TcpListener,
    upstream: SocketAddr,
    config: ChaosConfig,
    shutdown: Arc<AtomicBool>,
    counters: Arc<Counters>,
) {
    loop {
        let client = match listener.accept() {
            Ok((stream, _)) => stream,
            Err(_) => return,
        };
        if shutdown.load(Ordering::Acquire) {
            return;
        }
        let server = match TcpStream::connect(upstream) {
            Ok(stream) => stream,
            // Upstream gone (e.g. the test killed the primary): drop
            // the client and keep serving later reconnects.
            Err(_) => continue,
        };
        counters.accepted_conns.fetch_add(1, Ordering::Relaxed);
        let _ = client.set_nodelay(true);
        let _ = server.set_nodelay(true);
        spawn_pumps(client, server, config, &shutdown, &counters);
    }
}

/// Two pump threads per connection — client→server and server→client —
/// sharing one chunk counter so the fault schedule interleaves across
/// directions.
fn spawn_pumps(
    client: TcpStream,
    server: TcpStream,
    config: ChaosConfig,
    shutdown: &Arc<AtomicBool>,
    counters: &Arc<Counters>,
) {
    let c2 = client.try_clone();
    let s2 = server.try_clone();
    let (client2, server2) = match (c2, s2) {
        (Ok(c), Ok(s)) => (c, s),
        _ => return,
    };
    for (from, to, downstream) in [(client, server, false), (server2, client2, true)] {
        let shutdown = Arc::clone(shutdown);
        let counters = Arc::clone(counters);
        let _ = std::thread::Builder::new()
            .name("flaky-proxy-pump".to_string())
            .spawn(move || pump(from, to, config, downstream, shutdown, counters));
    }
}

fn pump(
    mut from: TcpStream,
    mut to: TcpStream,
    config: ChaosConfig,
    downstream: bool,
    shutdown: Arc<AtomicBool>,
    counters: Arc<Counters>,
) {
    let mut buf = [0u8; 16 * 1024];
    loop {
        if shutdown.load(Ordering::Acquire) {
            break;
        }
        let n = match from.read(&mut buf) {
            Ok(0) | Err(_) => break,
            Ok(n) => n,
        };
        let chunk = counters
            .chunks
            .fetch_add(1, Ordering::Relaxed)
            .wrapping_add(config.seed);
        let hits = |every: Option<u64>| {
            every
                .map(|e| chunk.is_multiple_of(e.max(1)))
                .unwrap_or(false)
        };

        if hits(config.delay_every) {
            counters.delayed_chunks.fetch_add(1, Ordering::Relaxed);
            std::thread::sleep(config.delay);
        }
        let data = &mut buf[..n];
        if downstream && hits(config.corrupt_downstream_every) {
            counters.corrupted_chunks.fetch_add(1, Ordering::Relaxed);
            data[n / 2] ^= 0xFF;
        }
        if hits(config.drop_conn_every) {
            // Forward a prefix, then sever both directions: the far
            // side sees a torn stream, exactly like a mid-ack failure.
            counters.dropped_conns.fetch_add(1, Ordering::Relaxed);
            let _ = to.write_all(&data[..n / 2]);
            let _ = from.shutdown(Shutdown::Both);
            let _ = to.shutdown(Shutdown::Both);
            break;
        }
        let write = if config.split_chunks && n > 1 {
            to.write_all(&data[..1]).and_then(|()| {
                to.flush()?;
                to.write_all(&data[1..])
            })
        } else {
            to.write_all(data)
        };
        if write.is_err() {
            break;
        }
    }
    // Kick the paired pump loose so the connection dies as a unit.
    let _ = from.shutdown(Shutdown::Both);
    let _ = to.shutdown(Shutdown::Both);
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};

    /// A one-connection echo server on an ephemeral port.
    fn echo_upstream() -> (SocketAddr, JoinHandle<()>) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let handle = std::thread::spawn(move || {
            let Ok((mut stream, _)) = listener.accept() else {
                return;
            };
            let mut buf = [0u8; 1024];
            loop {
                match stream.read(&mut buf) {
                    Ok(0) | Err(_) => break,
                    Ok(n) => {
                        if stream.write_all(&buf[..n]).is_err() {
                            break;
                        }
                    }
                }
            }
        });
        (addr, handle)
    }

    #[test]
    fn clean_proxy_passes_bytes_through() {
        let (upstream, server) = echo_upstream();
        let mut proxy = FlakyProxy::start(upstream, ChaosConfig::default()).unwrap();
        let mut conn = TcpStream::connect(proxy.addr()).unwrap();
        conn.write_all(b"hello chaos").unwrap();
        let mut back = [0u8; 11];
        conn.read_exact(&mut back).unwrap();
        assert_eq!(&back, b"hello chaos");
        assert_eq!(proxy.counters().injected(), 0);
        assert!(proxy.counters().chunks >= 2);
        drop(conn);
        proxy.stop();
        server.join().unwrap();
    }

    #[test]
    fn corruption_flips_downstream_bytes_and_counts() {
        let (upstream, server) = echo_upstream();
        let config = ChaosConfig {
            // Corrupt every downstream chunk.
            corrupt_downstream_every: Some(1),
            ..ChaosConfig::default()
        };
        let mut proxy = FlakyProxy::start(upstream, config).unwrap();
        let mut conn = TcpStream::connect(proxy.addr()).unwrap();
        conn.write_all(b"abcd").unwrap();
        let mut back = [0u8; 4];
        conn.read_exact(&mut back).unwrap();
        assert_ne!(&back, b"abcd", "echo came back unmodified");
        assert!(proxy.counters().corrupted_chunks >= 1);
        drop(conn);
        proxy.stop();
        server.join().unwrap();
    }

    #[test]
    fn drop_rule_severs_the_connection() {
        let (upstream, server) = echo_upstream();
        let config = ChaosConfig {
            drop_conn_every: Some(1),
            ..ChaosConfig::default()
        };
        let mut proxy = FlakyProxy::start(upstream, config).unwrap();
        let mut conn = TcpStream::connect(proxy.addr()).unwrap();
        conn.write_all(b"doomed").unwrap();
        let mut back = [0u8; 6];
        // Either a clean EOF or a reset — both mean the link died.
        match conn.read(&mut back) {
            Ok(0) | Err(_) => {}
            Ok(n) => {
                // A prefix may have been forwarded before the cut; the
                // rest never arrives.
                assert!(n < 6, "full echo survived a drop rule");
                match conn.read(&mut back) {
                    Ok(0) | Err(_) => {}
                    Ok(_) => panic!("connection survived the drop rule"),
                }
            }
        }
        assert!(proxy.counters().dropped_conns >= 1);
        proxy.stop();
        server.join().unwrap();
    }
}
