//! The serving loop: a hand-rolled readiness-driven reactor.
//!
//! One **acceptor** thread owns the listener and deals accepted sockets
//! round-robin to N **worker** threads. Each worker owns its connections
//! outright (no cross-thread connection state, no locks on the data
//! path) and blocks on a [`Poller`] — raw epoll on Linux, the portable
//! poll-everything fallback elsewhere (see [`crate::poll`]) — waking
//! only when a socket is actually readable/writable, a new connection is
//! dealt to it, or shutdown is requested. Per wakeup it pumps exactly
//! the ready connections: nonblocking writes first, then nonblocking
//! reads, then frame parsing and request dispatch. Read interest is
//! dropped while a connection is over its write-buffer limit and write
//! interest exists only while responses are queued, so a fully idle
//! server sits in `epoll_wait` at ~zero CPU instead of spinning a
//! sleep-poll loop. The connection ownership model is unchanged from the
//! polling reactor: readiness says *which* worker-owned connection to
//! pump, never moves one across threads.
//!
//! ## Pipelining and backpressure
//!
//! Requests are served strictly in arrival order per connection; a
//! client may pipeline as deep as it likes, but the server bounds the
//! damage a connection can do:
//!
//! - **Bounded in-flight depth**: a worker parses at most
//!   [`ServerConfig::max_pipeline_depth`] requests per connection per
//!   pass, and stops *reading* from a socket whose output buffer already
//!   holds more than [`ServerConfig::write_buffer_limit`] unsent bytes.
//!   An unread response backlog therefore freezes that connection's
//!   intake (TCP pushes the backpressure to the client) without ever
//!   growing server memory unboundedly.
//! - **Slow-client timeout**: a connection that stays *over* the
//!   write-buffer limit for longer than
//!   [`ServerConfig::write_stall_timeout`] is closed — trickling a few
//!   bytes now and then doesn't reset the clock, only draining back
//!   under the limit does. One stuck socket costs one bounded buffer
//!   for one bounded time, never the reactor.
//!
//! ## Lifecycle
//!
//! [`Server::shutdown`] (or a [`Request::Shutdown`] frame) flips a flag;
//! the acceptor stops accepting, workers stop reading, finish writing
//! every queued response, close their connections, and exit; `join`
//! then flushes the ingest pipeline — with a journal attached that is a
//! final group-commit fsync, so everything acknowledged over the wire
//! is durable before the process exits.

use crate::poll::{make_poller, Event, Interest, Poller, PollerChoice, Waker};
use crate::proto::{
    ErrorCode, IngestKey, Request, Response, ServerStats, WireRanked, WireStats, PROTO_VERSION,
};
use crate::repl::{ReplicationGauge, Replicator};
use std::collections::{HashMap, VecDeque};
use std::io::{self, Read, Write};
use std::net::{Shutdown as SockShutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::os::unix::io::AsRawFd;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender, TryRecvError};
use std::sync::{Arc, Mutex, OnceLock};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};
use wsrep_core::feedback::Feedback;
use wsrep_journal::frame::{split_frame, FrameSplit};
use wsrep_serve::{DurabilityPolicy, ReputationService};
use wsrep_sim::registry::RegistryError;

/// Reactor tuning knobs.
#[derive(Debug, Clone, Copy)]
pub struct ServerConfig {
    /// Worker threads (each owns a share of the connections).
    pub workers: usize,
    /// Most requests parsed and served per connection per reactor pass.
    pub max_pipeline_depth: usize,
    /// Stop reading from a connection whose unsent output exceeds this.
    pub write_buffer_limit: usize,
    /// Close a connection write-blocked over the limit for this long.
    pub write_stall_timeout: Duration,
    /// Readiness backend: epoll where available, or the portable
    /// poll-everything fallback.
    pub poller: PollerChoice,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            workers: 4,
            max_pipeline_depth: 128,
            write_buffer_limit: 1 << 20,
            write_stall_timeout: Duration::from_secs(10),
            poller: PollerChoice::Auto,
        }
    }
}

/// Wire counters as relaxed atomics; snapshots into
/// [`ServerStats`].
#[derive(Debug, Default)]
struct Counters {
    connections_opened: AtomicU64,
    connections_closed: AtomicU64,
    requests: [AtomicU64; 11],
    reports_ingested: AtomicU64,
    malformed_frames: AtomicU64,
    protocol_errors: AtomicU64,
    slow_client_closes: AtomicU64,
    bytes_in: AtomicU64,
    bytes_out: AtomicU64,
}

impl Counters {
    fn snapshot(&self) -> ServerStats {
        let mut requests = [0u64; 11];
        for (slot, counter) in requests.iter_mut().zip(&self.requests) {
            *slot = counter.load(Ordering::Relaxed);
        }
        ServerStats {
            connections_opened: self.connections_opened.load(Ordering::Relaxed),
            connections_closed: self.connections_closed.load(Ordering::Relaxed),
            requests,
            reports_ingested: self.reports_ingested.load(Ordering::Relaxed),
            malformed_frames: self.malformed_frames.load(Ordering::Relaxed),
            protocol_errors: self.protocol_errors.load(Ordering::Relaxed),
            slow_client_closes: self.slow_client_closes.load(Ordering::Relaxed),
            bytes_in: self.bytes_in.load(Ordering::Relaxed),
            bytes_out: self.bytes_out.load(Ordering::Relaxed),
        }
    }
}

/// Recent `(seq → acknowledgement)` pairs remembered per producer for
/// ingest dedup. Deep enough to cover any plausible in-flight retry
/// window; a producer that pipelines more unacknowledged batches than
/// this loses exactly-once on the overflow.
const DEDUP_WINDOW: usize = 128;

/// One producer's recently acknowledged ingest sequence numbers.
#[derive(Debug, Default)]
struct ProducerWindow {
    /// `(seq, accepted)` in arrival order, newest at the back.
    acked: VecDeque<(u64, u64)>,
}

impl ProducerWindow {
    fn lookup(&self, seq: u64) -> Option<u64> {
        // Retries target recent seqs, so scan newest-first.
        self.acked
            .iter()
            .rev()
            .find(|(s, _)| *s == seq)
            .map(|(_, accepted)| *accepted)
    }

    fn record(&mut self, seq: u64, accepted: u64) {
        if self.acked.len() == DEDUP_WINDOW {
            self.acked.pop_front();
        }
        self.acked.push_back((seq, accepted));
    }
}

/// The server-side half of exactly-once ingest: per-producer windows of
/// recently acknowledged `(seq, accepted)` pairs. A keyed batch whose
/// seq is already in its producer's window is **not** re-applied — the
/// original acknowledgement is replayed, so a client retrying after a
/// lost response cannot double-count feedback.
#[derive(Debug, Default)]
struct IngestDedup {
    producers: Mutex<HashMap<u64, Arc<Mutex<ProducerWindow>>>>,
}

impl IngestDedup {
    /// The producer's window, created on first sight. Two-level locking:
    /// the map lock is held only for the lookup, the per-producer lock
    /// for the whole check-apply-record sequence — concurrent retries of
    /// the same batch serialize, different producers don't contend.
    fn producer(&self, id: u64) -> Arc<Mutex<ProducerWindow>> {
        let mut map = self.producers.lock().unwrap_or_else(|e| e.into_inner());
        Arc::clone(map.entry(id).or_default())
    }
}

/// Replication hooks a cluster node plugs into its server. A plain
/// standalone server uses [`ReplicationHooks::default`]: no shipping,
/// no gauge, writes allowed.
#[derive(Default)]
pub struct ReplicationHooks {
    /// Serves `ReplPull`/`ReplHeartbeat` (a primary's shipped log).
    pub replicator: Option<Arc<dyn Replicator>>,
    /// Staleness watermarks surfaced in the `Stats` response.
    pub gauge: Option<Arc<ReplicationGauge>>,
    /// Start in read-only mode: reject writes (publish, deregister,
    /// ingest) with [`ErrorCode::ReadOnly`]. A replica serves reads at
    /// its watermark; promotion flips this off via
    /// [`Server::set_read_only`].
    pub read_only: bool,
}

/// State every thread shares.
struct Shared {
    service: Arc<ReputationService>,
    counters: Counters,
    dedup: IngestDedup,
    shutdown: AtomicBool,
    read_only: AtomicBool,
    replicator: Option<Arc<dyn Replicator>>,
    repl_gauge: Option<Arc<ReplicationGauge>>,
    config: ServerConfig,
    /// One waker per reactor thread (workers + acceptor): shutdown must
    /// interrupt a blocked `Poller::wait`, not wait out its timeout.
    wakers: Vec<Waker>,
    /// Backend the pollers were built with, for logs and stats.
    poller_kind: &'static str,
}

impl Shared {
    /// Flip the shutdown flag and wake every reactor thread so none
    /// sleeps through it.
    fn request_shutdown(&self) {
        self.shutdown.store(true, Ordering::Release);
        for waker in &self.wakers {
            waker.wake();
        }
    }
}

/// A running reputation server bound to a TCP address.
pub struct Server {
    shared: Arc<Shared>,
    local_addr: SocketAddr,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl Server {
    /// Bind `addr` and start serving `service`. Use port 0 to let the
    /// OS pick; [`Server::local_addr`] reports the bound address.
    pub fn start(
        service: Arc<ReputationService>,
        addr: impl ToSocketAddrs,
        config: ServerConfig,
    ) -> io::Result<Server> {
        Server::start_with_replication(service, addr, config, ReplicationHooks::default())
    }

    /// [`Server::start`] with replication hooks attached — how a cluster
    /// primary ships its log and a replica serves read-only at its
    /// watermark.
    pub fn start_with_replication(
        service: Arc<ReputationService>,
        addr: impl ToSocketAddrs,
        config: ServerConfig,
        hooks: ReplicationHooks,
    ) -> io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local_addr = listener.local_addr()?;
        // Pollers are built before any thread starts so their wakers can
        // live in `Shared` — anyone holding the shared state can wake
        // every reactor thread (shutdown, the acceptor dealing a socket).
        let workers_n = config.workers.max(1);
        let acceptor_poller = make_poller(config.poller)?;
        let mut worker_pollers = Vec::with_capacity(workers_n);
        for _ in 0..workers_n {
            worker_pollers.push(make_poller(config.poller)?);
        }
        let worker_wakers: Vec<Waker> =
            worker_pollers.iter().map(|poller| poller.waker()).collect();
        let mut wakers = worker_wakers.clone();
        wakers.push(acceptor_poller.waker());
        let poller_kind = acceptor_poller.kind();
        let shared = Arc::new(Shared {
            service,
            counters: Counters::default(),
            dedup: IngestDedup::default(),
            shutdown: AtomicBool::new(false),
            read_only: AtomicBool::new(hooks.read_only),
            replicator: hooks.replicator,
            repl_gauge: hooks.gauge,
            config,
            wakers,
            poller_kind,
        });
        let mut senders: Vec<Sender<TcpStream>> = Vec::with_capacity(workers_n);
        let mut workers = Vec::with_capacity(workers_n);
        for (w, poller) in worker_pollers.into_iter().enumerate() {
            let (tx, rx) = channel::<TcpStream>();
            senders.push(tx);
            let shared = Arc::clone(&shared);
            workers.push(
                thread::Builder::new()
                    .name(format!("wsrep-worker-{w}"))
                    .spawn(move || worker_loop(&shared, rx, poller))
                    .expect("spawn worker thread"),
            );
        }
        let acceptor_shared = Arc::clone(&shared);
        let acceptor = thread::Builder::new()
            .name("wsrep-acceptor".to_string())
            .spawn(move || {
                accept_loop(
                    &acceptor_shared,
                    listener,
                    senders,
                    worker_wakers,
                    acceptor_poller,
                )
            })
            .expect("spawn acceptor thread");
        Ok(Server {
            shared,
            local_addr,
            acceptor: Some(acceptor),
            workers,
        })
    }

    /// The address the listener actually bound.
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Current wire counters.
    pub fn server_stats(&self) -> ServerStats {
        self.shared.counters.snapshot()
    }

    /// Which readiness backend the reactor runs on (`"epoll"`/`"spin"`).
    pub fn poller_kind(&self) -> &'static str {
        self.shared.poller_kind
    }

    /// Whether shutdown has been requested (locally or over the wire).
    pub fn is_shutting_down(&self) -> bool {
        self.shared.shutdown.load(Ordering::Acquire)
    }

    /// Flip read-only mode. A promoted replica calls
    /// `set_read_only(false)` to start accepting writes.
    pub fn set_read_only(&self, read_only: bool) {
        self.shared.read_only.store(read_only, Ordering::Release);
    }

    /// Whether writes are currently rejected with [`ErrorCode::ReadOnly`].
    pub fn is_read_only(&self) -> bool {
        self.shared.read_only.load(Ordering::Acquire)
    }

    /// True once the service's durability policy fenced writes after a
    /// journal failure. Under [`DurabilityPolicy::FailStop`] the server
    /// also flips into shutdown by itself; hosts poll this to decide
    /// their exit code.
    pub fn durability_fenced(&self) -> bool {
        self.shared.service.durability_fenced()
    }

    /// Request a graceful shutdown: stop accepting, drain every
    /// connection's queued responses, flush ingest. Returns immediately;
    /// [`Server::join`] waits for the drain.
    pub fn shutdown(&self) {
        self.shared.request_shutdown();
    }

    /// Wait until every connection drained and every thread exited, then
    /// flush the ingest pipeline — the final durability barrier. Blocks
    /// until someone requests shutdown.
    pub fn join(mut self) {
        self.join_inner();
    }

    fn join_inner(&mut self) {
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
        // Everything acknowledged over the wire is queued in the ingest
        // pipeline at most; this barrier applies and (with a journal)
        // fsyncs it.
        self.shared.service.flush();
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown();
        self.join_inner();
    }
}

/// Read chunk size per pass per connection.
const READ_CHUNK: usize = 64 * 1024;

/// How often an over-limit connection is re-pumped while its stall
/// clock runs. The kernel stops announcing writability once the send
/// buffer is mostly full even though small writes still succeed (and
/// each attempt lets the buffer autotune larger), so readiness alone
/// would both under-drain a recovering client and take too long to
/// prove a dead one stalled.
const STALL_POLL: Duration = Duration::from_millis(1);

/// Capacity a drained `rbuf`/`wbuf` keeps. A burst may grow the buffers
/// up to the backpressure limits; once drained they shrink back here so
/// one past slow client doesn't pin megabytes for its lifetime.
const BUF_RETAIN: usize = 256 * 1024;

fn accept_loop(
    shared: &Shared,
    listener: TcpListener,
    senders: Vec<Sender<TcpStream>>,
    worker_wakers: Vec<Waker>,
    mut poller: Box<dyn Poller>,
) {
    // Block on listener readiness between accepts; if registration fails
    // (exotic fd limits) fall back to a short sleep — accept stays
    // correct either way, only the idle cost differs.
    let registered = poller
        .register(listener.as_raw_fd(), 0, Interest::READ)
        .is_ok();
    let mut events: Vec<Event> = Vec::new();
    let mut next = 0usize;
    while !shared.shutdown.load(Ordering::Acquire) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                let _ = stream.set_nodelay(true);
                if stream.set_nonblocking(true).is_err() {
                    continue;
                }
                shared
                    .counters
                    .connections_opened
                    .fetch_add(1, Ordering::Relaxed);
                // Round-robin deal; a worker that exited drops its
                // receiver and the send fails, closing the socket. The
                // wake makes the worker adopt it now, not at its next
                // natural wakeup.
                let worker = next % senders.len();
                if senders[worker].send(stream).is_ok() {
                    worker_wakers[worker].wake();
                }
                next = next.wrapping_add(1);
            }
            Err(err) if err.kind() == io::ErrorKind::WouldBlock => {
                if registered {
                    let max_idle = poller.max_idle();
                    let _ = poller.wait(&mut events, max_idle);
                } else {
                    thread::sleep(Duration::from_micros(500));
                }
            }
            Err(_) => thread::sleep(Duration::from_millis(5)),
        }
    }
}

fn worker_loop(shared: &Shared, incoming: Receiver<TcpStream>, mut poller: Box<dyn Poller>) {
    // Connection slab: the poller token is the index, freed slots are
    // reused. `scheduled` dedups the pump set within one pass.
    let mut conns: Vec<Option<Conn>> = Vec::new();
    let mut free: Vec<usize> = Vec::new();
    let mut scheduled: Vec<bool> = Vec::new();
    let mut pump_set: Vec<usize> = Vec::new();
    // Connections that still have work no readiness event will announce:
    // a complete frame beyond the per-pass pipeline bound, or a stall
    // deadline that just expired. Pumped again on the next pass.
    let mut carry: Vec<usize> = Vec::new();
    // Over-limit connections being polled at STALL_POLL cadence. Unlike
    // `carry`, these wait out a short timed sleep first: their next
    // write is expected to fail, so spinning on them would burn a core.
    let mut stall_poll: Vec<usize> = Vec::new();
    let mut events: Vec<Event> = Vec::new();
    let mut accepting = true;
    let mut timeout = Duration::ZERO;
    loop {
        let _ = poller.wait(&mut events, timeout);
        let draining = shared.shutdown.load(Ordering::Acquire);

        // Adopt newly dealt connections; ones that arrive mid-shutdown
        // are drained and closed by the same path as the rest.
        while accepting {
            match incoming.try_recv() {
                Ok(stream) => {
                    let token = free.pop().unwrap_or_else(|| {
                        conns.push(None);
                        scheduled.push(false);
                        conns.len() - 1
                    });
                    let conn = Conn::new(stream);
                    if poller
                        .register(conn.stream.as_raw_fd(), token, Interest::READ)
                        .is_err()
                    {
                        // Unwatchable socket: close it rather than hold a
                        // connection no event will ever pump.
                        shared
                            .counters
                            .connections_closed
                            .fetch_add(1, Ordering::Relaxed);
                        free.push(token);
                        continue;
                    }
                    conns[token] = Some(conn);
                    if !scheduled[token] {
                        scheduled[token] = true;
                        pump_set.push(token);
                    }
                }
                Err(TryRecvError::Empty) => break,
                Err(TryRecvError::Disconnected) => {
                    accepting = false;
                }
            }
        }

        for token in carry.drain(..).chain(stall_poll.drain(..)) {
            if conns.get(token).is_some_and(Option::is_some) && !scheduled[token] {
                scheduled[token] = true;
                pump_set.push(token);
            }
        }
        for event in &events {
            let token = event.token;
            if conns.get(token).is_some_and(Option::is_some) && !scheduled[token] {
                scheduled[token] = true;
                pump_set.push(token);
            }
        }
        if draining {
            // Every connection must notice the drain, events or not.
            for (token, slot) in conns.iter().enumerate() {
                if slot.is_some() && !scheduled[token] {
                    scheduled[token] = true;
                    pump_set.push(token);
                }
            }
        }

        let mut progress = false;
        for &token in &pump_set {
            scheduled[token] = false;
            let Some(conn) = conns[token].as_mut() else {
                continue;
            };
            let outcome = conn.pump(shared, draining);
            progress |= outcome.progress;
            if outcome.closed {
                let _ = poller.deregister(conn.stream.as_raw_fd(), token);
                conns[token] = None;
                free.push(token);
                shared
                    .counters
                    .connections_closed
                    .fetch_add(1, Ordering::Relaxed);
                continue;
            }
            // Keep the kernel's picture current: read interest off under
            // write backlog (TCP backpressure), write interest only while
            // responses are queued.
            let desired = conn.desired_interest(shared, draining);
            if desired != conn.interest
                && poller
                    .reregister(conn.stream.as_raw_fd(), token, desired)
                    .is_ok()
            {
                conn.interest = desired;
            }
            if outcome.more {
                carry.push(token);
            }
        }
        pump_set.clear();

        // Bookkeeping pass: live count for the drain exit, and stall
        // deadlines — the one timer readiness knows nothing about.
        let mut live = 0usize;
        let mut stall_wait: Option<Duration> = None;
        for (token, slot) in conns.iter_mut().enumerate() {
            let Some(conn) = slot else { continue };
            live += 1;
            if conn.backlog() > shared.config.write_buffer_limit {
                // Start the clock here too: the serve loop may push a
                // backlog over the limit without another pump running.
                let stalled_since = *conn.stalled_since.get_or_insert_with(Instant::now);
                let elapsed = stalled_since.elapsed();
                if elapsed >= shared.config.write_stall_timeout {
                    // Deadline hit: pump immediately, the pump evicts.
                    carry.push(token);
                } else {
                    stall_poll.push(token);
                    stall_wait = Some(STALL_POLL);
                }
            }
        }
        if draining && live == 0 {
            return;
        }
        timeout = if progress || !carry.is_empty() {
            Duration::ZERO
        } else {
            let mut idle = poller.max_idle();
            if let Some(stall) = stall_wait {
                idle = idle.min(stall);
            }
            idle
        };
    }
}

struct PumpOutcome {
    progress: bool,
    closed: bool,
    /// A complete frame is still buffered (the pass hit the pipeline
    /// bound): pump again without waiting for readiness.
    more: bool,
}

/// One connection, owned by exactly one worker.
struct Conn {
    stream: TcpStream,
    /// Received bytes not yet parsed; `rpos` marks the parsed prefix.
    rbuf: Vec<u8>,
    rpos: usize,
    /// Encoded responses not yet written; `wpos` marks the sent prefix.
    wbuf: Vec<u8>,
    wpos: usize,
    /// Stop reading and close once `wbuf` drains (fatal protocol error,
    /// shutdown handshake, or peer EOF).
    close_after_flush: bool,
    /// When the write backlog first exceeded the limit. The stall
    /// clock: eviction fires when this gets old while the backlog is
    /// still over the limit, and only draining to *half* the limit
    /// clears it — trickling bytes at the boundary resets nothing.
    stalled_since: Option<Instant>,
    /// Readiness interest currently registered with the worker's poller.
    interest: Interest,
    /// Reusable read scratch — connections allocate their buffers once,
    /// not per request.
    read_chunk: Box<[u8; READ_CHUNK]>,
}

impl Conn {
    fn new(stream: TcpStream) -> Conn {
        Conn {
            stream,
            rbuf: Vec::new(),
            rpos: 0,
            wbuf: Vec::new(),
            wpos: 0,
            close_after_flush: false,
            stalled_since: None,
            interest: Interest::READ,
            read_chunk: Box::new([0u8; READ_CHUNK]),
        }
    }

    /// Unsent response bytes.
    fn backlog(&self) -> usize {
        self.wbuf.len() - self.wpos
    }

    /// What readiness this connection can currently act on: reads unless
    /// backpressured/closing, writes only while responses are queued.
    fn desired_interest(&self, shared: &Shared, draining: bool) -> Interest {
        Interest {
            readable: !self.close_after_flush
                && !draining
                && self.backlog() <= shared.config.write_buffer_limit,
            writable: self.wpos < self.wbuf.len(),
        }
    }

    fn pump(&mut self, shared: &Shared, draining: bool) -> PumpOutcome {
        let mut progress = false;

        // 1. Drain pending writes (nonblocking).
        while self.wpos < self.wbuf.len() {
            match self.stream.write(&self.wbuf[self.wpos..]) {
                Ok(0) => return self.closed(),
                Ok(n) => {
                    self.wpos += n;
                    shared
                        .counters
                        .bytes_out
                        .fetch_add(n as u64, Ordering::Relaxed);
                    progress = true;
                }
                Err(err) if err.kind() == io::ErrorKind::WouldBlock => break,
                Err(err) if err.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => return self.closed(),
            }
        }
        if self.wpos == self.wbuf.len() {
            self.wbuf.clear();
            self.wpos = 0;
            if self.wbuf.capacity() > BUF_RETAIN {
                self.wbuf.shrink_to(BUF_RETAIN);
            }
            if self.close_after_flush {
                let _ = self.stream.shutdown(SockShutdown::Both);
                return self.closed();
            }
        }

        let backlog = self.backlog();
        if backlog > shared.config.write_buffer_limit {
            // Slow client: its responses aren't draining. Stop reading
            // (TCP backpressure) and give up on it entirely if it stays
            // over the limit for the whole stall timeout.
            let stalled_since = *self.stalled_since.get_or_insert_with(Instant::now);
            if stalled_since.elapsed() > shared.config.write_stall_timeout {
                shared
                    .counters
                    .slow_client_closes
                    .fetch_add(1, Ordering::Relaxed);
                let _ = self.stream.shutdown(SockShutdown::Both);
                return self.closed();
            }
            return PumpOutcome {
                progress,
                closed: false,
                more: false,
            };
        }
        if backlog <= shared.config.write_buffer_limit / 2 {
            self.stalled_since = None;
        }

        // 2. Read whatever the socket has (nonblocking), unless closing
        //    or draining for shutdown.
        let mut peer_eof = false;
        if !self.close_after_flush && !draining {
            loop {
                match self.stream.read(&mut self.read_chunk[..]) {
                    Ok(0) => {
                        peer_eof = true;
                        break;
                    }
                    Ok(n) => {
                        self.rbuf.extend_from_slice(&self.read_chunk[..n]);
                        shared
                            .counters
                            .bytes_in
                            .fetch_add(n as u64, Ordering::Relaxed);
                        progress = true;
                        if n < self.read_chunk.len() {
                            break;
                        }
                    }
                    Err(err) if err.kind() == io::ErrorKind::WouldBlock => break,
                    Err(err) if err.kind() == io::ErrorKind::Interrupted => continue,
                    Err(_) => return self.closed(),
                }
            }
        }

        // 3. Parse and serve complete frames, bounded per pass.
        let mut served = 0usize;
        while served < shared.config.max_pipeline_depth
            && self.wbuf.len() - self.wpos <= shared.config.write_buffer_limit
            && !self.close_after_flush
        {
            match split_frame(&self.rbuf[self.rpos..]) {
                FrameSplit::Incomplete => break,
                FrameSplit::Corrupt => {
                    // The stream can't be resynchronized: answer with a
                    // final error and close once it's flushed. The reply
                    // is pre-encoded — garbage on the wire is exactly
                    // where a peer shouldn't get to charge us
                    // allocations.
                    shared
                        .counters
                        .malformed_frames
                        .fetch_add(1, Ordering::Relaxed);
                    self.wbuf.extend_from_slice(corrupt_frame_reply());
                    self.close_after_flush = true;
                }
                FrameSplit::Frame { frame_len } => {
                    let start = self.rpos + wsrep_journal::frame::FRAME_HEADER_LEN;
                    let end = self.rpos + frame_len;
                    let (response, version) =
                        serve_payload(shared, &self.rbuf[start..end], draining);
                    self.rpos = end;
                    let shutting_down = matches!(response, Response::ShuttingDown);
                    response.encode_frame_v(version, &mut self.wbuf);
                    if shutting_down {
                        self.close_after_flush = true;
                    }
                    served += 1;
                    progress = true;
                }
            }
        }
        // Reclaim the parsed prefix once it dominates the buffer, and
        // give back burst capacity once it's reclaimed.
        if self.rpos > 0 && (self.rpos == self.rbuf.len() || self.rpos >= READ_CHUNK) {
            self.rbuf.drain(..self.rpos);
            self.rpos = 0;
            if self.rbuf.capacity() > BUF_RETAIN && self.rbuf.len() <= BUF_RETAIN {
                self.rbuf.shrink_to(BUF_RETAIN);
            }
        }

        // Did the pipeline bound stop us with a complete frame already
        // buffered? No readiness event will announce it, so tell the
        // reactor to pump again. (Exiting for backpressure instead is
        // announced — by the socket turning writable.)
        let more = served == shared.config.max_pipeline_depth
            && !self.close_after_flush
            && self.backlog() <= shared.config.write_buffer_limit
            && matches!(
                split_frame(&self.rbuf[self.rpos..]),
                FrameSplit::Frame { .. }
            );

        if (peer_eof || draining) && !self.close_after_flush && !more {
            // Serve what was already buffered, then close.
            if split_frame(&self.rbuf[self.rpos..]) == FrameSplit::Incomplete || draining {
                self.close_after_flush = true;
                if self.wbuf.len() == self.wpos {
                    let _ = self.stream.shutdown(SockShutdown::Both);
                    return self.closed();
                }
            }
        }

        PumpOutcome {
            progress,
            closed: false,
            more,
        }
    }

    fn closed(&mut self) -> PumpOutcome {
        PumpOutcome {
            progress: true,
            closed: true,
            more: false,
        }
    }
}

/// The pre-encoded reply to an unrecoverable framing error.
fn corrupt_frame_reply() -> &'static [u8] {
    static REPLY: OnceLock<Vec<u8>> = OnceLock::new();
    REPLY.get_or_init(|| {
        let mut frame = Vec::new();
        Response::Error {
            code: ErrorCode::BadRequest,
            message: "corrupt frame (bad length or checksum)".to_string(),
        }
        .encode_frame(&mut frame);
        frame
    })
}

/// The refusal a fenced service answers every write with. Under
/// [`DurabilityPolicy::FailStop`] the refusal also flips the server into
/// shutdown: a fail-stop node drains and exits rather than keep a
/// non-durable registry reachable.
fn refuse_not_durable(shared: &Shared) -> Response {
    if shared.service.durability_policy() == DurabilityPolicy::FailStop {
        shared.request_shutdown();
    }
    Response::Error {
        code: ErrorCode::NotDurable,
        message: "journal failed; durability policy fenced writes".to_string(),
    }
}

/// Serve one ingest batch, deduplicating keyed batches through the
/// producer's window so a retried batch applies exactly once.
fn serve_ingest(shared: &Shared, batch: Vec<Feedback>, key: Option<IngestKey>) -> Response {
    if shared.service.durability_fenced() {
        return refuse_not_durable(shared);
    }
    let Some(key) = key else {
        return ingest_now(shared, batch);
    };
    let window = shared.dedup.producer(key.producer);
    // Hold the producer's window lock across check-apply-record:
    // concurrent retries of the same seq serialize here, so exactly one
    // applies and the rest replay its acknowledgement.
    let mut window = window.lock().unwrap_or_else(|e| e.into_inner());
    if let Some(accepted) = window.lookup(key.seq) {
        return Response::Ingested(accepted);
    }
    let response = ingest_now(shared, batch);
    if let Response::Ingested(accepted) = response {
        window.record(key.seq, accepted);
    }
    response
}

fn ingest_now(shared: &Shared, batch: Vec<Feedback>) -> Response {
    let size = batch.len() as u64;
    match shared.service.ingest_batch(batch) {
        Ok(accepted) => {
            shared
                .counters
                .reports_ingested
                .fetch_add(accepted, Ordering::Relaxed);
            debug_assert_eq!(accepted, size);
            Response::Ingested(accepted)
        }
        Err(_) => Response::Error {
            code: ErrorCode::IngestClosed,
            message: "ingest pipeline closed".to_string(),
        },
    }
}

/// Decode one frame payload and serve it against the service. Returns
/// the response plus the protocol version to encode it at — always the
/// version the request arrived with, so old clients get answers they
/// can decode.
fn serve_payload(shared: &Shared, payload: &[u8], draining: bool) -> (Response, u8) {
    let (request, version) = match Request::decode_versioned(payload) {
        Ok(decoded) => decoded,
        Err(err) => {
            shared
                .counters
                .protocol_errors
                .fetch_add(1, Ordering::Relaxed);
            let code = match err {
                crate::proto::DecodeError::BadVersion(_) => ErrorCode::BadVersion,
                _ => ErrorCode::BadRequest,
            };
            return (
                Response::Error {
                    code,
                    message: err.to_string(),
                },
                PROTO_VERSION,
            );
        }
    };
    (serve_request(shared, request, draining), version)
}

fn serve_request(shared: &Shared, request: Request, draining: bool) -> Response {
    shared.counters.requests[request.stat_slot()].fetch_add(1, Ordering::Relaxed);
    if draining && !matches!(request, Request::Shutdown | Request::Stats | Request::Ping) {
        return Response::Error {
            code: ErrorCode::ShuttingDown,
            message: "server is draining".to_string(),
        };
    }
    if shared.read_only.load(Ordering::Acquire)
        && matches!(
            request,
            Request::Publish(_) | Request::Deregister(_) | Request::Ingest { .. }
        )
    {
        return Response::Error {
            code: ErrorCode::ReadOnly,
            message: "read-only replica; writes must go to the primary".to_string(),
        };
    }
    match request {
        Request::Ping => Response::Pong,
        Request::Publish(listing) => match shared.service.publish(listing) {
            Ok(status) => Response::Published(status),
            Err(_) => refuse_not_durable(shared),
        },
        Request::Deregister(service) => match shared.service.deregister(service) {
            Ok(()) => Response::Deregistered(true),
            Err(RegistryError::NotDurable) => refuse_not_durable(shared),
            Err(_) => Response::Deregistered(false),
        },
        Request::Ingest { batch, key } => serve_ingest(shared, batch, key),
        Request::Score(subject) => Response::Scored(shared.service.score(subject)),
        Request::TopK { category, prefs, k } => {
            let ranked = shared.service.top_k(category, &prefs, k as usize);
            Response::TopKResult(ranked.iter().map(WireRanked::from).collect())
        }
        Request::Stats => Response::StatsResult(Box::new(WireStats {
            service: shared.service.stats(),
            server: shared.counters.snapshot(),
            replication: shared.repl_gauge.as_ref().map(|gauge| gauge.snapshot()),
        })),
        Request::Flush => {
            // Blocks this worker until the pipeline catches up — the
            // caller asked for a barrier; other workers keep serving.
            // The barrier is honest: a fenced pipeline dropped batches
            // instead of journaling them, and flush refuses to ack them.
            match shared.service.try_flush() {
                Ok(()) => Response::Flushed,
                Err(_) => refuse_not_durable(shared),
            }
        }
        Request::Shutdown => {
            shared.request_shutdown();
            Response::ShuttingDown
        }
        Request::ReplPull {
            from_lsn,
            max_records,
        } => match shared.replicator.as_deref() {
            Some(replicator) => match replicator.pull(from_lsn, max_records) {
                Ok(batch) => Response::ReplBatch(batch),
                Err(err) => Response::Error {
                    code: ErrorCode::ReplUnavailable,
                    message: err.to_string(),
                },
            },
            None => Response::Error {
                code: ErrorCode::ReplUnavailable,
                message: "this node does not ship a log".to_string(),
            },
        },
        Request::ReplHeartbeat {
            replica,
            durable_lsn,
        } => match shared.replicator.as_deref() {
            Some(replicator) => Response::ReplWatermark(replicator.heartbeat(replica, durable_lsn)),
            None => Response::Error {
                code: ErrorCode::ReplUnavailable,
                message: "this node does not track replicas".to_string(),
            },
        },
    }
}
