//! `wsrep-client` — the sync connection speaking the wire protocol.
//!
//! [`Client`] wraps one blocking `TcpStream` with reusable encode/decode
//! buffers. Two styles of use:
//!
//! - **Call style**: [`Client::ping`], [`Client::publish`],
//!   [`Client::ingest`], [`Client::score`], [`Client::top_k`], … — one
//!   request, one response, one round trip.
//! - **Pipelined style**: [`Client::queue`] any number of requests,
//!   [`Client::flush_queued`] to put them on the wire in one write, then
//!   [`Client::recv`] exactly as many responses. The server answers in
//!   request order (the protocol's FIFO contract), so no correlation ids
//!   are needed; keeping a sliding window of queued requests amortizes
//!   the round trip across the window.

use crate::proto::{
    ErrorCode, IngestKey, ReplBatch, ReplWatermark, Request, Response, WireRanked, WireStats,
};
use std::io::{self, Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;
use wsrep_core::feedback::Feedback;
use wsrep_core::id::{ServiceId, SubjectId};
use wsrep_core::trust::TrustEstimate;
use wsrep_journal::frame::{split_frame, FrameSplit, FRAME_HEADER_LEN};
use wsrep_qos::preference::Preferences;
use wsrep_sim::registry::{Listing, PublishStatus};

/// Why a client call failed.
#[derive(Debug)]
pub enum ClientError {
    /// The socket failed.
    Io(io::Error),
    /// The server went away: connection reset, broken pipe, or the
    /// stream ended mid-response. Retryable by reconnecting.
    Disconnected(String),
    /// A configured read timeout elapsed with the response still owed
    /// (see [`Client::set_read_timeout`]). The connection is left in an
    /// indeterminate mid-frame state — reconnect rather than retry on
    /// the same stream.
    TimedOut,
    /// An earlier [`ClientError::TimedOut`] poisoned this connection and
    /// a call was attempted anyway. The stream may be mid-frame: any
    /// byte read now could be the tail of the timed-out response, so
    /// every answer would be misattributed to the wrong request. The
    /// only safe move is a fresh connection.
    Poisoned,
    /// The server answered with a protocol error.
    Server {
        /// The error code the server sent.
        code: ErrorCode,
        /// The server's message.
        message: String,
    },
    /// The stream carried bytes that do not parse as a response frame.
    Corrupt(String),
    /// The server answered with a response of the wrong kind — a broken
    /// pipelining contract.
    Unexpected(Response),
}

impl ClientError {
    /// Classify a socket error: timeouts and peer-gone conditions get
    /// their own variants so callers can branch without matching on
    /// [`io::ErrorKind`].
    fn from_io(err: io::Error) -> Self {
        match err.kind() {
            io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut => ClientError::TimedOut,
            io::ErrorKind::ConnectionReset
            | io::ErrorKind::ConnectionAborted
            | io::ErrorKind::BrokenPipe
            | io::ErrorKind::UnexpectedEof => ClientError::Disconnected(err.to_string()),
            _ => ClientError::Io(err),
        }
    }

    /// True when the failure means the server is gone (as opposed to a
    /// protocol-level refusal or a slow response).
    pub fn is_disconnected(&self) -> bool {
        matches!(self, ClientError::Disconnected(_))
    }
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(err) => write!(f, "socket error: {err}"),
            ClientError::Disconnected(what) => write!(f, "server disconnected: {what}"),
            ClientError::TimedOut => write!(f, "read timed out with a response still owed"),
            ClientError::Poisoned => write!(
                f,
                "connection poisoned by an earlier timeout; reconnect before retrying"
            ),
            ClientError::Server { code, message } => {
                write!(f, "server error ({code}): {message}")
            }
            ClientError::Corrupt(what) => write!(f, "corrupt response stream: {what}"),
            ClientError::Unexpected(response) => {
                write!(f, "out-of-order response: {response:?}")
            }
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(err: io::Error) -> Self {
        ClientError::from_io(err)
    }
}

/// A sync connection to a `wsrep-server`.
pub struct Client {
    stream: TcpStream,
    /// Unparsed received bytes; `rpos` marks the consumed prefix.
    rbuf: Vec<u8>,
    rpos: usize,
    /// Encoded-but-unsent requests (pipelining buffer).
    wbuf: Vec<u8>,
    /// Requests sent (or queued) minus responses received.
    in_flight: usize,
    /// Latched by a read timeout: the stream may be mid-frame, so every
    /// later call refuses with [`ClientError::Poisoned`].
    poisoned: bool,
}

impl Client {
    /// Connect to a server (Nagle disabled — the protocol is its own
    /// batching layer).
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(Client {
            stream,
            rbuf: Vec::new(),
            rpos: 0,
            wbuf: Vec::new(),
            in_flight: 0,
            poisoned: false,
        })
    }

    /// Responses owed by the server (queued or sent requests minus
    /// received responses).
    pub fn in_flight(&self) -> usize {
        self.in_flight
    }

    /// True once a read timeout left this connection mid-frame. A
    /// poisoned client refuses every further call with
    /// [`ClientError::Poisoned`] — reconnect instead. (This is why
    /// timed-out requests are only safe to retry with an idempotency
    /// key: the server may have applied them.)
    pub fn is_poisoned(&self) -> bool {
        self.poisoned
    }

    /// Bound how long [`Client::recv`] blocks on the socket. `None`
    /// restores the default (block forever). When the bound elapses,
    /// calls fail with [`ClientError::TimedOut`] instead of hanging on a
    /// stalled or half-dead server.
    pub fn set_read_timeout(&self, timeout: Option<Duration>) -> io::Result<()> {
        self.stream.set_read_timeout(timeout)
    }

    /// Encode `request` into the send buffer without writing the socket.
    /// Pair with [`Client::flush_queued`] and [`Client::recv`].
    pub fn queue(&mut self, request: &Request) {
        request.encode_frame(&mut self.wbuf);
        self.in_flight += 1;
    }

    /// Put every queued request on the wire.
    pub fn flush_queued(&mut self) -> io::Result<()> {
        if !self.wbuf.is_empty() {
            self.stream.write_all(&self.wbuf)?;
            self.wbuf.clear();
        }
        Ok(())
    }

    /// Queue + flush in one call.
    pub fn send(&mut self, request: &Request) -> io::Result<()> {
        self.queue(request);
        self.flush_queued()
    }

    /// Read the next response (blocking). Responses arrive in request
    /// order.
    ///
    /// After a [`ClientError::TimedOut`] the connection is poisoned:
    /// the timed-out response may still arrive, so reading again would
    /// pair it with the wrong request. Every later `recv` (and every
    /// call-style helper, which goes through `recv`) fails with
    /// [`ClientError::Poisoned`] until the caller reconnects.
    pub fn recv(&mut self) -> Result<Response, ClientError> {
        if self.poisoned {
            return Err(ClientError::Poisoned);
        }
        loop {
            match split_frame(&self.rbuf[self.rpos..]) {
                FrameSplit::Frame { frame_len } => {
                    let start = self.rpos + FRAME_HEADER_LEN;
                    let end = self.rpos + frame_len;
                    let response = Response::decode(&self.rbuf[start..end])
                        .map_err(|err| ClientError::Corrupt(err.to_string()))?;
                    self.rpos = end;
                    if self.rpos == self.rbuf.len() {
                        self.rbuf.clear();
                        self.rpos = 0;
                    }
                    self.in_flight = self.in_flight.saturating_sub(1);
                    return Ok(response);
                }
                FrameSplit::Corrupt => {
                    return Err(ClientError::Corrupt("bad frame checksum".to_string()))
                }
                FrameSplit::Incomplete => {
                    let mut chunk = [0u8; 16 * 1024];
                    let n = self.stream.read(&mut chunk).map_err(|err| {
                        let err = ClientError::from_io(err);
                        if matches!(err, ClientError::TimedOut) {
                            self.poisoned = true;
                        }
                        err
                    })?;
                    if n == 0 {
                        return Err(ClientError::Disconnected(
                            "server closed the connection mid-response".to_string(),
                        ));
                    }
                    self.rbuf.extend_from_slice(&chunk[..n]);
                }
            }
        }
    }

    /// One round trip: send `request`, receive its response.
    pub fn call(&mut self, request: &Request) -> Result<Response, ClientError> {
        self.send(request)?;
        let response = self.recv()?;
        if let Response::Error { code, message } = response {
            return Err(ClientError::Server { code, message });
        }
        Ok(response)
    }

    /// Liveness probe.
    pub fn ping(&mut self) -> Result<(), ClientError> {
        match self.call(&Request::Ping)? {
            Response::Pong => Ok(()),
            other => Err(ClientError::Unexpected(other)),
        }
    }

    /// Publish (or update) a listing.
    pub fn publish(&mut self, listing: Listing) -> Result<PublishStatus, ClientError> {
        match self.call(&Request::Publish(listing))? {
            Response::Published(status) => Ok(status),
            other => Err(ClientError::Unexpected(other)),
        }
    }

    /// Withdraw a listing; `Ok(true)` when one was removed.
    pub fn deregister(&mut self, service: ServiceId) -> Result<bool, ClientError> {
        match self.call(&Request::Deregister(service))? {
            Response::Deregistered(found) => Ok(found),
            other => Err(ClientError::Unexpected(other)),
        }
    }

    /// Submit a batch of feedback; returns how many reports the server
    /// accepted into its ingest pipeline.
    pub fn ingest(&mut self, batch: Vec<Feedback>) -> Result<u64, ClientError> {
        let request = Request::Ingest { batch, key: None };
        match self.call(&request)? {
            Response::Ingested(accepted) => Ok(accepted),
            other => Err(ClientError::Unexpected(other)),
        }
    }

    /// Submit a batch of feedback under an idempotency key. Resending
    /// the same `(producer, seq)` — e.g. after a timeout or reconnect —
    /// replays the original answer instead of ingesting twice, so a
    /// retried batch applies exactly once. See
    /// [`RetryingClient`](crate::retry::RetryingClient) for the wrapper
    /// that manages keys automatically.
    pub fn ingest_keyed(
        &mut self,
        batch: Vec<Feedback>,
        key: IngestKey,
    ) -> Result<u64, ClientError> {
        let request = Request::Ingest {
            batch,
            key: Some(key),
        };
        match self.call(&request)? {
            Response::Ingested(accepted) => Ok(accepted),
            other => Err(ClientError::Unexpected(other)),
        }
    }

    /// One subject's reputation; `None` means no evidence.
    pub fn score(&mut self, subject: SubjectId) -> Result<Option<TrustEstimate>, ClientError> {
        match self.call(&Request::Score(subject))? {
            Response::Scored(estimate) => Ok(estimate),
            other => Err(ClientError::Unexpected(other)),
        }
    }

    /// The `k` best services in `category` under `prefs`.
    pub fn top_k(
        &mut self,
        category: u32,
        prefs: &Preferences,
        k: u32,
    ) -> Result<Vec<WireRanked>, ClientError> {
        let request = Request::TopK {
            category,
            prefs: prefs.clone(),
            k,
        };
        match self.call(&request)? {
            Response::TopKResult(ranked) => Ok(ranked),
            other => Err(ClientError::Unexpected(other)),
        }
    }

    /// Service + server counters.
    pub fn stats(&mut self) -> Result<WireStats, ClientError> {
        match self.call(&Request::Stats)? {
            Response::StatsResult(stats) => Ok(*stats),
            other => Err(ClientError::Unexpected(other)),
        }
    }

    /// Apply-everything barrier: when this returns, every report this
    /// connection ingested before it is queryable (and journaled, with a
    /// journal attached).
    pub fn flush(&mut self) -> Result<(), ClientError> {
        match self.call(&Request::Flush)? {
            Response::Flushed => Ok(()),
            other => Err(ClientError::Unexpected(other)),
        }
    }

    /// Ask the server to shut down gracefully. The server acknowledges,
    /// drains every connection, flushes ingest, and exits.
    pub fn shutdown_server(&mut self) -> Result<(), ClientError> {
        match self.call(&Request::Shutdown)? {
            Response::ShuttingDown => Ok(()),
            other => Err(ClientError::Unexpected(other)),
        }
    }

    /// Pull journal records from a primary, starting at `from_lsn`.
    /// Replication-loop plumbing; plain readers never need this.
    pub fn repl_pull(&mut self, from_lsn: u64, max_records: u32) -> Result<ReplBatch, ClientError> {
        let request = Request::ReplPull {
            from_lsn,
            max_records,
        };
        match self.call(&request)? {
            Response::ReplBatch(batch) => Ok(batch),
            other => Err(ClientError::Unexpected(other)),
        }
    }

    /// Report this replica's applied watermark; returns the primary's
    /// view of the topology.
    pub fn repl_heartbeat(
        &mut self,
        replica: u64,
        durable_lsn: u64,
    ) -> Result<ReplWatermark, ClientError> {
        let request = Request::ReplHeartbeat {
            replica,
            durable_lsn,
        };
        match self.call(&request)? {
            Response::ReplWatermark(watermark) => Ok(watermark),
            other => Err(ClientError::Unexpected(other)),
        }
    }
}
