//! Readiness polling behind a small [`Poller`] trait.
//!
//! The reactor in [`crate::server`] asks one question per pass: *which
//! of my file descriptors can make progress?* This module answers it two
//! ways, behind one trait, picked at [`Server::start`] time:
//!
//! - [`EpollPoller`] (Linux): a readiness-driven backend over raw
//!   `epoll` — the reactor **blocks** in `epoll_wait` until a socket is
//!   actually readable/writable (or a [`Waker`] fires), so an idle
//!   server consumes ~zero CPU and a busy one wakes exactly when the
//!   kernel has bytes for it. The bindings are hand-rolled `extern "C"`
//!   declarations against the C library the Rust standard library
//!   already links — no `libc` crate, no epoll crate, the same
//!   "vendored stub over a fancy dependency" trade the workspace makes
//!   everywhere else.
//! - [`SpinPoller`] (portable fallback): the original polling loop's
//!   contract — every registered descriptor is reported ready on every
//!   wait, with a short parked sleep when the reactor saw no progress.
//!   Correct on any platform `std` supports (readiness is a *hint*; the
//!   nonblocking I/O in the pump is what's authoritative), at the cost
//!   of the idle wakeups epoll eliminates.
//!
//! Both backends share the [`Waker`] contract: a cheap, clonable,
//! thread-safe handle that makes a concurrent (or future) `wait` return
//! immediately. The acceptor wakes a worker after dealing it a socket;
//! [`Server::shutdown`] wakes everyone. Under epoll the waker is an
//! `eventfd` registered alongside the sockets; under the fallback it is
//! a mutex+condvar park.
//!
//! [`Server::start`]: crate::server::Server::start
//! [`Server::shutdown`]: crate::server::Server::shutdown

use std::io;
use std::os::unix::io::RawFd;
use std::time::Duration;

/// Which readiness a descriptor is registered for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interest {
    /// Wake when the descriptor has bytes to read (or hit EOF/error).
    pub readable: bool,
    /// Wake when the descriptor can accept writes.
    pub writable: bool,
}

impl Interest {
    /// Read-only interest.
    pub const READ: Interest = Interest {
        readable: true,
        writable: false,
    };
}

/// One readiness report from [`Poller::wait`].
#[derive(Debug, Clone, Copy)]
pub struct Event {
    /// The token the descriptor was registered under.
    pub token: usize,
    /// The descriptor is readable (data, EOF, or error — the nonblocking
    /// read disambiguates).
    pub readable: bool,
    /// The descriptor is writable.
    pub writable: bool,
}

/// A thread-safe handle that interrupts a [`Poller::wait`].
///
/// Wakes are **level** signals, not a queue: any number of `wake` calls
/// before a wait collapse into one immediate return. Safe to call from
/// any thread at any time, including after the poller is gone.
#[derive(Clone)]
pub struct Waker(WakerImpl);

#[derive(Clone)]
enum WakerImpl {
    #[cfg(target_os = "linux")]
    Fd(std::sync::Arc<sys::EventFd>),
    Park(std::sync::Arc<ParkWaker>),
}

impl Waker {
    /// Make the poller's current (or next) `wait` return immediately.
    pub fn wake(&self) {
        match &self.0 {
            #[cfg(target_os = "linux")]
            WakerImpl::Fd(event_fd) => event_fd.signal(),
            WakerImpl::Park(park) => park.wake(),
        }
    }
}

/// A readiness source the reactor blocks on.
///
/// Registered descriptors must be nonblocking: readiness is permission
/// to *try*, and `WouldBlock` from the actual I/O is normal (the spin
/// fallback reports everything ready, spurious wakeups are part of the
/// contract).
pub trait Poller: Send {
    /// Start watching `fd` under `token`.
    fn register(&mut self, fd: RawFd, token: usize, interest: Interest) -> io::Result<()>;

    /// Change what `fd` is watched for.
    fn reregister(&mut self, fd: RawFd, token: usize, interest: Interest) -> io::Result<()>;

    /// Stop watching `fd`. Call **before** closing the descriptor.
    fn deregister(&mut self, fd: RawFd, token: usize) -> io::Result<()>;

    /// Block until readiness, a [`Waker`] fires, or `timeout` elapses;
    /// append what became ready to `events` (cleared first). A
    /// zero timeout polls without blocking.
    fn wait(&mut self, events: &mut Vec<Event>, timeout: Duration) -> io::Result<()>;

    /// A handle that interrupts `wait` from another thread.
    fn waker(&self) -> Waker;

    /// The longest `wait` this backend should be asked to block for —
    /// how stale its readiness picture may grow. Epoll can sleep long
    /// (wakes are event-driven); the spin fallback must stay short
    /// because sleeping *is* its only readiness mechanism.
    fn max_idle(&self) -> Duration;

    /// Backend name for logs and stats (`"epoll"` or `"spin"`).
    fn kind(&self) -> &'static str;
}

/// Which polling backend [`Server::start`] should use.
///
/// [`Server::start`]: crate::server::Server::start
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PollerChoice {
    /// Epoll where the platform has it, the spin fallback elsewhere (or
    /// if epoll setup fails).
    #[default]
    Auto,
    /// Require epoll; [`make_poller`] returns the setup error if the
    /// platform refuses (or lacks it).
    Epoll,
    /// Force the portable polling loop.
    Spin,
}

impl PollerChoice {
    /// Parse a `--poller` flag value.
    pub fn parse(value: &str) -> Option<PollerChoice> {
        match value {
            "auto" => Some(PollerChoice::Auto),
            "epoll" => Some(PollerChoice::Epoll),
            "spin" => Some(PollerChoice::Spin),
            _ => None,
        }
    }
}

/// Build the chosen backend. `Auto` silently falls back to
/// [`SpinPoller`] when epoll is unavailable; `Epoll` propagates the
/// failure instead.
pub fn make_poller(choice: PollerChoice) -> io::Result<Box<dyn Poller>> {
    match choice {
        PollerChoice::Spin => Ok(Box::new(SpinPoller::new())),
        #[cfg(target_os = "linux")]
        PollerChoice::Epoll => Ok(Box::new(EpollPoller::new()?)),
        #[cfg(not(target_os = "linux"))]
        PollerChoice::Epoll => Err(io::Error::new(
            io::ErrorKind::Unsupported,
            "epoll is Linux-only; use --poller auto or spin",
        )),
        #[cfg(target_os = "linux")]
        PollerChoice::Auto => match EpollPoller::new() {
            Ok(poller) => Ok(Box::new(poller)),
            Err(_) => Ok(Box::new(SpinPoller::new())),
        },
        #[cfg(not(target_os = "linux"))]
        PollerChoice::Auto => Ok(Box::new(SpinPoller::new())),
    }
}

// ---------------------------------------------------------------------
// Portable fallback: everything is always ready, sleep when idle.
// ---------------------------------------------------------------------

struct ParkWaker {
    woken: std::sync::Mutex<bool>,
    condvar: std::sync::Condvar,
}

impl ParkWaker {
    fn new() -> ParkWaker {
        ParkWaker {
            woken: std::sync::Mutex::new(false),
            condvar: std::sync::Condvar::new(),
        }
    }

    fn wake(&self) {
        let mut woken = self.woken.lock().unwrap_or_else(|e| e.into_inner());
        *woken = true;
        self.condvar.notify_all();
    }

    /// Park for up to `timeout`, returning early if woken; consumes the
    /// wake flag.
    fn park(&self, timeout: Duration) {
        let mut woken = self.woken.lock().unwrap_or_else(|e| e.into_inner());
        if !*woken && !timeout.is_zero() {
            let (guard, _) = self
                .condvar
                .wait_timeout(woken, timeout)
                .unwrap_or_else(|e| e.into_inner());
            woken = guard;
        }
        *woken = false;
    }
}

/// The portable fallback: [`Poller::wait`] parks briefly (interruptibly)
/// and then reports **every** registered descriptor ready for its full
/// interest — exactly the original reactor's poll-everything pass, now
/// wearing the trait the epoll backend slots into.
pub struct SpinPoller {
    /// `(fd, token, interest)` per registered descriptor.
    registered: Vec<(RawFd, usize, Interest)>,
    waker: std::sync::Arc<ParkWaker>,
}

impl SpinPoller {
    /// A fallback poller with nothing registered.
    pub fn new() -> SpinPoller {
        SpinPoller {
            registered: Vec::new(),
            waker: std::sync::Arc::new(ParkWaker::new()),
        }
    }
}

impl Default for SpinPoller {
    fn default() -> Self {
        SpinPoller::new()
    }
}

impl Poller for SpinPoller {
    fn register(&mut self, fd: RawFd, token: usize, interest: Interest) -> io::Result<()> {
        self.registered.push((fd, token, interest));
        Ok(())
    }

    fn reregister(&mut self, fd: RawFd, token: usize, interest: Interest) -> io::Result<()> {
        for slot in &mut self.registered {
            if slot.0 == fd && slot.1 == token {
                slot.2 = interest;
                return Ok(());
            }
        }
        self.registered.push((fd, token, interest));
        Ok(())
    }

    fn deregister(&mut self, fd: RawFd, token: usize) -> io::Result<()> {
        self.registered
            .retain(|&(slot_fd, slot_token, _)| !(slot_fd == fd && slot_token == token));
        Ok(())
    }

    fn wait(&mut self, events: &mut Vec<Event>, timeout: Duration) -> io::Result<()> {
        events.clear();
        self.waker.park(timeout.min(self.max_idle()));
        for &(_, token, interest) in &self.registered {
            if interest.readable || interest.writable {
                events.push(Event {
                    token,
                    readable: interest.readable,
                    writable: interest.writable,
                });
            }
        }
        Ok(())
    }

    fn waker(&self) -> Waker {
        Waker(WakerImpl::Park(std::sync::Arc::clone(&self.waker)))
    }

    fn max_idle(&self) -> Duration {
        // The sleep *is* the readiness mechanism: long enough to not
        // burn a core, short enough to bound added latency.
        Duration::from_micros(200)
    }

    fn kind(&self) -> &'static str {
        "spin"
    }
}

// ---------------------------------------------------------------------
// Linux: raw epoll + eventfd, no libc crate.
// ---------------------------------------------------------------------

#[cfg(target_os = "linux")]
mod sys {
    //! Hand-rolled declarations of the handful of C-library symbols the
    //! epoll backend needs. The Rust standard library already links the
    //! platform C library on Linux, so declaring the prototypes is
    //! enough — this is a vendored shim, not a dependency.

    /// One epoll readiness record. x86/x86-64 pack it (kernel ABI);
    /// other architectures use natural alignment — same `#[cfg_attr]`
    /// split the `libc` crate ships.
    #[repr(C)]
    #[cfg_attr(any(target_arch = "x86_64", target_arch = "x86"), repr(packed))]
    #[derive(Clone, Copy)]
    pub struct EpollEvent {
        pub events: u32,
        pub data: u64,
    }

    extern "C" {
        pub fn epoll_create1(flags: i32) -> i32;
        pub fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
        pub fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout: i32) -> i32;
        pub fn eventfd(initval: u32, flags: i32) -> i32;
        pub fn read(fd: i32, buf: *mut u8, count: usize) -> isize;
        pub fn write(fd: i32, buf: *const u8, count: usize) -> isize;
        pub fn close(fd: i32) -> i32;
    }

    pub const EPOLL_CLOEXEC: i32 = 0o2000000;
    pub const EPOLL_CTL_ADD: i32 = 1;
    pub const EPOLL_CTL_DEL: i32 = 2;
    pub const EPOLL_CTL_MOD: i32 = 3;
    pub const EPOLLIN: u32 = 0x001;
    pub const EPOLLOUT: u32 = 0x004;
    pub const EPOLLERR: u32 = 0x008;
    pub const EPOLLHUP: u32 = 0x010;
    pub const EPOLLRDHUP: u32 = 0x2000;
    pub const EFD_CLOEXEC: i32 = 0o2000000;
    pub const EFD_NONBLOCK: i32 = 0o4000;

    /// An owned `eventfd`: written to wake, drained on wakeup, closed on
    /// drop. Shared `Arc`'d between the poller and its [`super::Waker`]s.
    pub struct EventFd {
        fd: i32,
    }

    impl EventFd {
        pub fn new() -> std::io::Result<EventFd> {
            // Nonblocking: draining reads until EAGAIN must not hang,
            // and a full counter (2^64-1 wakes) failing a signal write
            // is harmless — the level is already set.
            let fd = unsafe { eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK) };
            if fd < 0 {
                return Err(std::io::Error::last_os_error());
            }
            Ok(EventFd { fd })
        }

        pub fn raw(&self) -> i32 {
            self.fd
        }

        /// Bump the counter; the epoll side sees the fd readable.
        pub fn signal(&self) {
            let one: u64 = 1;
            let _ = unsafe { write(self.fd, one.to_ne_bytes().as_ptr(), 8) };
        }

        /// Consume pending signals so the level clears.
        pub fn drain(&self) {
            let mut buf = [0u8; 8];
            while unsafe { read(self.fd, buf.as_mut_ptr(), 8) } == 8 {}
        }
    }

    impl Drop for EventFd {
        fn drop(&mut self) {
            let _ = unsafe { close(self.fd) };
        }
    }
}

/// Token the waker eventfd is registered under — reserved; connection
/// slabs must never hand it out.
#[cfg(target_os = "linux")]
const WAKER_TOKEN: u64 = u64::MAX;

/// The Linux readiness backend: level-triggered epoll plus an `eventfd`
/// waker. `wait` blocks in the kernel until a registered descriptor is
/// actually ready, so idle connections cost nothing and wakeups carry
/// exactly the set of sockets worth pumping.
#[cfg(target_os = "linux")]
pub struct EpollPoller {
    epfd: RawFd,
    waker_fd: std::sync::Arc<sys::EventFd>,
    /// Kernel-filled event buffer, reused across waits.
    buf: Vec<sys::EpollEvent>,
}

#[cfg(target_os = "linux")]
impl EpollPoller {
    /// An epoll instance with its waker eventfd already registered.
    pub fn new() -> io::Result<EpollPoller> {
        let epfd = unsafe { sys::epoll_create1(sys::EPOLL_CLOEXEC) };
        if epfd < 0 {
            return Err(io::Error::last_os_error());
        }
        let waker_fd = match sys::EventFd::new() {
            Ok(event_fd) => std::sync::Arc::new(event_fd),
            Err(err) => {
                unsafe { sys::close(epfd) };
                return Err(err);
            }
        };
        let mut event = sys::EpollEvent {
            events: sys::EPOLLIN,
            data: WAKER_TOKEN,
        };
        if unsafe { sys::epoll_ctl(epfd, sys::EPOLL_CTL_ADD, waker_fd.raw(), &mut event) } < 0 {
            let err = io::Error::last_os_error();
            unsafe { sys::close(epfd) };
            return Err(err);
        }
        Ok(EpollPoller {
            epfd,
            waker_fd,
            buf: vec![sys::EpollEvent { events: 0, data: 0 }; 256],
        })
    }

    fn ctl(&self, op: i32, fd: RawFd, token: usize, interest: Interest) -> io::Result<()> {
        let mut events = sys::EPOLLRDHUP;
        if interest.readable {
            events |= sys::EPOLLIN;
        }
        if interest.writable {
            events |= sys::EPOLLOUT;
        }
        let mut event = sys::EpollEvent {
            events,
            data: token as u64,
        };
        if unsafe { sys::epoll_ctl(self.epfd, op, fd, &mut event) } < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(())
    }
}

#[cfg(target_os = "linux")]
impl Drop for EpollPoller {
    fn drop(&mut self) {
        unsafe { sys::close(self.epfd) };
    }
}

#[cfg(target_os = "linux")]
impl Poller for EpollPoller {
    fn register(&mut self, fd: RawFd, token: usize, interest: Interest) -> io::Result<()> {
        self.ctl(sys::EPOLL_CTL_ADD, fd, token, interest)
    }

    fn reregister(&mut self, fd: RawFd, token: usize, interest: Interest) -> io::Result<()> {
        self.ctl(sys::EPOLL_CTL_MOD, fd, token, interest)
    }

    fn deregister(&mut self, fd: RawFd, _token: usize) -> io::Result<()> {
        // The kernel ignores the event argument for DEL on any kernel
        // this code can run on; pass a zeroed one for pre-2.6.9 strictness.
        let mut event = sys::EpollEvent { events: 0, data: 0 };
        if unsafe { sys::epoll_ctl(self.epfd, sys::EPOLL_CTL_DEL, fd, &mut event) } < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(())
    }

    fn wait(&mut self, events: &mut Vec<Event>, timeout: Duration) -> io::Result<()> {
        events.clear();
        // Round a sub-millisecond timeout up, not down to busy-poll.
        let timeout_ms = if timeout.is_zero() {
            0
        } else {
            i32::try_from(timeout.as_millis().max(1)).unwrap_or(i32::MAX)
        };
        let n = unsafe {
            sys::epoll_wait(
                self.epfd,
                self.buf.as_mut_ptr(),
                self.buf.len() as i32,
                timeout_ms,
            )
        };
        if n < 0 {
            let err = io::Error::last_os_error();
            if err.kind() == io::ErrorKind::Interrupted {
                return Ok(());
            }
            return Err(err);
        }
        for slot in &self.buf[..n as usize] {
            let slot = *slot;
            if slot.data == WAKER_TOKEN {
                self.waker_fd.drain();
                continue;
            }
            events.push(Event {
                token: slot.data as usize,
                // Error/hangup conditions surface as both: the next
                // nonblocking read or write observes the real state.
                readable: slot.events
                    & (sys::EPOLLIN | sys::EPOLLRDHUP | sys::EPOLLHUP | sys::EPOLLERR)
                    != 0,
                writable: slot.events & (sys::EPOLLOUT | sys::EPOLLHUP | sys::EPOLLERR) != 0,
            });
        }
        // A full buffer means more events may be pending: grow so a busy
        // reactor drains the kernel queue in one wait.
        if n as usize == self.buf.len() && self.buf.len() < 4096 {
            self.buf
                .resize(self.buf.len() * 2, sys::EpollEvent { events: 0, data: 0 });
        }
        Ok(())
    }

    fn waker(&self) -> Waker {
        Waker(WakerImpl::Fd(std::sync::Arc::clone(&self.waker_fd)))
    }

    fn max_idle(&self) -> Duration {
        // Purely a staleness bound for time-based bookkeeping (write
        // stall deadlines); readiness itself is event-driven.
        Duration::from_millis(500)
    }

    fn kind(&self) -> &'static str {
        "epoll"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read as _, Write as _};
    use std::net::{TcpListener, TcpStream};
    use std::os::unix::io::AsRawFd;

    fn backend_reports_socket_readiness(mut poller: Box<dyn Poller>) {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let mut client = TcpStream::connect(addr).expect("connect");
        let (server, _) = listener.accept().expect("accept");
        server.set_nonblocking(true).expect("nonblocking");
        poller
            .register(server.as_raw_fd(), 7, Interest::READ)
            .expect("register");

        // Nothing to read yet: a short wait may time out (epoll) or
        // spuriously report readiness (spin); both are within contract.
        let mut events = Vec::new();
        poller
            .wait(&mut events, Duration::from_millis(1))
            .expect("wait");

        client.write_all(b"hello").expect("write");
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        loop {
            poller
                .wait(&mut events, Duration::from_millis(50))
                .expect("wait");
            if events.iter().any(|e| e.token == 7 && e.readable) {
                break;
            }
            assert!(
                std::time::Instant::now() < deadline,
                "{} backend never reported the socket readable",
                poller.kind()
            );
        }
        let mut buf = [0u8; 16];
        let n = (&server).read(&mut buf).expect("read");
        assert_eq!(&buf[..n], b"hello");
        poller
            .deregister(server.as_raw_fd(), 7)
            .expect("deregister");
    }

    #[test]
    fn spin_backend_reports_readiness() {
        backend_reports_socket_readiness(Box::new(SpinPoller::new()));
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn epoll_backend_reports_readiness() {
        backend_reports_socket_readiness(Box::new(EpollPoller::new().expect("epoll")));
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn epoll_waker_interrupts_a_long_wait() {
        let mut poller = EpollPoller::new().expect("epoll");
        let waker = poller.waker();
        let started = std::time::Instant::now();
        let handle = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(50));
            waker.wake();
        });
        let mut events = Vec::new();
        poller
            .wait(&mut events, Duration::from_secs(30))
            .expect("wait");
        assert!(
            started.elapsed() < Duration::from_secs(10),
            "waker failed to interrupt epoll_wait"
        );
        assert!(events.is_empty(), "waker wakeups carry no events");
        handle.join().expect("join");
    }

    #[test]
    fn spin_waker_interrupts_the_park() {
        let mut poller = SpinPoller::new();
        let waker = poller.waker();
        waker.wake();
        let started = std::time::Instant::now();
        let mut events = Vec::new();
        // A pre-fired wake makes even a long park return immediately.
        poller
            .wait(&mut events, Duration::from_secs(30))
            .expect("wait");
        assert!(started.elapsed() < Duration::from_secs(5));
    }

    #[test]
    fn auto_choice_always_builds() {
        let poller = make_poller(PollerChoice::Auto).expect("auto");
        if cfg!(target_os = "linux") {
            assert_eq!(poller.kind(), "epoll");
        } else {
            assert_eq!(poller.kind(), "spin");
        }
        assert_eq!(
            make_poller(PollerChoice::Spin).expect("spin").kind(),
            "spin"
        );
    }
}
