//! # wsrep-server — the reputation registry's network boundary
//!
//! The paper frames trust and reputation as infrastructure for service
//! selection *at scale*; WeSSQoS makes the point concrete by shipping
//! quality-aware selection as a **service with a process boundary**, not
//! a library. This crate is that boundary for `wsrep-serve`: a TCP
//! server speaking a versioned, length-prefixed, CRC32-framed binary
//! protocol, and the sync client used by tests, tooling and loadgen.
//!
//! - [`proto`] — the wire vocabulary: request/response messages, their
//!   version-pinned binary layout (reusing the journal codec's layout
//!   primitives and the WAL's frame discipline), and the pipelining /
//!   error contract;
//! - [`poll`] — readiness behind a trait: raw epoll on Linux (no `libc`
//!   crate, hand-declared syscall prototypes), a portable
//!   poll-everything fallback elsewhere, both with thread-safe wakers;
//! - [`server`] — the readiness-driven reactor: an acceptor thread
//!   dealing sockets to worker threads that own their connections and
//!   block on a [`poll::Poller`], with bounded pipeline depth,
//!   write-buffer backpressure, slow-client eviction, and graceful
//!   drain-on-shutdown;
//! - [`client`] — the blocking connection: call-style one-shot RPCs and
//!   a queue/flush/recv pipelining API over reusable buffers;
//! - [`retry`] — jittered exponential backoff ([`RetryPolicy`],
//!   [`Backoff`]) and [`RetryingClient`], the auto-reconnecting wrapper
//!   whose keyed ingest retries are exactly-once: each batch carries a
//!   `(producer, seq)` [`IngestKey`] the server deduplicates;
//! - [`chaos`] — the fault lab's link half: [`FlakyProxy`], an in-test
//!   TCP proxy that drops, delays, splits, and corrupts traffic on a
//!   deterministic schedule, with counters proving it did;
//! - [`repl`] — the replication seam: the [`Replicator`] hook a cluster
//!   primary plugs into the reactor to ship its log, and the
//!   [`ReplicationGauge`] that surfaces watermarks and lag in `Stats`.
//!
//! The binary (`wsrep-server`) wraps [`server::Server`] around a
//! [`ReputationService`](wsrep_serve::ReputationService) built from CLI
//! flags — shards, journal directory, recovery — and serves until a
//! `Shutdown` request drains it.

pub mod chaos;
pub mod client;
pub mod poll;
pub mod proto;
pub mod repl;
pub mod retry;
pub mod server;

pub use chaos::{ChaosConfig, ChaosCounters, FlakyProxy};
pub use client::{Client, ClientError};
pub use poll::PollerChoice;
pub use proto::{
    ErrorCode, IngestKey, ReplBatch, ReplRole, ReplWatermark, ReplicationStats, Request, Response,
    ServerStats, WireRanked, WireStats, MIN_PROTO_VERSION, PROTO_VERSION,
};
pub use repl::{ReplError, ReplicationGauge, Replicator};
pub use retry::{Backoff, RetryPolicy, RetryingClient, Rng64};
pub use server::{ReplicationHooks, Server, ServerConfig};
