//! The wire protocol: versioned, length-prefixed, CRC32-framed.
//!
//! Every message — request or response — travels in one journal-style
//! frame (`len: u32 LE | crc32: u32 LE | payload`, see
//! [`wsrep_journal::frame`]); the payload begins with the protocol
//! version byte and an opcode, followed by the body in the journal
//! codec's little-endian layout. Reusing the journal's framing and codec
//! means the wire inherits the same torn/corrupt detection discipline the
//! WAL already proves, and domain types (feedback, listings, subjects)
//! are encoded by the exact routines the durability path pins with golden
//! files.
//!
//! ```text
//! ┌──────────────┬───────────────┬─────────────────────────────────┐
//! │ len: u32 LE  │ crc32: u32 LE │ ver: u8 | opcode: u8 | body ... │
//! └──────────────┴───────────────┴─────────────────────────────────┘
//! ```
//!
//! ## Contract
//!
//! - **Pipelining**: a client may send any number of requests before
//!   reading; the server answers strictly in request order on each
//!   connection. No request ids are needed — FIFO is the contract.
//! - **Versioning**: every payload carries its protocol version. A peer
//!   accepts any version in `[MIN_PROTO_VERSION, PROTO_VERSION]` and
//!   **answers at the request's version**, so old clients keep working
//!   against new servers; anything outside the range gets
//!   [`Response::Error`] with [`ErrorCode::BadVersion`] and the
//!   connection survives (framing is still sound). New fields are only
//!   ever *appended* to existing payloads under a version bump.
//! - **Errors**: a well-framed but undecodable payload gets
//!   [`ErrorCode::BadRequest`] and the connection survives; a corrupt
//!   *frame* (bad CRC, absurd length) is unrecoverable — the stream can
//!   never resynchronize — so the server sends a final error and closes.
//!
//! Opcodes are a format contract like the journal's tags: never
//! renumber, new messages get new opcodes.

use std::fmt;
use wsrep_core::feedback::Feedback;
use wsrep_core::id::{ServiceId, SubjectId};
use wsrep_core::trust::TrustEstimate;
use wsrep_journal::codec::{
    get_feedback, get_listing, get_metric, get_subject, put_bool, put_bytes, put_f64, put_feedback,
    put_listing, put_metric, put_subject, put_u32, put_u64, CodecError, Cursor,
};
use wsrep_journal::frame::{begin_frame, end_frame};
use wsrep_journal::JournalRecord;
use wsrep_qos::preference::Preferences;
use wsrep_serve::{DurabilityPolicy, JournalHealth, RankedService, ServiceStats};
use wsrep_sim::registry::{Listing, PublishStatus};

/// Protocol version carried in every payload.
///
/// v2: stats payloads gained the journal's `writer_groups` count.
/// v3: `Ingest` carries an optional `(producer, seq)` idempotency key
/// (exactly-once retries); the stats journal block gained
/// `journal_errors`, the durability `policy`, and the `fenced` flag;
/// [`ErrorCode::NotDurable`] was added (encoded as `ReadOnly` to v2
/// peers).
pub const PROTO_VERSION: u8 = 3;

/// Oldest protocol version this peer still speaks. Requests at any
/// version in `[MIN_PROTO_VERSION, PROTO_VERSION]` are served, answered
/// at the request's version.
pub const MIN_PROTO_VERSION: u8 = 2;

// Request opcodes — wire contract, never renumber.
const OP_PING: u8 = 0x01;
const OP_PUBLISH: u8 = 0x02;
const OP_DEREGISTER: u8 = 0x03;
const OP_INGEST: u8 = 0x04;
const OP_SCORE: u8 = 0x05;
const OP_TOP_K: u8 = 0x06;
const OP_STATS: u8 = 0x07;
const OP_FLUSH: u8 = 0x08;
const OP_SHUTDOWN: u8 = 0x09;
// Replication opcode family: a follower pulls records and reports its
// applied watermark. Pull-based shipping keeps the FIFO contract — a
// replica is just another pipelined client.
const OP_REPL_PULL: u8 = 0x10;
const OP_REPL_HEARTBEAT: u8 = 0x11;

// Response opcodes.
const OP_PONG: u8 = 0x81;
const OP_PUBLISHED: u8 = 0x82;
const OP_DEREGISTERED: u8 = 0x83;
const OP_INGESTED: u8 = 0x84;
const OP_SCORED: u8 = 0x85;
const OP_TOP_K_RESULT: u8 = 0x86;
const OP_STATS_RESULT: u8 = 0x87;
const OP_FLUSHED: u8 = 0x88;
const OP_SHUTTING_DOWN: u8 = 0x89;
const OP_REPL_BATCH: u8 = 0x90;
const OP_REPL_WATERMARK: u8 = 0x91;
const OP_ERROR: u8 = 0xEE;

/// Why the server rejected a message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCode {
    /// The payload's version byte is not [`PROTO_VERSION`].
    BadVersion,
    /// The frame was sound but the payload did not decode.
    BadRequest,
    /// The server is draining and no longer accepts work.
    ShuttingDown,
    /// The ingest pipeline is closed.
    IngestClosed,
    /// This node cannot serve the replication request (not a primary, or
    /// the requested history was compacted away).
    ReplUnavailable,
    /// This node is a read-only replica: writes must go to the primary.
    ReadOnly,
    /// This node cannot make the write durable and its durability policy
    /// fenced writes rather than lie about it. Not retryable here —
    /// clients should fail over. v2 peers see [`ErrorCode::ReadOnly`].
    NotDurable,
}

impl ErrorCode {
    fn to_wire(self, version: u8) -> u8 {
        match self {
            ErrorCode::BadVersion => 1,
            ErrorCode::BadRequest => 2,
            ErrorCode::ShuttingDown => 3,
            ErrorCode::IngestClosed => 4,
            ErrorCode::ReplUnavailable => 5,
            ErrorCode::ReadOnly => 6,
            // v2 predates the code; ReadOnly carries the same client
            // contract (stop writing here), so old clients still act
            // sensibly.
            ErrorCode::NotDurable if version < 3 => 6,
            ErrorCode::NotDurable => 7,
        }
    }

    fn from_wire(tag: u8) -> Result<Self, CodecError> {
        match tag {
            1 => Ok(ErrorCode::BadVersion),
            2 => Ok(ErrorCode::BadRequest),
            3 => Ok(ErrorCode::ShuttingDown),
            4 => Ok(ErrorCode::IngestClosed),
            5 => Ok(ErrorCode::ReplUnavailable),
            6 => Ok(ErrorCode::ReadOnly),
            7 => Ok(ErrorCode::NotDurable),
            tag => Err(CodecError::BadTag {
                what: "error code",
                tag,
            }),
        }
    }
}

impl fmt::Display for ErrorCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ErrorCode::BadVersion => write!(f, "unsupported protocol version"),
            ErrorCode::BadRequest => write!(f, "malformed request payload"),
            ErrorCode::ShuttingDown => write!(f, "server shutting down"),
            ErrorCode::IngestClosed => write!(f, "ingest pipeline closed"),
            ErrorCode::ReplUnavailable => write!(f, "replication unavailable here"),
            ErrorCode::ReadOnly => write!(f, "read-only replica"),
            ErrorCode::NotDurable => write!(f, "writes fenced after journal failure"),
        }
    }
}

/// The `(producer, seq)` idempotency key a retried ingest batch carries
/// (v3+). The server keeps a per-producer window of recently applied
/// sequence numbers and replays the original acknowledgement for a
/// duplicate, so a retry after a lost response applies **exactly once**.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IngestKey {
    /// The producer's stable identity across reconnects.
    pub producer: u64,
    /// Strictly increasing per producer; each batch gets a fresh value,
    /// each retry of the same batch reuses it.
    pub seq: u64,
}

/// One client request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Liveness probe.
    Ping,
    /// Publish (or update) a listing.
    Publish(Listing),
    /// Withdraw a listing.
    Deregister(ServiceId),
    /// A batch of feedback reports for the ingest pipeline.
    Ingest {
        /// The reports.
        batch: Vec<Feedback>,
        /// Idempotency key for exactly-once retries (v3+; `None` from
        /// old clients or fire-and-forget producers).
        key: Option<IngestKey>,
    },
    /// One subject's reputation.
    Score(SubjectId),
    /// The `k` best services in a category under the given preferences.
    TopK {
        /// Category to rank.
        category: u32,
        /// Preference weights, encoded as `(metric, weight)` pairs.
        prefs: Preferences,
        /// How many services to return.
        k: u32,
    },
    /// Service + server counters.
    Stats,
    /// Apply-everything barrier (durability barrier with a journal).
    Flush,
    /// Graceful shutdown: drain connections, flush ingest, exit.
    Shutdown,
    /// Replication follower: pull journal records starting at `from_lsn`.
    ReplPull {
        /// LSN of the first record the follower wants.
        from_lsn: u64,
        /// Most records the primary should return in one batch.
        max_records: u32,
    },
    /// Replication follower: report the watermark it has durably applied.
    ReplHeartbeat {
        /// Follower identity (stable across reconnects).
        replica: u64,
        /// One past the last LSN the follower has applied durably.
        durable_lsn: u64,
    },
}

/// One server response. Responses arrive in request order.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Answer to [`Request::Ping`].
    Pong,
    /// Answer to [`Request::Publish`].
    Published(PublishStatus),
    /// Answer to [`Request::Deregister`]: whether a listing was removed.
    Deregistered(bool),
    /// Answer to [`Request::Ingest`]: reports accepted into the pipeline.
    Ingested(u64),
    /// Answer to [`Request::Score`]; `None` means no evidence.
    Scored(Option<TrustEstimate>),
    /// Answer to [`Request::TopK`].
    TopKResult(Vec<WireRanked>),
    /// Answer to [`Request::Stats`].
    StatsResult(Box<WireStats>),
    /// Answer to [`Request::Flush`].
    Flushed,
    /// Answer to [`Request::Shutdown`]; the connection closes after this.
    ShuttingDown,
    /// Answer to [`Request::ReplPull`]: shipped records plus the
    /// primary's durable watermark.
    ReplBatch(ReplBatch),
    /// Answer to [`Request::ReplHeartbeat`]: the primary's view of the
    /// replication topology.
    ReplWatermark(ReplWatermark),
    /// The request could not be served.
    Error {
        /// Why.
        code: ErrorCode,
        /// Human-readable detail.
        message: String,
    },
}

/// A [`RankedService`] as it travels on the wire.
#[derive(Debug, Clone, PartialEq)]
pub struct WireRanked {
    /// The ranked service.
    pub service: u64,
    /// Its provider.
    pub provider: u64,
    /// Advertised-QoS score in `[0, 1]`.
    pub qos_score: f64,
    /// Reputation evidence, when any feedback exists.
    pub reputation: Option<TrustEstimate>,
    /// The blended ranking score.
    pub score: f64,
}

impl From<&RankedService> for WireRanked {
    fn from(r: &RankedService) -> Self {
        WireRanked {
            service: r.service.raw(),
            provider: r.provider.raw(),
            qos_score: r.qos_score,
            reputation: r.reputation,
            score: r.score,
        }
    }
}

/// A run of journal records shipped from a primary's log.
#[derive(Debug, Clone, PartialEq)]
pub struct ReplBatch {
    /// LSN of `records[0]` (meaningful only when records is non-empty).
    pub first_lsn: u64,
    /// Records in dense LSN order; empty means the follower is caught up.
    pub records: Vec<JournalRecord>,
    /// One past the last LSN the primary's journal holds.
    pub durable_lsn: u64,
}

/// The primary's view of the replication topology, answered to a
/// heartbeat.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReplWatermark {
    /// One past the last LSN the primary's journal holds.
    pub durable_lsn: u64,
    /// Followers that heartbeated recently.
    pub replicas: u32,
    /// The slowest recent follower's applied watermark (equal to
    /// `durable_lsn` when there are none).
    pub min_replica_lsn: u64,
}

/// Which side of replication a node is on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReplRole {
    /// Accepts writes and ships its log.
    Primary,
    /// Applies a shipped log and serves bounded-staleness reads.
    Replica,
}

/// Replication state surfaced in [`WireStats`] — the bounded-staleness
/// watermark contract made observable: `lag` is how many records this
/// node's reads may trail the other side's durable log.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReplicationStats {
    /// This node's role.
    pub role: ReplRole,
    /// One past the last LSN durable *here*.
    pub local_durable_lsn: u64,
    /// The other side's durable watermark: on a replica, the primary's
    /// durable LSN as last seen; on a primary, the slowest tracked
    /// replica's acked LSN.
    pub remote_durable_lsn: u64,
    /// Staleness in records: on a replica, how far its reads trail the
    /// primary; on a primary, how far its slowest replica trails it.
    pub lag: u64,
    /// Followers tracked by recent heartbeats (primary side; 0 on
    /// replicas).
    pub replicas: u32,
    /// Whether the replication link is currently up (always true on a
    /// primary).
    pub connected: bool,
}

/// Server-side wire counters, alongside [`ServiceStats`] in a
/// [`Response::StatsResult`].
///
/// Same consistency contract as `ServiceStats`: each counter is a relaxed
/// atomic, individually monotonic, not a consistent cut.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ServerStats {
    /// Connections accepted since start.
    pub connections_opened: u64,
    /// Connections closed since start.
    pub connections_closed: u64,
    /// Requests served, by opcode: ping, publish, deregister, ingest,
    /// score, top_k, stats, flush, shutdown, repl_pull, repl_heartbeat.
    pub requests: [u64; 11],
    /// Feedback reports accepted over the wire (sum of ingest batch
    /// sizes).
    pub reports_ingested: u64,
    /// Frames rejected as corrupt (bad CRC or absurd length) — each one
    /// also closes its connection.
    pub malformed_frames: u64,
    /// Well-framed payloads that failed to decode (connection survives).
    pub protocol_errors: u64,
    /// Connections closed for exceeding the write-stall timeout with a
    /// full output buffer (slow-client protection).
    pub slow_client_closes: u64,
    /// Bytes read off sockets.
    pub bytes_in: u64,
    /// Bytes written to sockets.
    pub bytes_out: u64,
}

impl ServerStats {
    /// Total requests across all opcodes.
    pub fn total_requests(&self) -> u64 {
        self.requests.iter().sum()
    }
}

/// Everything a [`Request::Stats`] answers with.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WireStats {
    /// The service's own counters.
    pub service: ServiceStats,
    /// The network layer's counters.
    pub server: ServerStats,
    /// Replication watermarks, when this node is part of a cluster.
    pub replication: Option<ReplicationStats>,
}

fn put_prefs(out: &mut Vec<u8>, prefs: &Preferences) {
    put_u32(out, prefs.len() as u32);
    for (metric, weight) in prefs.iter() {
        put_metric(out, metric);
        put_f64(out, weight);
    }
}

fn get_prefs(cur: &mut Cursor<'_>) -> Result<Preferences, CodecError> {
    let n = cur.u32()?;
    let mut weights = Vec::with_capacity(n.min(1024) as usize);
    for _ in 0..n {
        let metric = get_metric(cur)?;
        let weight = cur.f64()?;
        weights.push((metric, weight));
    }
    Ok(Preferences::from_weights(weights))
}

fn put_estimate(out: &mut Vec<u8>, estimate: &TrustEstimate) {
    put_f64(out, estimate.value.get());
    put_f64(out, estimate.confidence);
}

fn get_estimate(cur: &mut Cursor<'_>) -> Result<TrustEstimate, CodecError> {
    let value = cur.f64()?;
    let confidence = cur.f64()?;
    Ok(TrustEstimate::new(value, confidence))
}

fn put_opt_estimate(out: &mut Vec<u8>, estimate: &Option<TrustEstimate>) {
    match estimate {
        Some(e) => {
            put_bool(out, true);
            put_estimate(out, e);
        }
        None => put_bool(out, false),
    }
}

fn get_opt_estimate(cur: &mut Cursor<'_>) -> Result<Option<TrustEstimate>, CodecError> {
    if cur.bool()? {
        Ok(Some(get_estimate(cur)?))
    } else {
        Ok(None)
    }
}

fn put_service_stats(out: &mut Vec<u8>, version: u8, stats: &ServiceStats) {
    put_u64(out, stats.shards as u64);
    put_u64(out, stats.listings as u64);
    put_u64(out, stats.feedback);
    put_u64(out, stats.submitted);
    put_u64(out, stats.cache_hits);
    put_u64(out, stats.cache_misses);
    put_u64(out, stats.topk_plan_hits);
    put_u64(out, stats.topk_plan_misses);
    put_u64(out, stats.preranked_hits);
    put_u64(out, stats.preranked_misses);
    put_u64(out, stats.snapshot_swaps);
    put_u64(out, stats.scratch_reuse);
    put_bool(out, stats.incremental);
    match &stats.journal {
        Some(health) => {
            put_bool(out, true);
            put_u64(out, health.segments);
            put_u64(out, health.bytes_appended);
            put_u64(out, health.last_fsync_nanos);
            put_u64(out, health.commits);
            put_u64(out, health.durable_lsn);
            put_u64(out, health.records_recovered);
            put_u64(out, health.writer_groups);
            put_bool(out, health.degraded);
            // v3 appended the failure-policy triple; a v2 payload simply
            // ends the block here.
            if version >= 3 {
                put_u64(out, health.journal_errors);
                out.push(health.policy.as_u8());
                put_bool(out, health.fenced);
            }
        }
        None => put_bool(out, false),
    }
}

fn get_service_stats(cur: &mut Cursor<'_>, version: u8) -> Result<ServiceStats, CodecError> {
    Ok(ServiceStats {
        shards: cur.u64()? as usize,
        listings: cur.u64()? as usize,
        feedback: cur.u64()?,
        submitted: cur.u64()?,
        cache_hits: cur.u64()?,
        cache_misses: cur.u64()?,
        topk_plan_hits: cur.u64()?,
        topk_plan_misses: cur.u64()?,
        preranked_hits: cur.u64()?,
        preranked_misses: cur.u64()?,
        snapshot_swaps: cur.u64()?,
        scratch_reuse: cur.u64()?,
        incremental: cur.bool()?,
        journal: if cur.bool()? {
            let mut health = JournalHealth {
                segments: cur.u64()?,
                bytes_appended: cur.u64()?,
                last_fsync_nanos: cur.u64()?,
                commits: cur.u64()?,
                durable_lsn: cur.u64()?,
                records_recovered: cur.u64()?,
                writer_groups: cur.u64()?,
                degraded: cur.bool()?,
                ..JournalHealth::default()
            };
            if version >= 3 {
                health.journal_errors = cur.u64()?;
                let tag = cur.u8()?;
                health.policy = DurabilityPolicy::from_u8(tag).ok_or(CodecError::BadTag {
                    what: "durability policy",
                    tag,
                })?;
                health.fenced = cur.bool()?;
            }
            Some(health)
        } else {
            None
        },
    })
}

fn put_replication_stats(out: &mut Vec<u8>, stats: &Option<ReplicationStats>) {
    match stats {
        Some(r) => {
            put_bool(out, true);
            out.push(match r.role {
                ReplRole::Primary => 0,
                ReplRole::Replica => 1,
            });
            put_u64(out, r.local_durable_lsn);
            put_u64(out, r.remote_durable_lsn);
            put_u64(out, r.lag);
            put_u32(out, r.replicas);
            put_bool(out, r.connected);
        }
        None => put_bool(out, false),
    }
}

fn get_replication_stats(cur: &mut Cursor<'_>) -> Result<Option<ReplicationStats>, CodecError> {
    if !cur.bool()? {
        return Ok(None);
    }
    let role = match cur.u8()? {
        0 => ReplRole::Primary,
        1 => ReplRole::Replica,
        tag => {
            return Err(CodecError::BadTag {
                what: "replication role",
                tag,
            })
        }
    };
    Ok(Some(ReplicationStats {
        role,
        local_durable_lsn: cur.u64()?,
        remote_durable_lsn: cur.u64()?,
        lag: cur.u64()?,
        replicas: cur.u32()?,
        connected: cur.bool()?,
    }))
}

fn put_server_stats(out: &mut Vec<u8>, stats: &ServerStats) {
    put_u64(out, stats.connections_opened);
    put_u64(out, stats.connections_closed);
    for &count in &stats.requests {
        put_u64(out, count);
    }
    put_u64(out, stats.reports_ingested);
    put_u64(out, stats.malformed_frames);
    put_u64(out, stats.protocol_errors);
    put_u64(out, stats.slow_client_closes);
    put_u64(out, stats.bytes_in);
    put_u64(out, stats.bytes_out);
}

fn get_server_stats(cur: &mut Cursor<'_>) -> Result<ServerStats, CodecError> {
    let connections_opened = cur.u64()?;
    let connections_closed = cur.u64()?;
    let mut requests = [0u64; 11];
    for slot in &mut requests {
        *slot = cur.u64()?;
    }
    Ok(ServerStats {
        connections_opened,
        connections_closed,
        requests,
        reports_ingested: cur.u64()?,
        malformed_frames: cur.u64()?,
        protocol_errors: cur.u64()?,
        slow_client_closes: cur.u64()?,
        bytes_in: cur.u64()?,
        bytes_out: cur.u64()?,
    })
}

impl Request {
    /// Index into [`ServerStats::requests`] for this request kind.
    pub fn stat_slot(&self) -> usize {
        match self {
            Request::Ping => 0,
            Request::Publish(_) => 1,
            Request::Deregister(_) => 2,
            Request::Ingest { .. } => 3,
            Request::Score(_) => 4,
            Request::TopK { .. } => 5,
            Request::Stats => 6,
            Request::Flush => 7,
            Request::Shutdown => 8,
            Request::ReplPull { .. } => 9,
            Request::ReplHeartbeat { .. } => 10,
        }
    }

    /// Encode as one complete frame appended to `out`, at
    /// [`PROTO_VERSION`].
    pub fn encode_frame(&self, out: &mut Vec<u8>) {
        self.encode_frame_v(PROTO_VERSION, out);
    }

    /// Encode at an explicit protocol version — how a peer talks to an
    /// older server (fields the version predates are dropped).
    ///
    /// The payload is encoded **in place**: the frame header is reserved
    /// in `out`, the body appended directly after it, and length + CRC
    /// backfilled — no intermediate payload buffer, no second copy.
    pub fn encode_frame_v(&self, version: u8, out: &mut Vec<u8>) {
        let frame_start = begin_frame(out);
        self.encode_payload(version, out);
        end_frame(out, frame_start);
    }

    fn encode_payload(&self, version: u8, payload: &mut Vec<u8>) {
        payload.push(version);
        match self {
            Request::Ping => payload.push(OP_PING),
            Request::Publish(listing) => {
                payload.push(OP_PUBLISH);
                put_listing(payload, listing);
            }
            Request::Deregister(service) => {
                payload.push(OP_DEREGISTER);
                put_u64(payload, service.raw());
            }
            Request::Ingest { batch, key } => {
                payload.push(OP_INGEST);
                put_u32(payload, batch.len() as u32);
                for feedback in batch {
                    put_feedback(payload, feedback);
                }
                if version >= 3 {
                    match key {
                        Some(key) => {
                            put_bool(payload, true);
                            put_u64(payload, key.producer);
                            put_u64(payload, key.seq);
                        }
                        None => put_bool(payload, false),
                    }
                }
            }
            Request::Score(subject) => {
                payload.push(OP_SCORE);
                put_subject(payload, *subject);
            }
            Request::TopK { category, prefs, k } => {
                payload.push(OP_TOP_K);
                put_u32(payload, *category);
                put_u32(payload, *k);
                put_prefs(payload, prefs);
            }
            Request::Stats => payload.push(OP_STATS),
            Request::Flush => payload.push(OP_FLUSH),
            Request::Shutdown => payload.push(OP_SHUTDOWN),
            Request::ReplPull {
                from_lsn,
                max_records,
            } => {
                payload.push(OP_REPL_PULL);
                put_u64(payload, *from_lsn);
                put_u32(payload, *max_records);
            }
            Request::ReplHeartbeat {
                replica,
                durable_lsn,
            } => {
                payload.push(OP_REPL_HEARTBEAT);
                put_u64(payload, *replica);
                put_u64(payload, *durable_lsn);
            }
        }
    }

    /// Decode one request from a frame payload (version byte included).
    pub fn decode(payload: &[u8]) -> Result<Self, DecodeError> {
        Self::decode_versioned(payload).map(|(request, _)| request)
    }

    /// [`Request::decode`], also returning the request's protocol
    /// version — servers answer at the version the client spoke.
    pub fn decode_versioned(payload: &[u8]) -> Result<(Self, u8), DecodeError> {
        let mut cur = Cursor::new(payload);
        let version = cur.u8().map_err(DecodeError::Codec)?;
        if !(MIN_PROTO_VERSION..=PROTO_VERSION).contains(&version) {
            return Err(DecodeError::BadVersion(version));
        }
        let opcode = cur.u8().map_err(DecodeError::Codec)?;
        let request = match opcode {
            OP_PING => Request::Ping,
            OP_PUBLISH => Request::Publish(get_listing(&mut cur).map_err(DecodeError::Codec)?),
            OP_DEREGISTER => {
                Request::Deregister(ServiceId::new(cur.u64().map_err(DecodeError::Codec)?))
            }
            OP_INGEST => {
                let n = cur.u32().map_err(DecodeError::Codec)?;
                let mut batch = Vec::with_capacity(n.min(65_536) as usize);
                for _ in 0..n {
                    batch.push(get_feedback(&mut cur).map_err(DecodeError::Codec)?);
                }
                let key = if version >= 3 && cur.bool().map_err(DecodeError::Codec)? {
                    Some(IngestKey {
                        producer: cur.u64().map_err(DecodeError::Codec)?,
                        seq: cur.u64().map_err(DecodeError::Codec)?,
                    })
                } else {
                    None
                };
                Request::Ingest { batch, key }
            }
            OP_SCORE => Request::Score(get_subject(&mut cur).map_err(DecodeError::Codec)?),
            OP_TOP_K => {
                let category = cur.u32().map_err(DecodeError::Codec)?;
                let k = cur.u32().map_err(DecodeError::Codec)?;
                let prefs = get_prefs(&mut cur).map_err(DecodeError::Codec)?;
                Request::TopK { category, prefs, k }
            }
            OP_STATS => Request::Stats,
            OP_FLUSH => Request::Flush,
            OP_SHUTDOWN => Request::Shutdown,
            OP_REPL_PULL => Request::ReplPull {
                from_lsn: cur.u64().map_err(DecodeError::Codec)?,
                max_records: cur.u32().map_err(DecodeError::Codec)?,
            },
            OP_REPL_HEARTBEAT => Request::ReplHeartbeat {
                replica: cur.u64().map_err(DecodeError::Codec)?,
                durable_lsn: cur.u64().map_err(DecodeError::Codec)?,
            },
            tag => {
                return Err(DecodeError::Codec(CodecError::BadTag {
                    what: "request opcode",
                    tag,
                }))
            }
        };
        if cur.remaining() != 0 {
            return Err(DecodeError::TrailingBytes);
        }
        Ok((request, version))
    }
}

impl Response {
    /// Encode as one complete frame appended to `out`, at
    /// [`PROTO_VERSION`].
    pub fn encode_frame(&self, out: &mut Vec<u8>) {
        self.encode_frame_v(PROTO_VERSION, out);
    }

    /// Encode at an explicit protocol version — the server answers each
    /// request at the version it arrived with, so a v2 client never
    /// sees v3-only fields.
    ///
    /// In-place like the request encoder: header reserved, payload
    /// appended directly to `out`, length + CRC backfilled.
    pub fn encode_frame_v(&self, version: u8, out: &mut Vec<u8>) {
        let frame_start = begin_frame(out);
        self.encode_payload(version, out);
        end_frame(out, frame_start);
    }

    fn encode_payload(&self, version: u8, payload: &mut Vec<u8>) {
        payload.push(version);
        match self {
            Response::Pong => payload.push(OP_PONG),
            Response::Published(status) => {
                payload.push(OP_PUBLISHED);
                payload.push(match status {
                    PublishStatus::Created => 0,
                    PublishStatus::Updated => 1,
                });
            }
            Response::Deregistered(found) => {
                payload.push(OP_DEREGISTERED);
                put_bool(payload, *found);
            }
            Response::Ingested(count) => {
                payload.push(OP_INGESTED);
                put_u64(payload, *count);
            }
            Response::Scored(estimate) => {
                payload.push(OP_SCORED);
                put_opt_estimate(payload, estimate);
            }
            Response::TopKResult(ranked) => {
                payload.push(OP_TOP_K_RESULT);
                put_u32(payload, ranked.len() as u32);
                for r in ranked {
                    put_u64(payload, r.service);
                    put_u64(payload, r.provider);
                    put_f64(payload, r.qos_score);
                    put_opt_estimate(payload, &r.reputation);
                    put_f64(payload, r.score);
                }
            }
            Response::StatsResult(stats) => {
                payload.push(OP_STATS_RESULT);
                put_service_stats(payload, version, &stats.service);
                put_server_stats(payload, &stats.server);
                put_replication_stats(payload, &stats.replication);
            }
            Response::Flushed => payload.push(OP_FLUSHED),
            Response::ShuttingDown => payload.push(OP_SHUTTING_DOWN),
            Response::ReplBatch(batch) => {
                payload.push(OP_REPL_BATCH);
                put_u64(payload, batch.first_lsn);
                put_u64(payload, batch.durable_lsn);
                put_u32(payload, batch.records.len() as u32);
                // Each record is length-prefixed (`JournalRecord::decode`
                // wants exactly one record's bytes) with the length
                // backfilled after encoding in place — no record scratch.
                for record in &batch.records {
                    let len_at = payload.len();
                    put_u32(payload, 0);
                    record.encode(payload);
                    let record_len = (payload.len() - len_at - 4) as u32;
                    payload[len_at..len_at + 4].copy_from_slice(&record_len.to_le_bytes());
                }
            }
            Response::ReplWatermark(mark) => {
                payload.push(OP_REPL_WATERMARK);
                put_u64(payload, mark.durable_lsn);
                put_u32(payload, mark.replicas);
                put_u64(payload, mark.min_replica_lsn);
            }
            Response::Error { code, message } => {
                payload.push(OP_ERROR);
                payload.push(code.to_wire(version));
                put_bytes(payload, message.as_bytes());
            }
        }
    }

    /// Decode one response from a frame payload. Accepts any version in
    /// `[MIN_PROTO_VERSION, PROTO_VERSION]` — the server answers at the
    /// request's version, and fields that version predates keep their
    /// defaults.
    pub fn decode(payload: &[u8]) -> Result<Self, DecodeError> {
        let mut cur = Cursor::new(payload);
        let version = cur.u8().map_err(DecodeError::Codec)?;
        if !(MIN_PROTO_VERSION..=PROTO_VERSION).contains(&version) {
            return Err(DecodeError::BadVersion(version));
        }
        let opcode = cur.u8().map_err(DecodeError::Codec)?;
        let response = match opcode {
            OP_PONG => Response::Pong,
            OP_PUBLISHED => match cur.u8().map_err(DecodeError::Codec)? {
                0 => Response::Published(PublishStatus::Created),
                1 => Response::Published(PublishStatus::Updated),
                tag => {
                    return Err(DecodeError::Codec(CodecError::BadTag {
                        what: "publish status",
                        tag,
                    }))
                }
            },
            OP_DEREGISTERED => Response::Deregistered(cur.bool().map_err(DecodeError::Codec)?),
            OP_INGESTED => Response::Ingested(cur.u64().map_err(DecodeError::Codec)?),
            OP_SCORED => Response::Scored(get_opt_estimate(&mut cur).map_err(DecodeError::Codec)?),
            OP_TOP_K_RESULT => {
                let n = cur.u32().map_err(DecodeError::Codec)?;
                let mut ranked = Vec::with_capacity(n.min(65_536) as usize);
                for _ in 0..n {
                    ranked.push(WireRanked {
                        service: cur.u64().map_err(DecodeError::Codec)?,
                        provider: cur.u64().map_err(DecodeError::Codec)?,
                        qos_score: cur.f64().map_err(DecodeError::Codec)?,
                        reputation: get_opt_estimate(&mut cur).map_err(DecodeError::Codec)?,
                        score: cur.f64().map_err(DecodeError::Codec)?,
                    });
                }
                Response::TopKResult(ranked)
            }
            OP_STATS_RESULT => {
                let service = get_service_stats(&mut cur, version).map_err(DecodeError::Codec)?;
                let server = get_server_stats(&mut cur).map_err(DecodeError::Codec)?;
                let replication = get_replication_stats(&mut cur).map_err(DecodeError::Codec)?;
                Response::StatsResult(Box::new(WireStats {
                    service,
                    server,
                    replication,
                }))
            }
            OP_FLUSHED => Response::Flushed,
            OP_SHUTTING_DOWN => Response::ShuttingDown,
            OP_REPL_BATCH => {
                let first_lsn = cur.u64().map_err(DecodeError::Codec)?;
                let durable_lsn = cur.u64().map_err(DecodeError::Codec)?;
                let n = cur.u32().map_err(DecodeError::Codec)?;
                let mut records = Vec::with_capacity(n.min(65_536) as usize);
                for _ in 0..n {
                    let bytes = cur.bytes().map_err(DecodeError::Codec)?;
                    records.push(JournalRecord::decode(bytes).map_err(DecodeError::Codec)?);
                }
                Response::ReplBatch(ReplBatch {
                    first_lsn,
                    records,
                    durable_lsn,
                })
            }
            OP_REPL_WATERMARK => Response::ReplWatermark(ReplWatermark {
                durable_lsn: cur.u64().map_err(DecodeError::Codec)?,
                replicas: cur.u32().map_err(DecodeError::Codec)?,
                min_replica_lsn: cur.u64().map_err(DecodeError::Codec)?,
            }),
            OP_ERROR => {
                let code = ErrorCode::from_wire(cur.u8().map_err(DecodeError::Codec)?)
                    .map_err(DecodeError::Codec)?;
                let bytes = cur.bytes().map_err(DecodeError::Codec)?;
                Response::Error {
                    code,
                    message: String::from_utf8_lossy(bytes).into_owned(),
                }
            }
            tag => {
                return Err(DecodeError::Codec(CodecError::BadTag {
                    what: "response opcode",
                    tag,
                }))
            }
        };
        if cur.remaining() != 0 {
            return Err(DecodeError::TrailingBytes);
        }
        Ok(response)
    }
}

/// Decoding a well-framed payload failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecodeError {
    /// The version byte is not [`PROTO_VERSION`].
    BadVersion(u8),
    /// The body did not decode.
    Codec(CodecError),
    /// Bytes were left over after a complete message — frames delimit
    /// messages, so trailing bytes mean corruption.
    TrailingBytes,
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::BadVersion(v) => {
                write!(f, "protocol version {v} (this peer speaks {PROTO_VERSION})")
            }
            DecodeError::Codec(err) => write!(f, "{err}"),
            DecodeError::TrailingBytes => write!(f, "trailing bytes after message"),
        }
    }
}

impl std::error::Error for DecodeError {}

#[cfg(test)]
mod tests {
    use super::*;
    use wsrep_core::id::{AgentId, ProviderId};
    use wsrep_core::time::Time;
    use wsrep_journal::frame::{split_frame, FrameSplit, FRAME_HEADER_LEN};
    use wsrep_qos::metric::Metric;
    use wsrep_qos::value::QosVector;

    fn roundtrip_request(request: &Request) -> Request {
        let mut buf = Vec::new();
        request.encode_frame(&mut buf);
        let FrameSplit::Frame { frame_len } = split_frame(&buf) else {
            panic!("encoded frame must split");
        };
        assert_eq!(frame_len, buf.len());
        Request::decode(&buf[FRAME_HEADER_LEN..frame_len]).expect("request decodes")
    }

    fn roundtrip_response(response: &Response) -> Response {
        let mut buf = Vec::new();
        response.encode_frame(&mut buf);
        let FrameSplit::Frame { frame_len } = split_frame(&buf) else {
            panic!("encoded frame must split");
        };
        Response::decode(&buf[FRAME_HEADER_LEN..frame_len]).expect("response decodes")
    }

    #[test]
    fn every_request_variant_round_trips() {
        let requests = [
            Request::Ping,
            Request::Publish(Listing {
                service: ServiceId::new(4),
                provider: ProviderId::new(5),
                category: 6,
                advertised: QosVector::from_pairs([(Metric::Accuracy, 0.9)]),
            }),
            Request::Deregister(ServiceId::new(7)),
            Request::Ingest {
                batch: vec![
                    Feedback::scored(AgentId::new(1), ServiceId::new(2), 0.75, Time::new(3)),
                    Feedback::scored(AgentId::new(4), ProviderId::new(5), 0.25, Time::new(6)),
                ],
                key: None,
            },
            Request::Ingest {
                batch: vec![Feedback::scored(
                    AgentId::new(1),
                    ServiceId::new(2),
                    0.75,
                    Time::new(3),
                )],
                key: Some(IngestKey {
                    producer: 0xFEED,
                    seq: 41,
                }),
            },
            Request::Score(ServiceId::new(9).into()),
            Request::TopK {
                category: 3,
                prefs: Preferences::uniform([Metric::Price, Metric::Accuracy]),
                k: 10,
            },
            Request::Stats,
            Request::Flush,
            Request::Shutdown,
            Request::ReplPull {
                from_lsn: 42,
                max_records: 512,
            },
            Request::ReplHeartbeat {
                replica: 7,
                durable_lsn: 41,
            },
        ];
        for request in requests {
            assert_eq!(roundtrip_request(&request), request);
        }
    }

    #[test]
    fn every_response_variant_round_trips() {
        let responses = [
            Response::Pong,
            Response::Published(PublishStatus::Created),
            Response::Published(PublishStatus::Updated),
            Response::Deregistered(true),
            Response::Ingested(128),
            Response::Scored(None),
            Response::Scored(Some(TrustEstimate::new(0.75, 0.5))),
            Response::TopKResult(vec![WireRanked {
                service: 1,
                provider: 2,
                qos_score: 0.5,
                reputation: Some(TrustEstimate::new(0.9, 0.8)),
                score: 0.7,
            }]),
            Response::StatsResult(Box::new(WireStats {
                service: ServiceStats {
                    shards: 8,
                    listings: 64,
                    feedback: 1000,
                    submitted: 1000,
                    cache_hits: 1,
                    cache_misses: 2,
                    topk_plan_hits: 3,
                    topk_plan_misses: 4,
                    preranked_hits: 5,
                    preranked_misses: 6,
                    snapshot_swaps: 7,
                    scratch_reuse: 8,
                    incremental: true,
                    journal: Some(JournalHealth {
                        segments: 1,
                        bytes_appended: 2,
                        last_fsync_nanos: 3,
                        commits: 4,
                        durable_lsn: 99,
                        records_recovered: 5,
                        writer_groups: 4,
                        journal_errors: 6,
                        policy: DurabilityPolicy::ReadOnly,
                        degraded: false,
                        fenced: true,
                    }),
                },
                server: ServerStats {
                    connections_opened: 3,
                    connections_closed: 1,
                    requests: [1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11],
                    reports_ingested: 100,
                    malformed_frames: 1,
                    protocol_errors: 2,
                    slow_client_closes: 3,
                    bytes_in: 4,
                    bytes_out: 5,
                },
                replication: Some(ReplicationStats {
                    role: ReplRole::Replica,
                    local_durable_lsn: 90,
                    remote_durable_lsn: 99,
                    lag: 9,
                    replicas: 0,
                    connected: true,
                }),
            })),
            Response::Flushed,
            Response::ShuttingDown,
            Response::ReplBatch(ReplBatch {
                first_lsn: 17,
                records: vec![
                    JournalRecord::Feedback(Feedback::scored(
                        AgentId::new(1),
                        ServiceId::new(2),
                        0.75,
                        Time::new(3),
                    )),
                    JournalRecord::Publish(Listing {
                        service: ServiceId::new(4),
                        provider: ProviderId::new(5),
                        category: 6,
                        advertised: QosVector::from_pairs([(Metric::Accuracy, 0.9)]),
                    }),
                    JournalRecord::Deregister(ServiceId::new(4)),
                ],
                durable_lsn: 20,
            }),
            Response::ReplBatch(ReplBatch {
                first_lsn: 0,
                records: Vec::new(),
                durable_lsn: 0,
            }),
            Response::ReplWatermark(ReplWatermark {
                durable_lsn: 20,
                replicas: 2,
                min_replica_lsn: 17,
            }),
            Response::Error {
                code: ErrorCode::BadRequest,
                message: "nope".to_string(),
            },
            Response::Error {
                code: ErrorCode::ReadOnly,
                message: "replica".to_string(),
            },
            Response::Error {
                code: ErrorCode::ReplUnavailable,
                message: "not a primary".to_string(),
            },
        ];
        for response in responses {
            assert_eq!(roundtrip_response(&response), response);
        }
    }

    #[test]
    fn v2_requests_still_decode_on_a_v3_server() {
        // A v2 client's ingest carries no key; the v3 decoder must read
        // it as None, and the versioned decode must report v2 so the
        // response comes back at v2.
        let request = Request::Ingest {
            batch: vec![Feedback::scored(
                AgentId::new(1),
                ServiceId::new(2),
                0.5,
                Time::new(3),
            )],
            key: None,
        };
        let mut buf = Vec::new();
        request.encode_frame_v(2, &mut buf);
        let FrameSplit::Frame { frame_len } = split_frame(&buf) else {
            panic!("v2 frame splits");
        };
        let (decoded, version) =
            Request::decode_versioned(&buf[FRAME_HEADER_LEN..frame_len]).expect("v2 decodes");
        assert_eq!(version, 2);
        assert_eq!(decoded, request);
        // Encoding at v2 drops the key rather than confusing an old
        // server with trailing bytes.
        let keyed = Request::Ingest {
            batch: Vec::new(),
            key: Some(IngestKey {
                producer: 1,
                seq: 2,
            }),
        };
        let mut buf = Vec::new();
        keyed.encode_frame_v(2, &mut buf);
        let FrameSplit::Frame { frame_len } = split_frame(&buf) else {
            panic!("v2 frame splits");
        };
        assert_eq!(
            Request::decode(&buf[FRAME_HEADER_LEN..frame_len]),
            Ok(Request::Ingest {
                batch: Vec::new(),
                key: None
            })
        );
    }

    #[test]
    fn v2_responses_default_the_v3_stats_fields() {
        let stats = WireStats {
            service: ServiceStats {
                shards: 1,
                listings: 0,
                feedback: 0,
                submitted: 0,
                cache_hits: 0,
                cache_misses: 0,
                topk_plan_hits: 0,
                topk_plan_misses: 0,
                preranked_hits: 0,
                preranked_misses: 0,
                snapshot_swaps: 0,
                scratch_reuse: 0,
                incremental: true,
                journal: Some(JournalHealth {
                    segments: 1,
                    durable_lsn: 7,
                    journal_errors: 42,
                    policy: DurabilityPolicy::FailStop,
                    fenced: true,
                    ..JournalHealth::default()
                }),
            },
            server: ServerStats::default(),
            replication: None,
        };
        let mut buf = Vec::new();
        Response::StatsResult(Box::new(stats)).encode_frame_v(2, &mut buf);
        let FrameSplit::Frame { frame_len } = split_frame(&buf) else {
            panic!("v2 frame splits");
        };
        let decoded = Response::decode(&buf[FRAME_HEADER_LEN..frame_len]).expect("v2 decodes");
        let Response::StatsResult(wire) = decoded else {
            panic!("stats response expected");
        };
        let health = wire.service.journal.expect("journal block survives");
        assert_eq!(health.durable_lsn, 7, "v2 fields intact");
        assert_eq!(health.journal_errors, 0, "v3-only field defaulted");
        assert_eq!(health.policy, DurabilityPolicy::Degrade);
        assert!(!health.fenced);
    }

    #[test]
    fn not_durable_degrades_to_read_only_for_v2_peers() {
        let error = Response::Error {
            code: ErrorCode::NotDurable,
            message: "fenced".to_string(),
        };
        let mut buf = Vec::new();
        error.encode_frame_v(2, &mut buf);
        let FrameSplit::Frame { frame_len } = split_frame(&buf) else {
            panic!("v2 frame splits");
        };
        let decoded = Response::decode(&buf[FRAME_HEADER_LEN..frame_len]).expect("v2 decodes");
        assert_eq!(
            decoded,
            Response::Error {
                code: ErrorCode::ReadOnly,
                message: "fenced".to_string(),
            }
        );
        // At v3 the code travels unmapped.
        assert_eq!(roundtrip_response(&error), error);
    }

    #[test]
    fn wrong_version_is_rejected_with_the_offending_byte() {
        let mut buf = Vec::new();
        Request::Ping.encode_frame(&mut buf);
        let mut payload = buf[FRAME_HEADER_LEN..].to_vec();
        payload[0] = 99;
        assert_eq!(Request::decode(&payload), Err(DecodeError::BadVersion(99)));
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut buf = Vec::new();
        Request::Ping.encode_frame(&mut buf);
        let mut payload = buf[FRAME_HEADER_LEN..].to_vec();
        payload.push(0);
        assert_eq!(Request::decode(&payload), Err(DecodeError::TrailingBytes));
    }
}
