//! Retry plumbing: jittered exponential backoff and the
//! auto-reconnecting client.
//!
//! A bare [`Client`](crate::client::Client) fails fast: a dropped
//! connection surfaces as [`ClientError::Disconnected`], a timeout
//! poisons the stream, and the caller is left to reconnect. That is the
//! right primitive, but every real caller wants the same loop around
//! it — reconnect, back off, try again, give up eventually. This module
//! is that loop, built from two pieces:
//!
//! - [`RetryPolicy`] + [`Backoff`] — the delay schedule: exponential
//!   growth with **equal jitter** (half deterministic, half uniform
//!   random), a cap, an attempt budget, and an optional wall-clock
//!   deadline. The jitter matters: a fleet of replicas reconnecting
//!   after a primary restart must not stampede in lockstep.
//! - [`RetryingClient`] — a [`Client`] wrapper that reconnects through
//!   the policy and makes **ingest retries exactly-once**: every batch
//!   is assigned one [`IngestKey`] `(producer, seq)` up front and that
//!   same key is resent on every retry, so the server's dedup window
//!   replays the original answer instead of applying the batch twice.
//!   This is what makes retrying after [`ClientError::TimedOut`] safe —
//!   without the key, the timed-out request may have been applied and a
//!   retry would double-count every report in the batch.
//!
//! The randomness is a tiny splitmix64/xorshift PRNG, not a crate
//! dependency: backoff jitter needs decorrelation, not cryptography.

use crate::client::{Client, ClientError};
use crate::proto::IngestKey;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant, SystemTime, UNIX_EPOCH};
use wsrep_core::feedback::Feedback;
use wsrep_core::id::{ServiceId, SubjectId};
use wsrep_core::trust::TrustEstimate;
use wsrep_qos::preference::Preferences;
use wsrep_sim::registry::{Listing, PublishStatus};

/// A small fast PRNG (xorshift64*), seeded through splitmix64 so that
/// consecutive seeds (0, 1, 2, …) still produce decorrelated streams.
#[derive(Debug, Clone)]
pub struct Rng64 {
    state: u64,
}

impl Rng64 {
    /// Seed the generator. Any seed is fine, including 0.
    pub fn new(seed: u64) -> Self {
        // splitmix64 scrambles the seed so xorshift never sees 0 and
        // nearby seeds diverge immediately.
        let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        Rng64 {
            state: z.max(1), // xorshift has a fixed point at 0
        }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform value in `[0, bound)`; 0 when `bound` is 0.
    pub fn below(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            0
        } else {
            self.next_u64() % bound
        }
    }
}

/// When and how often to retry a failed call.
///
/// The delay before attempt `n` (0-based) grows as
/// `base * multiplier^n`, capped at `cap`, with equal jitter: the
/// actual sleep is uniform in `[d/2, d]`. Attempts stop at
/// `max_attempts` or when `deadline` (wall clock since the first
/// attempt) would be exceeded, whichever comes first.
#[derive(Debug, Clone, Copy)]
pub struct RetryPolicy {
    /// Delay before the first retry (pre-jitter).
    pub base: Duration,
    /// Upper bound on any single delay (pre-jitter).
    pub cap: Duration,
    /// Growth factor per attempt; values below 1.0 are treated as 1.0.
    pub multiplier: f64,
    /// Total tries, including the first. 1 means "never retry".
    pub max_attempts: u32,
    /// Overall wall-clock budget across all attempts and sleeps.
    pub deadline: Option<Duration>,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            base: Duration::from_millis(50),
            cap: Duration::from_secs(2),
            multiplier: 2.0,
            max_attempts: 8,
            deadline: None,
        }
    }
}

impl RetryPolicy {
    /// A policy that retries forever (bounded only by `deadline` if one
    /// is set later). Used by pull loops that must outlive primary
    /// restarts.
    pub fn unbounded() -> Self {
        RetryPolicy {
            max_attempts: u32::MAX,
            ..RetryPolicy::default()
        }
    }

    /// The pre-jitter delay for 0-based retry `attempt`.
    pub fn raw_delay(&self, attempt: u32) -> Duration {
        let mult = self.multiplier.max(1.0);
        let factor = mult.powi(attempt.min(63) as i32);
        let nanos = (self.base.as_nanos() as f64 * factor).min(self.cap.as_nanos() as f64);
        Duration::from_nanos(nanos as u64)
    }

    /// The jittered delay for 0-based retry `attempt`: uniform in
    /// `[raw/2, raw]`.
    pub fn delay(&self, attempt: u32, rng: &mut Rng64) -> Duration {
        let raw = self.raw_delay(attempt).as_nanos() as u64;
        let half = raw / 2;
        Duration::from_nanos(half + rng.below(raw - half + 1))
    }
}

/// A stateful backoff schedule: call [`Backoff::next_delay`] before each
/// reconnect attempt, [`Backoff::reset`] after a success so the next
/// failure starts from `base` again.
#[derive(Debug, Clone)]
pub struct Backoff {
    policy: RetryPolicy,
    attempt: u32,
    rng: Rng64,
}

impl Backoff {
    /// A schedule over `policy`, jittered from `seed`.
    pub fn new(policy: RetryPolicy, seed: u64) -> Self {
        Backoff {
            policy,
            attempt: 0,
            rng: Rng64::new(seed),
        }
    }

    /// The delay to sleep before the next attempt. Grows per call;
    /// saturates at the policy cap. Attempt budgets and deadlines are
    /// the caller's concern — this is just the schedule.
    pub fn next_delay(&mut self) -> Duration {
        let delay = self.policy.delay(self.attempt, &mut self.rng);
        self.attempt = self.attempt.saturating_add(1);
        delay
    }

    /// How many delays have been handed out since the last reset.
    pub fn attempts(&self) -> u32 {
        self.attempt
    }

    /// Start over from the base delay (call after a successful attempt).
    pub fn reset(&mut self) {
        self.attempt = 0;
    }
}

/// Process-local uniquifier mixed into auto-generated producer ids so
/// two clients created in the same nanosecond still differ.
static PRODUCER_NONCE: AtomicU64 = AtomicU64::new(0);

fn auto_producer_id() -> u64 {
    let nanos = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(0);
    let nonce = PRODUCER_NONCE.fetch_add(1, Ordering::Relaxed);
    // splitmix the combination so ids look nothing alike.
    Rng64::new(nanos ^ (nonce.rotate_left(32))).next_u64()
}

/// Is this failure worth a reconnect-and-retry? Server refusals
/// (protocol errors, `NotDurable` fences) and corrupt streams are not —
/// the same request would fail the same way.
fn retryable(err: &ClientError) -> bool {
    matches!(
        err,
        ClientError::Disconnected(_)
            | ClientError::TimedOut
            | ClientError::Poisoned
            | ClientError::Io(_)
    )
}

/// A [`Client`] that reconnects and retries through a [`RetryPolicy`],
/// with exactly-once ingest.
///
/// Every [`RetryingClient::ingest`] call allocates one
/// [`IngestKey`] — this client's stable `producer` id plus a
/// monotonically increasing `seq` — **before** the first send, and
/// reuses it verbatim on every retry. The server's per-producer dedup
/// window recognizes a replayed `(producer, seq)` and answers with the
/// original result without re-applying the batch, so a retry after a
/// timeout or disconnect cannot double-count feedback.
pub struct RetryingClient {
    addr: String,
    policy: RetryPolicy,
    read_timeout: Option<Duration>,
    producer: u64,
    next_seq: u64,
    conn: Option<Client>,
    rng: Rng64,
}

impl RetryingClient {
    /// A retrying client for `addr` (connected lazily on first use)
    /// with an auto-generated producer id.
    pub fn new(addr: impl Into<String>, policy: RetryPolicy) -> Self {
        let producer = auto_producer_id();
        RetryingClient {
            addr: addr.into(),
            policy,
            read_timeout: None,
            producer,
            next_seq: 0,
            conn: None,
            rng: Rng64::new(producer),
        }
    }

    /// Pin the producer id (e.g. to resume a known identity, or for
    /// deterministic tests). Must be unique per logical producer:
    /// two clients sharing an id would dedup each other's batches.
    pub fn with_producer(mut self, producer: u64) -> Self {
        self.producer = producer;
        self
    }

    /// The producer id stamped on every keyed ingest.
    pub fn producer_id(&self) -> u64 {
        self.producer
    }

    /// Bound how long each receive may block. Applied to the current
    /// connection and every reconnect.
    pub fn set_read_timeout(&mut self, timeout: Option<Duration>) {
        self.read_timeout = timeout;
        if let Some(conn) = &self.conn {
            // Best-effort: a failed setsockopt will surface on use.
            let _ = conn.set_read_timeout(timeout);
        }
    }

    /// Drop the current connection (the next call reconnects).
    pub fn disconnect(&mut self) {
        self.conn = None;
    }

    fn connection(&mut self) -> Result<&mut Client, ClientError> {
        if self.conn.as_ref().map(|c| c.is_poisoned()).unwrap_or(false) {
            self.conn = None;
        }
        if self.conn.is_none() {
            let client = Client::connect(self.addr.as_str())?;
            client.set_read_timeout(self.read_timeout)?;
            self.conn = Some(client);
        }
        Ok(self.conn.as_mut().expect("connection just established"))
    }

    /// Run `op` against a live connection, reconnecting and retrying
    /// through the policy on transport failures. Protocol-level
    /// refusals (server errors, corrupt streams) are returned as-is.
    ///
    /// Only safe for idempotent operations — ingest goes through
    /// [`RetryingClient::ingest`], which adds the dedup key.
    pub fn retry<T>(
        &mut self,
        mut op: impl FnMut(&mut Client) -> Result<T, ClientError>,
    ) -> Result<T, ClientError> {
        let start = Instant::now();
        let mut attempt: u32 = 0;
        loop {
            let result = match self.connection() {
                Ok(conn) => op(conn),
                Err(err) => Err(err),
            };
            let err = match result {
                Ok(value) => return Ok(value),
                Err(err) if retryable(&err) => err,
                Err(err) => return Err(err),
            };
            // The connection is suspect after any transport error.
            self.conn = None;
            attempt += 1;
            if attempt >= self.policy.max_attempts {
                return Err(err);
            }
            let delay = self.policy.delay(attempt - 1, &mut self.rng);
            if let Some(deadline) = self.policy.deadline {
                if start.elapsed() + delay > deadline {
                    return Err(err);
                }
            }
            std::thread::sleep(delay);
        }
    }

    /// Liveness probe with retries.
    pub fn ping(&mut self) -> Result<(), ClientError> {
        self.retry(|c| c.ping())
    }

    /// Publish (or update) a listing, retrying on transport failures.
    /// Publishing is a last-writer-wins upsert, so replaying it is
    /// harmless (the reported `Created`/`Updated` status may differ
    /// across retries).
    pub fn publish(&mut self, listing: Listing) -> Result<PublishStatus, ClientError> {
        self.retry(move |c| c.publish(listing.clone()))
    }

    /// Submit a batch of feedback with exactly-once semantics: the
    /// batch's idempotency key is allocated once, here, and resent on
    /// every retry, so the server applies the batch at most once no
    /// matter how many times the transport fails underneath.
    pub fn ingest(&mut self, batch: Vec<Feedback>) -> Result<u64, ClientError> {
        let key = IngestKey {
            producer: self.producer,
            seq: self.next_seq,
        };
        self.next_seq += 1;
        self.retry(move |c| c.ingest_keyed(batch.clone(), key))
    }

    /// One subject's reputation (read-only; trivially retryable).
    pub fn score(&mut self, subject: SubjectId) -> Result<Option<TrustEstimate>, ClientError> {
        self.retry(move |c| c.score(subject))
    }

    /// The `k` best services in `category` (read-only).
    pub fn top_k(
        &mut self,
        category: u32,
        prefs: &Preferences,
        k: u32,
    ) -> Result<Vec<crate::proto::WireRanked>, ClientError> {
        self.retry(move |c| c.top_k(category, prefs, k))
    }

    /// Service + server counters (read-only).
    pub fn stats(&mut self) -> Result<crate::proto::WireStats, ClientError> {
        self.retry(|c| c.stats())
    }

    /// Apply-everything barrier, retried. A flush that times out may
    /// have completed server-side; re-issuing it is idempotent (the
    /// barrier just drains again).
    pub fn flush(&mut self) -> Result<(), ClientError> {
        self.retry(|c| c.flush())
    }

    /// Withdraw a listing. Retried; a replay of a successful removal
    /// reports `Ok(false)` (already gone), which callers should treat
    /// as success when retries are in play.
    pub fn deregister(&mut self, service: ServiceId) -> Result<bool, ClientError> {
        self.retry(move |c| c.deregister(service))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn raw_delays_grow_and_cap() {
        let policy = RetryPolicy {
            base: Duration::from_millis(10),
            cap: Duration::from_millis(100),
            multiplier: 2.0,
            max_attempts: 10,
            deadline: None,
        };
        assert_eq!(policy.raw_delay(0), Duration::from_millis(10));
        assert_eq!(policy.raw_delay(1), Duration::from_millis(20));
        assert_eq!(policy.raw_delay(2), Duration::from_millis(40));
        // Capped from attempt 4 on (160ms -> 100ms).
        assert_eq!(policy.raw_delay(4), Duration::from_millis(100));
        assert_eq!(policy.raw_delay(63), Duration::from_millis(100));
    }

    #[test]
    fn jittered_delay_stays_in_the_equal_jitter_band() {
        let policy = RetryPolicy::default();
        let mut rng = Rng64::new(7);
        for attempt in 0..12 {
            let raw = policy.raw_delay(attempt);
            for _ in 0..32 {
                let d = policy.delay(attempt, &mut rng);
                assert!(
                    d >= raw / 2,
                    "attempt {attempt}: {d:?} below half of {raw:?}"
                );
                assert!(d <= raw, "attempt {attempt}: {d:?} above {raw:?}");
            }
        }
    }

    #[test]
    fn backoff_resets_to_base() {
        let policy = RetryPolicy {
            base: Duration::from_millis(10),
            cap: Duration::from_secs(1),
            multiplier: 2.0,
            max_attempts: u32::MAX,
            deadline: None,
        };
        let mut backoff = Backoff::new(policy, 3);
        let first = backoff.next_delay();
        let mut grew = false;
        for _ in 0..6 {
            grew |= backoff.next_delay() > Duration::from_millis(10);
        }
        assert!(grew, "six doublings never left the base band");
        backoff.reset();
        let after_reset = backoff.next_delay();
        assert!(after_reset <= Duration::from_millis(10));
        assert!(first <= Duration::from_millis(10));
    }

    #[test]
    fn rng_streams_from_adjacent_seeds_diverge() {
        let mut a = Rng64::new(0);
        let mut b = Rng64::new(1);
        let mut same = 0;
        for _ in 0..64 {
            if a.next_u64() == b.next_u64() {
                same += 1;
            }
        }
        assert_eq!(same, 0);
    }

    #[test]
    fn auto_producer_ids_are_distinct() {
        let a = auto_producer_id();
        let b = auto_producer_id();
        assert_ne!(a, b);
    }

    #[test]
    fn ingest_keys_advance_per_batch() {
        let mut client = RetryingClient::new("127.0.0.1:1", RetryPolicy::default());
        assert_eq!(client.next_seq, 0);
        // Connection will fail (nothing listens on port 1), but the key
        // must be burned before the first attempt — that is what makes
        // a later manual replay safe.
        let policy = RetryPolicy {
            max_attempts: 1,
            ..RetryPolicy::default()
        };
        client.policy = policy;
        let _ = client.ingest(Vec::new());
        assert_eq!(client.next_seq, 1);
        let _ = client.ingest(Vec::new());
        assert_eq!(client.next_seq, 2);
    }
}
