//! wsrep-server — serve the reputation registry over TCP.
//!
//! ```text
//! wsrep-server [--listen ADDR] [--shards N] [--workers N]
//!              [--journal=DIR] [--recover=DIR] [--durability MODE]
//!              [--fault-append-every N] [--fault-fsync-every N]
//!              [--channel N] [--batch N] [--pipeline-depth N]
//!              [--poller auto|epoll|spin]
//! ```
//!
//! Defaults: listen on `127.0.0.1:7411`, 8 shards, 4 workers, no
//! journal. `--listen 127.0.0.1:0` binds an ephemeral port; the actual
//! address is printed (and flushed) as the first stdout line:
//!
//! ```text
//! wsrep-server listening on 127.0.0.1:40519
//! ```
//!
//! `--journal=DIR` attaches the write-ahead log; `--recover=DIR` attaches
//! it *and* replays snapshot + WAL tail before serving — restart a killed
//! server with `--recover` pointing at the same directory and every
//! report acknowledged by a `Flush` RPC is back.
//!
//! `--durability MODE` picks what a journal failure means (requires a
//! journal): `degrade` (default) keeps serving and counts errors,
//! `read-only` fences mutations with `NotDurable`, `fail-stop` fences
//! and exits (status 3). `--fault-append-every N` / `--fault-fsync-every
//! N` inject an ENOSPC-style error into every Nth journal append/fsync —
//! the disk half of the chaos harness, used by the CI chaos smoke job.
//!
//! The process exits (status 0) after a client sends the `Shutdown`
//! request: connections drain, the ingest pipeline flushes (a final
//! group-commit fsync with a journal attached), and a last JSON stats
//! line is printed (including `journal_errors` and the fence state when
//! a journal is attached).

use std::io::Write as _;
use std::path::PathBuf;
use std::process::exit;
use std::sync::Arc;
use std::time::Duration;
use wsrep_journal::{IoOp, IoPolicy, PeriodicFaults};
use wsrep_serve::{DurabilityPolicy, ReputationService};
use wsrep_server::{PollerChoice, Server, ServerConfig};

struct Args {
    listen: String,
    shards: usize,
    workers: usize,
    journal: Option<PathBuf>,
    recover: bool,
    durability: DurabilityPolicy,
    fault_append_every: Option<u64>,
    fault_fsync_every: Option<u64>,
    channel_capacity: usize,
    batch_size: usize,
    pipeline_depth: usize,
    poller: PollerChoice,
}

fn parse_args() -> Args {
    let mut parsed = Args {
        listen: "127.0.0.1:7411".to_string(),
        shards: 8,
        workers: 4,
        journal: None,
        recover: false,
        durability: DurabilityPolicy::Degrade,
        fault_append_every: None,
        fault_fsync_every: None,
        channel_capacity: 4096,
        batch_size: 128,
        pipeline_depth: 128,
        poller: PollerChoice::Auto,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut flag_value = |name: &str| -> String {
            args.next()
                .unwrap_or_else(|| panic!("{name} requires a value"))
        };
        if let Some(value) = arg.strip_prefix("--listen=") {
            parsed.listen = value.to_string();
        } else if arg == "--listen" {
            parsed.listen = flag_value("--listen");
        } else if let Some(value) = arg.strip_prefix("--shards=") {
            parsed.shards = value.parse().expect("--shards expects a number");
        } else if arg == "--shards" {
            parsed.shards = flag_value("--shards").parse().expect("--shards: number");
        } else if let Some(value) = arg.strip_prefix("--workers=") {
            parsed.workers = value.parse().expect("--workers expects a number");
        } else if arg == "--workers" {
            parsed.workers = flag_value("--workers").parse().expect("--workers: number");
        } else if let Some(dir) = arg.strip_prefix("--journal=") {
            parsed.journal = Some(PathBuf::from(dir));
        } else if let Some(dir) = arg.strip_prefix("--recover=") {
            parsed.journal = Some(PathBuf::from(dir));
            parsed.recover = true;
        } else if let Some(value) = arg.strip_prefix("--durability=") {
            parsed.durability = DurabilityPolicy::parse(value).unwrap_or_else(|| {
                panic!("--durability expects degrade|read-only|fail-stop, got {value:?}")
            });
        } else if arg == "--durability" {
            let value = flag_value("--durability");
            parsed.durability = DurabilityPolicy::parse(&value).unwrap_or_else(|| {
                panic!("--durability expects degrade|read-only|fail-stop, got {value:?}")
            });
        } else if let Some(value) = arg.strip_prefix("--fault-append-every=") {
            parsed.fault_append_every = Some(
                value
                    .parse()
                    .expect("--fault-append-every expects a number"),
            );
        } else if let Some(value) = arg.strip_prefix("--fault-fsync-every=") {
            parsed.fault_fsync_every =
                Some(value.parse().expect("--fault-fsync-every expects a number"));
        } else if let Some(value) = arg.strip_prefix("--channel=") {
            parsed.channel_capacity = value.parse().expect("--channel expects a number");
        } else if let Some(value) = arg.strip_prefix("--batch=") {
            parsed.batch_size = value.parse().expect("--batch expects a number");
        } else if let Some(value) = arg.strip_prefix("--pipeline-depth=") {
            parsed.pipeline_depth = value.parse().expect("--pipeline-depth expects a number");
        } else if let Some(value) = arg.strip_prefix("--poller=") {
            parsed.poller = PollerChoice::parse(value)
                .unwrap_or_else(|| panic!("--poller expects auto|epoll|spin, got {value:?}"));
        } else if arg == "--poller" {
            let value = flag_value("--poller");
            parsed.poller = PollerChoice::parse(&value)
                .unwrap_or_else(|| panic!("--poller expects auto|epoll|spin, got {value:?}"));
        } else {
            eprintln!("unknown argument: {arg}");
            exit(2);
        }
    }
    parsed
}

fn main() {
    let args = parse_args();
    let mut builder = ReputationService::builder()
        .shards(args.shards)
        .channel_capacity(args.channel_capacity)
        .batch_size(args.batch_size);
    if let Some(dir) = &args.journal {
        builder = if args.recover {
            builder.recover_from(dir)
        } else {
            builder.journal(dir)
        };
        builder = builder.durability_policy(args.durability);
    }
    let faults = if args.fault_append_every.is_some() || args.fault_fsync_every.is_some() {
        let mut policy = PeriodicFaults::new();
        if let Some(n) = args.fault_append_every {
            policy = policy.error_every(IoOp::Append, n);
        }
        if let Some(n) = args.fault_fsync_every {
            policy = policy.error_every(IoOp::Fsync, n);
        }
        let policy = Arc::new(policy);
        builder = builder.io_policy(Arc::clone(&policy) as Arc<dyn IoPolicy>);
        Some(policy)
    } else {
        None
    };
    let service = Arc::new(match builder.try_build() {
        Ok(service) => service,
        Err(err) => {
            eprintln!("wsrep-server: failed to open journal: {err}");
            exit(1);
        }
    });

    let config = ServerConfig {
        workers: args.workers.max(1),
        max_pipeline_depth: args.pipeline_depth.max(1),
        poller: args.poller,
        ..ServerConfig::default()
    };
    let server = match Server::start(Arc::clone(&service), &args.listen[..], config) {
        Ok(server) => server,
        Err(err) => {
            eprintln!("wsrep-server: failed to bind {}: {err}", args.listen);
            exit(1);
        }
    };

    // The bound address, flushed immediately: callers binding port 0
    // (tests, CI) parse it from this line.
    {
        let stdout = std::io::stdout();
        let mut out = stdout.lock();
        let _ = writeln!(out, "wsrep-server listening on {}", server.local_addr());
        let _ = out.flush();
    }

    // Serve until a Shutdown request flips the flag, then let the drain
    // finish. `join` returns only after every worker exited and the
    // ingest pipeline flushed (the final fsync with a journal).
    while !server.is_shutting_down() {
        std::thread::sleep(Duration::from_millis(50));
    }
    let wire = server.server_stats();
    let fenced = server.durability_fenced();
    let poller_kind = server.poller_kind();
    server.join();
    let stats = service.stats();
    let health = stats.journal.unwrap_or_default();
    let injected = faults.as_ref().map(|f| f.counters().total()).unwrap_or(0);
    // Best-effort: the launcher may have closed our stdout already, and a
    // clean shutdown must not turn into a broken-pipe panic.
    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    let _ = writeln!(
        out,
        "{{\"shutdown\":\"{}\",\"poller\":\"{}\",\"requests\":{},\"reports_ingested\":{},\"connections_opened\":{},\"malformed_frames\":{},\"bytes_in\":{},\"bytes_out\":{},\"feedback_applied\":{},\"durability\":\"{}\",\"journal_errors\":{},\"degraded\":{},\"fenced\":{},\"injected_disk_faults\":{}}}",
        if fenced { "fenced" } else { "clean" },
        poller_kind,
        wire.total_requests(),
        wire.reports_ingested,
        wire.connections_opened,
        wire.malformed_frames,
        wire.bytes_in,
        wire.bytes_out,
        stats.feedback,
        health.policy.name(),
        health.journal_errors,
        health.degraded,
        health.fenced,
        injected,
    );
    let _ = out.flush();
    // A fail-stop fence is an abnormal exit: the supervisor must see a
    // nonzero status, not a clean shutdown.
    if fenced && args.durability == DurabilityPolicy::FailStop {
        exit(3);
    }
}
