//! In-place frame encoding equivalence.
//!
//! PR 9 rewrote `Request::encode_frame_v` / `Response::encode_frame_v`
//! to reserve the frame header with `begin_frame`, encode the payload
//! directly into the destination buffer, and backfill length + CRC with
//! `end_frame` — replacing the old encode-to-a-temporary-then-
//! `write_frame` two-step. That is an allocation optimization, not a
//! format change: for every message variant, at every protocol version
//! a peer may speak, the bytes must be exactly what the two-step
//! produced. These tests prove it by rebuilding each frame the old way
//! (its payload re-framed through `write_frame`) and demanding byte
//! equality — including when the destination already holds earlier
//! frames, which is how the pipelined server uses it.

use proptest::prelude::*;
use wsrep_core::feedback::Feedback;
use wsrep_core::id::{AgentId, ProviderId, ServiceId};
use wsrep_core::time::Time;
use wsrep_core::trust::TrustEstimate;
use wsrep_journal::frame::{split_frame, write_frame, FrameSplit, FRAME_HEADER_LEN};
use wsrep_journal::JournalRecord;
use wsrep_qos::metric::Metric;
use wsrep_qos::preference::Preferences;
use wsrep_qos::value::QosVector;
use wsrep_serve::{DurabilityPolicy, JournalHealth, ServiceStats};
use wsrep_server::{
    ErrorCode, IngestKey, ReplBatch, ReplRole, ReplWatermark, ReplicationStats, Request, Response,
    ServerStats, WireRanked, WireStats, MIN_PROTO_VERSION, PROTO_VERSION,
};
use wsrep_sim::registry::{Listing, PublishStatus};

/// Re-frame `frame`'s payload through the pre-PR-9 path (`write_frame`
/// over an already-encoded payload) and demand byte equality, for a
/// frame that was appended after `prefix_len` bytes of earlier traffic.
fn assert_matches_two_step(frame: &[u8], prefix_len: usize, what: &str) {
    let body = &frame[prefix_len..];
    assert!(
        body.len() >= FRAME_HEADER_LEN,
        "{what}: frame shorter than its header"
    );
    let mut rebuilt = frame[..prefix_len].to_vec();
    write_frame(&mut rebuilt, &body[FRAME_HEADER_LEN..]);
    assert_eq!(
        rebuilt, frame,
        "{what}: in-place encode diverged from write_frame"
    );

    // And the frame the in-place path emitted must still split cleanly.
    let FrameSplit::Frame { frame_len } = split_frame(body) else {
        panic!("{what}: in-place frame does not split");
    };
    assert_eq!(frame_len, body.len(), "{what}: one message, one frame");
}

/// Every version a peer is allowed to speak on this wire.
fn versions() -> std::ops::RangeInclusive<u8> {
    MIN_PROTO_VERSION..=PROTO_VERSION
}

fn check_request(request: &Request) {
    for version in versions() {
        // Fresh buffer, and a buffer already carrying pipelined bytes.
        for prefix in [&b""[..], &b"\xAA\xBB\xCC"[..]] {
            let mut frame = prefix.to_vec();
            request.encode_frame_v(version, &mut frame);
            assert_matches_two_step(&frame, prefix.len(), &format!("{request:?} v{version}"));
        }
    }
    // The default-version entry point must be v-latest, byte for byte.
    let mut default_frame = Vec::new();
    request.encode_frame(&mut default_frame);
    let mut latest_frame = Vec::new();
    request.encode_frame_v(PROTO_VERSION, &mut latest_frame);
    assert_eq!(
        default_frame, latest_frame,
        "{request:?}: encode_frame != v-latest"
    );
}

fn check_response(response: &Response) {
    for version in versions() {
        for prefix in [&b""[..], &b"\xAA\xBB\xCC"[..]] {
            let mut frame = prefix.to_vec();
            response.encode_frame_v(version, &mut frame);
            assert_matches_two_step(&frame, prefix.len(), &format!("{response:?} v{version}"));
        }
    }
    let mut default_frame = Vec::new();
    response.encode_frame(&mut default_frame);
    let mut latest_frame = Vec::new();
    response.encode_frame_v(PROTO_VERSION, &mut latest_frame);
    assert_eq!(
        default_frame, latest_frame,
        "{response:?}: encode_frame != v-latest"
    );
}

fn sample_listing() -> Listing {
    Listing {
        service: ServiceId::new(4),
        provider: ProviderId::new(5),
        category: 6,
        advertised: QosVector::from_pairs([(Metric::Accuracy, 0.9), (Metric::Price, 12.5)]),
    }
}

fn sample_feedback() -> Vec<Feedback> {
    vec![
        Feedback::scored(AgentId::new(1), ServiceId::new(2), 0.75, Time::new(3))
            .with_observed(QosVector::from_pairs([(Metric::Latency, 40.0)]))
            .with_facet(Metric::Latency, 0.6),
        Feedback::scored(AgentId::new(4), ProviderId::new(5), 0.25, Time::new(6)),
    ]
}

fn sample_stats() -> WireStats {
    WireStats {
        service: ServiceStats {
            shards: 8,
            listings: 64,
            feedback: 1000,
            submitted: 1001,
            cache_hits: 1,
            cache_misses: 2,
            topk_plan_hits: 3,
            topk_plan_misses: 4,
            preranked_hits: 5,
            preranked_misses: 6,
            snapshot_swaps: 7,
            scratch_reuse: 8,
            incremental: true,
            journal: Some(JournalHealth {
                segments: 1,
                bytes_appended: 2,
                last_fsync_nanos: 3,
                commits: 4,
                durable_lsn: 99,
                records_recovered: 5,
                writer_groups: 4,
                journal_errors: 6,
                policy: DurabilityPolicy::Degrade,
                degraded: false,
                fenced: false,
            }),
        },
        server: ServerStats {
            connections_opened: 3,
            connections_closed: 1,
            requests: [1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11],
            reports_ingested: 100,
            malformed_frames: 1,
            protocol_errors: 2,
            slow_client_closes: 3,
            bytes_in: 4,
            bytes_out: 5,
        },
        replication: Some(ReplicationStats {
            role: ReplRole::Primary,
            local_durable_lsn: 99,
            remote_durable_lsn: 90,
            lag: 9,
            replicas: 2,
            connected: true,
        }),
    }
}

/// The exhaustive sweep: every request variant (keyed and keyless
/// ingest included) at every version, against the two-step reference.
#[test]
fn every_request_variant_encodes_identically_in_place() {
    let requests = [
        Request::Ping,
        Request::Publish(sample_listing()),
        Request::Deregister(ServiceId::new(7)),
        Request::Ingest {
            batch: sample_feedback(),
            key: None,
        },
        Request::Ingest {
            batch: sample_feedback(),
            key: Some(IngestKey {
                producer: 0xFEED,
                seq: 41,
            }),
        },
        Request::Score(ServiceId::new(9).into()),
        Request::TopK {
            category: 3,
            prefs: Preferences::uniform([Metric::Price, Metric::Accuracy]),
            k: 10,
        },
        Request::Stats,
        Request::Flush,
        Request::Shutdown,
        Request::ReplPull {
            from_lsn: 42,
            max_records: 512,
        },
        Request::ReplHeartbeat {
            replica: 7,
            durable_lsn: 41,
        },
    ];
    for request in &requests {
        check_request(request);
    }
}

/// Every response variant — including the deep stats and replication
/// payloads whose encoders do version-conditional work.
#[test]
fn every_response_variant_encodes_identically_in_place() {
    let responses = [
        Response::Pong,
        Response::Published(PublishStatus::Created),
        Response::Published(PublishStatus::Updated),
        Response::Deregistered(true),
        Response::Ingested(128),
        Response::Scored(None),
        Response::Scored(Some(TrustEstimate::new(0.75, 0.5))),
        Response::TopKResult(vec![
            WireRanked {
                service: 1,
                provider: 2,
                qos_score: 0.5,
                reputation: Some(TrustEstimate::new(0.9, 0.8)),
                score: 0.7,
            },
            WireRanked {
                service: 3,
                provider: 4,
                qos_score: 0.25,
                reputation: None,
                score: 0.25,
            },
        ]),
        Response::StatsResult(Box::new(sample_stats())),
        Response::Flushed,
        Response::ShuttingDown,
        Response::ReplBatch(ReplBatch {
            first_lsn: 17,
            records: vec![
                JournalRecord::Feedback(Feedback::scored(
                    AgentId::new(1),
                    ServiceId::new(2),
                    0.75,
                    Time::new(3),
                )),
                JournalRecord::Publish(sample_listing()),
                JournalRecord::Deregister(ServiceId::new(4)),
            ],
            durable_lsn: 20,
        }),
        Response::ReplBatch(ReplBatch {
            first_lsn: 0,
            records: Vec::new(),
            durable_lsn: 0,
        }),
        Response::ReplWatermark(ReplWatermark {
            durable_lsn: 20,
            replicas: 2,
            min_replica_lsn: 17,
        }),
        Response::Error {
            code: ErrorCode::BadRequest,
            message: "corrupt frame (bad length or checksum)".to_string(),
        },
        Response::Error {
            code: ErrorCode::NotDurable,
            message: "journal fenced".to_string(),
        },
    ];
    for response in &responses {
        check_response(response);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Fuzz the data-carrying variants: arbitrary batch shapes, QoS
    /// vectors, and strings push the in-place encoder through every
    /// length-prefix and backfill path.
    #[test]
    fn fuzzed_messages_encode_identically_in_place(
        seeds in proptest::collection::vec(
            (0u64..1_000, 0u64..1_000, 0.0f64..1.0, 0u64..10_000),
            0..12,
        ),
        pairs in proptest::collection::vec((0u8..30, 0.0f64..100.0), 0..6),
        keyed in 0u8..2,
        message_bytes in proptest::collection::vec(32u8..127, 0..40),
    ) {
        let keyed = keyed == 1;
        let message = String::from_utf8(message_bytes).expect("printable ascii");
        let qos = QosVector::from_pairs(
            pairs.iter().map(|&(m, v)| (Metric::AppSpecific(m), v)),
        );
        let batch: Vec<Feedback> = seeds
            .iter()
            .map(|&(rater, raw, score, at)| {
                Feedback::scored(AgentId::new(rater), ServiceId::new(raw), score, Time::new(at))
                    .with_observed(qos.clone())
            })
            .collect();
        let key = keyed.then_some(IngestKey { producer: 7, seq: 9 });
        check_request(&Request::Ingest { batch: batch.clone(), key });

        let ranked: Vec<WireRanked> = seeds
            .iter()
            .map(|&(service, provider, score, _)| WireRanked {
                service,
                provider,
                qos_score: score,
                reputation: keyed.then(|| TrustEstimate::new(score, score)),
                score,
            })
            .collect();
        check_response(&Response::TopKResult(ranked));

        let records: Vec<JournalRecord> = batch.into_iter().map(JournalRecord::Feedback).collect();
        check_response(&Response::ReplBatch(ReplBatch {
            first_lsn: 5,
            records,
            durable_lsn: 40,
        }));

        check_response(&Response::Error {
            code: ErrorCode::ShuttingDown,
            message,
        });
    }
}
