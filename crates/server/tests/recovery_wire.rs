//! Crash durability over the wire: spawn the real `wsrep-server` binary
//! with a journal attached, acknowledge reports through a `Flush` RPC,
//! then SIGKILL the process — no drain, no final fsync. Every
//! acknowledged report must come back, verified two ways: in-process
//! recovery via `ServiceBuilder::recover_from`, and a second server
//! process started with `--recover` answering `Score` over the wire.

use std::io::{BufRead, BufReader};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use wsrep_core::feedback::Feedback;
use wsrep_core::id::{AgentId, ProviderId, ServiceId};
use wsrep_core::time::Time;
use wsrep_qos::metric::Metric;
use wsrep_qos::value::QosVector;
use wsrep_serve::ReputationService;
use wsrep_server::Client;
use wsrep_sim::registry::Listing;

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "wsrep-server-recovery-{tag}-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

/// Spawn the real server binary on an ephemeral port and parse the bound
/// address from its first stdout line.
fn spawn_server(dir: &Path, recover: bool) -> (Child, String) {
    let journal_flag = if recover {
        format!("--recover={}", dir.display())
    } else {
        format!("--journal={}", dir.display())
    };
    let mut child = Command::new(env!("CARGO_BIN_EXE_wsrep-server"))
        .arg("--listen")
        .arg("127.0.0.1:0")
        .arg(journal_flag)
        .arg("--shards=4")
        .arg("--workers=2")
        .stdout(Stdio::piped())
        .spawn()
        .expect("spawn wsrep-server");
    let stdout = child.stdout.take().expect("piped stdout");
    let mut line = String::new();
    BufReader::new(stdout)
        .read_line(&mut line)
        .expect("read listen line");
    let addr = line
        .trim()
        .strip_prefix("wsrep-server listening on ")
        .unwrap_or_else(|| panic!("unexpected first line: {line:?}"))
        .to_string();
    (child, addr)
}

fn listing(service: u64, category: u32) -> Listing {
    Listing {
        service: ServiceId::new(service),
        provider: ProviderId::new(service),
        category,
        advertised: QosVector::from_pairs([(Metric::Price, 2.0), (Metric::Accuracy, 0.9)]),
    }
}

fn feedback(rater: u64, service: u64, score: f64, at: u64) -> Feedback {
    Feedback::scored(
        AgentId::new(rater),
        ServiceId::new(service),
        score,
        Time::new(at),
    )
}

#[test]
fn killing_the_server_mid_ingest_loses_nothing_acknowledged_by_flush() {
    let dir = temp_dir("kill");
    let (mut child, addr) = spawn_server(&dir, false);

    // Publish a listing, ingest two waves of reports, and pin the
    // durability line with a Flush RPC (group-commit fsync) after each.
    let mut client = Client::connect(&addr[..]).expect("connect");
    client.publish(listing(11, 0)).expect("publish");
    let accepted = client
        .ingest((0..48).map(|i| feedback(i, 11, 0.9, i)).collect())
        .expect("ingest wave 1");
    assert_eq!(accepted, 48);
    client.flush().expect("flush wave 1");
    client
        .ingest(
            (0..16)
                .map(|i| feedback(100 + i, 11, 0.2, 100 + i))
                .collect(),
        )
        .expect("ingest wave 2");
    client.flush().expect("flush wave 2");
    let live_estimate = client
        .score(ServiceId::new(11).into())
        .expect("score")
        .expect("evidence");

    // SIGKILL: a real crash. No drain, no shutdown handshake, no final
    // fsync. The journal on disk is all that survives.
    child.kill().expect("kill");
    child.wait().expect("reap");
    drop(client);

    // Recovery path 1: rebuild in-process from the journal directory.
    let recovered = ReputationService::builder()
        .shards(4)
        .recover_from(&dir)
        .try_build()
        .expect("recover in-process");
    assert_eq!(recovered.stats().feedback, 64, "both flushed waves replay");
    let estimate = recovered
        .score(ServiceId::new(11).into())
        .expect("evidence survives the crash");
    assert!(
        (estimate.value.get() - live_estimate.value.get()).abs() < 1e-9,
        "recovered score {} must match the pre-crash score {}",
        estimate.value.get(),
        live_estimate.value.get(),
    );
    drop(recovered);

    // Recovery path 2: restart the *binary* with --recover and ask over
    // the wire, then shut it down gracefully via the protocol.
    let (mut restarted, addr) = spawn_server(&dir, true);
    let mut client = Client::connect(&addr[..]).expect("reconnect");
    let stats = client.stats().expect("stats");
    assert_eq!(stats.service.feedback, 64);
    assert_eq!(stats.service.listings, 1, "the published listing replays");
    let estimate = client
        .score(ServiceId::new(11).into())
        .expect("score over the wire")
        .expect("evidence");
    assert!((estimate.value.get() - live_estimate.value.get()).abs() < 1e-9);
    client.shutdown_server().expect("graceful shutdown RPC");

    let status = restarted.wait().expect("wait for clean exit");
    assert!(status.success(), "graceful shutdown exits 0: {status:?}");
    let _ = std::fs::remove_dir_all(&dir);
}
