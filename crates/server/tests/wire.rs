//! End-to-end wire tests: a real `Server` on a loopback socket, driven
//! by `Client` connections — publish/ingest/score/top_k round trips,
//! pipelining order, malformed-frame handling, backpressure eviction,
//! and graceful shutdown.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;
use wsrep_core::feedback::Feedback;
use wsrep_core::id::{AgentId, ProviderId, ServiceId, SubjectId};
use wsrep_core::time::Time;
use wsrep_journal::frame::write_frame;
use wsrep_qos::metric::Metric;
use wsrep_qos::preference::Preferences;
use wsrep_qos::value::QosVector;
use wsrep_serve::ReputationService;
use wsrep_server::{
    Client, ErrorCode, PollerChoice, Request, Response, Server, ServerConfig, PROTO_VERSION,
};
use wsrep_sim::registry::{Listing, PublishStatus};

fn start_server(config: ServerConfig) -> (Server, Arc<ReputationService>) {
    let service = Arc::new(ReputationService::builder().shards(4).build());
    let server = Server::start(Arc::clone(&service), "127.0.0.1:0", config).expect("bind");
    (server, service)
}

fn listing(service: u64, category: u32, price: f64) -> Listing {
    Listing {
        service: ServiceId::new(service),
        provider: ProviderId::new(service),
        category,
        advertised: QosVector::from_pairs([(Metric::Price, price), (Metric::Accuracy, 0.8)]),
    }
}

fn feedback(rater: u64, service: u64, score: f64, at: u64) -> Feedback {
    Feedback::scored(
        AgentId::new(rater),
        ServiceId::new(service),
        score,
        Time::new(at),
    )
}

#[test]
fn full_request_vocabulary_round_trips_over_tcp() {
    let (server, _service) = start_server(ServerConfig::default());
    let mut client = Client::connect(server.local_addr()).expect("connect");

    client.ping().expect("ping");
    assert_eq!(
        client.publish(listing(1, 0, 2.0)).expect("publish"),
        PublishStatus::Created
    );
    assert_eq!(
        client.publish(listing(1, 0, 3.0)).expect("republish"),
        PublishStatus::Updated
    );
    client.publish(listing(2, 0, 4.0)).expect("publish 2");

    let accepted = client
        .ingest((0..40).map(|i| feedback(i, 1, 0.9, i)).collect())
        .expect("ingest");
    assert_eq!(accepted, 40);
    client.flush().expect("flush");

    let subject: SubjectId = ServiceId::new(1).into();
    let estimate = client.score(subject).expect("score").expect("evidence");
    assert!(estimate.value.get() > 0.5, "40 positive reports");
    assert_eq!(client.score(ServiceId::new(99).into()).unwrap(), None);

    let prefs = Preferences::uniform([Metric::Price, Metric::Accuracy]);
    let top = client.top_k(0, &prefs, 10).expect("top_k");
    assert_eq!(top.len(), 2);
    assert_eq!(top[0].service, 1, "reputation breaks the tie");
    assert!(top[0].score >= top[1].score);

    let stats = client.stats().expect("stats");
    assert_eq!(stats.service.feedback, 40);
    assert_eq!(stats.service.listings, 2);
    assert!(stats.server.total_requests() >= 8);
    assert_eq!(stats.server.reports_ingested, 40);
    assert_eq!(stats.server.connections_opened, 1);
    assert!(stats.server.bytes_in > 0 && stats.server.bytes_out > 0);

    assert!(client.deregister(ServiceId::new(2)).expect("deregister"));
    assert!(!client.deregister(ServiceId::new(2)).expect("again"));

    server.shutdown();
    server.join();
}

#[test]
fn pipelined_requests_are_answered_in_order() {
    let server = pipelined_requests_on(ServerConfig::default());
    if cfg!(target_os = "linux") {
        assert_eq!(server.poller_kind(), "epoll", "Auto must pick epoll here");
    }
    server.shutdown();
    server.join();
}

/// The same pipeline against the portable fallback backend: readiness is
/// a backend detail, the ordering and framing contract must not move.
#[test]
fn pipelined_requests_are_answered_in_order_on_the_spin_fallback() {
    let config = ServerConfig {
        poller: PollerChoice::Spin,
        ..ServerConfig::default()
    };
    let server = pipelined_requests_on(config);
    assert_eq!(server.poller_kind(), "spin");
    server.shutdown();
    server.join();
}

fn pipelined_requests_on(config: ServerConfig) -> Server {
    let (server, _service) = start_server(config);
    let mut setup = Client::connect(server.local_addr()).expect("connect");
    setup.publish(listing(7, 3, 1.0)).expect("publish");
    setup
        .ingest((0..25).map(|i| feedback(i, 7, 0.8, i)).collect())
        .expect("ingest");
    setup.flush().expect("flush");

    let mut client = Client::connect(server.local_addr()).expect("connect");
    // Queue a deep, heterogeneous pipeline in one write.
    let n = 200u64;
    for i in 0..n {
        if i % 3 == 0 {
            client.queue(&Request::Ping);
        } else if i % 3 == 1 {
            client.queue(&Request::Score(ServiceId::new(7).into()));
        } else {
            client.queue(&Request::Score(ServiceId::new(1_000 + i).into()));
        }
    }
    client.flush_queued().expect("flush_queued");
    assert_eq!(client.in_flight(), n as usize);
    for i in 0..n {
        let response = client.recv().expect("recv");
        match (i % 3, response) {
            (0, Response::Pong) => {}
            (1, Response::Scored(Some(estimate))) => {
                assert!(estimate.value.get() > 0.5);
            }
            (2, Response::Scored(None)) => {}
            (slot, other) => panic!("request {i} (kind {slot}) got {other:?}"),
        }
    }
    assert_eq!(client.in_flight(), 0);
    server
}

#[test]
fn corrupt_frame_gets_an_error_and_a_clean_close_without_hurting_others() {
    let (server, _service) = start_server(ServerConfig::default());
    let addr = server.local_addr();

    // A healthy connection that must survive the vandalism.
    let mut healthy = Client::connect(addr).expect("connect healthy");
    healthy.ping().expect("healthy ping");

    // Hand-craft a frame with a valid length but a wrong checksum.
    let mut raw = TcpStream::connect(addr).expect("connect raw");
    let mut frame = Vec::new();
    write_frame(&mut frame, &[PROTO_VERSION, 0x01]); // a valid Ping frame…
    let crc_byte = frame.len() - 3; // …then flip a payload byte so the CRC lies
    frame[crc_byte] ^= 0xFF;
    raw.write_all(&frame).expect("write corrupt frame");

    // The server answers one final protocol error, then closes.
    let mut reply = Vec::new();
    raw.read_to_end(&mut reply).expect("read until close");
    let split = wsrep_journal::frame::split_frame(&reply);
    let wsrep_journal::frame::FrameSplit::Frame { frame_len } = split else {
        panic!(
            "expected one error frame, got {split:?} ({} bytes)",
            reply.len()
        );
    };
    let response =
        Response::decode(&reply[wsrep_journal::frame::FRAME_HEADER_LEN..frame_len]).unwrap();
    assert!(
        matches!(
            response,
            Response::Error {
                code: ErrorCode::BadRequest,
                ..
            }
        ),
        "got {response:?}"
    );

    // The healthy connection and fresh connections still work.
    healthy.ping().expect("healthy ping after corruption");
    let mut fresh = Client::connect(addr).expect("connect fresh");
    fresh.ping().expect("fresh ping");
    assert_eq!(fresh.stats().expect("stats").server.malformed_frames, 1);

    server.shutdown();
    server.join();
}

#[test]
fn truncated_frame_then_close_is_handled_without_panic() {
    let (server, _service) = start_server(ServerConfig::default());
    let addr = server.local_addr();

    {
        // Write half a frame and hang up.
        let mut raw = TcpStream::connect(addr).expect("connect raw");
        let mut frame = Vec::new();
        write_frame(&mut frame, &[PROTO_VERSION, 0x01]);
        raw.write_all(&frame[..frame.len() / 2])
            .expect("write half");
    } // dropped: the peer closed mid-frame

    // The server shrugs it off; new connections serve fine.
    let mut client = Client::connect(addr).expect("connect");
    client.ping().expect("ping after truncated peer");

    server.shutdown();
    server.join();
}

#[test]
fn undecodable_payload_keeps_the_connection_alive() {
    let (server, _service) = start_server(ServerConfig::default());

    // A well-framed payload with an unknown opcode: framing is sound, so
    // the server reports the error and keeps serving this connection.
    let mut raw_frame = Vec::new();
    write_frame(&mut raw_frame, &[PROTO_VERSION, 0x6F]);
    let mut raw = TcpStream::connect(server.local_addr()).expect("connect raw");
    raw.set_nodelay(true).unwrap();
    raw.write_all(&raw_frame).expect("write unknown opcode");
    // Follow with a valid ping on the SAME connection.
    let mut ping = Vec::new();
    Request::Ping.encode_frame(&mut ping);
    raw.write_all(&ping).expect("write ping");

    // Read two frames: an error, then a pong.
    let mut bytes = Vec::new();
    let mut chunk = [0u8; 4096];
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    let mut frames = Vec::new();
    raw.set_read_timeout(Some(Duration::from_millis(100)))
        .unwrap();
    while frames.len() < 2 && std::time::Instant::now() < deadline {
        match raw.read(&mut chunk) {
            Ok(0) => break,
            Ok(n) => {
                bytes.extend_from_slice(&chunk[..n]);
                while let wsrep_journal::frame::FrameSplit::Frame { frame_len } =
                    wsrep_journal::frame::split_frame(&bytes)
                {
                    let payload = &bytes[wsrep_journal::frame::FRAME_HEADER_LEN..frame_len];
                    frames.push(Response::decode(payload).expect("decodes"));
                    bytes.drain(..frame_len);
                }
            }
            Err(_) => {}
        }
    }
    assert_eq!(frames.len(), 2, "error then pong");
    assert!(
        matches!(
            &frames[0],
            Response::Error {
                code: ErrorCode::BadRequest,
                ..
            }
        ),
        "got {:?}",
        frames[0]
    );
    assert_eq!(frames[1], Response::Pong);

    server.shutdown();
    server.join();
}

#[test]
fn wrong_version_is_answered_with_bad_version() {
    let (server, _service) = start_server(ServerConfig::default());
    let mut raw = TcpStream::connect(server.local_addr()).expect("connect");
    let mut frame = Vec::new();
    write_frame(&mut frame, &[PROTO_VERSION + 1, 0x01]);
    raw.write_all(&frame).expect("write future-version ping");
    let mut bytes = Vec::new();
    let mut chunk = [0u8; 4096];
    raw.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    loop {
        let n = raw.read(&mut chunk).expect("read");
        assert!(n > 0, "server closed without answering");
        bytes.extend_from_slice(&chunk[..n]);
        if let wsrep_journal::frame::FrameSplit::Frame { frame_len } =
            wsrep_journal::frame::split_frame(&bytes)
        {
            let response =
                Response::decode(&bytes[wsrep_journal::frame::FRAME_HEADER_LEN..frame_len])
                    .unwrap();
            assert!(
                matches!(
                    response,
                    Response::Error {
                        code: ErrorCode::BadVersion,
                        ..
                    }
                ),
                "got {response:?}"
            );
            break;
        }
    }
    server.shutdown();
    server.join();
}

#[test]
fn slow_client_is_evicted_instead_of_wedging_the_reactor() {
    let config = ServerConfig {
        workers: 1,
        max_pipeline_depth: 64,
        write_buffer_limit: 4 * 1024,
        write_stall_timeout: Duration::from_millis(300),
        ..ServerConfig::default()
    };
    let (server, _service) = start_server(config);
    let addr = server.local_addr();

    let mut setup = Client::connect(addr).expect("connect");
    for s in 0..32 {
        setup
            .publish(listing(s, 0, s as f64 + 1.0))
            .expect("publish");
    }

    // A client that pipelines a flood of fat top_k requests and never
    // reads: the server's write buffer fills, reading stops, and after
    // the stall timeout the connection is evicted.
    let mut glutton = Client::connect(addr).expect("connect glutton");
    let prefs = Preferences::uniform([Metric::Price, Metric::Accuracy]);
    for _ in 0..5_000 {
        glutton.queue(&Request::TopK {
            category: 0,
            prefs: prefs.clone(),
            k: 32,
        });
    }
    // The flood may hit a closed socket mid-write once eviction kicks
    // in; both outcomes (written or refused) are fine.
    let _ = glutton.flush_queued();

    // Meanwhile the same single worker keeps serving everyone else.
    let started = std::time::Instant::now();
    while started.elapsed() < Duration::from_secs(5) {
        setup.ping().expect("reactor must stay responsive");
        let stats = setup.stats().expect("stats");
        if stats.server.slow_client_closes >= 1 {
            server.shutdown();
            server.join();
            return;
        }
        std::thread::sleep(Duration::from_millis(50));
    }
    panic!("slow client was never evicted");
}

#[test]
fn graceful_shutdown_drains_and_reports() {
    let (server, service) = start_server(ServerConfig::default());
    let mut client = Client::connect(server.local_addr()).expect("connect");
    client
        .ingest((0..64).map(|i| feedback(i, 5, 0.7, i)).collect())
        .expect("ingest");
    client.shutdown_server().expect("shutdown handshake");
    // After the handshake the server closes this connection.
    let err = client.ping();
    assert!(err.is_err(), "connection must be closed after shutdown");
    server.join();
    // Everything acknowledged before shutdown is applied.
    assert_eq!(service.stats().feedback, 64);
}
