//! Protocol property tests: every request/response variant survives an
//! encode→frame→split→decode round trip, and arbitrary byte garbage
//! never panics a decoder — it errors.

use proptest::prelude::*;
use wsrep_core::feedback::Feedback;
use wsrep_core::id::{AgentId, ProviderId, ServiceId, SubjectId};
use wsrep_core::time::Time;
use wsrep_core::trust::TrustEstimate;
use wsrep_journal::frame::{split_frame, FrameSplit, FRAME_HEADER_LEN};
use wsrep_qos::metric::Metric;
use wsrep_qos::preference::Preferences;
use wsrep_qos::value::QosVector;
use wsrep_server::{ErrorCode, IngestKey, Request, Response, WireRanked};
use wsrep_sim::registry::{Listing, PublishStatus};

/// Deterministically build a metric from an index (covers every standard
/// metric plus app-specific ones).
fn metric(index: u8) -> Metric {
    let standard = Metric::ALL_STANDARD;
    if (index as usize) < standard.len() {
        standard[index as usize]
    } else {
        Metric::AppSpecific(index)
    }
}

fn subject(kind: u8, raw: u64) -> SubjectId {
    match kind % 3 {
        0 => AgentId::new(raw).into(),
        1 => ServiceId::new(raw).into(),
        _ => ProviderId::new(raw).into(),
    }
}

fn qos_vector(pairs: &[(u8, f64)]) -> QosVector {
    QosVector::from_pairs(pairs.iter().map(|&(m, v)| (metric(m), v)))
}

fn feedback(seed: (u64, u8, u64, f64, u64), pairs: &[(u8, f64)]) -> Feedback {
    let (rater, kind, raw, score, at) = seed;
    let mut fb = Feedback::scored(
        AgentId::new(rater),
        subject(kind, raw),
        score,
        Time::new(at),
    )
    .with_observed(qos_vector(pairs));
    for &(m, v) in pairs {
        fb = fb.with_facet(metric(m), v);
    }
    fb
}

fn listing(seed: (u64, u64, u32), pairs: &[(u8, f64)]) -> Listing {
    Listing {
        service: ServiceId::new(seed.0),
        provider: ProviderId::new(seed.1),
        category: seed.2,
        advertised: qos_vector(pairs),
    }
}

fn roundtrip_request(request: &Request) -> Request {
    let mut buf = Vec::new();
    request.encode_frame(&mut buf);
    let FrameSplit::Frame { frame_len } = split_frame(&buf) else {
        panic!("encoded request frame must split cleanly");
    };
    assert_eq!(frame_len, buf.len(), "one request, one frame");
    Request::decode(&buf[FRAME_HEADER_LEN..frame_len]).expect("round trip decodes")
}

fn roundtrip_response(response: &Response) -> Response {
    let mut buf = Vec::new();
    response.encode_frame(&mut buf);
    let FrameSplit::Frame { frame_len } = split_frame(&buf) else {
        panic!("encoded response frame must split cleanly");
    };
    Response::decode(&buf[FRAME_HEADER_LEN..frame_len]).expect("round trip decodes")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn any_ingest_batch_round_trips(
        seeds in proptest::collection::vec(
            (0u64..1_000, 0u8..3, 0u64..1_000, 0.0f64..1.0, 0u64..10_000),
            0..20,
        ),
        pairs in proptest::collection::vec((0u8..30, 0.0f64..100.0), 0..6),
    ) {
        let batch: Vec<Feedback> = seeds.iter().map(|&s| feedback(s, &pairs)).collect();
        // Roughly half the cases carry an idempotency key, so both the
        // keyed and keyless v3 encodings are exercised.
        let key = seeds.first().filter(|s| s.0 % 2 == 1).map(|s| IngestKey {
            producer: s.0.wrapping_mul(0x9E37),
            seq: s.2,
        });
        let request = Request::Ingest { batch, key };
        prop_assert_eq!(roundtrip_request(&request), request);
    }

    #[test]
    fn publish_deregister_score_round_trip(
        listing_seed in (0u64..1_000, 0u64..100, 0u32..16),
        pairs in proptest::collection::vec((0u8..30, 0.0f64..100.0), 0..6),
        kind in 0u8..3,
        raw in 0u64..1_000_000,
    ) {
        let publish = Request::Publish(listing(listing_seed, &pairs));
        prop_assert_eq!(roundtrip_request(&publish), publish);
        let deregister = Request::Deregister(ServiceId::new(raw));
        prop_assert_eq!(roundtrip_request(&deregister), deregister);
        let score = Request::Score(subject(kind, raw));
        prop_assert_eq!(roundtrip_request(&score), score);
    }

    #[test]
    fn top_k_round_trips_with_arbitrary_preferences(
        category in 0u32..64,
        k in 0u32..1_000,
        weights in proptest::collection::vec((0u8..30, 0.01f64..10.0), 0..8),
    ) {
        // Dedupe metrics first: `from_weights` keeps the last duplicate but
        // sums all of them into the normalizer, so duplicate inputs yield
        // weights that don't sum to 1 — the wire codec faithfully carries
        // the normalized form either way.
        let deduped: std::collections::BTreeMap<Metric, f64> =
            weights.iter().map(|&(m, w)| (metric(m), w)).collect();
        let prefs = Preferences::from_weights(deduped);
        let request = Request::TopK { category, prefs: prefs.clone(), k };
        let Request::TopK { category: c2, prefs: p2, k: k2 } = roundtrip_request(&request)
        else {
            return Err(TestCaseError::fail("variant changed".to_string()));
        };
        prop_assert_eq!(c2, category);
        prop_assert_eq!(k2, k);
        // from_weights renormalizes; compare weights numerically.
        let metrics: Vec<Metric> = prefs.metrics().collect();
        let metrics2: Vec<Metric> = p2.metrics().collect();
        prop_assert_eq!(metrics.clone(), metrics2);
        for m in metrics {
            prop_assert!((prefs.weight(m) - p2.weight(m)).abs() < 1e-12);
        }
    }

    #[test]
    fn scored_and_ranked_responses_round_trip(
        value in 0.0f64..1.0,
        confidence in 0.0f64..1.0,
        ranked_seeds in proptest::collection::vec(
            (0u64..1_000, 0u64..100, 0.0f64..1.0, 0.0f64..1.0, 0u8..2),
            0..12,
        ),
    ) {
        let scored = Response::Scored(Some(TrustEstimate::new(value, confidence)));
        prop_assert_eq!(roundtrip_response(&scored), scored);
        prop_assert_eq!(
            roundtrip_response(&Response::Scored(None)),
            Response::Scored(None)
        );
        let ranked: Vec<WireRanked> = ranked_seeds
            .iter()
            .map(|&(service, provider, qos_score, score, with_rep)| WireRanked {
                service,
                provider,
                qos_score,
                reputation: (with_rep == 1)
                    .then(|| TrustEstimate::new(score, qos_score)),
                score,
            })
            .collect();
        let response = Response::TopKResult(ranked);
        prop_assert_eq!(roundtrip_response(&response), response);
    }

    #[test]
    fn scalar_messages_round_trip(count in 0u64..1_000_000, found in 0u8..2) {
        for request in [Request::Ping, Request::Stats, Request::Flush, Request::Shutdown] {
            prop_assert_eq!(roundtrip_request(&request), request);
        }
        for response in [
            Response::Pong,
            Response::Flushed,
            Response::ShuttingDown,
            Response::Published(PublishStatus::Created),
            Response::Published(PublishStatus::Updated),
            Response::Deregistered(found == 1),
            Response::Ingested(count),
            Response::Error {
                code: ErrorCode::BadRequest,
                message: format!("fuzz {count}"),
            },
        ] {
            prop_assert_eq!(roundtrip_response(&response), response);
        }
    }

    #[test]
    fn garbage_bytes_never_panic_the_decoders(
        bytes in proptest::collection::vec(0u8..=255, 0..200),
    ) {
        // Any byte soup: decoding may fail, must never panic.
        let _ = Request::decode(&bytes);
        let _ = Response::decode(&bytes);
        let _ = split_frame(&bytes);
    }

    #[test]
    fn truncated_valid_frames_never_decode_as_complete(
        seeds in proptest::collection::vec(
            (0u64..1_000, 0u8..3, 0u64..1_000, 0.0f64..1.0, 0u64..10_000),
            1..5,
        ),
        cut_fraction in 0.0f64..1.0,
    ) {
        let batch: Vec<Feedback> = seeds.iter().map(|&s| feedback(s, &[])).collect();
        let mut buf = Vec::new();
        Request::Ingest { batch, key: None }.encode_frame(&mut buf);
        let cut = ((buf.len() - 1) as f64 * cut_fraction) as usize;
        // A strict prefix either waits for more bytes or (if the cut
        // mangles nothing yet) still refuses to produce a frame.
        prop_assert_eq!(split_frame(&buf[..cut]), FrameSplit::Incomplete);
    }
}
