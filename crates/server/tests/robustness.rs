//! Robustness wire tests: exactly-once keyed ingest, the poisoned-
//! client contract after a timeout, durability fences crossing the
//! wire, and the retrying client surviving a flaky link without
//! double-applying anything.

use std::net::TcpListener;
use std::sync::Arc;
use std::time::Duration;
use wsrep_core::feedback::Feedback;
use wsrep_core::id::{AgentId, ProviderId, ServiceId};
use wsrep_core::time::Time;
use wsrep_journal::{Fault, FaultScript, IoOp, IoPolicy};
use wsrep_qos::metric::Metric;
use wsrep_qos::value::QosVector;
use wsrep_serve::{DurabilityPolicy, ReputationService};
use wsrep_server::{
    ChaosConfig, Client, ClientError, ErrorCode, FlakyProxy, IngestKey, RetryPolicy,
    RetryingClient, Server, ServerConfig,
};
use wsrep_sim::registry::Listing;

fn start_server(config: ServerConfig) -> (Server, Arc<ReputationService>) {
    let service = Arc::new(ReputationService::builder().shards(4).build());
    let server = Server::start(Arc::clone(&service), "127.0.0.1:0", config).expect("bind");
    (server, service)
}

fn listing(service: u64, category: u32) -> Listing {
    Listing {
        service: ServiceId::new(service),
        provider: ProviderId::new(service),
        category,
        advertised: QosVector::from_pairs([(Metric::Price, 2.0), (Metric::Accuracy, 0.8)]),
    }
}

fn feedback(rater: u64, service: u64, score: f64, at: u64) -> Feedback {
    Feedback::scored(
        AgentId::new(rater),
        ServiceId::new(service),
        score,
        Time::new(at),
    )
}

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "wsrep-robustness-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn replayed_ingest_key_applies_exactly_once() {
    let (server, service) = start_server(ServerConfig::default());
    let mut client = Client::connect(server.local_addr()).expect("connect");

    let key = IngestKey {
        producer: 42,
        seq: 7,
    };
    let batch: Vec<Feedback> = (0..16).map(|i| feedback(i, 1, 0.9, i)).collect();
    let first = client
        .ingest_keyed(batch.clone(), key)
        .expect("first keyed ingest");
    assert_eq!(first, 16);
    // The retry path: same key, same batch, resent verbatim.
    let replayed = client.ingest_keyed(batch.clone(), key).expect("replay");
    assert_eq!(replayed, first, "replay must echo the original answer");
    // A fresh seq from the same producer is new work, not a replay.
    let next = client
        .ingest_keyed(
            batch,
            IngestKey {
                producer: 42,
                seq: 8,
            },
        )
        .expect("next seq");
    assert_eq!(next, 16);
    client.flush().expect("flush");
    assert_eq!(
        service.store().len(),
        32,
        "two distinct keys applied, one replay suppressed"
    );
    server.shutdown();
    server.join();
}

#[test]
fn timed_out_client_is_poisoned_until_reconnect() {
    // A listener that accepts and never answers: the ping below must
    // time out with the response still owed.
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr");
    let hold = std::thread::spawn(move || listener.accept());

    let mut client = Client::connect(addr).expect("connect");
    client
        .set_read_timeout(Some(Duration::from_millis(50)))
        .expect("timeout");
    client.send(&wsrep_server::Request::Ping).expect("send");
    assert!(matches!(client.recv(), Err(ClientError::TimedOut)));
    assert!(client.is_poisoned());
    // Every further receive refuses: the stream may be mid-frame, so
    // any byte read now could belong to the timed-out response.
    assert!(matches!(client.recv(), Err(ClientError::Poisoned)));
    assert!(matches!(client.ping(), Err(ClientError::Poisoned)));
    assert!(matches!(
        client.ingest(vec![feedback(0, 1, 0.5, 0)]),
        Err(ClientError::Poisoned)
    ));
    drop(client);
    let _ = hold.join();
}

#[test]
fn retrying_client_reconnects_around_a_poisoned_connection() {
    let (server, service) = start_server(ServerConfig::default());
    let mut client = RetryingClient::new(
        server.local_addr().to_string(),
        RetryPolicy {
            base: Duration::from_millis(1),
            cap: Duration::from_millis(5),
            multiplier: 2.0,
            max_attempts: 6,
            deadline: None,
        },
    )
    .with_producer(99);
    client.ping().expect("ping");
    // Simulate a poisoned mid-frame connection: the wrapper must drop
    // it and answer on a fresh one instead of failing.
    client.disconnect();
    client.publish(listing(3, 0)).expect("publish");
    let accepted = client
        .ingest((0..8).map(|i| feedback(i, 3, 0.7, i)).collect())
        .expect("ingest");
    assert_eq!(accepted, 8);
    client.flush().expect("flush");
    assert_eq!(service.store().len(), 8);
    server.shutdown();
    server.join();
}

#[test]
fn retried_batches_through_a_flaky_link_apply_exactly_once() {
    const BATCHES: u64 = 30;
    const BATCH_SIZE: u64 = 8;
    let (server, service) = start_server(ServerConfig::default());
    let mut proxy = FlakyProxy::start(
        server.local_addr(),
        ChaosConfig {
            seed: 3,
            // Sever the link every 7th chunk: acks get lost in flight,
            // forcing the client to retry batches it cannot know landed.
            drop_conn_every: Some(7),
            split_chunks: true,
            ..ChaosConfig::default()
        },
    )
    .expect("proxy");

    let mut client = RetryingClient::new(
        proxy.addr().to_string(),
        RetryPolicy {
            base: Duration::from_millis(1),
            cap: Duration::from_millis(10),
            multiplier: 2.0,
            max_attempts: 50,
            deadline: None,
        },
    );
    client.set_read_timeout(Some(Duration::from_secs(2)));

    for b in 0..BATCHES {
        let batch: Vec<Feedback> = (0..BATCH_SIZE)
            .map(|i| feedback(b * BATCH_SIZE + i, 1 + (b % 3), 0.6, b * BATCH_SIZE + i))
            .collect();
        let accepted = client.ingest(batch).expect("keyed ingest with retries");
        assert_eq!(accepted, BATCH_SIZE);
    }
    client.flush().expect("flush");

    // Verify through a clean connection — the proxy stays chaotic.
    let mut direct = Client::connect(server.local_addr()).expect("direct");
    let stats = direct.stats().expect("stats");
    assert_eq!(
        stats.service.feedback,
        BATCHES * BATCH_SIZE,
        "every batch applied exactly once despite {} dropped connections",
        proxy.counters().dropped_conns
    );
    assert_eq!(service.store().len() as u64, BATCHES * BATCH_SIZE);
    assert!(
        proxy.counters().dropped_conns > 0,
        "the chaos schedule never fired — this test proved nothing"
    );
    proxy.stop();
    server.shutdown();
    server.join();
}

#[test]
fn read_only_fence_crosses_the_wire_with_counters() {
    let dir = temp_dir("readonly");
    let script = Arc::new(FaultScript::new());
    // The very first journal append fails with ENOSPC.
    script.push(IoOp::Append, Fault::enospc());
    let service = Arc::new(
        ReputationService::builder()
            .shards(2)
            .journal(&dir)
            .durability_policy(DurabilityPolicy::ReadOnly)
            .io_policy(Arc::clone(&script) as Arc<dyn IoPolicy>)
            .build(),
    );
    let server =
        Server::start(Arc::clone(&service), "127.0.0.1:0", ServerConfig::default()).expect("bind");
    let mut client = Client::connect(server.local_addr()).expect("connect");

    // The first mutation hits the injected fault and the fence latches.
    let err = client.publish(listing(1, 0)).expect_err("fenced publish");
    match err {
        ClientError::Server { code, .. } => assert_eq!(code, ErrorCode::NotDurable),
        other => panic!("expected a NotDurable server error, got {other}"),
    }
    // Later mutations are refused without touching the disk again.
    let err = client.publish(listing(2, 0)).expect_err("still fenced");
    assert!(matches!(
        err,
        ClientError::Server {
            code: ErrorCode::NotDurable,
            ..
        }
    ));
    // Reads still serve, and the stats tell the whole story.
    let stats = client.stats().expect("stats");
    let health = stats.service.journal.expect("journaled");
    assert!(health.fenced, "fence must be visible in WireStats");
    assert_eq!(health.policy, DurabilityPolicy::ReadOnly);
    assert!(health.journal_errors >= 1);
    assert_eq!(stats.service.listings, 0, "fenced publish was not applied");
    assert!(
        !server.is_shutting_down(),
        "read-only keeps serving, unlike fail-stop"
    );
    server.shutdown();
    server.join();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn fail_stop_fence_refuses_and_exits() {
    let dir = temp_dir("failstop");
    let script = Arc::new(FaultScript::new());
    script.push(IoOp::Append, Fault::enospc());
    let service = Arc::new(
        ReputationService::builder()
            .shards(2)
            .journal(&dir)
            .durability_policy(DurabilityPolicy::FailStop)
            .io_policy(Arc::clone(&script) as Arc<dyn IoPolicy>)
            .build(),
    );
    let server =
        Server::start(Arc::clone(&service), "127.0.0.1:0", ServerConfig::default()).expect("bind");
    let mut client = Client::connect(server.local_addr()).expect("connect");

    let err = client.publish(listing(1, 0)).expect_err("fenced publish");
    assert!(matches!(
        err,
        ClientError::Server {
            code: ErrorCode::NotDurable,
            ..
        }
    ));
    // Fail-stop does not keep serving a non-durable registry: the
    // refusal begins a drain so the host process can exit.
    assert!(server.is_shutting_down());
    assert!(server.durability_fenced());
    server.join();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn degrade_counts_errors_but_keeps_accepting() {
    let dir = temp_dir("degrade");
    let script = Arc::new(FaultScript::new());
    script.push(IoOp::Append, Fault::enospc());
    let service = Arc::new(
        ReputationService::builder()
            .shards(2)
            .journal(&dir)
            .durability_policy(DurabilityPolicy::Degrade)
            .io_policy(Arc::clone(&script) as Arc<dyn IoPolicy>)
            .build(),
    );
    let server =
        Server::start(Arc::clone(&service), "127.0.0.1:0", ServerConfig::default()).expect("bind");
    let mut client = Client::connect(server.local_addr()).expect("connect");

    // The fault lands, the write is still accepted (availability over
    // durability), and the degradation is visible in the counters.
    client.publish(listing(1, 0)).expect("degraded publish");
    let accepted = client
        .ingest((0..4).map(|i| feedback(i, 1, 0.8, i)).collect())
        .expect("degraded ingest");
    assert_eq!(accepted, 4);
    client.flush().expect("flush");
    let stats = client.stats().expect("stats");
    let health = stats.service.journal.expect("journaled");
    assert!(health.degraded);
    assert!(!health.fenced);
    assert!(health.journal_errors >= 1);
    assert_eq!(health.policy, DurabilityPolicy::Degrade);
    assert_eq!(stats.service.listings, 1);
    assert_eq!(stats.service.feedback, 4);
    server.shutdown();
    server.join();
    let _ = std::fs::remove_dir_all(&dir);
}
