//! Benchmarks for the durability layer: what a group-committed WAL costs
//! on the ingest path (journaled vs unjournaled submit+flush), the raw
//! append throughput of the journal itself, and the price of recovery.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use std::fs;
use std::path::PathBuf;
use wsrep_core::feedback::Feedback;
use wsrep_core::id::{AgentId, ServiceId};
use wsrep_core::time::Time;
use wsrep_journal::{recover, Journal, JournalConfig, JournalRecord};
use wsrep_serve::ReputationService;

fn feedback(rater: u64, service: u64, score: f64, at: u64) -> Feedback {
    Feedback::scored(
        AgentId::new(rater),
        ServiceId::new(service),
        score,
        Time::new(at),
    )
}

/// A fresh, empty journal directory under the system temp dir.
fn temp_dir(tag: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("wsrep-bench-journal-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

/// The headline number: how much durability costs per 1k ingested
/// reports. The unjournaled side is the same pipeline without the WAL;
/// the journaled side pays one group-commit fsync per applied batch.
fn bench_ingest_journaled_vs_not(c: &mut Criterion) {
    let mut group = c.benchmark_group("journal_ingest");
    group.bench_function("unjournaled_1k", |b| {
        let service = ReputationService::builder()
            .shards(8)
            .batch_size(128)
            .build();
        let mut round = 0u64;
        b.iter(|| {
            for i in 0..1_000u64 {
                service.ingest(feedback(i, i % 16, 0.5, round)).unwrap();
            }
            service.flush();
            round += 1;
        })
    });
    group.bench_function("journaled_1k", |b| {
        let dir = temp_dir("ingest");
        let service = ReputationService::builder()
            .shards(8)
            .batch_size(128)
            .journal(&dir)
            .build();
        let mut round = 0u64;
        b.iter(|| {
            for i in 0..1_000u64 {
                service.ingest(feedback(i, i % 16, 0.5, round)).unwrap();
            }
            // With the journal attached, flush is a durability barrier.
            service.flush();
            round += 1;
        });
        drop(service);
        let _ = fs::remove_dir_all(&dir);
    });
    group.finish();
}

/// Raw group-commit throughput by batch size: the bigger the batch, the
/// more records each fsync amortizes over.
fn bench_append_batch(c: &mut Criterion) {
    let mut group = c.benchmark_group("journal_append");
    for &batch_size in &[1usize, 64, 512] {
        let records: Vec<JournalRecord> = (0..batch_size as u64)
            .map(|i| JournalRecord::Feedback(feedback(i, i % 16, 0.5, i)))
            .collect();
        group.bench_with_input(
            BenchmarkId::new("batch", batch_size),
            &batch_size,
            |b, _| {
                let dir = temp_dir(&format!("append-{batch_size}"));
                let mut journal = Journal::open(&dir, JournalConfig::default()).unwrap();
                b.iter(|| journal.append_batch(black_box(&records)).unwrap());
                drop(journal);
                let _ = fs::remove_dir_all(&dir);
            },
        );
    }
    group.finish();
}

/// What a restart pays: replaying a 10k-record WAL back into state.
fn bench_recover(c: &mut Criterion) {
    let mut group = c.benchmark_group("journal_recover");
    group.sample_size(20);
    let dir = temp_dir("recover");
    {
        let mut journal = Journal::open(&dir, JournalConfig::default()).unwrap();
        let records: Vec<JournalRecord> = (0..10_000u64)
            .map(|i| JournalRecord::Feedback(feedback(i % 50, i % 16, 0.5, i)))
            .collect();
        for chunk in records.chunks(128) {
            journal.append_batch(chunk).unwrap();
        }
    }
    group.bench_function("wal_10k", |b| {
        b.iter(|| {
            let recovered = recover(black_box(&dir)).unwrap();
            assert_eq!(recovered.feedback.len(), 10_000);
            recovered
        })
    });
    group.finish();
    let _ = fs::remove_dir_all(&dir);
}

criterion_group!(
    benches,
    bench_ingest_journaled_vs_not,
    bench_append_batch,
    bench_recover
);
criterion_main!(benches);
