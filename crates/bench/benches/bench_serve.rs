//! Benchmarks for the served registry: what the epoch-validated cache
//! buys on a hot subject, what batching buys on ingestion, and the cost
//! of a preference-aware `top_k`.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use wsrep_core::feedback::Feedback;
use wsrep_core::id::{AgentId, ProviderId, ServiceId, SubjectId};
use wsrep_core::mechanism::score_from_log;
use wsrep_core::mechanisms::beta::BetaMechanism;
use wsrep_core::time::Time;
use wsrep_qos::metric::Metric;
use wsrep_qos::preference::Preferences;
use wsrep_qos::value::QosVector;
use wsrep_serve::ReputationService;
use wsrep_sim::registry::Listing;

fn feedback(rater: u64, service: u64, score: f64, at: u64) -> Feedback {
    Feedback::scored(
        AgentId::new(rater),
        ServiceId::new(service),
        score,
        Time::new(at),
    )
}

fn loaded_service(reports_per_subject: u64, services: u64) -> ReputationService {
    let service = ReputationService::builder().shards(8).build();
    for s in 0..services {
        service
            .publish(Listing {
                service: ServiceId::new(s),
                provider: ProviderId::new(s),
                category: 0,
                advertised: QosVector::from_pairs([
                    (Metric::Price, 1.0 + s as f64),
                    (Metric::Accuracy, 0.5 + 0.4 * (s as f64 / services as f64)),
                ]),
            })
            .expect("publish");
    }
    for i in 0..reports_per_subject {
        for s in 0..services {
            service
                .ingest(feedback(i, s, 0.1 + 0.8 * ((i + s) % 10) as f64 / 10.0, i))
                .unwrap();
        }
    }
    service.flush();
    service
}

/// The acceptance claim: a hot subject's cached score must be much
/// cheaper than the uncached replay of its log.
fn bench_score_cached_vs_uncached(c: &mut Criterion) {
    let mut group = c.benchmark_group("serve_score");
    for &log_len in &[1_000u64, 10_000] {
        let service = loaded_service(log_len, 4);
        let subject: SubjectId = ServiceId::new(1).into();
        // Warm the cache once, then every iteration hits.
        let warm = service.score(subject).expect("evidence exists");
        group.bench_with_input(BenchmarkId::new("cached", log_len), &log_len, |b, _| {
            b.iter(|| {
                let estimate = service.score(black_box(subject)).unwrap();
                assert_eq!(estimate, warm);
                estimate
            })
        });
        // The work a miss performs: snapshot-free replay of the same
        // shard log through a fresh mechanism.
        let store = service.store().clone();
        group.bench_with_input(BenchmarkId::new("uncached", log_len), &log_len, |b, _| {
            b.iter(|| {
                store.with_subject_shard(black_box(subject), |shard| {
                    let mut mechanism = BetaMechanism::new();
                    score_from_log(&mut mechanism, shard.store().about(subject), subject)
                })
            })
        });
    }
    group.finish();
}

fn bench_ingest(c: &mut Criterion) {
    let mut group = c.benchmark_group("serve_ingest");
    group.bench_function("submit_and_flush_1k", |b| {
        let service = ReputationService::builder()
            .shards(8)
            .batch_size(128)
            .build();
        let mut round = 0u64;
        b.iter(|| {
            for i in 0..1_000u64 {
                service.ingest(feedback(i, i % 16, 0.5, round)).unwrap();
            }
            service.flush();
            round += 1;
        })
    });
    group.finish();
}

fn bench_top_k(c: &mut Criterion) {
    let mut group = c.benchmark_group("serve_top_k");
    let service = loaded_service(200, 64);
    let prefs = Preferences::uniform([Metric::Price, Metric::Accuracy]);
    // First call fills the score cache for all 64 subjects.
    let top = service.top_k(0, &prefs, 10);
    assert_eq!(top.len(), 10);
    group.bench_function("64_candidates_k10_hot", |b| {
        b.iter(|| service.top_k(black_box(0), &prefs, 10))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_score_cached_vs_uncached,
    bench_ingest,
    bench_top_k
);
criterion_main!(benches);
