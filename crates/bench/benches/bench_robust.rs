//! B5 — defense cost: each unfair-rating defense over growing stores.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use wsrep_core::feedback::Feedback;
use wsrep_core::id::{AgentId, ServiceId};
use wsrep_core::store::FeedbackStore;
use wsrep_core::time::Time;
use wsrep_robust::defense::all_defenses;

fn store(reports: usize) -> FeedbackStore {
    let mut rng = StdRng::seed_from_u64(5);
    (0..reports)
        .map(|i| {
            Feedback::scored(
                AgentId::new(rng.gen_range(0..50)),
                ServiceId::new(rng.gen_range(0..20)),
                rng.gen(),
                Time::new(i as u64),
            )
        })
        .collect()
}

fn bench_defenses(c: &mut Criterion) {
    let mut group = c.benchmark_group("defense_estimate");
    group.sample_size(20);
    for n in [500usize, 2000] {
        let st = store(n);
        for defense in all_defenses() {
            let name = format!("{}_{n}", defense.name());
            group.bench_with_input(BenchmarkId::from_parameter(name), &st, |b, st| {
                b.iter(|| defense.estimate(st, AgentId::new(0), ServiceId::new(7).into()));
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_defenses);
criterion_main!(benches);
