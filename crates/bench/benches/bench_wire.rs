//! Benchmarks for the wire path PR 9 optimized: CRC32 throughput
//! (slicing-by-8 vs the one-table reference), in-place frame encoding
//! vs the old buffer-then-copy two-step, and full request/response
//! encode→split→decode round trips at realistic payload sizes.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use wsrep_core::feedback::Feedback;
use wsrep_core::id::{AgentId, ServiceId};
use wsrep_core::time::Time;
use wsrep_core::trust::TrustEstimate;
use wsrep_journal::frame::{
    begin_frame, crc32, crc32_bytewise, end_frame, split_frame, write_frame, FrameSplit,
    FRAME_HEADER_LEN,
};
use wsrep_qos::metric::Metric;
use wsrep_qos::value::QosVector;
use wsrep_server::{Request, Response, WireRanked};

fn feedback_batch(n: u64) -> Vec<Feedback> {
    (0..n)
        .map(|i| {
            Feedback::scored(AgentId::new(i), ServiceId::new(i % 16), 0.5, Time::new(i))
                .with_observed(QosVector::from_pairs([
                    (Metric::Latency, 40.0),
                    (Metric::Price, 12.5),
                ]))
        })
        .collect()
}

/// Raw checksum throughput over a wire-sized buffer: the sliced
/// implementation the frame layer now uses against the bytewise loop it
/// replaced. 64 KiB matches the server's read chunk.
fn bench_crc(c: &mut Criterion) {
    let buf: Vec<u8> = (0..64 * 1024u32).map(|i| (i * 31) as u8).collect();
    let mut group = c.benchmark_group("wire_crc");
    group.bench_function("slice_by_8_64k", |b| b.iter(|| black_box(crc32(&buf))));
    group.bench_function("bytewise_64k", |b| {
        b.iter(|| black_box(crc32_bytewise(&buf)))
    });
    group.finish();
}

/// Framing alone (no message codec): in-place header reserve + backfill
/// against the old encode-to-scratch-then-`write_frame` copy, on a 4 KiB
/// payload appended to a warm output buffer.
fn bench_framing(c: &mut Criterion) {
    let payload: Vec<u8> = (0..4096u32).map(|i| (i * 17) as u8).collect();
    let mut group = c.benchmark_group("wire_framing");
    group.bench_function("in_place_4k", |b| {
        let mut out = Vec::with_capacity(8192);
        b.iter(|| {
            out.clear();
            let start = begin_frame(&mut out);
            out.extend_from_slice(&payload);
            end_frame(&mut out, start);
            black_box(out.len())
        })
    });
    group.bench_function("two_step_4k", |b| {
        let mut scratch = Vec::with_capacity(8192);
        let mut out = Vec::with_capacity(8192);
        b.iter(|| {
            scratch.clear();
            scratch.extend_from_slice(&payload);
            out.clear();
            write_frame(&mut out, &scratch);
            black_box(out.len())
        })
    });
    group.finish();
}

/// The messages the loadgen hot loop actually moves: a 64-report ingest
/// request and a 50-row top-k response, encoded into a reused buffer.
fn bench_message_encode(c: &mut Criterion) {
    let ingest = Request::Ingest {
        batch: feedback_batch(64),
        key: None,
    };
    let ranked = Response::TopKResult(
        (0..50u64)
            .map(|i| WireRanked {
                service: i,
                provider: i % 8,
                qos_score: 0.5,
                reputation: Some(TrustEstimate::new(0.9, 0.8)),
                score: 0.7,
            })
            .collect(),
    );
    let mut group = c.benchmark_group("wire_encode");
    group.bench_function("ingest_64", |b| {
        let mut out = Vec::with_capacity(16 * 1024);
        b.iter(|| {
            out.clear();
            ingest.encode_frame(&mut out);
            black_box(out.len())
        })
    });
    group.bench_function("topk_50", |b| {
        let mut out = Vec::with_capacity(8192);
        b.iter(|| {
            out.clear();
            ranked.encode_frame(&mut out);
            black_box(out.len())
        })
    });
    group.finish();
}

/// The receive side: split (length + CRC verify) and decode of the same
/// hot messages.
fn bench_message_decode(c: &mut Criterion) {
    let mut ingest_frame = Vec::new();
    Request::Ingest {
        batch: feedback_batch(64),
        key: None,
    }
    .encode_frame(&mut ingest_frame);
    let mut pong_frame = Vec::new();
    Response::Pong.encode_frame(&mut pong_frame);

    let mut group = c.benchmark_group("wire_decode");
    group.bench_function("split_and_decode_ingest_64", |b| {
        b.iter(|| {
            let FrameSplit::Frame { frame_len } = split_frame(&ingest_frame) else {
                unreachable!("benchmark frame splits");
            };
            black_box(Request::decode(&ingest_frame[FRAME_HEADER_LEN..frame_len]).unwrap())
        })
    });
    group.bench_function("split_and_decode_pong", |b| {
        b.iter(|| {
            let FrameSplit::Frame { frame_len } = split_frame(&pong_frame) else {
                unreachable!("benchmark frame splits");
            };
            black_box(Response::decode(&pong_frame[FRAME_HEADER_LEN..frame_len]).unwrap())
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_crc,
    bench_framing,
    bench_message_encode,
    bench_message_decode
);
criterion_main!(benches);
