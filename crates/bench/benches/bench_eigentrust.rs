//! B2 — EigenTrust convergence versus network size and pre-trust mass.
//!
//! The ablation DESIGN.md calls out: how the pre-trusted mass `a` and the
//! population size drive power-iteration cost.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use wsrep_core::feedback::Feedback;
use wsrep_core::id::AgentId;
use wsrep_core::mechanisms::eigentrust::EigenTrustMechanism;
use wsrep_core::time::Time;
use wsrep_core::ReputationMechanism;

fn seeded_network(n: u64, alpha: f64) -> EigenTrustMechanism {
    let mut m = EigenTrustMechanism::with_params(alpha, 1e-9, 500);
    m.pre_trust(AgentId::new(0));
    let mut rng = StdRng::seed_from_u64(n);
    for i in 0..n {
        for _ in 0..8 {
            let j = rng.gen_range(0..n);
            if i != j {
                m.submit(&Feedback::scored(
                    AgentId::new(i),
                    AgentId::new(j),
                    if rng.gen::<f64>() < 0.8 { 0.9 } else { 0.1 },
                    Time::ZERO,
                ));
            }
        }
    }
    m
}

fn bench_size(c: &mut Criterion) {
    let mut group = c.benchmark_group("eigentrust_power_iteration");
    group.sample_size(10);
    for n in [50u64, 100, 200] {
        let m = seeded_network(n, 0.15);
        group.bench_with_input(BenchmarkId::from_parameter(n), &m, |b, m| {
            b.iter(|| m.iterations_to_converge());
        });
    }
    group.finish();
}

fn bench_alpha(c: &mut Criterion) {
    let mut group = c.benchmark_group("eigentrust_alpha_sweep");
    group.sample_size(10);
    for alpha in [0.05, 0.15, 0.5] {
        let m = seeded_network(100, alpha);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("a={alpha}")),
            &m,
            |b, m| {
                b.iter(|| m.iterations_to_converge());
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_size, bench_alpha);
criterion_main!(benches);
