//! The incremental-scoring acceptance benchmark: a cold-cache score of a
//! subject with a long feedback history. Replay walks the whole shard
//! log through a fresh mechanism (O(n) in history); the incremental path
//! reads the shard-resident accumulator (O(1)). The acceptance bar for
//! this engine is ≥50× on a 10 000-report subject.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use wsrep_core::feedback::Feedback;
use wsrep_core::id::{AgentId, ServiceId, SubjectId};
use wsrep_core::mechanism::score_from_log;
use wsrep_core::mechanisms::beta::BetaMechanism;
use wsrep_core::time::Time;
use wsrep_serve::ReputationService;

fn loaded_service(reports: u64, incremental: bool) -> ReputationService {
    let mut builder = ReputationService::builder().shards(4);
    if !incremental {
        builder = builder.replay_scoring();
    }
    let service = builder.build();
    for i in 0..reports {
        service
            .ingest(Feedback::scored(
                AgentId::new(i % 97),
                ServiceId::new(1),
                0.1 + 0.8 * ((i % 10) as f64 / 10.0),
                Time::new(i / 5),
            ))
            .unwrap();
    }
    service.flush();
    service
}

/// What a cache miss costs with and without the fold, at growing log
/// lengths. Neither side gets the score cache: we measure the recompute
/// path itself, exactly what every miss pays.
fn bench_cold_score(c: &mut Criterion) {
    let mut group = c.benchmark_group("incremental_cold_score");
    for &log_len in &[1_000u64, 10_000, 100_000] {
        let service = loaded_service(log_len, true);
        let subject: SubjectId = ServiceId::new(1).into();
        let store = service.store().clone();
        let expected = service.score(subject).expect("evidence exists");
        group.bench_with_input(
            BenchmarkId::new("incremental", log_len),
            &log_len,
            |b, _| {
                b.iter(|| {
                    let estimate = store
                        .with_subject_shard(black_box(subject), |shard| {
                            shard.resident_estimate(subject).expect("fold attached")
                        })
                        .expect("evidence exists");
                    assert_eq!(estimate, expected);
                    estimate
                })
            },
        );
        group.bench_with_input(BenchmarkId::new("replay", log_len), &log_len, |b, _| {
            b.iter(|| {
                let estimate = store
                    .with_subject_shard(black_box(subject), |shard| {
                        let mut mechanism = BetaMechanism::new();
                        score_from_log(&mut mechanism, shard.store().about(subject), subject)
                    })
                    .expect("evidence exists");
                assert_eq!(estimate, expected);
                estimate
            })
        });
    }
    group.finish();
}

/// Recovery-shaped ingestion: the full history arrives as one batch, and
/// the parallel apply should beat the sequential one on multi-core.
fn bench_batch_apply(c: &mut Criterion) {
    let mut group = c.benchmark_group("incremental_batch_apply");
    group.sample_size(20);
    let batch: Vec<Feedback> = (0..100_000u64)
        .map(|i| {
            Feedback::scored(
                AgentId::new(i % 97),
                ServiceId::new(i % 64),
                0.5,
                Time::new(i / 50),
            )
        })
        .collect();
    for parallel in [false, true] {
        let name = if parallel { "parallel" } else { "sequential" };
        group.bench_function(BenchmarkId::new("100k_reports", name), |b| {
            b.iter(|| {
                let service = ReputationService::builder().shards(16).build();
                let store = service.store();
                if parallel {
                    store.insert_batch_parallel(batch.clone());
                } else {
                    store.insert_batch(batch.clone());
                }
                assert_eq!(store.len(), batch.len());
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_cold_score, bench_batch_apply);
criterion_main!(benches);
