//! B3 — overlay primitives: Chord routing, P-Grid routing, flooding and
//! gossip over the sizes the decentralized experiments use.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use wsrep_core::id::AgentId;
use wsrep_net::overlay::chord::{hash_key, ChordRing};
use wsrep_net::overlay::flood::flood;
use wsrep_net::overlay::gossip::gossip;
use wsrep_net::overlay::graph::NeighborGraph;
use wsrep_net::overlay::pgrid::PGrid;

fn bench_chord(c: &mut Criterion) {
    let mut group = c.benchmark_group("chord_route");
    for n in [64u64, 256, 1024] {
        let ring = ChordRing::new((0..n).map(AgentId::new));
        group.bench_with_input(BenchmarkId::from_parameter(n), &ring, |b, ring| {
            let mut i = 0u64;
            b.iter(|| {
                i += 1;
                ring.route_from(AgentId::new(0), hash_key(i))
            });
        });
    }
    group.finish();
}

fn bench_pgrid(c: &mut Criterion) {
    let mut group = c.benchmark_group("pgrid_route");
    for n in [64u64, 256, 1024] {
        let peers: Vec<AgentId> = (0..n).map(AgentId::new).collect();
        let grid = PGrid::new(&peers);
        group.bench_with_input(BenchmarkId::from_parameter(n), &grid, |b, grid| {
            let mut i = 0u64;
            b.iter(|| {
                i += 1;
                grid.route_from(AgentId::new(0), hash_key(i))
            });
        });
    }
    group.finish();
}

fn bench_flood_and_gossip(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(3);
    let nodes: Vec<AgentId> = (0..200).map(AgentId::new).collect();
    let graph = NeighborGraph::random_connected(&mut rng, &nodes, 2);
    c.bench_function("flood_ttl4_200peers", |b| {
        b.iter(|| flood(&graph, AgentId::new(0), 4));
    });
    c.bench_function("gossip_fanout3_200peers", |b| {
        let mut rng = StdRng::seed_from_u64(4);
        b.iter(|| gossip(&mut rng, &graph, AgentId::new(0), 3, 100));
    });
}

criterion_group!(benches, bench_chord, bench_pgrid, bench_flood_and_gossip);
criterion_main!(benches);
