//! B6 — end-to-end market throughput: one full selection round (all
//! consumers select, invoke, report) for the main strategies.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use wsrep_core::mechanisms::beta::BetaMechanism;
use wsrep_core::mechanisms::peertrust::PeerTrustMechanism;
use wsrep_select::eval::{Market, MarketConfig};
use wsrep_select::strategy::{AdvertisedQos, RandomSelect, ReputationSelect, SelectionStrategy};
use wsrep_sim::world::{World, WorldConfig};

fn bench_market_rounds(c: &mut Criterion) {
    let mut group = c.benchmark_group("market_10_rounds");
    group.sample_size(10);
    let cfg = {
        let mut cfg = WorldConfig::small(5);
        cfg.providers = 12;
        cfg.consumers = 40;
        cfg
    };

    type MkStrategy = fn() -> Box<dyn SelectionStrategy>;
    let cases: Vec<(&str, MkStrategy)> = vec![
        ("random", || Box::new(RandomSelect)),
        ("advertised", || Box::new(AdvertisedQos)),
        ("rep_beta", || {
            Box::new(ReputationSelect::new(Box::new(BetaMechanism::new())))
        }),
        ("rep_peertrust", || {
            Box::new(ReputationSelect::new(Box::new(PeerTrustMechanism::new())))
        }),
    ];

    for (name, make) in cases {
        group.bench_function(name, |b| {
            b.iter_batched(
                || (World::generate(cfg.clone()), make()),
                |(world, mut strategy)| {
                    Market::new(world, MarketConfig::new(10, 5)).run(strategy.as_mut())
                },
                BatchSize::SmallInput,
            );
        });
    }
    group.finish();
}

fn bench_world_generation(c: &mut Criterion) {
    c.bench_function("world_generate_small", |b| {
        b.iter(|| World::generate(WorldConfig::small(7)));
    });
}

criterion_group!(benches, bench_market_rounds, bench_world_generation);
criterion_main!(benches);
