//! Read-path microbenchmarks: what one query costs on the wait-free
//! fast paths and on each miss tier.
//!
//! - `readpath_score`: a cached `score` (epoch read + snapshot probe)
//!   against the same read with readers and a writer racing — the
//!   snapshot swap must keep the hot read flat under write pressure.
//! - `readpath_top_k`: the pre-ranked hit (probe + k-element copy into a
//!   reused buffer) against the re-rank miss (score + sort over the
//!   cached plan) and the full plan rebuild.
//! - `readpath_primitives`: the underlying `SnapshotCell` read and the
//!   wait-free store-epoch lookup, the two loads every query starts
//!   with.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use wsrep_core::feedback::Feedback;
use wsrep_core::id::{AgentId, ProviderId, ServiceId, SubjectId};
use wsrep_core::time::Time;
use wsrep_qos::metric::Metric;
use wsrep_qos::preference::Preferences;
use wsrep_qos::value::QosVector;
use wsrep_serve::{ReputationService, SnapshotCell};
use wsrep_sim::registry::Listing;

const SERVICES: u64 = 64;
const CATEGORIES: u32 = 4;

fn loaded_service(reports: u64) -> ReputationService {
    let service = ReputationService::builder().shards(8).build();
    for s in 0..SERVICES {
        service
            .publish(Listing {
                service: ServiceId::new(s),
                provider: ProviderId::new(s / 4),
                category: (s % CATEGORIES as u64) as u32,
                advertised: QosVector::from_pairs([
                    (Metric::Price, 1.0 + s as f64),
                    (Metric::Accuracy, 1.0 / (1.0 + s as f64)),
                ]),
            })
            .expect("publish");
    }
    for i in 0..reports {
        service
            .ingest(Feedback::scored(
                AgentId::new(i % 97),
                ServiceId::new(i % SERVICES),
                0.1 + 0.8 * ((i % 10) as f64 / 10.0),
                Time::new(i / 5),
            ))
            .unwrap();
    }
    service.flush();
    service
}

/// The cached score read, quiet and under concurrent load. Wait-free
/// means the contended number should track the quiet one.
fn bench_score(c: &mut Criterion) {
    let mut group = c.benchmark_group("readpath_score");
    let service = Arc::new(loaded_service(100_000));
    let subject: SubjectId = ServiceId::new(7).into();
    // Warm the cache entry.
    let expected = service.score(subject).expect("evidence exists");

    group.bench_function("cached_quiet", |b| {
        b.iter(|| {
            let estimate = service.score(black_box(subject)).unwrap();
            assert_eq!(estimate, expected);
            estimate
        })
    });

    // Same read while a writer keeps ingesting (invalidating other
    // subjects) and two readers sweep the whole id space.
    let stop = Arc::new(AtomicBool::new(false));
    let mut background = Vec::new();
    for reader in 0..2u64 {
        let service = Arc::clone(&service);
        let stop = Arc::clone(&stop);
        background.push(std::thread::spawn(move || {
            let mut i = reader;
            while !stop.load(Ordering::Relaxed) {
                let s: SubjectId = ServiceId::new(i % SERVICES).into();
                black_box(service.score(s));
                i += 1;
            }
        }));
    }
    {
        let service = Arc::clone(&service);
        let stop = Arc::clone(&stop);
        background.push(std::thread::spawn(move || {
            let mut i = 0u64;
            while !stop.load(Ordering::Relaxed) {
                // Skip the measured subject so its cache entry stays hot.
                let target = 8 + (i % (SERVICES - 8));
                service
                    .ingest(Feedback::scored(
                        AgentId::new(900),
                        ServiceId::new(target),
                        0.5,
                        Time::new(i),
                    ))
                    .unwrap();
                i += 1;
            }
        }));
    }
    group.bench_function("cached_contended", |b| {
        b.iter(|| black_box(service.score(black_box(subject))))
    });
    stop.store(true, Ordering::Relaxed);
    for handle in background {
        handle.join().unwrap();
    }
    group.finish();
}

/// The three `top_k` tiers: pre-ranked hit, re-rank over a cached plan,
/// and the full plan rebuild.
fn bench_top_k(c: &mut Criterion) {
    let mut group = c.benchmark_group("readpath_top_k");
    let service = loaded_service(50_000);
    let prefs = Preferences::uniform([Metric::Price, Metric::Accuracy]);
    let mut out = Vec::new();
    service.top_k_into(0, &prefs, 10, &mut out);
    let expected = out.clone();

    group.bench_function("preranked_hit", |b| {
        b.iter(|| {
            service.top_k_into(black_box(0), &prefs, 10, &mut out);
            assert_eq!(out.len(), expected.len());
        })
    });

    let other = Preferences::uniform([Metric::Accuracy]);
    let mut flip = false;
    group.bench_function("rerank_after_feedback", |b| {
        b.iter(|| {
            // One applied report on a category member moves the score
            // epoch: the next top_k must re-score and re-sort.
            service
                .ingest(Feedback::scored(
                    AgentId::new(901),
                    ServiceId::new(0),
                    if flip { 0.4 } else { 0.6 },
                    Time::ZERO,
                ))
                .unwrap();
            service.flush();
            flip = !flip;
            service.top_k_into(black_box(0), &other, 10, &mut out);
            out.len()
        })
    });

    let mut epoch_nudge = 1_000u64;
    group.bench_function("plan_rebuild_after_publish", |b| {
        b.iter(|| {
            epoch_nudge += 1;
            service
                .publish(Listing {
                    service: ServiceId::new(3),
                    provider: ProviderId::new(0),
                    category: 0,
                    advertised: QosVector::from_pairs([
                        (Metric::Price, 4.0 + (epoch_nudge % 7) as f64),
                        (Metric::Accuracy, 0.25),
                    ]),
                })
                .expect("publish");
            service.top_k_into(black_box(0), &prefs, 10, &mut out);
            out.len()
        })
    });
    group.finish();
}

/// The primitives every query starts with: one `SnapshotCell` read and
/// one wait-free store-epoch lookup.
fn bench_primitives(c: &mut Criterion) {
    let mut group = c.benchmark_group("readpath_primitives");
    let cell = SnapshotCell::new(Arc::new(vec![1u64; 64]));
    group.bench_function("snapshot_cell_read", |b| {
        b.iter(|| cell.read(|v| black_box(v[63])))
    });

    let service = loaded_service(10_000);
    let subject: SubjectId = ServiceId::new(5).into();
    let store = service.store().clone();
    group.bench_function(BenchmarkId::new("store_epoch", "wait_free"), |b| {
        b.iter(|| black_box(store.epoch(black_box(subject))))
    });
    group.finish();
}

criterion_group!(benches, bench_score, bench_top_k, bench_primitives);
criterion_main!(benches);
