//! B4 — collaborative-filtering cost: similarity computation and
//! prediction against matrix size, Pearson vs cosine (Karta's question,
//! this time in CPU terms).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use wsrep_core::feedback::Feedback;
use wsrep_core::id::{AgentId, ServiceId};
use wsrep_core::mechanisms::cf::{CfMechanism, Similarity};
use wsrep_core::time::Time;
use wsrep_core::ReputationMechanism;

fn seeded(users: u64, items: u64, density: f64, sim: Similarity) -> CfMechanism {
    let mut m = CfMechanism::new(sim);
    let mut rng = StdRng::seed_from_u64(users + items);
    for u in 0..users {
        for i in 0..items {
            if rng.gen::<f64>() < density {
                m.submit(&Feedback::scored(
                    AgentId::new(u),
                    ServiceId::new(i),
                    rng.gen(),
                    Time::ZERO,
                ));
            }
        }
    }
    m
}

fn bench_predict(c: &mut Criterion) {
    let mut group = c.benchmark_group("cf_predict");
    group.sample_size(20);
    for (users, label) in [(50u64, "50users"), (200, "200users")] {
        for sim in [Similarity::Pearson, Similarity::Cosine] {
            let m = seeded(users, 30, 0.3, sim);
            let name = format!("{label}_{sim:?}");
            group.bench_with_input(BenchmarkId::from_parameter(name), &m, |b, m| {
                b.iter(|| m.predict(AgentId::new(0), ServiceId::new(29).into()));
            });
        }
    }
    group.finish();
}

fn bench_similarity(c: &mut Criterion) {
    let mut group = c.benchmark_group("cf_user_similarity");
    for sim in [Similarity::Pearson, Similarity::Cosine] {
        let m = seeded(100, 50, 0.5, sim);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{sim:?}")),
            &m,
            |b, m| {
                b.iter(|| m.user_similarity(AgentId::new(0), AgentId::new(1)));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_predict, bench_similarity);
criterion_main!(benches);
