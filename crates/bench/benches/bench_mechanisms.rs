//! B1 — mechanism update and query throughput.
//!
//! Feeds every Figure 4 mechanism the same 1 000-report workload and
//! measures submit throughput plus a global-query pass over all subjects.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use wsrep_core::feedback::Feedback;
use wsrep_core::id::{AgentId, ServiceId};
use wsrep_core::mechanisms::all_figure4_mechanisms;
use wsrep_core::time::Time;

fn workload(n: usize) -> Vec<Feedback> {
    let mut rng = StdRng::seed_from_u64(1);
    (0..n)
        .map(|i| {
            Feedback::scored(
                AgentId::new(rng.gen_range(0..40)),
                ServiceId::new(rng.gen_range(0..20)),
                rng.gen(),
                Time::new(i as u64 / 40),
            )
        })
        .collect()
}

fn bench_submit(c: &mut Criterion) {
    let feedback = workload(1000);
    let mut group = c.benchmark_group("submit_1000");
    group.sample_size(10);
    for proto in all_figure4_mechanisms() {
        let key = proto.info().key;
        group.bench_function(key, |b| {
            b.iter_batched(
                || {
                    all_figure4_mechanisms()
                        .into_iter()
                        .find(|m| m.info().key == key)
                        .expect("mechanism exists")
                },
                |mut m| {
                    for fb in &feedback {
                        m.submit(fb);
                    }
                    m
                },
                BatchSize::SmallInput,
            );
        });
    }
    group.finish();
}

fn bench_query(c: &mut Criterion) {
    let feedback = workload(1000);
    let mut group = c.benchmark_group("query_all_subjects");
    group.sample_size(10);
    for mut m in all_figure4_mechanisms() {
        let key = m.info().key;
        for fb in &feedback {
            m.submit(fb);
        }
        m.refresh(Time::new(25));
        group.bench_function(key, |b| {
            b.iter(|| {
                let mut acc = 0.0;
                for s in 0..20u64 {
                    if let Some(e) = m.global(ServiceId::new(s).into()) {
                        acc += e.value.get();
                    }
                }
                acc
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_submit, bench_query);
criterion_main!(benches);
