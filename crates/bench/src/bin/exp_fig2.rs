//! Experiment F2 — Figure 2: the information-source comparison.
//!
//! Section 2 of the paper walks through the sources a selection system can
//! use — provider-advertised QoS (gameable), SLAs (bounded loss at
//! negotiation cost), monitoring sensors (accurate but "very costly since
//! each web service needs a sensor"), and consumer feedback (the trust &
//! reputation route: nearly as accurate, a fraction of the cost, and it
//! captures aspects monitoring cannot).
//!
//! Design: a market where half the providers exaggerate their claims
//! fully. Each information source drives selection for 60 rounds; we
//! report settled utility and the explicit cost ledger.

use wsrep_bench::{base_config, run_monitored};
use wsrep_core::mechanisms::beta::BetaMechanism;
use wsrep_core::mechanisms::lnz::LnzMechanism;
use wsrep_select::eval::{Market, MarketConfig};
use wsrep_select::report::{f3, section, Table};
use wsrep_select::strategy::{AdvertisedQos, RandomSelect, ReputationSelect, SlaSelect};
use wsrep_sim::world::World;

fn config(seed: u64) -> wsrep_sim::WorldConfig {
    let mut cfg = base_config(seed);
    cfg.preference_heterogeneity = 0.0;
    cfg.exaggerating_fraction = 0.5;
    cfg.exaggeration_amount = 1.0;
    cfg
}

fn main() {
    println!("# F2 — Figure 2: information sources for web-service selection");
    const ROUNDS: u64 = 60;
    const SEED: u64 = 7;
    let probe_cost = 1.0;

    section("settled utility and cost per information source (50% of providers exaggerate fully)");
    let mut t = Table::new([
        "information source",
        "settled utility",
        "mean regret",
        "cost units",
        "cost notes",
    ]);

    // Blind choice.
    let mut random = RandomSelect;
    let r = Market::new(
        World::generate(config(SEED)),
        MarketConfig::new(ROUNDS, SEED),
    )
    .run(&mut random);
    t.row([
        "random (blind)",
        &f3(r.settled_utility),
        &f3(r.mean_regret),
        "0",
        "-",
    ]);

    // Provider-advertised QoS.
    let mut adv = AdvertisedQos;
    let a = Market::new(
        World::generate(config(SEED)),
        MarketConfig::new(ROUNDS, SEED),
    )
    .run(&mut adv);
    t.row([
        "advertised QoS",
        &f3(a.settled_utility),
        &f3(a.mean_regret),
        "0",
        "free but gameable",
    ]);

    // SLA-backed.
    let mut sla = SlaSelect::new();
    let s = Market::new(
        World::generate(config(SEED)),
        MarketConfig::new(ROUNDS, SEED),
    )
    .run_sla(&mut sla);
    t.row([
        "SLA (blacklist on violations)",
        &f3(s.settled_utility),
        &f3(s.mean_regret),
        &f3(s.negotiation_paid),
        &format!("penalties recovered {}", f3(s.penalties_collected)),
    ]);

    // Monitoring sensors.
    let (monitored, probe_total) = run_monitored(World::generate(config(SEED)), ROUNDS, probe_cost);
    t.row([
        "sensors (probe every service)",
        &f3(monitored),
        "-",
        &f3(probe_total),
        "one probe x service x round",
    ]);

    // Consumer feedback → beta reputation.
    let mut beta = ReputationSelect::new(Box::new(BetaMechanism::new()));
    let b = Market::new(
        World::generate(config(SEED)),
        MarketConfig::new(ROUNDS, SEED),
    )
    .run(&mut beta);
    t.row([
        "consumer feedback (beta reputation)",
        &f3(b.settled_utility),
        &f3(b.mean_regret),
        "0",
        "piggybacks on real use",
    ]);

    // Consumer feedback → LNZ QoS registry.
    let mut lnz = ReputationSelect::new(Box::new(LnzMechanism::new()));
    let l = Market::new(
        World::generate(config(SEED)),
        MarketConfig::new(ROUNDS, SEED),
    )
    .run(&mut lnz);
    t.row([
        "consumer feedback (LNZ QoS registry)",
        &f3(l.settled_utility),
        &f3(l.mean_regret),
        "0",
        "piggybacks on real use",
    ]);

    print!("{}", t.render());

    println!(
        "\nReading: feedback-based reputation approaches the sensors'\n\
         selection quality at zero probing cost, while advertised QoS is\n\
         dragged down by exaggerators and SLAs recover part of the loss at\n\
         negotiation cost — the orderings Section 2 of the paper argues."
    );
}
