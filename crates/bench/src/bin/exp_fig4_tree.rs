//! Experiment F4a — Figure 4: the typology tree itself.
//!
//! Every implemented mechanism self-reports its (centralization, subject,
//! scope) coordinates; this binary reconstructs the classification tree
//! from the *implementations* and checks it against the published table,
//! then prints both the tree and the flat classification.

use wsrep_core::mechanisms::all_figure4_mechanisms;
use wsrep_core::typology::{figure4, render_figure4};
use wsrep_select::report::{section, Table};

fn main() {
    println!("# F4a — Figure 4: trust and reputation system classification");

    let published = figure4();
    let implemented = all_figure4_mechanisms();

    // Cross-check implementations against the published classification.
    let mut mismatches = 0;
    for m in &implemented {
        let info = m.info();
        match published.iter().find(|e| e.key == info.key) {
            None => {
                println!("!! `{}` not in the published figure", info.key);
                mismatches += 1;
            }
            Some(e) if e.coordinates() != info.coordinates() => {
                println!(
                    "!! `{}` classified {:?}, paper says {:?}",
                    info.key,
                    info.coordinates(),
                    e.coordinates()
                );
                mismatches += 1;
            }
            _ => {}
        }
    }
    let missing: Vec<&str> = published
        .iter()
        .filter(|e| implemented.iter().all(|m| m.info().key != e.key))
        .map(|e| e.key)
        .collect();

    section("the tree (systems marked * were proposed for web services)");
    print!("{}", render_figure4(&published));

    section("flat classification");
    let mut t = Table::new([
        "system",
        "refs",
        "centralization",
        "subject",
        "scope",
        "web services?",
    ]);
    for e in &published {
        t.row([
            e.display,
            e.citation,
            &e.centralization.to_string(),
            &e.subject.to_string(),
            &e.scope.to_string(),
            if e.proposed_for_web_services {
                "yes"
            } else {
                ""
            },
        ]);
    }
    print!("{}", t.render());

    section("verification");
    println!(
        "implemented mechanisms: {} / {} published entries; mismatches: {mismatches}; \
         unimplemented: {missing:?}",
        implemented.len(),
        published.len()
    );
    println!(
        "\nSection 5's observation holds in the implementations too: every\n\
         web-service mechanism except Vu et al. lands in the single leaf\n\
         (centralized, resource, personalized)."
    );
    assert_eq!(mismatches, 0, "implementations must match the paper");
    assert!(
        missing.is_empty(),
        "every Figure 4 system must be implemented"
    );
}
