//! Experiment F4b — Figure 4's first axis: centralized vs decentralized.
//!
//! Section 4: centralized mechanisms "are less complex and easier to
//! implement … but they need powerful and reliable central servers" and
//! "will suffer a single point of failure"; decentralized ones share the
//! work at a communication cost. Three measurements:
//!
//! 1. **message cost** per reputation maintenance/query for a centralized
//!    registry vs distributed EigenTrust vs the P-Grid QoS registry;
//! 2. **failure behaviour**: market utility before/during/after a central
//!    registry outage, centralized vs decentralized strategy;
//! 3. P-Grid / Chord **routing hop counts** versus network size.

use std::collections::BTreeMap;
use wsrep_bench::{base_config, collect_feedback, qos_reports};
use wsrep_core::id::AgentId;
use wsrep_core::mechanisms::beta::BetaMechanism;
use wsrep_core::mechanisms::peertrust::PeerTrustMechanism;
use wsrep_net::overlay::chord::{hash_key, ChordRing};
use wsrep_net::overlay::pgrid::PGrid;
use wsrep_net::protocols::eigentrust_dist::DistributedEigenTrust;
use wsrep_net::protocols::pgrid_rep::PGridQosRegistry;
use wsrep_net::SimNetwork;
use wsrep_select::eval::{Market, MarketConfig};
use wsrep_select::report::{f3, section, Table};
use wsrep_select::strategy::ReputationSelect;
use wsrep_sim::world::World;

fn main() {
    println!("# F4b — centralized vs decentralized: cost and failure behaviour");
    const SEED: u64 = 13;

    // ---------------------------------------------------------------
    section("message cost of reputation maintenance (one market's feedback)");
    let mut world = World::generate(base_config(SEED));
    let store = collect_feedback(&mut world, 10);
    let n_reports = store.len() as u64;

    let mut t = Table::new(["architecture", "messages", "msgs / report", "notes"]);
    // Centralized: one message to file a report, one to query.
    t.row([
        "central QoS registry".to_string(),
        format!("{}", 2 * n_reports),
        f3(2.0),
        "1 submit + 1 query per report".into(),
    ]);

    // Distributed EigenTrust over the same population.
    let mut rows: BTreeMap<AgentId, BTreeMap<AgentId, f64>> = BTreeMap::new();
    for fb in store.iter() {
        // Local trust edges rater → (a peer standing in for the service's
        // provider agent) — the P2P embodiment rates peers.
        if let Some(svc) = fb.subject.as_service() {
            let peer = AgentId::new(10_000 + svc.raw());
            let e = rows.entry(fb.rater).or_default().entry(peer).or_insert(0.0);
            *e += fb.score - 0.5;
        }
    }
    // Normalize rows (positive part).
    let rows: BTreeMap<AgentId, BTreeMap<AgentId, f64>> = rows
        .into_iter()
        .map(|(i, row)| {
            let pos: BTreeMap<AgentId, f64> = row.into_iter().filter(|&(_, v)| v > 0.0).collect();
            let total: f64 = pos.values().sum();
            (
                i,
                if total > 0.0 {
                    pos.into_iter().map(|(j, v)| (j, v / total)).collect()
                } else {
                    BTreeMap::new()
                },
            )
        })
        .collect();
    let pre = rows.keys().next().copied().unwrap_or(AgentId::new(0));
    let det = DistributedEigenTrust::new(rows, vec![pre], 0.15);
    let mut net = SimNetwork::ideal(SEED);
    let out = det.run(&mut net);
    t.row([
        "distributed EigenTrust".to_string(),
        format!("{}", out.messages),
        f3(out.messages as f64 / n_reports as f64),
        format!("{} power-iteration rounds", out.rounds),
    ]);

    // P-Grid QoS registries (Vu et al.).
    let registry_peers: Vec<AgentId> = (500..516).map(AgentId::new).collect();
    let mut pgrid = PGridQosRegistry::new(&registry_peers);
    for fb in qos_reports(&store) {
        pgrid.submit_report(&fb);
    }
    // One query per report to mirror the centralized accounting.
    for fb in store.iter() {
        if let Some(svc) = fb.subject.as_service() {
            pgrid.query(fb.rater, svc, None);
        }
    }
    t.row([
        "P-Grid QoS registries (16 peers)".to_string(),
        format!("{}", pgrid.messages()),
        f3(pgrid.messages() as f64 / n_reports as f64),
        "multi-hop routing per submit/query".into(),
    ]);
    print!("{}", t.render());

    // ---------------------------------------------------------------
    section("single point of failure: registry outage at rounds 20-40 of 60");
    let mut t = Table::new([
        "strategy",
        "typology",
        "settled utility (healthy)",
        "settled utility (with outage)",
        "degradation",
    ]);
    for (label, decentralized) in [
        ("rep:beta (centralized)", false),
        ("rep:peertrust (decentralized)", true),
    ] {
        let build = || -> Box<dyn wsrep_core::ReputationMechanism> {
            if decentralized {
                Box::new(PeerTrustMechanism::new())
            } else {
                Box::new(BetaMechanism::new())
            }
        };
        let healthy = {
            let mut strat = ReputationSelect::new(build());
            Market::new(
                World::generate(base_config(SEED)),
                MarketConfig::new(60, SEED),
            )
            .run(&mut strat)
        };
        let outage = {
            let mut strat = ReputationSelect::new(build());
            let mut cfg = MarketConfig::new(60, SEED);
            cfg.registry_fails_at = Some(20);
            cfg.registry_recovers_at = Some(40);
            Market::new(World::generate(base_config(SEED)), cfg).run(&mut strat)
        };
        t.row([
            label.to_string(),
            if decentralized {
                "decentralized".into()
            } else {
                "centralized".into()
            },
            f3(healthy.mean_utility),
            f3(outage.mean_utility),
            format!("{:+.3}", outage.mean_utility - healthy.mean_utility),
        ]);
    }
    print!("{}", t.render());

    // ---------------------------------------------------------------
    section("structured-overlay routing cost vs network size");
    let mut t = Table::new([
        "peers",
        "Chord mean hops",
        "P-Grid mean hops",
        "P-Grid depth",
    ]);
    for n in [16u64, 64, 256] {
        let ring = ChordRing::new((0..n).map(AgentId::new));
        let peers: Vec<AgentId> = (0..n).map(AgentId::new).collect();
        let grid = PGrid::new(&peers);
        let mut chord_hops = 0usize;
        let mut grid_hops = 0usize;
        let probes = 200;
        for i in 0..probes {
            let key = hash_key(i * 7919 + 13);
            chord_hops += ring
                .route_from(AgentId::new(0), key)
                .map(|p| p.len() - 1)
                .unwrap_or(0);
            grid_hops += grid
                .route_from(AgentId::new(0), key)
                .map(|p| p.len() - 1)
                .unwrap_or(0);
        }
        t.row([
            format!("{n}"),
            f3(chord_hops as f64 / probes as f64),
            f3(grid_hops as f64 / probes as f64),
            format!("{}", grid.depth()),
        ]);
    }
    print!("{}", t.render());

    println!(
        "\nReading: the central registry costs a constant 2 messages per\n\
         report but its outage blinds the centralized strategy (utility\n\
         drops toward random); the decentralized mechanism keeps learning\n\
         through the outage at a multi-hop message premium that grows\n\
         logarithmically with network size — Section 4's trade-off."
    );
}
