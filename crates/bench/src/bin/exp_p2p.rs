//! Experiment E7 — Section 5, direction 1: decentralized trust for
//! P2P web services.
//!
//! "Various peer to peer based web service techniques have been proposed,
//! which require decentralized mechanisms for trust and reputation." We
//! run the decentralized machinery on simulated overlays and measure what
//! the survey says matters: whether decentralized selection quality
//! approaches the centralized reference, and at what communication cost —
//! including under churn, the condition that breaks the UDDI model.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeMap;
use wsrep_bench::{base_config, collect_feedback, qos_reports, ranks_best_over_worst};
use wsrep_core::id::AgentId;
use wsrep_core::mechanisms::beta::BetaMechanism;
use wsrep_core::ReputationMechanism;
use wsrep_net::churn::ChurnModel;
use wsrep_net::overlay::flood::flood;
use wsrep_net::overlay::gossip::gossip;
use wsrep_net::overlay::graph::NeighborGraph;
use wsrep_net::protocols::eigentrust_dist::DistributedEigenTrust;
use wsrep_net::protocols::pgrid_rep::PGridQosRegistry;
use wsrep_net::SimNetwork;
use wsrep_select::report::{f3, pct, section, Table};
use wsrep_sim::world::World;

fn main() {
    println!("# E7 — decentralized trust and reputation for P2P web services");
    const SEED: u64 = 19;

    // Shared raw material: one market's worth of feedback.
    let mut world = World::generate(base_config(SEED));
    let store = collect_feedback(&mut world, 12);

    // ---------------------------------------------------------------
    section("selection quality: decentralized P-Grid registries vs centralized reference");
    let mut central = BetaMechanism::new();
    for fb in store.iter() {
        central.submit(fb);
    }
    let central_ok =
        ranks_best_over_worst(&world, |s| central.global(s.into()).map(|e| e.value.get())).unwrap();

    let registry_peers: Vec<AgentId> = (500..516).map(AgentId::new).collect();
    let mut pgrid = PGridQosRegistry::new(&registry_peers);
    for fb in qos_reports(&store) {
        pgrid.submit_report(&fb);
    }
    let submit_messages = pgrid.messages();
    let mut pgrid_estimates: BTreeMap<wsrep_core::ServiceId, f64> = BTreeMap::new();
    for s in world.services() {
        let (est, _) = pgrid.query(AgentId::new(1), s.id, None);
        if let Some(e) = est {
            pgrid_estimates.insert(s.id, e.value.get());
        }
    }
    let pgrid_ok = ranks_best_over_worst(&world, |s| pgrid_estimates.get(&s).copied()).unwrap();

    let mut t = Table::new(["architecture", "best>worst kept", "messages", "per report"]);
    t.row([
        "centralized beta registry".to_string(),
        format!("{central_ok}"),
        format!("{}", 2 * store.len()),
        f3(2.0),
    ]);
    t.row([
        "P-Grid QoS registries (16)".to_string(),
        format!("{pgrid_ok}"),
        format!("{}", pgrid.messages()),
        f3(submit_messages as f64 / store.len() as f64),
    ]);
    print!("{}", t.render());

    // Responsibility sharing: how the stored reports spread over peers.
    let mut load: Vec<usize> = pgrid.load().into_iter().map(|(_, n)| n).collect();
    load.sort_unstable();
    let total: usize = load.iter().sum();
    println!(
        "\nstorage balance over the 16 registries: min {} / median {} / max {} of {} reports \
         (\"each registry is responsible for … a part of service providers\")",
        load.first().copied().unwrap_or(0),
        load.get(load.len() / 2).copied().unwrap_or(0),
        load.last().copied().unwrap_or(0),
        total
    );

    // ---------------------------------------------------------------
    section("distributed EigenTrust under churn (peers rating peers)");
    let mut table = Table::new([
        "churn (offline fraction)",
        "bad peer ranked last",
        "rounds",
        "messages",
    ]);
    for churn_level in [0.0, 0.1, 0.2] {
        // 24 peers: 20 good (praise each other), 4 bad.
        let mut rows: BTreeMap<AgentId, BTreeMap<AgentId, f64>> = BTreeMap::new();
        let mut rng = StdRng::seed_from_u64(SEED + (churn_level * 100.0) as u64);
        for i in 0..20u64 {
            let mut row = BTreeMap::new();
            for j in 0..20u64 {
                if i != j && rng.gen::<f64>() < 0.4 {
                    row.insert(AgentId::new(j), 1.0);
                }
            }
            let total: f64 = row.values().sum();
            if total > 0.0 {
                for v in row.values_mut() {
                    *v /= total;
                }
            }
            rows.insert(AgentId::new(i), row);
        }
        for b in 20..24u64 {
            rows.insert(AgentId::new(b), BTreeMap::new());
        }
        let det = DistributedEigenTrust::new(rows, vec![AgentId::new(0)], 0.15);
        let mut net = SimNetwork::ideal(SEED);
        for p in det.peers() {
            net.add_node(p);
        }
        // Knock a churn_level fraction of the good peers offline.
        let mut churn = ChurnModel::new(churn_level, 0.0);
        let population: Vec<AgentId> = (1..20).map(AgentId::new).collect();
        churn.step(&mut rng, &population);
        for p in churn.offline() {
            net.fail(p);
        }
        let out = det.run(&mut net);
        let bad_max = (20..24u64)
            .filter_map(|b| out.trust.get(&AgentId::new(b)))
            .fold(0.0f64, |a, &b| a.max(b));
        let good_min = out
            .trust
            .iter()
            .filter(|(p, _)| p.raw() < 20)
            .map(|(_, &v)| v)
            .fold(f64::INFINITY, f64::min);
        table.row([
            pct(churn_level),
            format!("{}", good_min >= bad_max),
            format!("{}", out.rounds),
            format!("{}", out.messages),
        ]);
    }
    print!("{}", table.render());

    // ---------------------------------------------------------------
    section("unstructured dissemination cost (XRep flooding, gossip)");
    let mut rng = StdRng::seed_from_u64(SEED);
    let nodes: Vec<AgentId> = (0..100).map(AgentId::new).collect();
    let graph = NeighborGraph::random_connected(&mut rng, &nodes, 2);
    let mut t = Table::new(["primitive", "coverage", "messages", "rounds"]);
    for ttl in [2usize, 4, 6] {
        let out = flood(&graph, AgentId::new(0), ttl);
        t.row([
            format!("flood ttl={ttl}"),
            pct(out.reached.len() as f64 / 99.0),
            format!("{}", out.messages),
            format!("{ttl}"),
        ]);
    }
    let g = gossip(&mut rng, &graph, AgentId::new(0), 3, 100);
    t.row([
        "gossip fanout=3".to_string(),
        pct(g.informed.len() as f64 / 100.0),
        format!("{}", g.messages),
        format!("{}", g.rounds),
    ]);
    print!("{}", t.render());

    println!(
        "\nReading: decentralized reputation reaches the same best/worst\n\
         discrimination as the centralized registry; the price is routing\n\
         hops (P-Grid), per-round trust-share traffic (EigenTrust) or\n\
         flooding duplicates (XRep) — and moderate churn does not break\n\
         the rankings, which is the survey's case for P2P web services."
    );
}
