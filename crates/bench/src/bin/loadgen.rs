//! loadgen — a multi-threaded load driver for the served registry.
//!
//! Spawns M ingest threads force-feeding the bounded pipeline and K query
//! threads hammering `score` / `top_k` at the same time, then reports
//! throughput (ops/sec per side) and query latency percentiles (p50 /
//! p99). The workload is fully determined by the seed and thread counts,
//! so two runs on the same machine are comparable.
//!
//! ```text
//! loadgen [--journal[=DIR]] [--skew S] [--replay] [ingest_threads] \
//!         [query_threads] [reports_per_ingester] [queries_per_querier] \
//!         [shards] [seed]
//! ```
//!
//! Defaults: 4 ingesters, 4 queriers, 50 000 reports and 50 000 queries
//! per thread, 8 shards, seed 42. The last stdout line is a JSON object
//! (see BENCH_serve.json at the repo root for a checked-in baseline).
//!
//! `--journal` attaches a write-ahead log (to a fresh directory under the
//! system temp dir, or to `DIR` with `--journal=DIR`), so the ingest side
//! pays one group-commit fsync per applied batch. Comparing a run with
//! and without the flag is the durability-cost measurement checked in as
//! BENCH_journal.json.
//!
//! `--skew S` draws the subject of every report and score query from a
//! Zipf(S) distribution over the services instead of uniformly (S = 0 is
//! uniform). Skew concentrates feedback on a few hot subjects, growing
//! their logs — exactly the workload where incremental scoring beats
//! replay-on-miss. `--replay` disables the incremental fold so the
//! before/after cost is measurable on one binary; the comparison is
//! checked in as BENCH_incremental.json.
//!
//! `--socket ADDR` drives a running `wsrep-server` over TCP instead of an
//! in-process service: every ingester and querier opens its own
//! connection and pipelines requests (batched `Ingest` frames on the
//! write side, a sliding window of `Score`/`TopK` on the read side), so
//! the reported q/s and p99 include the wire, the framing, and the
//! server's reactor. The JSON line carries the server-side counters from
//! a final `Stats` RPC; `--shutdown` additionally sends the `Shutdown`
//! request when done, so one loadgen invocation can gate a CI smoke run
//! end to end. All in-process knobs that pick the service build (shards,
//! `--journal`, `--replay`) are ignored in socket mode — the server
//! already chose them.
//!
//! `--replica ADDR` (repeatable, socket mode only) fans the query side
//! out across read replicas: querier `q` connects to replica `q mod N`
//! while setup and ingest stay on the primary (`--socket`), which is the
//! read-scaling deployment `wsrep-cluster` exists for. After the ingest
//! side finishes and flushes, loadgen polls every replica's `Stats`
//! until its replication watermark reaches the primary's durable LSN;
//! the JSON line gains a `replication` object with each replica's final
//! lag and whether everyone caught up (the staleness-bound measurement
//! checked in as BENCH_cluster.json).
//!
//! `--read-heavy` switches to the contention-scaling sweep: preload the
//! registry (`ingest_threads × reports_per_ingester` reports, flushed),
//! then run the pure query mix at 1, 2, 4, … up to `query_threads`
//! threads, injecting a burst of fresh feedback between points so
//! invalidation and re-ranking stay in the measurement. Latency is
//! sampled (1 in 32 ops) to keep `Instant::now` out of the hot loop.
//! The JSON line carries the whole sweep plus flat
//! `query_ops_per_sec_{1,8,max}t` keys for CI gates; the checked-in
//! curve is BENCH_readpath.json.
//!
//! `--write-heavy` is the ingest-side dual: sweep pure ingest load at 1,
//! 2, 4, … up to `ingest_threads` producer threads, each point against a
//! freshly built service (and, with `--journal`, a fresh WAL directory),
//! timed from first submit to `flush()` so every point includes its
//! durability cost. `--writer-groups N` partitions the journal over N
//! writer groups — N private logs, N independent group-commit fsync
//! pipelines — which is the knob the checked-in BENCH_wal.json compares
//! at 1 vs 2 vs 4 groups. Per-point fsync stats (commits, last-fsync
//! latency, bytes) ride along in the JSON line.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::VecDeque;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};
use wsrep_core::feedback::Feedback;
use wsrep_core::id::{AgentId, ProviderId, ServiceId, SubjectId};
use wsrep_core::time::Time;
use wsrep_qos::metric::Metric;
use wsrep_qos::preference::Preferences;
use wsrep_qos::value::QosVector;
use wsrep_serve::ReputationService;
use wsrep_server::{
    ChaosConfig, Client, FlakyProxy, Request, Response, RetryPolicy, RetryingClient,
};
use wsrep_sim::registry::Listing;

const SERVICES: u64 = 64;
const CATEGORIES: u32 = 4;
/// One in this many queries is a `top_k` instead of a `score`.
const TOPK_EVERY: u64 = 100;

struct Config {
    ingest_threads: u64,
    query_threads: u64,
    reports_per_ingester: u64,
    queries_per_querier: u64,
    shards: usize,
    seed: u64,
    journal: Option<PathBuf>,
    skew: f64,
    replay: bool,
    read_heavy: bool,
    write_heavy: bool,
    writer_groups: usize,
    batch_size: usize,
    socket: Option<String>,
    replicas: Vec<String>,
    shutdown: bool,
    chaos: bool,
}

fn parse_args() -> Config {
    let mut journal = None;
    let mut skew = 0.0f64;
    let mut replay = false;
    let mut read_heavy = false;
    let mut write_heavy = false;
    let mut writer_groups = 1usize;
    let mut batch_size = 128usize;
    let mut socket = None;
    let mut replicas = Vec::new();
    let mut shutdown = false;
    let mut chaos = false;
    let mut numbers = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        if arg == "--socket" {
            socket = Some(args.next().expect("--socket takes a server address"));
        } else if let Some(addr) = arg.strip_prefix("--socket=") {
            socket = Some(addr.to_string());
        } else if arg == "--replica" {
            replicas.push(args.next().expect("--replica takes a replica address"));
        } else if let Some(addr) = arg.strip_prefix("--replica=") {
            replicas.push(addr.to_string());
        } else if arg == "--shutdown" {
            shutdown = true;
        } else if arg == "--chaos" {
            chaos = true;
        } else if arg == "--journal" {
            journal = Some(
                std::env::temp_dir().join(format!("wsrep-loadgen-journal-{}", std::process::id())),
            );
        } else if let Some(dir) = arg.strip_prefix("--journal=") {
            journal = Some(PathBuf::from(dir));
        } else if arg == "--replay" {
            replay = true;
        } else if arg == "--read-heavy" {
            read_heavy = true;
        } else if arg == "--write-heavy" {
            write_heavy = true;
        } else if arg == "--writer-groups" {
            let value = args.next().expect("--writer-groups takes a count");
            writer_groups = value
                .parse()
                .unwrap_or_else(|_| panic!("--writer-groups expects a number, got {value:?}"));
        } else if let Some(value) = arg.strip_prefix("--writer-groups=") {
            writer_groups = value
                .parse()
                .unwrap_or_else(|_| panic!("--writer-groups expects a number, got {value:?}"));
        } else if arg == "--batch" {
            let value = args.next().expect("--batch takes a batch size");
            batch_size = value
                .parse()
                .unwrap_or_else(|_| panic!("--batch expects a number, got {value:?}"));
        } else if let Some(value) = arg.strip_prefix("--batch=") {
            batch_size = value
                .parse()
                .unwrap_or_else(|_| panic!("--batch expects a number, got {value:?}"));
        } else if arg == "--skew" {
            let value = args.next().expect("--skew takes a Zipf exponent");
            skew = value
                .parse()
                .unwrap_or_else(|_| panic!("--skew expects a number, got {value:?}"));
        } else if let Some(value) = arg.strip_prefix("--skew=") {
            skew = value
                .parse()
                .unwrap_or_else(|_| panic!("--skew expects a number, got {value:?}"));
        } else {
            numbers.push(arg.parse::<u64>().unwrap_or_else(|_| {
                panic!(
                    "expected a number or --journal[=DIR] / --skew S / --replay / --read-heavy / --write-heavy / --writer-groups N / --socket ADDR / --replica ADDR / --shutdown, got {arg:?}"
                )
            }));
        }
    }
    assert!(skew >= 0.0, "Zipf exponent must be non-negative");
    assert!(
        replicas.is_empty() || socket.is_some(),
        "--replica requires --socket (the primary the replicas trail)"
    );
    assert!(
        !chaos || socket.is_some(),
        "--chaos requires --socket (the server to proxy in front of)"
    );
    let get = |i: usize, default: u64| numbers.get(i).copied().unwrap_or(default);
    Config {
        ingest_threads: get(0, 4),
        query_threads: get(1, 4),
        reports_per_ingester: get(2, 50_000),
        queries_per_querier: get(3, 50_000),
        shards: get(4, 8) as usize,
        seed: get(5, 42),
        journal,
        skew,
        replay,
        read_heavy,
        write_heavy,
        writer_groups: writer_groups.max(1),
        batch_size: batch_size.max(1),
        socket,
        replicas,
        shutdown,
        chaos,
    }
}

/// Zipf(s) sampler over ranks `0..n` by inverse-CDF binary search;
/// `s = 0` degenerates to the uniform distribution.
struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    fn new(n: u64, s: f64) -> Zipf {
        let mut cdf = Vec::with_capacity(n as usize);
        let mut total = 0.0;
        for rank in 1..=n {
            total += 1.0 / (rank as f64).powf(s);
            cdf.push(total);
        }
        for c in &mut cdf {
            *c /= total;
        }
        Zipf { cdf }
    }

    fn sample(&self, rng: &mut StdRng) -> u64 {
        let u: f64 = rng.gen();
        (self.cdf.partition_point(|&c| c < u) as u64).min(self.cdf.len() as u64 - 1)
    }
}

fn percentile(sorted_nanos: &[u64], p: f64) -> u64 {
    if sorted_nanos.is_empty() {
        return 0;
    }
    let rank = ((sorted_nanos.len() - 1) as f64 * p).round() as usize;
    sorted_nanos[rank]
}

/// One point of the read-heavy thread sweep.
struct SweepPoint {
    threads: u64,
    ops_per_sec: f64,
    p50_ns: u64,
    p99_ns: u64,
}

/// Sample one query latency in this many ops — keeps two `Instant::now`
/// calls per sample out of the sub-100ns hot loop.
const LATENCY_SAMPLE_EVERY: u64 = 32;

/// The contention-scaling sweep: preload, then pure query load at
/// doubling thread counts with an invalidation burst between points.
fn run_read_heavy(config: Config) {
    let mut builder = ReputationService::builder()
        .shards(config.shards)
        .channel_capacity(4096)
        .batch_size(config.batch_size);
    if let Some(dir) = &config.journal {
        builder = builder.journal(dir);
    }
    if config.replay {
        builder = builder.replay_scoring();
    }
    let service = Arc::new(builder.build());
    let zipf = Arc::new(Zipf::new(SERVICES, config.skew));
    let mut seeder = StdRng::seed_from_u64(config.seed);
    for s in 0..SERVICES {
        service
            .publish(Listing {
                service: ServiceId::new(s),
                provider: ProviderId::new(s / 4),
                category: (s % CATEGORIES as u64) as u32,
                advertised: QosVector::from_pairs([
                    (Metric::Price, seeder.gen_range(1.0..10.0)),
                    (Metric::ResponseTime, seeder.gen_range(20.0..500.0)),
                    (Metric::Accuracy, seeder.gen_range(0.3..1.0)),
                ]),
            })
            .expect("publish");
    }
    let prefs = Preferences::uniform([Metric::Price, Metric::ResponseTime, Metric::Accuracy]);

    // Preload: the read path should be measured over a warm registry.
    let preload = config.ingest_threads * config.reports_per_ingester;
    {
        let mut rng = StdRng::seed_from_u64(config.seed.wrapping_add(7));
        for i in 0..preload {
            let subject = zipf.sample(&mut rng);
            service
                .ingest(Feedback::scored(
                    AgentId::new(1 + i % 97),
                    ServiceId::new(subject),
                    rng.gen(),
                    Time::new(i),
                ))
                .expect("pipeline open during preload");
        }
        service.flush();
    }

    let started = Instant::now();
    let mut thread_counts = Vec::new();
    let mut t = 1;
    while t < config.query_threads {
        thread_counts.push(t);
        t *= 2;
    }
    thread_counts.push(config.query_threads);

    let mut sweep: Vec<SweepPoint> = Vec::new();
    let mut burst_rng = StdRng::seed_from_u64(config.seed.wrapping_add(13));
    for (point, &threads) in thread_counts.iter().enumerate() {
        if point > 0 {
            // Invalidation burst between points: fresh feedback moves
            // subject and category epochs, so every point re-pays the
            // first misses and the sweep measures steady re-cached load.
            for i in 0..1_000u64 {
                let subject = zipf.sample(&mut burst_rng);
                service
                    .ingest(Feedback::scored(
                        AgentId::new(500 + i % 13),
                        ServiceId::new(subject),
                        burst_rng.gen(),
                        Time::new(preload + i),
                    ))
                    .expect("pipeline open between sweep points");
            }
            service.flush();
        }
        let mut latencies: Vec<u64> = Vec::new();
        let mut elapsed = 0.0f64;
        std::thread::scope(|scope| {
            let mut handles = Vec::new();
            for q in 0..threads {
                let service = Arc::clone(&service);
                let zipf = Arc::clone(&zipf);
                let prefs = prefs.clone();
                let queries = config.queries_per_querier;
                let seed = config.seed.wrapping_add(10_000 + threads * 100 + q);
                handles.push(scope.spawn(move || {
                    let mut rng = StdRng::seed_from_u64(seed);
                    let mut sampled =
                        Vec::with_capacity((queries / LATENCY_SAMPLE_EVERY) as usize + 1);
                    let mut topk_buf = Vec::new();
                    let begun = Instant::now();
                    for i in 0..queries {
                        let sample = i % LATENCY_SAMPLE_EVERY == 0;
                        let op_started = sample.then(Instant::now);
                        if i % TOPK_EVERY == 0 {
                            let category = rng.gen_range(0..CATEGORIES);
                            service.top_k_into(category, &prefs, 10, &mut topk_buf);
                            assert!(topk_buf.len() <= 10);
                        } else {
                            let subject: SubjectId = ServiceId::new(zipf.sample(&mut rng)).into();
                            if let Some(estimate) = service.score(subject) {
                                assert!((0.0..=1.0).contains(&estimate.value.get()));
                            }
                        }
                        if let Some(op_started) = op_started {
                            sampled.push(op_started.elapsed().as_nanos() as u64);
                        }
                    }
                    (sampled, begun.elapsed().as_secs_f64())
                }));
            }
            for handle in handles {
                let (sampled, thread_elapsed) = handle.join().expect("querier panicked");
                latencies.extend(sampled);
                elapsed = elapsed.max(thread_elapsed);
            }
        });
        latencies.sort_unstable();
        let total_ops = threads * config.queries_per_querier;
        sweep.push(SweepPoint {
            threads,
            ops_per_sec: total_ops as f64 / elapsed,
            p50_ns: percentile(&latencies, 0.50),
            p99_ns: percentile(&latencies, 0.99),
        });
    }

    let wall = started.elapsed().as_secs_f64();
    let stats = service.stats();
    let peak = sweep.last().expect("at least one sweep point");
    let single = sweep.first().expect("at least one sweep point");

    println!(
        "loadgen --read-heavy: {} preloaded reports, {} queries/thread, sweep {:?} threads, {} shards, seed {}, skew {}, {} scoring",
        preload,
        config.queries_per_querier,
        thread_counts,
        config.shards,
        config.seed,
        config.skew,
        if stats.incremental { "incremental" } else { "replay" },
    );
    for point in &sweep {
        println!(
            "{:>3} threads  {:>12.0} queries/sec   p50 {:>8.2} µs   p99 {:>8.2} µs",
            point.threads,
            point.ops_per_sec,
            point.p50_ns as f64 / 1_000.0,
            point.p99_ns as f64 / 1_000.0,
        );
    }
    println!(
        "pre-ranked         {:>12} hits / {} misses",
        stats.preranked_hits, stats.preranked_misses
    );
    println!(
        "cache              {:>12} hits / {} misses",
        stats.cache_hits, stats.cache_misses
    );
    println!("snapshot swaps     {:>12}", stats.snapshot_swaps);

    let sweep_json: Vec<String> = sweep
        .iter()
        .map(|p| {
            format!(
                "{{\"threads\":{},\"query_ops_per_sec\":{:.0},\"query_p50_ns\":{},\"query_p99_ns\":{}}}",
                p.threads, p.ops_per_sec, p.p50_ns, p.p99_ns
            )
        })
        .collect();
    let at_8 = sweep
        .iter()
        .find(|p| p.threads == 8)
        .map(|p| format!("{:.0}", p.ops_per_sec))
        .unwrap_or_else(|| "null".to_string());
    println!(
        "{{\"mode\":\"read_heavy\",\"preload_reports\":{},\"queries_per_querier\":{},\"max_query_threads\":{},\"shards\":{},\"seed\":{},\"skew\":{},\"incremental\":{},\"wall_seconds\":{:.3},\"sweep\":[{}],\"query_ops_per_sec_1t\":{:.0},\"query_ops_per_sec_8t\":{},\"query_ops_per_sec\":{:.0},\"query_p50_ns\":{},\"query_p99_ns\":{},\"preranked_hits\":{},\"preranked_misses\":{},\"cache_hits\":{},\"cache_misses\":{},\"snapshot_swaps\":{},\"scratch_reuse\":{}}}",
        preload,
        config.queries_per_querier,
        config.query_threads,
        config.shards,
        config.seed,
        config.skew,
        stats.incremental,
        wall,
        sweep_json.join(","),
        single.ops_per_sec,
        at_8,
        peak.ops_per_sec,
        peak.p50_ns,
        peak.p99_ns,
        stats.preranked_hits,
        stats.preranked_misses,
        stats.cache_hits,
        stats.cache_misses,
        stats.snapshot_swaps,
        stats.scratch_reuse,
    );
}

/// One point of the write-heavy ingest sweep.
struct WritePoint {
    threads: u64,
    ops_per_sec: f64,
    commits: u64,
    fsyncs_per_sec: f64,
    last_fsync_ns: u64,
    bytes_appended: u64,
}

/// The write-path sweep: pure ingest load at doubling producer counts,
/// each point on a freshly built service so journal state never bleeds
/// between points. Timed from first submit to `flush()` — with a journal
/// attached every point pays its full group-commit fsync bill before the
/// clock stops.
fn run_write_heavy(config: Config) {
    let mut thread_counts = Vec::new();
    let mut t = 1;
    while t < config.ingest_threads {
        thread_counts.push(t);
        t *= 2;
    }
    thread_counts.push(config.ingest_threads);

    let mut seeder = StdRng::seed_from_u64(config.seed);
    let listings: Vec<Listing> = (0..SERVICES)
        .map(|s| Listing {
            service: ServiceId::new(s),
            provider: ProviderId::new(s / 4),
            category: (s % CATEGORIES as u64) as u32,
            advertised: QosVector::from_pairs([
                (Metric::Price, seeder.gen_range(1.0..10.0)),
                (Metric::ResponseTime, seeder.gen_range(20.0..500.0)),
                (Metric::Accuracy, seeder.gen_range(0.3..1.0)),
            ]),
        })
        .collect();

    let started = Instant::now();
    let mut sweep: Vec<WritePoint> = Vec::new();
    for &threads in &thread_counts {
        let point_dir = config
            .journal
            .as_ref()
            .map(|dir| dir.join(format!("t{threads}")));
        let mut builder = ReputationService::builder()
            .shards(config.shards)
            .channel_capacity(4096)
            .batch_size(config.batch_size)
            .writer_groups(config.writer_groups);
        if let Some(dir) = &point_dir {
            let _ = std::fs::remove_dir_all(dir);
            builder = builder.journal(dir);
        }
        if config.replay {
            builder = builder.replay_scoring();
        }
        let service = Arc::new(builder.build());
        for listing in &listings {
            service.publish(listing.clone()).expect("publish");
        }

        let zipf = Arc::new(Zipf::new(SERVICES, config.skew));
        let begun = Instant::now();
        std::thread::scope(|scope| {
            for t in 0..threads {
                let service = Arc::clone(&service);
                let zipf = Arc::clone(&zipf);
                let reports = config.reports_per_ingester;
                let seed = config.seed.wrapping_add(threads * 100 + t + 1);
                scope.spawn(move || {
                    let mut rng = StdRng::seed_from_u64(seed);
                    for i in 0..reports {
                        let subject = zipf.sample(&mut rng);
                        service
                            .ingest(Feedback::scored(
                                AgentId::new(t * 1_000 + 1),
                                ServiceId::new(subject),
                                rng.gen(),
                                Time::new(i),
                            ))
                            .expect("pipeline open for the whole point");
                    }
                });
            }
        });
        // Durability barrier: the point is not done until everything
        // submitted is applied (and fsynced, with a journal).
        service.flush();
        let elapsed = begun.elapsed().as_secs_f64();

        let stats = service.stats();
        let total = threads * config.reports_per_ingester;
        assert_eq!(stats.feedback, total, "every report applied");
        let (commits, last_fsync_ns, bytes_appended) = match stats.journal {
            Some(health) => {
                assert!(!health.degraded, "journal degraded during the sweep");
                assert_eq!(
                    health.writer_groups, config.writer_groups as u64,
                    "the journal must run the requested writer groups"
                );
                (
                    health.commits,
                    health.last_fsync_nanos,
                    health.bytes_appended,
                )
            }
            None => (0, 0, 0),
        };
        sweep.push(WritePoint {
            threads,
            ops_per_sec: total as f64 / elapsed,
            commits,
            fsyncs_per_sec: commits as f64 / elapsed,
            last_fsync_ns,
            bytes_appended,
        });
        drop(service);
        if let Some(dir) = &point_dir {
            let _ = std::fs::remove_dir_all(dir);
        }
    }

    let wall = started.elapsed().as_secs_f64();
    let peak = sweep.last().expect("at least one sweep point");
    let single = sweep.first().expect("at least one sweep point");

    println!(
        "loadgen --write-heavy: {} reports/thread, sweep {:?} threads, {} writer groups, {} shards, seed {}, skew {}{}",
        config.reports_per_ingester,
        thread_counts,
        config.writer_groups,
        config.shards,
        config.seed,
        config.skew,
        if config.journal.is_some() {
            ", journaled"
        } else {
            ""
        },
    );
    for point in &sweep {
        println!(
            "{:>3} threads  {:>12.0} reports/sec   {:>9} commits ({:>8.0}/sec)   last fsync {:>8.2} µs",
            point.threads,
            point.ops_per_sec,
            point.commits,
            point.fsyncs_per_sec,
            point.last_fsync_ns as f64 / 1_000.0,
        );
    }

    let sweep_json: Vec<String> = sweep
        .iter()
        .map(|p| {
            format!(
                "{{\"threads\":{},\"ingest_ops_per_sec\":{:.0},\"commits\":{},\"fsyncs_per_sec\":{:.0},\"last_fsync_nanos\":{},\"bytes_appended\":{}}}",
                p.threads, p.ops_per_sec, p.commits, p.fsyncs_per_sec, p.last_fsync_ns, p.bytes_appended
            )
        })
        .collect();
    println!(
        "{{\"mode\":\"write_heavy\",\"writer_groups\":{},\"reports_per_ingester\":{},\"max_ingest_threads\":{},\"shards\":{},\"seed\":{},\"skew\":{},\"journaled\":{},\"wall_seconds\":{:.3},\"sweep\":[{}],\"ingest_ops_per_sec_1t\":{:.0},\"ingest_ops_per_sec\":{:.0}}}",
        config.writer_groups,
        config.reports_per_ingester,
        config.ingest_threads,
        config.shards,
        config.seed,
        config.skew,
        config.journal.is_some(),
        wall,
        sweep_json.join(","),
        single.ops_per_sec,
        peak.ops_per_sec,
    );
}

/// Reports per `Ingest` frame in socket mode.
const SOCKET_INGEST_BATCH: u64 = 128;
/// In-flight `Ingest` frames per ingester connection.
const SOCKET_INGEST_WINDOW: usize = 4;
/// In-flight queries per querier connection (the pipelining window).
const SOCKET_QUERY_WINDOW: usize = 32;

/// Drive a running `wsrep-server` over TCP: same mixed workload as the
/// in-process mode, but every operation crosses the wire. Latencies are
/// measured enqueue-to-response, so the pipeline window's queueing delay
/// is part of p99 — that is the number a remote caller would see.
fn run_socket(config: Config, addr: String) {
    let mut setup = Client::connect(&addr[..]).expect("connect to wsrep-server");
    let mut seeder = StdRng::seed_from_u64(config.seed);
    for s in 0..SERVICES {
        setup
            .publish(Listing {
                service: ServiceId::new(s),
                provider: ProviderId::new(s / 4),
                category: (s % CATEGORIES as u64) as u32,
                advertised: QosVector::from_pairs([
                    (Metric::Price, seeder.gen_range(1.0..10.0)),
                    (Metric::ResponseTime, seeder.gen_range(20.0..500.0)),
                    (Metric::Accuracy, seeder.gen_range(0.3..1.0)),
                ]),
            })
            .expect("publish over the wire");
    }
    let prefs = Preferences::uniform([Metric::Price, Metric::ResponseTime, Metric::Accuracy]);
    let zipf = Arc::new(Zipf::new(SERVICES, config.skew));

    let started = Instant::now();
    let mut query_latencies: Vec<u64> = Vec::new();
    let mut ingest_elapsed = 0.0f64;
    let mut query_elapsed = 0.0f64;
    let mut accepted_total = 0u64;

    std::thread::scope(|scope| {
        let mut ingest_handles = Vec::new();
        for t in 0..config.ingest_threads {
            let addr = addr.clone();
            let zipf = Arc::clone(&zipf);
            let reports = config.reports_per_ingester;
            let seed = config.seed.wrapping_add(t + 1);
            ingest_handles.push(scope.spawn(move || {
                let mut client = Client::connect(&addr[..]).expect("ingester connect");
                let mut rng = StdRng::seed_from_u64(seed);
                let mut accepted = 0u64;
                let drain = |client: &mut Client, floor: usize| {
                    let mut sum = 0u64;
                    while client.in_flight() > floor {
                        match client.recv().expect("ingest response") {
                            Response::Ingested(n) => sum += n,
                            other => panic!("expected Ingested, got {other:?}"),
                        }
                    }
                    sum
                };
                let begun = Instant::now();
                let mut sent = 0u64;
                while sent < reports {
                    let n = (reports - sent).min(SOCKET_INGEST_BATCH);
                    let batch: Vec<Feedback> = (0..n)
                        .map(|i| {
                            Feedback::scored(
                                AgentId::new(t * 1_000 + 1),
                                ServiceId::new(zipf.sample(&mut rng)),
                                rng.gen(),
                                Time::new(sent + i),
                            )
                        })
                        .collect();
                    client.queue(&Request::Ingest { batch, key: None });
                    client.flush_queued().expect("ingest write");
                    sent += n;
                    accepted += drain(&mut client, SOCKET_INGEST_WINDOW - 1);
                }
                accepted += drain(&mut client, 0);
                (accepted, begun.elapsed().as_secs_f64())
            }));
        }

        let mut query_handles = Vec::new();
        for q in 0..config.query_threads {
            // With --replica, reads fan out round-robin across the
            // replicas while writes stay on the primary.
            let addr = if config.replicas.is_empty() {
                addr.clone()
            } else {
                config.replicas[q as usize % config.replicas.len()].clone()
            };
            let zipf = Arc::clone(&zipf);
            let prefs = prefs.clone();
            let queries = config.queries_per_querier;
            let seed = config.seed.wrapping_add(1_000 + q);
            query_handles.push(scope.spawn(move || {
                let mut client = Client::connect(&addr[..]).expect("querier connect");
                let mut rng = StdRng::seed_from_u64(seed);
                let mut latencies = Vec::with_capacity(queries as usize);
                let mut sent_at: VecDeque<Instant> = VecDeque::new();
                let drain = |client: &mut Client,
                             sent_at: &mut VecDeque<Instant>,
                             latencies: &mut Vec<u64>,
                             floor: usize| {
                    while client.in_flight() > floor {
                        match client.recv().expect("query response") {
                            Response::Scored(estimate) => {
                                if let Some(estimate) = estimate {
                                    assert!((0.0..=1.0).contains(&estimate.value.get()));
                                }
                            }
                            Response::TopKResult(top) => assert!(top.len() <= 10),
                            other => panic!("expected a query response, got {other:?}"),
                        }
                        let begun = sent_at.pop_front().expect("one timestamp per request");
                        latencies.push(begun.elapsed().as_nanos() as u64);
                    }
                };
                let begun = Instant::now();
                for i in 0..queries {
                    sent_at.push_back(Instant::now());
                    if i % TOPK_EVERY == 0 {
                        let category = rng.gen_range(0..CATEGORIES);
                        client.queue(&Request::TopK {
                            category,
                            prefs: prefs.clone(),
                            k: 10,
                        });
                    } else {
                        let subject: SubjectId = ServiceId::new(zipf.sample(&mut rng)).into();
                        client.queue(&Request::Score(subject));
                    }
                    client.flush_queued().expect("query write");
                    drain(
                        &mut client,
                        &mut sent_at,
                        &mut latencies,
                        SOCKET_QUERY_WINDOW - 1,
                    );
                }
                drain(&mut client, &mut sent_at, &mut latencies, 0);
                (latencies, begun.elapsed().as_secs_f64())
            }));
        }

        for handle in ingest_handles {
            let (accepted, elapsed) = handle.join().expect("ingester panicked");
            accepted_total += accepted;
            ingest_elapsed = ingest_elapsed.max(elapsed);
        }
        for handle in query_handles {
            let (latencies, elapsed) = handle.join().expect("querier panicked");
            query_latencies.extend(latencies);
            query_elapsed = query_elapsed.max(elapsed);
        }
    });

    setup.flush().expect("final flush RPC");
    let wall = started.elapsed().as_secs_f64();
    let stats = setup.stats().expect("final stats RPC");
    let total_reports = config.ingest_threads * config.reports_per_ingester;
    let total_queries = config.query_threads * config.queries_per_querier;
    assert_eq!(accepted_total, total_reports, "every batch acknowledged");
    assert!(
        stats.service.feedback >= total_reports,
        "flushed reports must be applied server-side"
    );

    // Staleness measurement: with replicas attached, wait for each one's
    // watermark to reach the primary's durable LSN (everything flushed is
    // on the log) and record how far behind each was when first polled.
    let mut replication_json = "null".to_string();
    if !config.replicas.is_empty() {
        let primary_durable = stats
            .service
            .journal
            .map(|health| health.durable_lsn)
            .unwrap_or(0);
        let deadline = Instant::now() + Duration::from_secs(30);
        let mut entries = Vec::new();
        let mut first_lags = Vec::new();
        let mut caught_up = true;
        for replica_addr in &config.replicas {
            let mut replica = Client::connect(&replica_addr[..]).expect("connect replica");
            let mut first_lag = None;
            let final_repl = loop {
                let repl = replica
                    .stats()
                    .expect("replica stats")
                    .replication
                    .expect("a replica advertises replication in Stats");
                first_lag.get_or_insert(primary_durable.saturating_sub(repl.local_durable_lsn));
                if repl.local_durable_lsn >= primary_durable {
                    break repl;
                }
                if Instant::now() >= deadline {
                    caught_up = false;
                    break repl;
                }
                std::thread::sleep(Duration::from_millis(10));
            };
            let first_lag = first_lag.unwrap_or(0);
            first_lags.push(first_lag);
            entries.push(format!(
                "{{\"addr\":\"{replica_addr}\",\"durable_lsn\":{},\"lag_at_first_poll\":{first_lag},\"final_lag\":{},\"connected\":{}}}",
                final_repl.local_durable_lsn,
                primary_durable.saturating_sub(final_repl.local_durable_lsn),
                final_repl.connected,
            ));
        }
        let max_first_lag = first_lags.iter().copied().max().unwrap_or(0);
        println!(
            "replication        {:>12} replicas, max lag at first poll {} LSNs, caught_up={}",
            config.replicas.len(),
            max_first_lag,
            caught_up
        );
        replication_json = format!(
            "{{\"replicas\":[{}],\"primary_durable_lsn\":{primary_durable},\"max_lag_at_first_poll\":{max_first_lag},\"caught_up\":{caught_up}}}",
            entries.join(",")
        );
    }

    if config.shutdown {
        setup.shutdown_server().expect("shutdown RPC");
    }

    query_latencies.sort_unstable();
    let p50 = percentile(&query_latencies, 0.50);
    let p99 = percentile(&query_latencies, 0.99);
    let ingest_rate = total_reports as f64 / ingest_elapsed;
    let query_rate = total_queries as f64 / query_elapsed;
    let server = &stats.server;

    println!(
        "loadgen --socket {addr}: {}i x {} reports + {}q x {} queries, seed {}, skew {}{}",
        config.ingest_threads,
        config.reports_per_ingester,
        config.query_threads,
        config.queries_per_querier,
        config.seed,
        config.skew,
        if config.shutdown {
            ", shutdown requested"
        } else {
            ""
        },
    );
    println!("wall time          {wall:>12.3} s");
    println!("ingest throughput  {ingest_rate:>12.0} reports/sec");
    println!("query throughput   {query_rate:>12.0} queries/sec");
    println!("query p50          {:>12.2} µs", p50 as f64 / 1_000.0);
    println!("query p99          {:>12.2} µs", p99 as f64 / 1_000.0);
    println!(
        "server             {:>12} requests, {} connections, {} malformed frames",
        server.total_requests(),
        server.connections_opened,
        server.malformed_frames
    );
    println!(
        "wire               {:>12} bytes in / {} bytes out",
        server.bytes_in, server.bytes_out
    );
    println!(
        "{{\"mode\":\"socket\",\"socket\":\"{}\",\"ingest_threads\":{},\"query_threads\":{},\"reports_per_ingester\":{},\"queries_per_querier\":{},\"seed\":{},\"skew\":{},\"ingest_batch\":{},\"query_window\":{},\"wall_seconds\":{:.3},\"ingest_ops_per_sec\":{:.0},\"query_ops_per_sec\":{:.0},\"query_p50_ns\":{},\"query_p99_ns\":{},\"feedback_applied\":{},\"replication\":{replication_json},\"server\":{{\"requests\":{},\"connections_opened\":{},\"reports_ingested\":{},\"malformed_frames\":{},\"protocol_errors\":{},\"slow_client_closes\":{},\"bytes_in\":{},\"bytes_out\":{}}}}}",
        addr,
        config.ingest_threads,
        config.query_threads,
        config.reports_per_ingester,
        config.queries_per_querier,
        config.seed,
        config.skew,
        SOCKET_INGEST_BATCH,
        SOCKET_QUERY_WINDOW,
        wall,
        ingest_rate,
        query_rate,
        p50,
        p99,
        stats.service.feedback,
        server.total_requests(),
        server.connections_opened,
        server.reports_ingested,
        server.malformed_frames,
        server.protocol_errors,
        server.slow_client_closes,
        server.bytes_in,
        server.bytes_out,
    );
}

/// `--chaos`: the CI chaos smoke. Every ingester reaches the server
/// only through an in-process [`FlakyProxy`] that keeps dropping,
/// splitting and delaying the stream, and retries each keyed batch
/// until it is acked — then the run verifies over a clean connection
/// that the server applied exactly the acked count (no losses, no
/// double-applies), and reports the injected-fault counters so the CI
/// gate can prove the chaos actually happened. Composes with a server
/// started under `--fault-append-every` for the disk half.
fn run_chaos(config: Config, addr: String) {
    use std::net::ToSocketAddrs as _;
    let upstream = addr
        .to_socket_addrs()
        .expect("resolve --socket address")
        .next()
        .expect("--socket resolved to nothing");
    let proxy = FlakyProxy::start(
        upstream,
        ChaosConfig {
            seed: config.seed,
            drop_conn_every: Some(101),
            split_chunks: true,
            delay_every: Some(47),
            delay: Duration::from_millis(1),
            ..ChaosConfig::default()
        },
    )
    .expect("chaos proxy");
    let proxy_addr = proxy.addr().to_string();

    let begun = Instant::now();
    let mut handles = Vec::new();
    for t in 0..config.ingest_threads {
        let proxy_addr = proxy_addr.clone();
        let reports = config.reports_per_ingester;
        let batch_size = config.batch_size as u64;
        let seed = config.seed;
        handles.push(std::thread::spawn(move || {
            let mut client = RetryingClient::new(
                proxy_addr,
                RetryPolicy {
                    base: Duration::from_millis(2),
                    cap: Duration::from_millis(50),
                    multiplier: 2.0,
                    max_attempts: 200,
                    deadline: None,
                },
            )
            .with_producer(seed.wrapping_mul(1_000).wrapping_add(t));
            client.set_read_timeout(Some(Duration::from_secs(5)));
            let mut sent = 0u64;
            let mut acked = 0u64;
            while sent < reports {
                let n = batch_size.min(reports - sent);
                let batch: Vec<Feedback> = (0..n)
                    .map(|i| {
                        let at = sent + i;
                        Feedback::scored(
                            AgentId::new(t * 1_000_000 + at),
                            ServiceId::new(at % SERVICES),
                            0.5 + (at % 5) as f64 / 10.0,
                            Time::new(at),
                        )
                    })
                    .collect();
                acked += client.ingest(batch).expect("keyed ingest through chaos");
                sent += n;
            }
            client.flush().expect("flush through chaos");
            acked
        }));
    }
    let acked: u64 = handles
        .into_iter()
        .map(|h| h.join().expect("ingester"))
        .sum();
    let wall = begun.elapsed().as_secs_f64();

    // Verify over a clean, direct connection — the proxy stays chaotic.
    let mut direct = Client::connect(&addr[..]).expect("direct connect");
    let stats = direct.stats().expect("stats");
    let applied = stats.service.feedback;
    let (journal_errors, degraded, fenced) = match stats.service.journal {
        Some(health) => (health.journal_errors, health.degraded, health.fenced),
        None => (0, false, false),
    };
    if config.shutdown {
        direct.shutdown_server().expect("shutdown");
    }
    let counters = proxy.counters();
    let lost = acked.saturating_sub(applied);
    let extra = applied.saturating_sub(acked);

    println!(
        "chaos ingest       {:>12} acked / {} applied",
        acked, applied
    );
    println!(
        "chaos link faults  {:>12} (drops {}, delays {})",
        counters.injected(),
        counters.dropped_conns,
        counters.delayed_chunks
    );
    println!(
        "{{\"mode\":\"chaos\",\"ingest_threads\":{},\"reports_per_ingester\":{},\"batch\":{},\"seed\":{},\"wall_seconds\":{:.3},\"acked\":{},\"applied\":{},\"lost_acked_writes\":{},\"double_applied\":{},\"injected_link_faults\":{},\"dropped_conns\":{},\"delayed_chunks\":{},\"proxy_conns\":{},\"journal_errors\":{},\"degraded\":{},\"fenced\":{}}}",
        config.ingest_threads,
        config.reports_per_ingester,
        config.batch_size,
        config.seed,
        wall,
        acked,
        applied,
        lost,
        extra,
        counters.injected(),
        counters.dropped_conns,
        counters.delayed_chunks,
        counters.accepted_conns,
        journal_errors,
        degraded,
        fenced,
    );
    assert_eq!(lost, 0, "acked writes were lost under chaos");
    assert_eq!(extra, 0, "retried batches were double-applied under chaos");
    assert!(
        counters.injected() > 0,
        "the chaos schedule never fired; this smoke proved nothing"
    );
}

fn main() {
    let config = parse_args();
    assert!(config.ingest_threads >= 1 && config.query_threads >= 1);

    if let Some(addr) = config.socket.clone() {
        if config.chaos {
            run_chaos(config, addr);
        } else {
            run_socket(config, addr);
        }
        return;
    }
    if config.read_heavy {
        run_read_heavy(config);
        return;
    }
    if config.write_heavy {
        run_write_heavy(config);
        return;
    }

    let mut builder = ReputationService::builder()
        .shards(config.shards)
        .channel_capacity(4096)
        .batch_size(config.batch_size)
        .writer_groups(config.writer_groups);
    if let Some(dir) = &config.journal {
        builder = builder.journal(dir);
    }
    if config.replay {
        builder = builder.replay_scoring();
    }
    let service = Arc::new(builder.build());
    let zipf = Arc::new(Zipf::new(SERVICES, config.skew));
    let mut seeder = StdRng::seed_from_u64(config.seed);
    for s in 0..SERVICES {
        service
            .publish(Listing {
                service: ServiceId::new(s),
                provider: ProviderId::new(s / 4),
                category: (s % CATEGORIES as u64) as u32,
                advertised: QosVector::from_pairs([
                    (Metric::Price, seeder.gen_range(1.0..10.0)),
                    (Metric::ResponseTime, seeder.gen_range(20.0..500.0)),
                    (Metric::Accuracy, seeder.gen_range(0.3..1.0)),
                ]),
            })
            .expect("publish");
    }
    let prefs = Preferences::uniform([Metric::Price, Metric::ResponseTime, Metric::Accuracy]);

    let started = Instant::now();
    let mut query_latencies: Vec<u64> = Vec::new();
    let mut ingest_elapsed = 0.0f64;
    let mut query_elapsed = 0.0f64;

    std::thread::scope(|scope| {
        let mut ingest_handles = Vec::new();
        for t in 0..config.ingest_threads {
            let service = Arc::clone(&service);
            let zipf = Arc::clone(&zipf);
            let reports = config.reports_per_ingester;
            let seed = config.seed.wrapping_add(t + 1);
            ingest_handles.push(scope.spawn(move || {
                let mut rng = StdRng::seed_from_u64(seed);
                let begun = Instant::now();
                for i in 0..reports {
                    let subject = zipf.sample(&mut rng);
                    let score: f64 = rng.gen();
                    service
                        .ingest(Feedback::scored(
                            AgentId::new(t * 1_000 + 1),
                            ServiceId::new(subject),
                            score,
                            Time::new(i),
                        ))
                        .expect("pipeline open for the whole run");
                }
                begun.elapsed().as_secs_f64()
            }));
        }

        let mut query_handles = Vec::new();
        for q in 0..config.query_threads {
            let service = Arc::clone(&service);
            let zipf = Arc::clone(&zipf);
            let prefs = prefs.clone();
            let queries = config.queries_per_querier;
            let seed = config.seed.wrapping_add(1_000 + q);
            query_handles.push(scope.spawn(move || {
                let mut rng = StdRng::seed_from_u64(seed);
                let mut latencies = Vec::with_capacity(queries as usize);
                let begun = Instant::now();
                for i in 0..queries {
                    let op_started = Instant::now();
                    if i % TOPK_EVERY == 0 {
                        let category = rng.gen_range(0..CATEGORIES);
                        let top = service.top_k(category, &prefs, 10);
                        assert!(top.len() <= 10);
                    } else {
                        let subject: SubjectId = ServiceId::new(zipf.sample(&mut rng)).into();
                        if let Some(estimate) = service.score(subject) {
                            assert!((0.0..=1.0).contains(&estimate.value.get()));
                        }
                    }
                    latencies.push(op_started.elapsed().as_nanos() as u64);
                }
                (latencies, begun.elapsed().as_secs_f64())
            }));
        }

        for handle in ingest_handles {
            ingest_elapsed = ingest_elapsed.max(handle.join().expect("ingester panicked"));
        }
        for handle in query_handles {
            let (latencies, elapsed) = handle.join().expect("querier panicked");
            query_latencies.extend(latencies);
            query_elapsed = query_elapsed.max(elapsed);
        }
    });

    service.flush();
    let wall = started.elapsed().as_secs_f64();
    let stats = service.stats();
    let total_reports = config.ingest_threads * config.reports_per_ingester;
    let total_queries = config.query_threads * config.queries_per_querier;
    assert_eq!(
        stats.feedback, total_reports,
        "every accepted report must be applied"
    );

    query_latencies.sort_unstable();
    let p50 = percentile(&query_latencies, 0.50);
    let p99 = percentile(&query_latencies, 0.99);
    let ingest_rate = total_reports as f64 / ingest_elapsed;
    let query_rate = total_queries as f64 / query_elapsed;

    println!(
        "loadgen: {}i x {} reports + {}q x {} queries, {} shards, seed {}, skew {}, {} scoring{}",
        config.ingest_threads,
        config.reports_per_ingester,
        config.query_threads,
        config.queries_per_querier,
        config.shards,
        config.seed,
        config.skew,
        if stats.incremental {
            "incremental"
        } else {
            "replay"
        },
        match &config.journal {
            Some(dir) => format!(", journal at {}", dir.display()),
            None => String::new(),
        }
    );
    println!("wall time          {wall:>12.3} s");
    println!("ingest throughput  {ingest_rate:>12.0} reports/sec");
    println!("query throughput   {query_rate:>12.0} queries/sec");
    println!("query p50          {:>12.2} µs", p50 as f64 / 1_000.0);
    println!("query p99          {:>12.2} µs", p99 as f64 / 1_000.0);
    println!(
        "cache              {:>12} hits / {} misses",
        stats.cache_hits, stats.cache_misses
    );
    println!(
        "top-k plans        {:>12} hits / {} rebuilds",
        stats.topk_plan_hits, stats.topk_plan_misses
    );
    let journal_json = match stats.journal {
        Some(health) => {
            assert!(!health.degraded, "journal degraded during the run");
            println!(
                "journal            {:>12} segments, {} bytes, {} commits",
                health.segments, health.bytes_appended, health.commits
            );
            println!(
                "journal last fsync {:>12.2} µs",
                health.last_fsync_nanos as f64 / 1_000.0
            );
            format!(
                "{{\"segments\":{},\"bytes_appended\":{},\"commits\":{},\"last_fsync_nanos\":{},\"records_recovered\":{},\"writer_groups\":{},\"journal_errors\":{},\"degraded\":{},\"fenced\":{}}}",
                health.segments,
                health.bytes_appended,
                health.commits,
                health.last_fsync_nanos,
                health.records_recovered,
                health.writer_groups,
                health.journal_errors,
                health.degraded,
                health.fenced
            )
        }
        None => "null".to_string(),
    };
    println!(
        "{{\"ingest_threads\":{},\"query_threads\":{},\"reports_per_ingester\":{},\"queries_per_querier\":{},\"shards\":{},\"seed\":{},\"skew\":{},\"incremental\":{},\"wall_seconds\":{:.3},\"ingest_ops_per_sec\":{:.0},\"query_ops_per_sec\":{:.0},\"query_p50_ns\":{},\"query_p99_ns\":{},\"cache_hits\":{},\"cache_misses\":{},\"topk_plan_hits\":{},\"topk_plan_misses\":{},\"feedback_applied\":{},\"journal\":{}}}",
        config.ingest_threads,
        config.query_threads,
        config.reports_per_ingester,
        config.queries_per_querier,
        config.shards,
        config.seed,
        config.skew,
        stats.incremental,
        wall,
        ingest_rate,
        query_rate,
        p50,
        p99,
        stats.cache_hits,
        stats.cache_misses,
        stats.topk_plan_hits,
        stats.topk_plan_misses,
        stats.feedback,
        journal_json
    );
}
