//! Experiment E5 — Section 3.1-Q3: dishonest-feedback defenses.
//!
//! "Some users may provide false feedback to badmouth or raise the
//! reputation of a service on purpose. Some methods have been proposed to
//! combat this problem: the cluster filtering approach \[5\], the approach
//! of using the majority opinion \[26\], and … \[38\]." We sweep the unfair-
//! rater fraction under ballot-stuffing, badmouthing and collusion and
//! report, per defense:
//!
//! * whether the estimate still ranks the truly-best service over the
//!   truly-worst,
//! * the **estimated rank of the attacked service** (for ballot stuffing /
//!   collusion the attackers try to push the worst provider toward rank 1;
//!   for badmouthing they try to push the best provider toward rank N),
//! * the mean estimate error against ground truth (omitted for the
//!   majority opinion, whose boolean output is not a utility estimate).

use wsrep_bench::{base_config, collect_feedback, estimate_error, ranks_best_over_worst};
use wsrep_core::id::ServiceId;
use wsrep_qos::preference::Preferences;
use wsrep_robust::defense::all_defenses;
use wsrep_select::report::{f3, pct, section, Table};
use wsrep_sim::world::{DishonestKind, World};

/// The estimated rank (1 = best) each defense gives the attacked service.
fn attacked_rank(
    world: &World,
    store: &wsrep_core::store::FeedbackStore,
    observer: wsrep_core::AgentId,
    defense: &dyn wsrep_robust::UnfairRatingDefense,
    attacked: ServiceId,
) -> usize {
    let mut scored: Vec<(ServiceId, f64)> = world
        .services()
        .map(|s| {
            (
                s.id,
                defense
                    .estimate(store, observer, s.id.into())
                    .map(|e| e.value.get())
                    .unwrap_or(0.0),
            )
        })
        .collect();
    scored.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
    scored.iter().position(|&(s, _)| s == attacked).unwrap() + 1
}

fn main() {
    println!("# E5 — unfair-rating defenses (cluster filtering, majority, Zhang-Cohen)");

    for (attack, label) in [
        (
            DishonestKind::BallotStuffWorst,
            "ballot-stuff the worst provider (push it toward rank 1)",
        ),
        (
            DishonestKind::BadmouthBest,
            "badmouth the best provider (push it toward rank N)",
        ),
        (
            DishonestKind::ColludeWorst,
            "collusion ring around the worst provider",
        ),
    ] {
        section(&format!("attack: {label}"));
        let mut t = Table::new([
            "unfair fraction",
            "defense",
            "best>worst kept",
            "attacked svc rank (1=best)",
            "estimate error",
        ]);
        for frac in [0.0, 0.2, 0.4] {
            let seeds = [5u64, 23, 47, 61];
            for defense in all_defenses() {
                let mut kept = 0usize;
                let mut err_sum = 0.0;
                let mut err_n = 0usize;
                let mut rank_sum = 0usize;
                for &seed in &seeds {
                    let mut cfg = base_config(seed);
                    cfg.preference_heterogeneity = 0.0;
                    cfg.dishonest_fraction = frac;
                    cfg.dishonest_behavior = attack;
                    let mut world = World::generate(cfg);
                    let store = collect_feedback(&mut world, 12);
                    let observer = world
                        .consumers
                        .iter()
                        .find(|c| c.is_honest())
                        .map(|c| c.id)
                        .expect("some honest consumer");

                    // The attacked provider's most visible service: its
                    // best one by true utility.
                    let prefs = Preferences::uniform(world.metrics().to_vec());
                    let provider = match attack {
                        DishonestKind::BadmouthBest => world.best_provider_by(&prefs),
                        _ => world.worst_provider_by(&prefs),
                    };
                    let attacked = world.providers[&provider]
                        .services
                        .iter()
                        .copied()
                        .max_by(|&a, &b| {
                            let ua = prefs.utility_raw(
                                &world.service(a).unwrap().quality.means(),
                                world.bounds(),
                            );
                            let ub = prefs.utility_raw(
                                &world.service(b).unwrap().quality.means(),
                                world.bounds(),
                            );
                            ua.partial_cmp(&ub).unwrap_or(std::cmp::Ordering::Equal)
                        })
                        .expect("provider has services");

                    let est = |s: wsrep_core::ServiceId| {
                        defense
                            .estimate(&store, observer, s.into())
                            .map(|e| e.value.get())
                    };
                    if ranks_best_over_worst(&world, est).unwrap_or(false) {
                        kept += 1;
                    }
                    if let Some(e) = estimate_error(&world, est) {
                        err_sum += e;
                        err_n += 1;
                    }
                    rank_sum += attacked_rank(&world, &store, observer, defense.as_ref(), attacked);
                }
                let err_cell = if defense.name() == "majority" {
                    "n/a (boolean)".to_string()
                } else if err_n > 0 {
                    f3(err_sum / err_n as f64)
                } else {
                    "-".to_string()
                };
                t.row([
                    pct(frac),
                    defense.name().to_string(),
                    format!("{kept}/{}", seeds.len()),
                    f3(rank_sum as f64 / seeds.len() as f64),
                    err_cell,
                ]);
            }
        }
        print!("{}", t.render());
    }

    // ------------------------------------------------------------------
    // Ablations promised in DESIGN.md §5.
    section("ablation: PeerTrust credibility source (TVM vs PSM) under collusion");
    {
        use wsrep_core::mechanisms::peertrust::{Credibility, PeerTrustMechanism};
        use wsrep_core::ReputationMechanism;
        let mut t = Table::new([
            "unfair fraction",
            "credibility",
            "best>worst kept",
            "attacked svc rank",
        ]);
        for frac in [0.2, 0.4] {
            for (label, cred) in [("TVM", Credibility::Tvm), ("PSM", Credibility::Psm)] {
                let seeds = [5u64, 23, 47, 61];
                let mut kept = 0usize;
                let mut rank_sum = 0usize;
                for &seed in &seeds {
                    let mut cfg = base_config(seed);
                    cfg.preference_heterogeneity = 0.0;
                    cfg.dishonest_fraction = frac;
                    cfg.dishonest_behavior = DishonestKind::ColludeWorst;
                    let mut world = World::generate(cfg);
                    let store = collect_feedback(&mut world, 12);
                    let observer = world
                        .consumers
                        .iter()
                        .find(|c| c.is_honest())
                        .map(|c| c.id)
                        .expect("honest consumer");
                    let mut pt = PeerTrustMechanism::with_params(cred, 0.9, 0.1, 1000);
                    for fb in store.iter() {
                        pt.submit(fb);
                    }
                    let est = |s: wsrep_core::ServiceId| {
                        pt.personalized(observer, s.into()).map(|e| e.value.get())
                    };
                    if ranks_best_over_worst(&world, est).unwrap_or(false) {
                        kept += 1;
                    }
                    // Attacked = worst provider's best service.
                    let prefs = Preferences::uniform(world.metrics().to_vec());
                    let provider = world.worst_provider_by(&prefs);
                    let attacked = world.providers[&provider].services[0];
                    let mut scored: Vec<(wsrep_core::ServiceId, f64)> = world
                        .services()
                        .map(|svc| (svc.id, est(svc.id).unwrap_or(0.0)))
                        .collect();
                    scored
                        .sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
                    rank_sum += scored.iter().position(|&(svc, _)| svc == attacked).unwrap() + 1;
                }
                t.row([
                    pct(frac),
                    label.to_string(),
                    format!("{kept}/4"),
                    f3(rank_sum as f64 / 4.0),
                ]);
            }
        }
        print!("{}", t.render());
    }

    section("ablation: Zhang-Cohen private-evidence saturation under collusion (40% unfair)");
    {
        use wsrep_robust::zhang_cohen::ZhangCohen;
        let mut t = Table::new([
            "private saturation",
            "best>worst kept",
            "mean estimate error",
        ]);
        for sat in [1.0, 4.0, 16.0] {
            let zc = ZhangCohen {
                private_saturation: sat,
                ..ZhangCohen::default()
            };
            let seeds = [5u64, 23, 47, 61];
            let mut kept = 0usize;
            let mut err_sum = 0.0;
            for &seed in &seeds {
                let mut cfg = base_config(seed);
                cfg.preference_heterogeneity = 0.0;
                cfg.dishonest_fraction = 0.4;
                cfg.dishonest_behavior = DishonestKind::ColludeWorst;
                let mut world = World::generate(cfg);
                let store = collect_feedback(&mut world, 12);
                let observer = world
                    .consumers
                    .iter()
                    .find(|c| c.is_honest())
                    .map(|c| c.id)
                    .expect("honest consumer");
                let est = |s: wsrep_core::ServiceId| {
                    wsrep_robust::UnfairRatingDefense::estimate(&zc, &store, observer, s.into())
                        .map(|e| e.value.get())
                };
                if ranks_best_over_worst(&world, est).unwrap_or(false) {
                    kept += 1;
                }
                if let Some(e) = estimate_error(&world, est) {
                    err_sum += e;
                }
            }
            t.row([format!("{sat}"), format!("{kept}/4"), f3(err_sum / 4.0)]);
        }
        print!("{}", t.render());
    }

    println!(
        "\nReading: under ballot stuffing and collusion the undefended mean\n\
         hoists the attacked (truly bad) service up the ranking as the\n\
         unfair fraction grows, while cluster filtering, the deviation\n\
         filter and Zhang-Cohen keep it near the bottom; under badmouthing\n\
         they keep the truly-best service near the top. The majority\n\
         opinion preserves the best/worst decision but, being boolean,\n\
         cannot provide graded estimates."
    );
}
