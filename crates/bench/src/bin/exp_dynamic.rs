//! Experiment E8 — Section 3's *dynamic* property of trust.
//!
//! "Trust and reputation can increase or decrease with further
//! experiences. They also decay with time. New experiences are more
//! important than old ones." Two measurements:
//!
//! 1. tracking error of decay models against an oscillating / degrading
//!    provider's true quality (per-sample estimator comparison);
//! 2. market-level: the beta mechanism's forgetting factor swept over a
//!    dynamic market — too little forgetting chases stale reputations,
//!    too much throws evidence away.

use rand::rngs::StdRng;
use rand::SeedableRng;
use wsrep_bench::base_config;
use wsrep_core::decay::DecayModel;
use wsrep_core::mechanisms::beta::BetaMechanism;
use wsrep_core::time::Time;
use wsrep_qos::metric::Metric;
use wsrep_qos::profile::QualityProfile;
use wsrep_select::eval::{Market, MarketConfig};
use wsrep_select::report::{f3, section, Table};
use wsrep_select::strategy::ReputationSelect;
use wsrep_sim::provider::{metric_range, Behavior, Provider};
use wsrep_sim::world::World;

/// Track one service whose quality follows `behavior`; return the mean
/// absolute error of each decay model's running estimate vs truth.
fn tracking_error(behavior: Behavior, decay: DecayModel, seed: u64) -> f64 {
    let provider = Provider {
        id: wsrep_core::ProviderId::new(0),
        services: vec![],
        behavior,
        exaggeration: 0.0,
    };
    let mut quality = QualityProfile::from_triples([(Metric::ResponseTime, 300.0, 10.0)]);
    let mut rng = StdRng::seed_from_u64(seed);
    let (lo, hi) = metric_range(Metric::ResponseTime);
    let mut samples: Vec<(f64, Time)> = Vec::new();
    let mut err = 0.0;
    let mut n = 0usize;
    for t in 0..200u64 {
        provider.step_quality(&mut quality, Time::new(t));
        let obs = quality.sample(&mut rng);
        let score = wsrep_qos::normalize::normalize_one(
            obs.get(Metric::ResponseTime).unwrap(),
            lo,
            hi,
            Metric::ResponseTime.monotonicity(),
        );
        samples.push((score, Time::new(t)));
        let truth = wsrep_qos::normalize::normalize_one(
            quality.means().get(Metric::ResponseTime).unwrap(),
            lo,
            hi,
            Metric::ResponseTime.monotonicity(),
        );
        if let Some(est) = decay.weighted_mean(samples.iter().copied(), Time::new(t)) {
            if t >= 20 {
                err += (est - truth).abs();
                n += 1;
            }
        }
    }
    err / n.max(1) as f64
}

fn main() {
    println!("# E8 — dynamic trust: decay and forgetting");

    section("tracking error vs provider dynamics (mean |estimate - truth|, rounds 20-200)");
    let mut t = Table::new(["decay model", "oscillating provider", "degrading provider"]);
    let osc = Behavior::Oscillating {
        period: 40,
        amplitude: 0.03,
    };
    let deg = Behavior::Degrading { rate: 0.01 };
    for (label, decay) in [
        ("none (uniform mean)", DecayModel::None),
        ("window 20", DecayModel::Window { window: 20 }),
        (
            "exponential hl=10",
            DecayModel::Exponential { half_life: 10 },
        ),
        (
            "exponential hl=50",
            DecayModel::Exponential { half_life: 50 },
        ),
    ] {
        let e_osc = (0..5).map(|s| tracking_error(osc, decay, s)).sum::<f64>() / 5.0;
        let e_deg = (0..5).map(|s| tracking_error(deg, decay, s)).sum::<f64>() / 5.0;
        t.row([label.to_string(), f3(e_osc), f3(e_deg)]);
    }
    print!("{}", t.render());

    section("market utility vs beta forgetting factor (100% dynamic providers, 80 rounds)");
    let mut t = Table::new(["forgetting factor", "settled utility", "mean regret"]);
    for lambda in [1.0, 0.99, 0.95, 0.85, 0.6] {
        let seeds = [3u64, 11, 29];
        let mut u = 0.0;
        let mut r = 0.0;
        for &seed in &seeds {
            let mut cfg = base_config(seed);
            cfg.preference_heterogeneity = 0.0;
            cfg.dynamic_fraction = 1.0;
            let world = World::generate(cfg);
            let mut strat = ReputationSelect::new(Box::new(BetaMechanism::with_forgetting(lambda)));
            let report = Market::new(world, MarketConfig::new(80, seed)).run(&mut strat);
            u += report.settled_utility;
            r += report.mean_regret;
        }
        t.row([
            format!("{lambda}"),
            f3(u / seeds.len() as f64),
            f3(r / seeds.len() as f64),
        ]);
    }
    print!("{}", t.render());

    section("design-time vs run-time selection in a dynamic market (Section 3.1 Q1)");
    let mut t = Table::new(["selector", "settled utility", "mean regret"]);
    {
        use wsrep_select::strategy::DesignTimeSelect;
        let seeds = [5u64, 13, 37];
        let mut run_time = (0.0, 0.0);
        let mut design_time = (0.0, 0.0);
        for &seed in &seeds {
            let mut cfg = base_config(seed);
            cfg.preference_heterogeneity = 0.0;
            cfg.dynamic_fraction = 1.0;
            // Run-time: reselected every invocation.
            let mut live = ReputationSelect::new(Box::new(BetaMechanism::with_forgetting(0.95)));
            let r = Market::new(World::generate(cfg.clone()), MarketConfig::new(80, seed))
                .run(&mut live);
            run_time.0 += r.settled_utility;
            run_time.1 += r.mean_regret;
            // Design-time: the developer picks once and hard-codes it.
            let mut frozen = DesignTimeSelect::new(ReputationSelect::new(Box::new(
                BetaMechanism::with_forgetting(0.95),
            )));
            let d = Market::new(World::generate(cfg), MarketConfig::new(80, seed)).run(&mut frozen);
            design_time.0 += d.settled_utility;
            design_time.1 += d.mean_regret;
        }
        let n = seeds.len() as f64;
        t.row([
            "run-time (automatic reselection)".to_string(),
            f3(run_time.0 / n),
            f3(run_time.1 / n),
        ]);
        t.row([
            "design-time (choice frozen at first use)".to_string(),
            f3(design_time.0 / n),
            f3(design_time.1 / n),
        ]);
    }
    print!("{}", t.render());

    println!(
        "\nReading: the uniform mean trails oscillating and degrading\n\
         providers badly; short half-lives track them closely (Section 3's\n\
         \"new experiences are more important\"), and in the market sweep a\n\
         moderate forgetting factor beats both extremes. Freezing the\n\
         choice at design time — the paper's description of current\n\
         practice — forfeits exactly the adaptation a dynamic market\n\
         demands, which is the survey's motivation for automatic run-time\n\
         selection."
    );
}
