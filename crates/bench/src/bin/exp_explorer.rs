//! Experiment E10 — explorer agents (Maximilien & Singh, Section 2 of the
//! survey).
//!
//! "The central node can actively create consumer agents, called explorer
//! agents, to consume services that have a negative reputation … Once the
//! explorer agents find that the service quality has been improved, they
//! can help the services gain positive reputation so that they have a
//! chance to be selected by other consumer agents."
//!
//! Design: a market where the truly-best provider starts *broken*
//! (delivering terribly) and silently fixes itself at round 20. Pure
//! exploitation (ε = 0) tanks its reputation early and never returns;
//! ε-greedy exploration rediscovers it slowly; a small explorer fleet —
//! probing only negative-reputation services and filing honest feedback —
//! rehabilitates it quickly at a measured probe cost.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use wsrep_bench::base_config;
use wsrep_core::feedback::Feedback;
use wsrep_core::id::AgentId;
use wsrep_core::mechanisms::beta::BetaMechanism;
use wsrep_select::report::{f3, section, Table};
use wsrep_select::strategy::{Candidate, ReputationSelect, SelectionContext, SelectionStrategy};
use wsrep_sim::monitor::explorer_targets;
use wsrep_sim::world::World;

const ROUNDS: u64 = 120;
const FIX_AT: u64 = 20;

/// Run the broken-then-fixed market. Returns `(mean utility over the last
/// quarter, rounds until the fixed service is selected again by ≥25% of
/// consumers, explorer probes spent)`; recovery round is `ROUNDS` when it
/// never recovers.
fn run(epsilon: f64, explorers: usize, seed: u64) -> (f64, u64, u64) {
    let mut cfg = base_config(seed);
    cfg.preference_heterogeneity = 0.0;
    cfg.provider_quality_correlation = 0.0;
    let mut world = World::generate(cfg);

    // The oracle-best service starts broken: crush its delivered quality.
    let best = {
        let c = world.consumers[0].clone();
        world.oracle_best(&c).expect("services exist")
    };
    let original = world.service(best).expect("exists").quality.clone();
    {
        // Break it: worst-case on every metric (done by heavy drift).
        let svc = best;
        let mut broken = original.clone();
        broken.drift(-0.9);
        set_quality(&mut world, svc, broken);
    }

    let mut strat =
        ReputationSelect::new(Box::new(BetaMechanism::with_forgetting(0.97))).with_epsilon(epsilon);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut probes = 0u64;
    // Last few probe scores per service (the explorers' own recent
    // measurements; a short window so a fix shows up immediately).
    let mut probe_means: std::collections::BTreeMap<wsrep_core::ServiceId, Vec<f64>> =
        std::collections::BTreeMap::new();
    let mut recovered_at = ROUNDS;
    let mut tail_utility = 0.0;
    let mut tail_n = 0u64;
    let tail_start = ROUNDS - ROUNDS / 4;

    // Burn-in: every service gets tried while the best one is broken, so
    // its *negative* reputation (not mere obscurity) is what must be
    // overcome — the situation Maximilien & Singh's explorers address.
    let all_services: Vec<wsrep_core::ServiceId> = world.services().map(|s| s.id).collect();
    for _ in 0..8u64 {
        for idx in 0..world.consumers.len() {
            let pick = all_services[rand::Rng::gen_range(&mut rng, 0..all_services.len())];
            if let Some((_, fb)) = world.invoke_and_report(idx, pick) {
                strat.observe(&fb);
            }
        }
        world.step();
        strat.refresh(world.now());
    }

    for round in 8..ROUNDS {
        if round == FIX_AT {
            set_quality(&mut world, best, original.clone());
        }
        let candidates: Vec<Candidate> = world
            .registry
            .search(0)
            .map(|ls| {
                ls.into_iter()
                    .map(|l| Candidate {
                        service: l.service,
                        provider: l.provider,
                        advertised: l.advertised.clone(),
                    })
                    .collect()
            })
            .unwrap_or_default();
        let mut best_picks = 0usize;
        for idx in 0..world.consumers.len() {
            let consumer = world.consumers[idx].clone();
            let ctx = SelectionContext {
                consumer: &consumer,
                candidates: &candidates,
                now: world.now(),
                registry_up: true,
            };
            let Some(choice) = strat.choose(&ctx, &mut rng) else {
                continue;
            };
            let service = candidates[choice].service;
            if service == best {
                best_picks += 1;
            }
            if let Some((_, fb)) = world.invoke_and_report(idx, service) {
                strat.observe(&fb);
            }
            if round >= tail_start {
                tail_utility += world.expected_utility(&consumer, service);
                tail_n += 1;
            }
        }
        if round > FIX_AT && recovered_at == ROUNDS && best_picks * 4 >= world.consumers.len() {
            recovered_at = round;
        }
        // The explorer fleet: probe negative-reputation services and,
        // when a probe reveals improvement, keep filing honest feedback
        // until the public reputation has caught up with the measured
        // quality — "help the services gain positive reputation so that
        // they have a chance to be selected" (Section 2).
        if explorers > 0 {
            let reputations: Vec<_> = world
                .services()
                .map(|s| {
                    (
                        s.id,
                        strat.mechanism().global(s.id.into()).map(|e| e.value.get()),
                    )
                })
                .collect();
            // Services whose recent probes contradict their standing —
            // an improvement under confirmation — get priority: the whole
            // point is to shepherd them back into the market.
            let mut followups: Vec<wsrep_core::ServiceId> = Vec::new();
            for &(sid, est) in &reputations {
                if let (Some(recent), Some(est)) = (probe_means.get(&sid), est) {
                    let mean = recent.iter().sum::<f64>() / recent.len().max(1) as f64;
                    if !recent.is_empty() && mean > est + 0.05 {
                        followups.push(sid);
                    }
                }
            }
            // Remaining budget rotates randomly through the negative-
            // reputation set, so one hopeless service cannot hog it.
            let mut rotation = explorer_targets(reputations.clone(), 0.5, usize::MAX);
            rotation.retain(|s| !followups.contains(s));
            rotation.shuffle(&mut rng);
            followups.shuffle(&mut rng);
            let mut targets = followups;
            targets.extend(rotation);
            targets.truncate(explorers);
            for target in targets {
                if let Some(observed) = world.invoke(target) {
                    probes += 1;
                    // Explorer agents report honestly: normalized utility
                    // of what they measured, under uniform weights.
                    let prefs =
                        wsrep_qos::preference::Preferences::uniform(world.metrics().to_vec());
                    let score = prefs.utility_raw(&observed, world.bounds());
                    let recent = probe_means.entry(target).or_default();
                    recent.push(score);
                    if recent.len() > 3 {
                        recent.remove(0);
                    }
                    strat.observe(
                        &Feedback::scored(
                            AgentId::new(900_000 + probes),
                            target,
                            score,
                            world.now(),
                        )
                        .with_observed(observed),
                    );
                }
            }
        }
        world.step();
        strat.refresh(world.now());
    }
    (
        if tail_n > 0 {
            tail_utility / tail_n as f64
        } else {
            0.0
        },
        recovered_at,
        probes,
    )
}

/// Swap a service's latent quality (test-style backdoor via whitewashing
/// would change ids; we mutate through the public-ish path instead).
fn set_quality(
    world: &mut World,
    service: wsrep_core::ServiceId,
    quality: wsrep_qos::profile::QualityProfile,
) {
    world.set_service_quality(service, quality);
}

fn main() {
    println!("# E10 — explorer agents: second chances for improved services");

    section(&format!(
        "best service broken until round {FIX_AT}, then silently fixed ({ROUNDS} rounds, mean of 5 seeds)"
    ));
    let mut t = Table::new([
        "policy",
        "settled utility",
        "mean recovery round",
        "explorer probes",
    ]);
    let seeds = [2u64, 7, 11, 19, 23];
    for (label, epsilon, explorers) in [
        ("pure exploitation (e=0), no explorers", 0.0, 0usize),
        ("e-greedy 10%, no explorers", 0.1, 0),
        ("pure exploitation + 3 explorer agents", 0.0, 3),
        ("e-greedy 10% + 3 explorer agents", 0.1, 3),
    ] {
        let mut u = 0.0;
        let mut rec = 0.0;
        let mut pr = 0.0;
        for &seed in &seeds {
            let (utility, recovered, probes) = run(epsilon, explorers, seed);
            u += utility;
            rec += recovered as f64;
            pr += probes as f64;
        }
        let n = seeds.len() as f64;
        t.row([
            label.to_string(),
            f3(u / n),
            format!("{:.1}", rec / n),
            format!("{:.0}", pr / n),
        ]);
    }
    print!("{}", t.render());

    println!(
        "\nReading: without explorers the fixed service's tanked reputation\n\
         keeps it unselected to the horizon (pure exploitation) or until\n\
         blind exploration stumbles back onto it very late. Explorer\n\
         agents probing the negative-reputation set detect the fix,\n\
         shepherd the reputation back up with honest reports, and return\n\
         the best service to the market ~30 rounds sooner at a few\n\
         hundred probes — versus ~2900 for blanket per-service sensors\n\
         over the same horizon. That is exactly the second-chance role\n\
         Maximilien & Singh give the central node's explorer agents."
    );
}
