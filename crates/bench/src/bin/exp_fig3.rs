//! Experiment F3 — Figure 3: the QoS taxonomy and multi-faceted trust.
//!
//! Two parts. First, re-emit the W3C taxonomy tree the paper reproduces as
//! Figure 3 — it is a first-class value in `wsrep-qos`. Second, quantify
//! why the taxonomy matters for trust: Section 3's *multi-faceted*
//! property says consumers develop per-aspect trust and combine it by
//! their own weights. We build services with anti-correlated facets
//! (fast-but-inaccurate vs accurate-but-slow), consumers with increasingly
//! heterogeneous facet weights, and compare selection through **scalar**
//! trust (one number per service) against **faceted** trust.

use rand::rngs::StdRng;
use rand::SeedableRng;
use wsrep_core::facets::FacetedTrust;
use wsrep_core::time::Time;
use wsrep_qos::metric::Metric;
use wsrep_qos::preference::Preferences;
use wsrep_qos::profile::QualityProfile;
use wsrep_qos::taxonomy::Taxonomy;
use wsrep_select::report::{f3, section, Table};
use wsrep_sim::provider::metric_range;

const FACETS: [Metric; 2] = [Metric::ResponseTime, Metric::Accuracy];

/// Services trading speed against accuracy along a spectrum.
fn services() -> Vec<QualityProfile> {
    (0..8)
        .map(|i| {
            let x = i as f64 / 7.0; // 0 = fastest/least accurate
            QualityProfile::from_triples([
                (Metric::ResponseTime, 20.0 + 700.0 * x, 10.0),
                (Metric::Accuracy, 0.45 + 0.5 * x, 0.02),
            ])
        })
        .collect()
}

fn main() {
    println!("# F3 — Figure 3: QoS taxonomy and multi-faceted trust");

    section("the taxonomy (regenerated from code)");
    print!("{}", Taxonomy::standard().render());

    section("scalar vs faceted trust under preference heterogeneity");
    let mut table = Table::new([
        "preference heterogeneity",
        "scalar-trust utility",
        "faceted-trust utility",
        "faceted advantage",
    ]);
    let mut rng = StdRng::seed_from_u64(11);
    let svcs = services();

    for h in [0.0, 0.3, 0.6, 0.9] {
        // Train one tracker per service from 60 honest multi-facet samples.
        let trackers: Vec<FacetedTrust> = svcs
            .iter()
            .map(|q| {
                let mut ft = FacetedTrust::new();
                for t in 0..60 {
                    let obs = q.sample(&mut rng);
                    for m in FACETS {
                        let (lo, hi) = metric_range(m);
                        let score = wsrep_qos::normalize::normalize_one(
                            obs.get(m).unwrap(),
                            lo,
                            hi,
                            m.monotonicity(),
                        );
                        ft.record(m, score, Time::new(t));
                    }
                }
                ft
            })
            .collect();
        let now = Time::new(60);

        let mut scalar_u = 0.0;
        let mut faceted_u = 0.0;
        const CONSUMERS: usize = 200;
        for _ in 0..CONSUMERS {
            let prefs = Preferences::sample(&mut rng, FACETS, h);
            let truth = |q: &QualityProfile| prefs.utility_raw(&q.means(), metric_range);
            // Scalar: every consumer sees the same single trust number.
            let scalar_pick = (0..svcs.len())
                .max_by(|&a, &b| {
                    let sa = trackers[a]
                        .scalar(now)
                        .map(|e| e.value.get())
                        .unwrap_or(0.0);
                    let sb = trackers[b]
                        .scalar(now)
                        .map(|e| e.value.get())
                        .unwrap_or(0.0);
                    sa.partial_cmp(&sb).unwrap_or(std::cmp::Ordering::Equal)
                })
                .unwrap();
            // Faceted: per-aspect trust combined under own weights.
            let faceted_pick = (0..svcs.len())
                .max_by(|&a, &b| {
                    let fa = trackers[a].overall(&prefs, now).value.get();
                    let fb = trackers[b].overall(&prefs, now).value.get();
                    fa.partial_cmp(&fb).unwrap_or(std::cmp::Ordering::Equal)
                })
                .unwrap();
            scalar_u += truth(&svcs[scalar_pick]);
            faceted_u += truth(&svcs[faceted_pick]);
        }
        scalar_u /= CONSUMERS as f64;
        faceted_u /= CONSUMERS as f64;
        table.row([
            f3(h),
            f3(scalar_u),
            f3(faceted_u),
            format!("{:+.3}", faceted_u - scalar_u),
        ]);
    }
    print!("{}", table.render());

    println!(
        "\nReading: with identical consumers (h = 0) one scalar suffices; as\n\
         facet weightings diverge, per-aspect trust combined under each\n\
         consumer's weights wins by a growing margin — Section 3's\n\
         multi-faceted property, quantified."
    );
}
