//! Experiment E6 — Section 5: provider-level reputation bootstraps new
//! services.
//!
//! "For the service for which the trust and reputation has not been
//! established, e.g. a new service …, the trust and reputation of the
//! service provider, accumulated by the provider from providing other
//! services, can be used for the selection."
//!
//! Design: each provider has one *established* service (feedback flows for
//! 30 rounds) and one *held-out* new service (no feedback at all). A
//! consumer must then pick among the new services only. With bootstrapping
//! the provider's track record seeds the choice; without it, every new
//! service is an ignorance prior and the pick is blind.

use rand::Rng;
use wsrep_bench::base_config;
use wsrep_core::mechanisms::beta::BetaMechanism;
use wsrep_core::ReputationMechanism;
use wsrep_qos::preference::Preferences;
use wsrep_select::bootstrap::ProviderBootstrap;
use wsrep_select::report::{f3, section, Table};
use wsrep_sim::world::World;

fn main() {
    println!("# E6 — provider reputation for cold-start services (Section 5, direction 2)");

    section("picking among brand-new services (mean over 20 seeds)");
    let mut t = Table::new([
        "selector",
        "mean utility of picked new service",
        "top-1 hit rate",
    ]);
    let seeds: Vec<u64> = (0..20).collect();
    let mut results: Vec<(String, f64, f64)> = Vec::new();

    for (label, enabled) in [
        ("provider bootstrap ON", true),
        ("provider bootstrap OFF", false),
    ] {
        let mut utility_sum = 0.0;
        let mut hits = 0usize;
        for &seed in &seeds {
            let mut cfg = base_config(seed);
            cfg.preference_heterogeneity = 0.0;
            cfg.provider_quality_correlation = 0.8;
            cfg.services_per_provider = 2;
            let mut world = World::generate(cfg);

            let mut mech = if enabled {
                ProviderBootstrap::new(Box::new(BetaMechanism::new()))
            } else {
                ProviderBootstrap::disabled(Box::new(BetaMechanism::new()))
            };
            // Each provider's first service is established, second held out.
            let mut established = Vec::new();
            let mut held_out = Vec::new();
            for p in world.providers.values() {
                established.push(p.services[0]);
                held_out.push(p.services[1]);
                for &s in &p.services {
                    mech.register(s, p.id);
                }
            }
            // 30 rounds of feedback on established services only.
            for _ in 0..30 {
                for idx in 0..world.consumers.len() {
                    let pick = established[rand::Rng::gen_range(world.rng(), 0..established.len())];
                    if let Some((_, fb)) = world.invoke_and_report(idx, pick) {
                        mech.submit(&fb);
                    }
                }
                world.step();
            }
            // Choose among the held-out (new) services.
            let chosen = held_out
                .iter()
                .copied()
                .max_by(|&a, &b| {
                    let ea = mech.global(a.into()).map(|e| e.value.get()).unwrap_or(0.5);
                    let eb = mech.global(b.into()).map(|e| e.value.get()).unwrap_or(0.5);
                    ea.partial_cmp(&eb).unwrap_or(std::cmp::Ordering::Equal)
                })
                .expect("held-out services exist");
            let prefs = Preferences::uniform(world.metrics().to_vec());
            let utility =
                |s| prefs.utility_raw(&world.service(s).unwrap().quality.means(), world.bounds());
            let best_new = held_out
                .iter()
                .copied()
                .max_by(|&a, &b| {
                    utility(a)
                        .partial_cmp(&utility(b))
                        .unwrap_or(std::cmp::Ordering::Equal)
                })
                .unwrap();
            utility_sum += utility(chosen);
            if chosen == best_new {
                hits += 1;
            }
        }
        let mean_u = utility_sum / seeds.len() as f64;
        let hit = hits as f64 / seeds.len() as f64;
        results.push((label.to_string(), mean_u, hit));
        t.row([label.to_string(), f3(mean_u), f3(hit)]);
    }

    // Random baseline: expected utility of a uniformly random new service.
    let mut rand_sum = 0.0;
    for &seed in &seeds {
        let mut cfg = base_config(seed);
        cfg.preference_heterogeneity = 0.0;
        let mut world = World::generate(cfg);
        let held_out: Vec<_> = world.providers.values().map(|p| p.services[1]).collect();
        let prefs = Preferences::uniform(world.metrics().to_vec());
        let pick = held_out[world.rng().gen_range(0..held_out.len())];
        rand_sum += prefs.utility_raw(
            &world.service(pick).unwrap().quality.means(),
            world.bounds(),
        );
    }
    t.row([
        "random new service".to_string(),
        f3(rand_sum / seeds.len() as f64),
        "-".to_string(),
    ]);
    print!("{}", t.render());

    let on = &results[0];
    let off = &results[1];
    println!(
        "\nReading: bootstrapping lifts cold-start selection utility by\n\
         {:+.3} over the no-bootstrap baseline — exactly because, as the\n\
         paper puts it, \"if a provider has a good reputation for providing\n\
         good quality services, a consumer would like to believe that its\n\
         new service has good quality too\". (Provider quality correlates\n\
         across its services through its behaviour and honesty, not\n\
         perfectly, so the hit rate stays below 1.)",
        on.1 - off.1
    );
}
