//! Experiment F1 — Figure 1: direct vs mediated selection.
//!
//! Claim reproduced: in the *direct* scenario selection quality is decided
//! by the web service's own QoS; in the *mediated* scenario "the major
//! part of selecting a web service is decided by the general service
//! properties" while the intermediary's QoS "only plays a small part".
//!
//! Design: 40 mediated offers (random intermediary technical quality ×
//! random general-service quality). Four selectors pick an offer per
//! trial: the oracle (max composite), one that only sees the *general*
//! service's quality, one that only sees the *intermediary's* QoS, and
//! random. The by-general selector should land near the oracle, the
//! by-intermediary one near random — that gap *is* Figure 1's point.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use wsrep_core::id::ServiceId;
use wsrep_qos::metric::Metric;
use wsrep_qos::profile::QualityProfile;
use wsrep_select::report::{f3, section, Table};
use wsrep_sim::provider::metric_range;
use wsrep_sim::scenario::{invoke_mediated, GeneralService, MediatedOffer, MediationWeights};

fn random_offer(rng: &mut StdRng, id: u64) -> MediatedOffer {
    let rt = rng.gen_range(30.0..700.0);
    let gq0 = rng.gen_range(0.2..0.98);
    let gq1 = rng.gen_range(0.2..0.98);
    MediatedOffer {
        intermediary: ServiceId::new(id),
        intermediary_quality: QualityProfile::from_triples([
            (Metric::ResponseTime, rt, rt * 0.05),
            (Metric::Availability, rng.gen_range(0.6..0.999), 0.01),
        ]),
        general: GeneralService {
            id: ServiceId::new(1000 + id),
            quality: QualityProfile::from_triples([
                (Metric::AppSpecific(0), gq0, 0.03),
                (Metric::AppSpecific(1), gq1, 0.03),
            ]),
        },
    }
}

/// Expected composite utility of an offer (Monte-Carlo mean).
fn expected_composite(rng: &mut StdRng, offer: &MediatedOffer, w: MediationWeights) -> f64 {
    (0..100)
        .map(|_| invoke_mediated(rng, offer, w, metric_range).composite)
        .sum::<f64>()
        / 100.0
}

fn tech_score(offer: &MediatedOffer) -> f64 {
    // Normalized mean of the intermediary's technical facets.
    let means = offer.intermediary_quality.means();
    means
        .iter()
        .map(|(m, v)| {
            let (lo, hi) = metric_range(m);
            wsrep_qos::normalize::normalize_one(v, lo, hi, m.monotonicity())
        })
        .sum::<f64>()
        / means.len() as f64
}

fn general_score(offer: &MediatedOffer) -> f64 {
    let means = offer.general.quality.means();
    means.iter().map(|(_, v)| v).sum::<f64>() / means.len() as f64
}

fn main() {
    println!("# F1 — Figure 1: direct vs mediated web-service selection");
    let mut rng = StdRng::seed_from_u64(42);
    let offers: Vec<MediatedOffer> = (0..40).map(|i| random_offer(&mut rng, i)).collect();

    for share in [0.8, 0.5, 0.0] {
        let w = MediationWeights::new(share);
        let utilities: Vec<f64> = offers
            .iter()
            .map(|o| expected_composite(&mut rng, o, w))
            .collect();
        let pick = |score: &dyn Fn(&MediatedOffer) -> f64| -> f64 {
            let best = offers
                .iter()
                .enumerate()
                .max_by(|a, b| {
                    score(a.1)
                        .partial_cmp(&score(b.1))
                        .unwrap_or(std::cmp::Ordering::Equal)
                })
                .map(|(i, _)| i)
                .unwrap();
            utilities[best]
        };
        let oracle = utilities.iter().copied().fold(f64::MIN, f64::max);
        let by_general = pick(&general_score);
        let by_intermediary = pick(&tech_score);
        let random: f64 = utilities.iter().sum::<f64>() / utilities.len() as f64;

        section(&format!(
            "general-service share = {share} ({})",
            match share {
                s if s >= 0.8 => "the paper's mediated scenario B",
                0.0 => "degenerate: pure direct scenario A",
                _ => "halfway",
            }
        ));
        let mut t = Table::new(["selector", "mean composite utility", "fraction of oracle"]);
        t.row(["oracle", &f3(oracle), &f3(1.0)]);
        t.row([
            "by general-service quality",
            &f3(by_general),
            &f3(by_general / oracle),
        ]);
        t.row([
            "by intermediary (web service) QoS",
            &f3(by_intermediary),
            &f3(by_intermediary / oracle),
        ]);
        t.row(["random (blind choice)", &f3(random), &f3(random / oracle)]);
        print!("{}", t.render());
    }

    println!(
        "\nReading: at the paper's share (0.8) the general-service selector\n\
         captures nearly the full oracle utility while the intermediary-QoS\n\
         selector sits near the random baseline; at share 0 (the direct\n\
         scenario) the ordering flips — the web service's own QoS decides."
    );
}
