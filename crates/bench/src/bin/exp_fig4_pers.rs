//! Experiment F4c — Figure 4's third axis: global vs personalized.
//!
//! Section 4: "for some kinds of web services (e.g. weather forecast
//! services), personalization is not important, so a global reputation
//! system is sufficient. However, if the selection includes subjective
//! factors … personalized reputation systems are required."
//!
//! Design: sweep consumer preference heterogeneity from 0 (everyone wants
//! the same thing — the weather-service case) to 0.9 (strongly subjective)
//! and race a global mechanism (eBay-style beta) against personalized ones
//! (collaborative filtering with Pearson and cosine similarity — Karta's
//! design question — and the LNZ per-profile QoS registry).

use wsrep_bench::base_config;
use wsrep_core::mechanisms::beta::BetaMechanism;
use wsrep_core::mechanisms::cf::{CfMechanism, Similarity};
use wsrep_core::mechanisms::lnz::LnzMechanism;
use wsrep_core::ReputationMechanism;
use wsrep_select::eval::{Market, MarketConfig};
use wsrep_select::report::{f3, section, Table};
use wsrep_select::strategy::ReputationSelect;
use wsrep_sim::world::World;

fn run(h: f64, mechanism: Box<dyn ReputationMechanism>, lnz_profiles: bool, seed: u64) -> f64 {
    let mut cfg = base_config(seed);
    cfg.preference_heterogeneity = h;
    let world = World::generate(cfg);
    // LNZ personalizes through registered consumer profiles.
    let mechanism = if lnz_profiles {
        let mut lnz = LnzMechanism::new();
        for c in &world.consumers {
            lnz.set_profile(c.id, c.prefs.clone());
        }
        Box::new(lnz) as Box<dyn ReputationMechanism>
    } else {
        mechanism
    };
    let mut strat = ReputationSelect::new(mechanism);
    Market::new(world, MarketConfig::new(80, seed))
        .run(&mut strat)
        .settled_utility
}

fn main() {
    println!("# F4c — global vs personalized reputation under preference heterogeneity");

    section("settled utility (80 rounds, mean over 3 seeds)");
    let mut t = Table::new([
        "heterogeneity",
        "global (beta)",
        "CF Pearson",
        "CF cosine (Karta)",
        "LNZ per-profile",
        "best",
    ]);
    for h in [0.0, 0.3, 0.6, 0.9] {
        let seeds = [3u64, 17, 31];
        let avg = |f: &dyn Fn(u64) -> f64| -> f64 {
            seeds.iter().map(|&s| f(s)).sum::<f64>() / seeds.len() as f64
        };
        let global = avg(&|s| run(h, Box::new(BetaMechanism::new()), false, s));
        let pearson = avg(&|s| run(h, Box::new(CfMechanism::new(Similarity::Pearson)), false, s));
        let cosine = avg(&|s| run(h, Box::new(CfMechanism::new(Similarity::Cosine)), false, s));
        let lnz = avg(&|s| run(h, Box::new(BetaMechanism::new()), true, s));
        let best = [
            ("global", global),
            ("pearson", pearson),
            ("cosine", cosine),
            ("lnz", lnz),
        ]
        .into_iter()
        .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal))
        .unwrap()
        .0;
        t.row([
            f3(h),
            f3(global),
            f3(pearson),
            f3(cosine),
            f3(lnz),
            best.to_string(),
        ]);
    }
    print!("{}", t.render());

    println!(
        "\nReading: at h = 0 the simple global mechanism is sufficient (the\n\
         paper's weather-service case) and the extra machinery buys nothing;\n\
         as preferences diverge the personalized mechanisms take over, with\n\
         the profile-aware LNZ registry strongest because it personalizes\n\
         from measured QoS rather than sparse co-ratings."
    );
}
