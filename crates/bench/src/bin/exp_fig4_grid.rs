//! Experiment F4d — the whole typology, raced.
//!
//! Every system the survey classifies, run as the selection backend of
//! the *same* market, with its typology coordinates beside its measured
//! selection quality. The point is not a single winner — the paper's
//! point is that different leaves fit different conditions — but the grid
//! makes the trade-offs concrete: simple global mechanisms are already
//! strong in an honest homogeneous market, person-level systems racing in
//! a resource market pay for their different subject, and topology-only
//! systems (PageRank, NodeRanking) cannot use score valence at all.

use wsrep_bench::base_config;
use wsrep_core::mechanisms::all_figure4_mechanisms;
use wsrep_select::eval::{Market, MarketConfig};
use wsrep_select::report::{f3, section, Table};
use wsrep_select::strategy::{RandomSelect, ReputationSelect};
use wsrep_sim::world::World;

fn main() {
    println!("# F4d — all 21 classified systems as selection backends");

    const ROUNDS: u64 = 60;
    let seeds = [3u64, 17, 31];

    // Random baseline.
    let mut baseline = 0.0;
    for &seed in &seeds {
        let mut cfg = base_config(seed);
        cfg.preference_heterogeneity = 0.0;
        let mut random = RandomSelect;
        baseline += Market::new(World::generate(cfg), MarketConfig::new(ROUNDS, seed))
            .run(&mut random)
            .settled_utility;
    }
    baseline /= seeds.len() as f64;

    section(&format!(
        "honest homogeneous market, {ROUNDS} rounds, mean of {} seeds (random baseline {})",
        seeds.len(),
        f3(baseline)
    ));
    let mut t = Table::new([
        "system",
        "centralization",
        "subject",
        "scope",
        "settled utility",
        "vs random",
    ]);
    let count = all_figure4_mechanisms().len();
    for i in 0..count {
        let info = all_figure4_mechanisms()[i].info();
        // Seeds are independent markets: run them on worker threads.
        let reports = wsrep_select::eval::run_seeds_parallel(&seeds, |seed| {
            let mut cfg = base_config(seed);
            cfg.preference_heterogeneity = 0.0;
            let mechanism = all_figure4_mechanisms().remove(i);
            (
                World::generate(cfg),
                MarketConfig::new(ROUNDS, seed),
                Box::new(ReputationSelect::new(mechanism)) as _,
            )
        });
        let utility = reports.iter().map(|r| r.settled_utility).sum::<f64>() / seeds.len() as f64;
        t.row([
            info.display.to_string(),
            info.centralization.to_string(),
            info.subject.to_string(),
            info.scope.to_string(),
            f3(utility),
            format!("{:+.3}", utility - baseline),
        ]);
    }
    print!("{}", t.render());

    println!(
        "\nReading: nearly every score-driven mechanism clears the random\n\
         baseline by a wide margin in this benign market — the survey's\n\
         premise that *any* trust and reputation mechanism beats blind\n\
         choice. The stragglers are instructive, not broken: PageRank and\n\
         the social-topology ranker ignore score valence by design, and\n\
         several person/agent, personalized systems (built for peers\n\
         vouching for peers) are running outside their home leaf of the\n\
         typology. Which leaf *fits* which conditions is what exp_fig4_cost,\n\
         exp_fig4_pers and exp_unfair measure."
    );
}
