//! Experiment E11 — Sybil floods: one attacker, unbounded identities.
//!
//! The unfair-rating defenses of Section 3.1-Q3 implicitly assume
//! attackers are a *minority of raters*. A Sybil attacker voids that
//! assumption by minting fresh identities, each filing one glowing rating
//! for the promoted service. We sweep the flood size and watch the
//! defenses fail in turn: population statistics (mean, cluster majority,
//! deviation consensus) collapse once the fakes outnumber the honest
//! raters, and even Zhang–Cohen's advisor weighting erodes, because
//! unknown advisors carry a free neutral prior. The structural counter —
//! from the survey's own decentralized branch — is Vu et al.'s
//! trusted-monitor cross-checking, measured in the second part.

use wsrep_bench::{base_config, collect_feedback, ranks_best_over_worst};
use wsrep_core::feedback::Feedback;
use wsrep_core::id::{AgentId, ServiceId};
use wsrep_core::store::FeedbackStore;
use wsrep_core::time::Time;
use wsrep_qos::preference::Preferences;
use wsrep_robust::defense::all_defenses;
use wsrep_select::report::{f3, section, Table};
use wsrep_sim::world::World;

/// Estimated rank (1 = best) of the promoted service under a defense.
fn promoted_rank(
    world: &World,
    store: &FeedbackStore,
    observer: AgentId,
    defense: &dyn wsrep_robust::UnfairRatingDefense,
    promoted: ServiceId,
) -> usize {
    let mut scored: Vec<(ServiceId, f64)> = world
        .services()
        .map(|s| {
            (
                s.id,
                defense
                    .estimate(store, observer, s.id.into())
                    .map(|e| e.value.get())
                    .unwrap_or(0.0),
            )
        })
        .collect();
    scored.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
    scored.iter().position(|&(s, _)| s == promoted).unwrap() + 1
}

fn main() {
    println!("# E11 — Sybil floods vs the unfair-rating defenses");

    let seeds = [5u64, 23, 47, 61];
    for sybils in [0usize, 20, 100, 400] {
        section(&format!(
            "{sybils} Sybil identities ballot-stuff the worst provider's best service \
             (honest raters file ~480 reports; mean of {} seeds)",
            seeds.len()
        ));
        let mut t = Table::new(["defense", "best>worst kept", "promoted svc rank (1=best)"]);
        for defense in all_defenses() {
            let mut kept = 0usize;
            let mut rank_sum = 0usize;
            for &seed in &seeds {
                let mut cfg = base_config(seed);
                cfg.preference_heterogeneity = 0.0;
                let mut world = World::generate(cfg);
                let mut store = collect_feedback(&mut world, 12);
                // The promoted target: the worst provider's best service.
                let prefs = Preferences::uniform(world.metrics().to_vec());
                let worst = world.worst_provider_by(&prefs);
                let promoted = world.providers[&worst]
                    .services
                    .iter()
                    .copied()
                    .max_by(|&a, &b| {
                        let ua = prefs.utility_raw(
                            &world.service(a).unwrap().quality.means(),
                            world.bounds(),
                        );
                        let ub = prefs.utility_raw(
                            &world.service(b).unwrap().quality.means(),
                            world.bounds(),
                        );
                        ua.partial_cmp(&ub).unwrap_or(std::cmp::Ordering::Equal)
                    })
                    .expect("provider has services");
                // The flood: each Sybil identity files exactly one rave.
                for k in 0..sybils {
                    store.push(Feedback::scored(
                        AgentId::new(500_000 + k as u64),
                        promoted,
                        1.0,
                        Time::new(12),
                    ));
                }
                let observer = world
                    .consumers
                    .iter()
                    .find(|c| c.is_honest())
                    .map(|c| c.id)
                    .expect("honest consumer");
                let est = |s: ServiceId| {
                    defense
                        .estimate(&store, observer, s.into())
                        .map(|e| e.value.get())
                };
                if ranks_best_over_worst(&world, est).unwrap_or(false) {
                    kept += 1;
                }
                rank_sum += promoted_rank(&world, &store, observer, defense.as_ref(), promoted);
            }
            t.row([
                defense.name().to_string(),
                format!("{kept}/{}", seeds.len()),
                f3(rank_sum as f64 / seeds.len() as f64),
            ]);
        }
        print!("{}", t.render());
    }

    // ------------------------------------------------------------------
    // The principled counter from the survey's own toolbox: Vu et al.'s
    // trusted-monitor cross-checking (the decentralized web-service
    // mechanism). Sybil reports must fabricate QoS claims; a handful of
    // trusted probes exposes every fabricating identity, whatever their
    // number.
    section("the structural fix: Vu et al. trusted-monitor cross-checking (mean of 4 seeds)");
    {
        use wsrep_core::mechanisms::vu::VuMechanism;
        use wsrep_core::ReputationMechanism;
        let mut t = Table::new([
            "sybil identities",
            "promoted rank, no monitors",
            "promoted rank, 3 trusted probes/service",
        ]);
        for sybils in [0usize, 100, 400] {
            let mut rank_plain = 0usize;
            let mut rank_guarded = 0usize;
            for &seed in &seeds {
                let mut cfg = base_config(seed);
                cfg.preference_heterogeneity = 0.0;
                let mut world = World::generate(cfg);
                let store = collect_feedback(&mut world, 12);
                let prefs = Preferences::uniform(world.metrics().to_vec());
                let worst = world.worst_provider_by(&prefs);
                let promoted = world.providers[&worst].services[0];
                let best_claims: wsrep_qos::value::QosVector = world
                    .metrics()
                    .iter()
                    .map(|&m| {
                        let (lo, hi) = wsrep_sim::provider::metric_range(m);
                        let v = match m.monotonicity() {
                            wsrep_qos::metric::Monotonicity::HigherBetter => hi,
                            wsrep_qos::metric::Monotonicity::LowerBetter => lo,
                        };
                        (m, v)
                    })
                    .collect();
                let mut build = |guarded: bool| -> usize {
                    let mut vu = VuMechanism::new();
                    for fb in store.iter() {
                        vu.submit(fb);
                    }
                    for k in 0..sybils {
                        vu.submit(
                            &Feedback::scored(
                                AgentId::new(500_000 + k as u64),
                                promoted,
                                1.0,
                                Time::new(12),
                            )
                            .with_observed(best_claims.clone()),
                        );
                    }
                    if guarded {
                        for s in world
                            .services()
                            .map(|s| (s.id, s.quality.clone()))
                            .collect::<Vec<_>>()
                        {
                            for _ in 0..3 {
                                let probe = s.1.sample(world.rng());
                                vu.submit_trusted(s.0, probe);
                            }
                        }
                    }
                    let mut scored: Vec<(ServiceId, f64)> = world
                        .services()
                        .map(|svc| {
                            (
                                svc.id,
                                vu.global(svc.id.into())
                                    .map(|e| e.value.get())
                                    .unwrap_or(0.0),
                            )
                        })
                        .collect();
                    scored
                        .sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
                    scored.iter().position(|&(svc, _)| svc == promoted).unwrap() + 1
                };
                rank_plain += build(false);
                rank_guarded += build(true);
            }
            t.row([
                format!("{sybils}"),
                f3(rank_plain as f64 / seeds.len() as f64),
                f3(rank_guarded as f64 / seeds.len() as f64),
            ]);
        }
        print!("{}", t.render());
    }

    println!(
        "\nReading: every rating-statistics defense eventually yields to a\n\
         flood — once the fakes outnumber the ~480 honest reports they ARE\n\
         the majority, so the mean, the majority-cluster and the deviation\n\
         consensus all promote the flooded service to rank 1. (The boolean\n\
         majority opinion accidentally resists: quantizing to good/bad\n\
         leaves genuinely-clean services at fraction 1.0, above the\n\
         flooded 0.95.) Zhang-Cohen degrades more slowly but falls too:\n\
         unknown advisors carry a neutral prior weight that a Sybil can\n\
         mint for free. The structural counter in the survey's own toolbox\n\
         is Vu et al.'s trusted monitoring: fabricated QoS claims are\n\
         cross-checked against a handful of trusted probes, so every fake\n\
         identity self-identifies and the flood is discarded wholesale."
    );
}
