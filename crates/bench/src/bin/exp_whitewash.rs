//! Experiment E9 — whitewashing: shedding reputation by switching
//! identity.
//!
//! The oldest exploit against reputation systems, and the reason Sporas
//! never lets a member fall below a newcomer. In a web-service market the
//! move is: a poor provider withdraws its service and republishes the
//! same implementation under a fresh id, resetting its record. We measure
//! how often each selector falls for the fresh identities:
//!
//! * **neutral prior** (unknown ⇒ trust 0.5): whitewashing pays whenever
//!   the shed reputation was below 0.5;
//! * **skeptical prior** (unknown ⇒ trust 0.3): newcomers are not
//!   attractive, so identity-switching buys nothing;
//! * **provider bootstrap** (Section 5): the *provider's* reputation
//!   survives the identity switch, so the fresh service inherits the bad
//!   record — the structural fix.

use rand::rngs::StdRng;
use rand::SeedableRng;
use wsrep_bench::base_config;
use wsrep_core::id::ProviderId;
use wsrep_core::mechanisms::beta::BetaMechanism;
use wsrep_qos::preference::Preferences;
use wsrep_select::bootstrap::BootstrapSelect;
use wsrep_select::report::{f3, pct, section, Table};
use wsrep_select::strategy::{Candidate, ReputationSelect, SelectionContext, SelectionStrategy};
use wsrep_sim::world::World;

const ROUNDS: u64 = 80;
const WHITEWASH_EVERY: u64 = 15;

/// Run the whitewashing market. The bottom third of providers (by true
/// quality) whitewash all their services every `WHITEWASH_EVERY` rounds;
/// at the same cadence the *best* provider launches a genuinely improved
/// v2 service, so unknown identities are a mix of laundered bad services
/// and valuable newcomers — the classic newcomer/whitewasher tension.
/// Returns `(settled utility, fraction of selections on whitewashers,
/// fraction on genuine v2 newcomers)`.
fn run(mut strategy: Box<dyn SelectionStrategy>, spread: f64, seed: u64) -> (f64, f64, f64) {
    let mut cfg = base_config(seed);
    cfg.preference_heterogeneity = 0.0;
    cfg.provider_quality_correlation = 0.8;
    cfg.quality_spread = spread;
    let mut world = World::generate(cfg);
    let prefs = Preferences::uniform(world.metrics().to_vec());

    // Bottom third of providers are the whitewashers.
    let mut ranked: Vec<ProviderId> = world.providers.keys().copied().collect();
    ranked.sort_by(|&a, &b| {
        let ua = provider_quality(&world, a, &prefs);
        let ub = provider_quality(&world, b, &prefs);
        ua.partial_cmp(&ub).unwrap_or(std::cmp::Ordering::Equal)
    });
    let whitewashers: Vec<ProviderId> = ranked[..ranked.len() / 3].to_vec();
    let best_provider = *ranked.last().expect("providers exist");

    let mut rng = StdRng::seed_from_u64(seed);
    let mut tail_utility = 0.0;
    let mut tail_n = 0u64;
    let mut on_washer = 0u64;
    let mut on_newcomer = 0u64;
    let mut newcomers: Vec<wsrep_core::ServiceId> = Vec::new();
    let mut selections = 0u64;
    let tail_start = ROUNDS - ROUNDS / 4;

    for round in 0..ROUNDS {
        let candidates: Vec<Candidate> = world
            .registry
            .search(0)
            .map(|ls| {
                ls.into_iter()
                    .map(|l| Candidate {
                        service: l.service,
                        provider: l.provider,
                        advertised: l.advertised.clone(),
                    })
                    .collect()
            })
            .unwrap_or_default();
        for idx in 0..world.consumers.len() {
            let consumer = world.consumers[idx].clone();
            let ctx = SelectionContext {
                consumer: &consumer,
                candidates: &candidates,
                now: world.now(),
                registry_up: true,
            };
            let Some(choice) = strategy.choose(&ctx, &mut rng) else {
                continue;
            };
            let candidate = candidates[choice].clone();
            if let Some((_, fb)) = world.invoke_and_report(idx, candidate.service) {
                strategy.observe(&fb);
            }
            selections += 1;
            if whitewashers.contains(&candidate.provider) {
                on_washer += 1;
            }
            if newcomers.contains(&candidate.service) {
                on_newcomer += 1;
            }
            if round >= tail_start {
                tail_utility += world.expected_utility(&consumer, candidate.service);
                tail_n += 1;
            }
        }
        // The attack: shed accumulated reputation. Alongside it, genuine
        // innovation: the best provider ships an improved v2.
        if round % WHITEWASH_EVERY == WHITEWASH_EVERY - 1 {
            for &p in &whitewashers {
                let services = world.providers[&p].services.clone();
                for s in services {
                    world.whitewash(s);
                }
            }
            if let Some(v2) = world.launch_improved(best_provider, 0.05) {
                newcomers.push(v2);
            }
        }
        world.step();
        strategy.refresh(world.now());
    }
    (
        if tail_n > 0 {
            tail_utility / tail_n as f64
        } else {
            0.0
        },
        if selections > 0 {
            on_washer as f64 / selections as f64
        } else {
            0.0
        },
        if selections > 0 {
            on_newcomer as f64 / selections as f64
        } else {
            0.0
        },
    )
}

fn provider_quality(world: &World, p: ProviderId, prefs: &Preferences) -> f64 {
    let services = &world.providers[&p].services;
    services
        .iter()
        .filter_map(|&s| world.service(s))
        .map(|s| prefs.utility_raw(&s.quality.means(), world.bounds()))
        .sum::<f64>()
        / services.len().max(1) as f64
}

/// Reputation laundering, measured directly: train a mechanism on 25
/// rounds of feedback, then whitewash every washer service and compare
/// the worst washer's *effective estimate* (mechanism estimate, falling
/// back to the selector's unknown-prior) before and after the identity
/// switch.
fn laundering_effect(prior: f64, bootstrap: bool, seed: u64) -> (f64, f64) {
    use wsrep_core::ReputationMechanism;
    use wsrep_select::bootstrap::ProviderBootstrap;

    enum Mech {
        Plain(BetaMechanism),
        Boot(ProviderBootstrap),
    }
    impl Mech {
        fn submit(&mut self, fb: &wsrep_core::Feedback) {
            match self {
                Mech::Plain(m) => m.submit(fb),
                Mech::Boot(m) => m.submit(fb),
            }
        }
        fn est(&self, obs: wsrep_core::AgentId, s: wsrep_core::ServiceId) -> Option<f64> {
            match self {
                Mech::Plain(m) => m.personalized(obs, s.into()).map(|e| e.value.get()),
                Mech::Boot(m) => m.personalized(obs, s.into()).map(|e| e.value.get()),
            }
        }
    }

    let mut cfg = base_config(seed);
    cfg.preference_heterogeneity = 0.0;
    cfg.provider_quality_correlation = 0.8;
    let mut world = World::generate(cfg);
    let prefs = Preferences::uniform(world.metrics().to_vec());
    let mut ranked: Vec<ProviderId> = world.providers.keys().copied().collect();
    ranked.sort_by(|&a, &b| {
        provider_quality(&world, a, &prefs)
            .partial_cmp(&provider_quality(&world, b, &prefs))
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    let washer = ranked[0];
    let mut mech = if bootstrap {
        let mut b = ProviderBootstrap::new(Box::new(BetaMechanism::new()));
        for p in world.providers.values() {
            for &svc in &p.services {
                b.register(svc, p.id);
            }
        }
        Mech::Boot(b)
    } else {
        Mech::Plain(BetaMechanism::new())
    };
    // 25 rounds of uniform trials so every service has a record.
    let services: Vec<wsrep_core::ServiceId> = world.services().map(|s| s.id).collect();
    for _ in 0..25u64 {
        for idx in 0..world.consumers.len() {
            let pick = services[rand::Rng::gen_range(world.rng(), 0..services.len())];
            if let Some((_, fb)) = world.invoke_and_report(idx, pick) {
                mech.submit(&fb);
            }
        }
        world.step();
    }
    let target = world.providers[&washer].services[0];
    let observer = world.consumers[0].id;
    let before = mech.est(observer, target).unwrap_or(prior);
    let washed = world.whitewash(target).expect("washable");
    if let Mech::Boot(b) = &mut mech {
        // Ownership is public registry metadata, re-read after re-listing.
        b.register(washed, washer);
    }
    let after = mech.est(observer, washed).unwrap_or(prior);
    (before, after)
}

fn main() {
    println!("# E9 — whitewashing: identity switching vs reputation design");

    type MkStrategy = Box<dyn Fn() -> Box<dyn SelectionStrategy>>;
    let cases: Vec<(&str, MkStrategy)> = vec![
        (
            "beta, neutral prior (0.5)",
            Box::new(|| {
                Box::new(ReputationSelect::new(Box::new(BetaMechanism::new())))
                    as Box<dyn SelectionStrategy>
            }),
        ),
        (
            "beta, skeptical prior (0.3)",
            Box::new(|| {
                Box::new(
                    ReputationSelect::new(Box::new(BetaMechanism::new())).with_default_trust(0.3),
                ) as Box<dyn SelectionStrategy>
            }),
        ),
        (
            "beta + provider bootstrap",
            Box::new(|| {
                Box::new(BootstrapSelect::new(Box::new(BetaMechanism::new())))
                    as Box<dyn SelectionStrategy>
            }),
        ),
    ];
    let seeds: Vec<u64> = (1..=10).collect();

    for (spread, label) in [
        (
            1.0,
            "diverse market (quality spread 1.0) — a dominant incumbent exists",
        ),
        (
            0.25,
            "near-substitute market (quality spread 0.25) — the whitewasher's habitat",
        ),
    ] {
        section(&format!(
            "{label}; bottom-third providers whitewash every {WHITEWASH_EVERY} rounds \
             ({ROUNDS} rounds, mean of {} seeds)",
            seeds.len()
        ));
        let mut t = Table::new([
            "selector",
            "settled utility",
            "selections on whitewashers",
            "selections on genuine v2s",
        ]);
        for (name, make) in &cases {
            let mut u = 0.0;
            let mut lured = 0.0;
            let mut adopted = 0.0;
            for &seed in seeds.iter() {
                let (utility, on_washer, on_newcomer) = run(make(), spread, seed);
                u += utility;
                lured += on_washer;
                adopted += on_newcomer;
            }
            t.row([
                name.to_string(),
                f3(u / seeds.len() as f64),
                pct(lured / seeds.len() as f64),
                pct(adopted / seeds.len() as f64),
            ]);
        }
        print!("{}", t.render());
    }

    section("reputation laundering: worst washer's effective estimate before/after the identity switch (mean of 10 seeds)");
    let mut t = Table::new(["selector", "before wash", "after wash", "laundering gain"]);
    for (name, prior, bootstrap) in [
        ("beta, neutral prior (0.5)", 0.5, false),
        ("beta, skeptical prior (0.3)", 0.3, false),
        ("beta + provider bootstrap", 0.5, true),
    ] {
        let mut b_sum = 0.0;
        let mut a_sum = 0.0;
        for &seed in seeds.iter() {
            let (b, a) = laundering_effect(prior, bootstrap, seed);
            b_sum += b;
            a_sum += a;
        }
        let n = seeds.len() as f64;
        t.row([
            name.to_string(),
            f3(b_sum / n),
            f3(a_sum / n),
            format!("{:+.3}", (a_sum - b_sum) / n),
        ]);
    }
    print!("{}", t.render());

    println!(
        "\nReading: the laundering table is the exploit in isolation — a\n\
         washed identity jumps from its earned 0.19 to the neutral prior\n\
         0.5 (+0.31 laundering gain), while provider-level reputation\n\
         (Section 5) pins the fresh id to its provider's record (+0.00).\n\
         The market tables show when that matters: with a dominant\n\
         incumbent the washers stay at the exploration floor regardless,\n\
         but the laundered 0.5 sits level with a near-substitute field,\n\
         which is exactly the market where identity switching harvests\n\
         selections from prior-trusting selectors."
    );
}
