//! # wsrep-bench — experiment drivers
//!
//! One binary per figure/claim of the paper (see DESIGN.md §4 for the
//! index) plus Criterion micro-benchmarks. This library holds the shared
//! experiment plumbing; run the binaries with e.g.
//! `cargo run --release -p wsrep-bench --bin exp_fig2`.

use wsrep_core::feedback::Feedback;
use wsrep_core::id::ServiceId;
use wsrep_core::store::FeedbackStore;
use wsrep_qos::metric::Metric;
use wsrep_qos::normalize::NormalizationMatrix;
use wsrep_qos::value::QosVector;
use wsrep_sim::monitor::SensorFleet;
use wsrep_sim::world::World;
use wsrep_sim::WorldConfig;

/// The market size shared by most experiments.
pub fn base_config(seed: u64) -> WorldConfig {
    let mut cfg = WorldConfig::small(seed);
    cfg.providers = 12;
    cfg.services_per_provider = 2;
    cfg.consumers = 40;
    cfg
}

/// Drive a *sensor monitoring* selection loop: every round a sensor fleet
/// probes every service (paying per probe), maintains measured means, and
/// every consumer picks the best measured service under its preferences.
/// Returns `(settled mean utility, total probe cost)`.
///
/// This is the "deploy a sensor per service" information source of
/// Figure 2 — accurate, but the cost accounting is the point.
pub fn run_monitored(mut world: World, rounds: u64, probe_cost: f64) -> (f64, f64) {
    let mut fleet = SensorFleet::new(probe_cost);
    let mut measured: std::collections::BTreeMap<ServiceId, QosVector> =
        std::collections::BTreeMap::new();
    let mut tail_utility = 0.0;
    let mut tail_n = 0u64;
    let tail_start = rounds - rounds / 4;
    for round in 0..rounds {
        // Probe everything.
        let services: Vec<(ServiceId, wsrep_qos::profile::QualityProfile)> = world
            .services()
            .map(|s| (s.id, s.quality.clone()))
            .collect();
        for (sid, quality) in &services {
            let obs = fleet.probe(world.rng(), *sid, quality);
            measured.entry(*sid).or_default().ema_update(&obs, 0.3);
        }
        // Consumers select on measured means.
        let ids: Vec<ServiceId> = measured.keys().copied().collect();
        let vectors: Vec<QosVector> = ids.iter().map(|s| measured[s].clone()).collect();
        let mut metrics: Vec<Metric> = vectors.iter().flat_map(|v| v.metrics()).collect();
        metrics.sort();
        metrics.dedup();
        let matrix = NormalizationMatrix::new(&vectors, &metrics);
        for consumer in world.consumers.clone() {
            if let Some(best) = matrix.best(&consumer.prefs) {
                let chosen = ids[best];
                let u = world.expected_utility(&consumer, chosen);
                if round >= tail_start {
                    tail_utility += u;
                    tail_n += 1;
                }
            }
        }
        world.step();
    }
    let settled = if tail_n > 0 {
        tail_utility / tail_n as f64
    } else {
        0.0
    };
    (settled, fleet.stats().cost)
}

/// Run `rounds` rounds of *random* interactions over a world, filing all
/// feedback into a store — the raw material for the defense experiments.
pub fn collect_feedback(world: &mut World, rounds: u64) -> FeedbackStore {
    let mut store = FeedbackStore::new();
    let services: Vec<ServiceId> = world.services().map(|s| s.id).collect();
    for _ in 0..rounds {
        for idx in 0..world.consumers.len() {
            let pick = services[rand::Rng::gen_range(world.rng(), 0..services.len())];
            if let Some((_, fb)) = world.invoke_and_report(idx, pick) {
                store.push(fb);
            }
        }
        world.step();
    }
    store
}

/// Ground-truth ranking check: does `estimate_of` rank the oracle-best
/// service above the oracle-worst one? Uses uniform preferences so the
/// answer is about the feedback, not personalization.
pub fn ranks_best_over_worst<F>(world: &World, estimate_of: F) -> Option<bool>
where
    F: Fn(ServiceId) -> Option<f64>,
{
    let prefs = wsrep_qos::preference::Preferences::uniform(world.metrics().to_vec());
    let mut ranked: Vec<(ServiceId, f64)> = world
        .services()
        .map(|s| (s.id, prefs.utility_raw(&s.quality.means(), world.bounds())))
        .collect();
    ranked.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
    let best = ranked.first()?.0;
    let worst = ranked.last()?.0;
    Some(estimate_of(best)? > estimate_of(worst)?)
}

/// Mean score error of an estimator against ground-truth utilities over
/// all services, under uniform preferences.
pub fn estimate_error<F>(world: &World, estimate_of: F) -> Option<f64>
where
    F: Fn(ServiceId) -> Option<f64>,
{
    let prefs = wsrep_qos::preference::Preferences::uniform(world.metrics().to_vec());
    let mut err = 0.0;
    let mut n = 0usize;
    for s in world.services() {
        let truth = prefs.utility_raw(&s.quality.means(), world.bounds());
        if let Some(est) = estimate_of(s.id) {
            err += (est - truth).abs();
            n += 1;
        }
    }
    if n == 0 {
        None
    } else {
        Some(err / n as f64)
    }
}

/// Tiny helper: all feedback in a store replayed into a mechanism.
pub fn replay(store: &FeedbackStore, mechanism: &mut dyn wsrep_core::ReputationMechanism) {
    for fb in store.iter() {
        mechanism.submit(fb);
    }
}

/// Replay only QoS-bearing observations as a vector of feedback (used by
/// the decentralized registry experiments).
pub fn qos_reports(store: &FeedbackStore) -> Vec<Feedback> {
    store
        .iter()
        .filter(|f| !f.observed.is_empty())
        .cloned()
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use wsrep_core::mechanisms::beta::BetaMechanism;
    use wsrep_core::ReputationMechanism;
    use wsrep_sim::world::World;

    #[test]
    fn monitored_run_is_accurate_but_costly() {
        let world = World::generate(base_config(5));
        let n_services = world.services().count() as f64;
        let (settled, cost) = run_monitored(world, 20, 1.0);
        assert!(settled > 0.6, "monitoring finds good services: {settled}");
        assert!((cost - 20.0 * n_services).abs() < 1e-9);
    }

    #[test]
    fn collected_feedback_is_nonempty_and_replayable() {
        let mut world = World::generate(base_config(6));
        let store = collect_feedback(&mut world, 5);
        assert!(store.len() > 100);
        let mut beta = BetaMechanism::new();
        replay(&store, &mut beta);
        assert_eq!(beta.feedback_count(), store.len());
    }

    #[test]
    fn honest_feedback_ranks_best_over_worst() {
        let mut world = World::generate(base_config(7));
        let store = collect_feedback(&mut world, 10);
        let mut beta = BetaMechanism::new();
        replay(&store, &mut beta);
        let ok = ranks_best_over_worst(&world, |s| beta.global(s.into()).map(|e| e.value.get()))
            .unwrap();
        assert!(ok);
    }

    #[test]
    fn estimate_error_is_finite_and_bounded() {
        let mut world = World::generate(base_config(8));
        let store = collect_feedback(&mut world, 10);
        let mut beta = BetaMechanism::new();
        replay(&store, &mut beta);
        let err = estimate_error(&world, |s| beta.global(s.into()).map(|e| e.value.get())).unwrap();
        assert!((0.0..=1.0).contains(&err));
    }

    #[test]
    fn qos_reports_filter_bare_scores() {
        let mut world = World::generate(base_config(9));
        let store = collect_feedback(&mut world, 2);
        let reports = qos_reports(&store);
        assert_eq!(reports.len(), store.len(), "honest reports carry QoS");
    }
}
