//! # wsrep-robust — dishonest-feedback detection and defenses
//!
//! Section 3.1-Q3 of the survey: *"How can dishonest feedbacks or unfair
//! ratings be detected?"* It names three answers, all implemented here
//! behind the common [`defense::UnfairRatingDefense`] interface:
//!
//! * [`cluster`] — Dellarocas's cluster-filtering approach \[5\];
//! * [`majority`] — Sen & Sajja's majority-opinion selection with its
//!   witness-count guarantee \[26\];
//! * [`zhang_cohen`] — Zhang & Cohen's personalized private/public blend
//!   \[38\];
//! * [`deviation`] — the Whitby–Jøsang beta deviation filter, included as
//!   the standard extra baseline.
//!
//! The attacker populations the defenses are evaluated against live in
//! `wsrep-sim` ([`wsrep_sim::consumer::RaterBehavior`]); the experiment
//! `exp_unfair` sweeps attacker fractions and reports each defense's
//! selection accuracy.

pub mod cluster;
pub mod defense;
pub mod deviation;
pub mod majority;
pub mod zhang_cohen;

pub use defense::UnfairRatingDefense;
