//! The Whitby–Jøsang beta deviation filter.
//!
//! Not named in the survey's Q3 list but the standard companion baseline
//! to it: iteratively exclude raters whose ratings of a subject deviate
//! from the current consensus by more than a threshold, then recompute.
//! Converges because each pass only removes raters.

use crate::defense::UnfairRatingDefense;
use std::collections::BTreeMap;
use wsrep_core::id::{AgentId, SubjectId};
use wsrep_core::store::FeedbackStore;
use wsrep_core::trust::{evidence_confidence, TrustEstimate, TrustValue};

/// The iterative deviation filter.
#[derive(Debug, Clone, Copy)]
pub struct DeviationFilter {
    /// Maximum allowed absolute deviation of a rater's mean score from the
    /// consensus mean.
    pub max_deviation: f64,
    /// Maximum filtering passes.
    pub max_iter: usize,
}

impl Default for DeviationFilter {
    fn default() -> Self {
        DeviationFilter {
            max_deviation: 0.3,
            max_iter: 10,
        }
    }
}

impl DeviationFilter {
    /// Run the filter: returns `(surviving rater means, consensus)` or
    /// `None` without evidence. Never removes the last rater.
    pub fn filter(
        &self,
        per_rater: &BTreeMap<AgentId, f64>,
    ) -> Option<(BTreeMap<AgentId, f64>, f64)> {
        if per_rater.is_empty() {
            return None;
        }
        let mut kept = per_rater.clone();
        for _ in 0..self.max_iter {
            let consensus = kept.values().sum::<f64>() / kept.len() as f64;
            let outliers: Vec<AgentId> = kept
                .iter()
                .filter(|&(_, &m)| (m - consensus).abs() > self.max_deviation)
                .map(|(&a, _)| a)
                .collect();
            if outliers.is_empty() || outliers.len() == kept.len() {
                return Some((kept, consensus));
            }
            for a in outliers {
                if kept.len() > 1 {
                    kept.remove(&a);
                }
            }
        }
        let consensus = kept.values().sum::<f64>() / kept.len() as f64;
        Some((kept, consensus))
    }
}

impl UnfairRatingDefense for DeviationFilter {
    fn name(&self) -> &'static str {
        "deviation"
    }

    fn estimate(
        &self,
        store: &FeedbackStore,
        _observer: AgentId,
        subject: SubjectId,
    ) -> Option<TrustEstimate> {
        // Mean score per rater about this subject.
        let mut sums: BTreeMap<AgentId, (f64, usize)> = BTreeMap::new();
        for f in store.about(subject) {
            let e = sums.entry(f.rater).or_insert((0.0, 0));
            e.0 += f.score;
            e.1 += 1;
        }
        let per_rater: BTreeMap<AgentId, f64> = sums
            .into_iter()
            .map(|(a, (s, n))| (a, s / n as f64))
            .collect();
        let (kept, consensus) = self.filter(&per_rater)?;
        Some(TrustEstimate::new(
            TrustValue::new(consensus),
            evidence_confidence(kept.len(), 4.0),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wsrep_core::feedback::Feedback;
    use wsrep_core::id::ServiceId;
    use wsrep_core::time::Time;

    fn store(scores: &[f64]) -> FeedbackStore {
        scores
            .iter()
            .enumerate()
            .map(|(i, &s)| {
                Feedback::scored(AgentId::new(i as u64), ServiceId::new(1), s, Time::ZERO)
            })
            .collect()
    }

    #[test]
    fn outliers_are_removed_iteratively() {
        // Honest crowd around 0.75, two badmouthers at 0.
        let scores = [0.75, 0.72, 0.78, 0.74, 0.76, 0.0, 0.0];
        let est = DeviationFilter::default()
            .estimate(&store(&scores), AgentId::new(99), ServiceId::new(1).into())
            .unwrap();
        assert!(est.value.get() > 0.7, "got {}", est.value);
    }

    #[test]
    fn tight_crowds_are_untouched() {
        let scores = [0.5, 0.55, 0.6];
        let est = DeviationFilter::default()
            .estimate(&store(&scores), AgentId::new(99), ServiceId::new(1).into())
            .unwrap();
        assert!((est.value.get() - 0.55).abs() < 1e-9);
    }

    #[test]
    fn last_rater_is_never_removed() {
        let mut per = BTreeMap::new();
        per.insert(AgentId::new(0), 0.9);
        let (kept, consensus) = DeviationFilter::default().filter(&per).unwrap();
        assert_eq!(kept.len(), 1);
        assert!((consensus - 0.9).abs() < 1e-12);
    }

    #[test]
    fn total_disagreement_keeps_everyone() {
        // Two raters maximally apart: removing "outliers" would remove all.
        let mut per = BTreeMap::new();
        per.insert(AgentId::new(0), 0.0);
        per.insert(AgentId::new(1), 1.0);
        let (kept, _) = DeviationFilter::default().filter(&per).unwrap();
        assert_eq!(kept.len(), 2);
    }

    #[test]
    fn repeat_ratings_average_per_rater_first() {
        // One rater spams ten zeros; five honest raters say 0.8. Per-rater
        // averaging makes the spammer one voice, not ten.
        let mut st = FeedbackStore::new();
        for _ in 0..10 {
            st.push(Feedback::scored(
                AgentId::new(0),
                ServiceId::new(1),
                0.0,
                Time::ZERO,
            ));
        }
        for i in 1..6 {
            st.push(Feedback::scored(
                AgentId::new(i),
                ServiceId::new(1),
                0.8,
                Time::ZERO,
            ));
        }
        let est = DeviationFilter::default()
            .estimate(&st, AgentId::new(99), ServiceId::new(1).into())
            .unwrap();
        assert!(est.value.get() > 0.7, "got {}", est.value);
    }

    #[test]
    fn empty_store_is_none() {
        assert!(DeviationFilter::default()
            .estimate(
                &FeedbackStore::new(),
                AgentId::new(0),
                ServiceId::new(1).into()
            )
            .is_none());
    }
}
