//! Zhang & Cohen's personalized approach — reference \[38\] of the survey
//! ("Trusting Advice from Other Buyers in E-Marketplaces: The Problem of
//! Unfair Ratings", ICEC 2006).
//!
//! A buyer combines a **private reputation** (beta estimate from its own
//! experiences with the seller) with a **public reputation** (all
//! advisors' ratings, each weighted by the advisor's trustworthiness —
//! learned from how well the advisor's past ratings matched the buyer's
//! own subsequent experiences). The blend weight follows the buyer's
//! private-evidence confidence: experienced buyers trust themselves,
//! newcomers lean on the (advisor-weighted) crowd. The survey singles the
//! approach out as directly applicable to web-service selection.

use crate::defense::UnfairRatingDefense;
use std::collections::BTreeMap;
use wsrep_core::id::{AgentId, SubjectId};
use wsrep_core::store::FeedbackStore;
use wsrep_core::trust::{evidence_confidence, TrustEstimate, TrustValue};

/// The Zhang–Cohen private/public blend.
#[derive(Debug, Clone, Copy)]
pub struct ZhangCohen {
    /// Own experiences needed for ~50% self-reliance.
    pub private_saturation: f64,
    /// Tolerance when judging whether an advisor's rating "agrees" with
    /// the buyer's own experience of the same subject.
    pub agreement_tolerance: f64,
}

impl Default for ZhangCohen {
    fn default() -> Self {
        ZhangCohen {
            private_saturation: 4.0,
            agreement_tolerance: 0.25,
        }
    }
}

impl ZhangCohen {
    /// The buyer's private (beta) reputation of the subject:
    /// `(value, evidence count)`, or `None` without own experience.
    pub fn private_reputation(
        &self,
        store: &FeedbackStore,
        observer: AgentId,
        subject: SubjectId,
    ) -> Option<(f64, usize)> {
        let own: Vec<f64> = store
            .by(observer)
            .filter(|f| f.subject == subject)
            .map(|f| f.score)
            .collect();
        if own.is_empty() {
            return None;
        }
        // Beta expectation with continuous evidence: r = Σ scores.
        let r: f64 = own.iter().sum();
        let value = (r + 1.0) / (own.len() as f64 + 2.0);
        Some((value.clamp(0.0, 1.0), own.len()))
    }

    /// The buyer's trust in an advisor: Laplace-smoothed agreement rate
    /// between the advisor's ratings and the buyer's own experience over
    /// commonly rated subjects. Unknown advisors get 0.5.
    pub fn advisor_trust(&self, store: &FeedbackStore, observer: AgentId, advisor: AgentId) -> f64 {
        if observer == advisor {
            return 1.0;
        }
        // Buyer's own mean per subject.
        let mut own: BTreeMap<SubjectId, (f64, usize)> = BTreeMap::new();
        for f in store.by(observer) {
            let e = own.entry(f.subject).or_insert((0.0, 0));
            e.0 += f.score;
            e.1 += 1;
        }
        let mut agreed = 0.0;
        let mut total = 0.0;
        for f in store.by(advisor) {
            let Some(&(sum, n)) = own.get(&f.subject) else {
                continue;
            };
            let own_mean = sum / n as f64;
            total += 1.0;
            if (f.score - own_mean).abs() <= self.agreement_tolerance {
                agreed += 1.0;
            }
        }
        (agreed + 1.0) / (total + 2.0)
    }

    /// The public reputation: advisor-trust-weighted mean of all ratings
    /// about the subject, excluding the buyer's own.
    pub fn public_reputation(
        &self,
        store: &FeedbackStore,
        observer: AgentId,
        subject: SubjectId,
    ) -> Option<f64> {
        let mut num = 0.0;
        let mut den = 0.0;
        for f in store.about(subject) {
            if f.rater == observer {
                continue;
            }
            let w = self.advisor_trust(store, observer, f.rater);
            num += w * f.score;
            den += w;
        }
        if den > 0.0 {
            Some(num / den)
        } else {
            None
        }
    }
}

impl UnfairRatingDefense for ZhangCohen {
    fn name(&self) -> &'static str {
        "zhang-cohen"
    }

    fn estimate(
        &self,
        store: &FeedbackStore,
        observer: AgentId,
        subject: SubjectId,
    ) -> Option<TrustEstimate> {
        let private = self.private_reputation(store, observer, subject);
        let public = self.public_reputation(store, observer, subject);
        match (private, public) {
            (Some((pv, n)), Some(pub_v)) => {
                let w = evidence_confidence(n, self.private_saturation);
                Some(TrustEstimate::new(
                    TrustValue::new(w * pv + (1.0 - w) * pub_v),
                    0.5 + 0.5 * w,
                ))
            }
            (Some((pv, n)), None) => Some(TrustEstimate::new(
                TrustValue::new(pv),
                evidence_confidence(n, self.private_saturation),
            )),
            (None, Some(pub_v)) => Some(TrustEstimate::new(TrustValue::new(pub_v), 0.4)),
            (None, None) => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wsrep_core::feedback::Feedback;
    use wsrep_core::id::ServiceId;
    use wsrep_core::time::Time;

    fn fb(rater: u64, subject: u64, score: f64) -> Feedback {
        Feedback::scored(
            AgentId::new(rater),
            ServiceId::new(subject),
            score,
            Time::ZERO,
        )
    }

    fn s(i: u64) -> SubjectId {
        ServiceId::new(i).into()
    }

    #[test]
    fn advisors_that_agree_with_the_buyer_gain_trust() {
        let mut store = FeedbackStore::new();
        // Buyer 0 knows subjects 1, 2 well.
        store.push(fb(0, 1, 0.9));
        store.push(fb(0, 2, 0.2));
        // Advisor 1 agrees on both; advisor 2 contradicts both.
        store.push(fb(1, 1, 0.85));
        store.push(fb(1, 2, 0.25));
        store.push(fb(2, 1, 0.1));
        store.push(fb(2, 2, 0.95));
        let zc = ZhangCohen::default();
        assert!(
            zc.advisor_trust(&store, AgentId::new(0), AgentId::new(1))
                > zc.advisor_trust(&store, AgentId::new(0), AgentId::new(2))
        );
    }

    #[test]
    fn public_reputation_discounts_distrusted_advisors() {
        let mut store = FeedbackStore::new();
        // Calibration subjects: buyer and advisor 1 agree, advisor 2 lies.
        for subj in 1..5 {
            store.push(fb(0, subj, 0.8));
            store.push(fb(1, subj, 0.8));
            store.push(fb(2, subj, 0.1));
        }
        // New subject 9: advisor 1 praises, advisor 2 trashes.
        store.push(fb(1, 9, 0.9));
        store.push(fb(2, 9, 0.0));
        let zc = ZhangCohen::default();
        let est = zc.estimate(&store, AgentId::new(0), s(9)).unwrap();
        assert!(est.value.get() > 0.6, "got {}", est.value);
    }

    #[test]
    fn experienced_buyers_trust_themselves() {
        let mut store = FeedbackStore::new();
        for _ in 0..10 {
            store.push(fb(0, 1, 0.9)); // abundant own experience: good
        }
        for i in 1..20 {
            store.push(fb(i, 1, 0.05)); // hostile crowd
        }
        let est = ZhangCohen::default()
            .estimate(&store, AgentId::new(0), s(1))
            .unwrap();
        assert!(est.value.get() > 0.6, "got {}", est.value);
    }

    #[test]
    fn newcomers_lean_on_the_crowd() {
        let mut store = FeedbackStore::new();
        for i in 1..10 {
            store.push(fb(i, 1, 0.85));
        }
        let est = ZhangCohen::default()
            .estimate(&store, AgentId::new(0), s(1))
            .unwrap();
        assert!((est.value.get() - 0.85).abs() < 0.05);
    }

    #[test]
    fn private_only_when_no_advisors() {
        let mut store = FeedbackStore::new();
        store.push(fb(0, 1, 0.9));
        let est = ZhangCohen::default()
            .estimate(&store, AgentId::new(0), s(1))
            .unwrap();
        // Beta with r=0.9,s=0.1: (1.9)/(3) ≈ 0.633.
        assert!((est.value.get() - 1.9 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn nothing_known_is_none() {
        let store = FeedbackStore::new();
        assert!(ZhangCohen::default()
            .estimate(&store, AgentId::new(0), s(1))
            .is_none());
    }

    #[test]
    fn self_trust_is_full() {
        let store = FeedbackStore::new();
        assert_eq!(
            ZhangCohen::default().advisor_trust(&store, AgentId::new(0), AgentId::new(0)),
            1.0
        );
    }
}
