//! The common interface for unfair-rating defenses.

use wsrep_core::id::{AgentId, SubjectId};
use wsrep_core::store::FeedbackStore;
use wsrep_core::trust::{evidence_confidence, TrustEstimate, TrustValue};

/// A defense that estimates a subject's reputation from raw feedback while
/// resisting unfair ratings.
pub trait UnfairRatingDefense: std::fmt::Debug {
    /// Short name used in experiment tables.
    fn name(&self) -> &'static str;

    /// Estimate `subject`'s reputation for `observer` from the raw store.
    /// `None` when no usable evidence survives.
    fn estimate(
        &self,
        store: &FeedbackStore,
        observer: AgentId,
        subject: SubjectId,
    ) -> Option<TrustEstimate>;
}

/// The undefended baseline: the plain mean of all scores.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoDefense;

impl UnfairRatingDefense for NoDefense {
    fn name(&self) -> &'static str {
        "none"
    }

    fn estimate(
        &self,
        store: &FeedbackStore,
        _observer: AgentId,
        subject: SubjectId,
    ) -> Option<TrustEstimate> {
        let n = store.about(subject).count();
        let mean = store.mean_score(subject)?;
        Some(TrustEstimate::new(
            TrustValue::new(mean),
            evidence_confidence(n, 4.0),
        ))
    }
}

/// All defenses with default parameters, for the experiment sweep.
pub fn all_defenses() -> Vec<Box<dyn UnfairRatingDefense>> {
    vec![
        Box::new(NoDefense),
        Box::new(crate::cluster::ClusterFiltering::default()),
        Box::new(crate::majority::MajorityOpinion::default()),
        Box::new(crate::deviation::DeviationFilter::default()),
        Box::new(crate::zhang_cohen::ZhangCohen::default()),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use wsrep_core::feedback::Feedback;
    use wsrep_core::id::ServiceId;
    use wsrep_core::time::Time;

    #[test]
    fn no_defense_is_the_plain_mean() {
        let mut store = FeedbackStore::new();
        store.push(Feedback::scored(
            AgentId::new(0),
            ServiceId::new(1),
            0.2,
            Time::ZERO,
        ));
        store.push(Feedback::scored(
            AgentId::new(1),
            ServiceId::new(1),
            0.8,
            Time::ZERO,
        ));
        let est = NoDefense
            .estimate(&store, AgentId::new(0), ServiceId::new(1).into())
            .unwrap();
        assert!((est.value.get() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn no_evidence_is_none() {
        let store = FeedbackStore::new();
        assert!(NoDefense
            .estimate(&store, AgentId::new(0), ServiceId::new(1).into())
            .is_none());
    }

    #[test]
    fn registry_lists_five_defenses() {
        let names: Vec<&str> = all_defenses().iter().map(|d| d.name()).collect();
        assert_eq!(
            names,
            vec!["none", "cluster", "majority", "deviation", "zhang-cohen"]
        );
    }
}
