//! Sen & Sajja's majority opinion — reference \[26\] of the survey
//! ("Robustness of reputation-based trust: boolean case", AAMAS 2002).
//!
//! Witnesses hold boolean opinions (good/bad); the asker queries a set of
//! them and follows the majority. Their analysis gives the number of
//! witnesses needed so that, with probability at least `confidence`, the
//! majority answer is correct when a fraction of witnesses lie. Both the
//! decision rule and the witness-count bound are implemented.

use crate::defense::UnfairRatingDefense;
use wsrep_core::id::{AgentId, SubjectId};
use wsrep_core::store::FeedbackStore;
use wsrep_core::trust::{evidence_confidence, TrustEstimate, TrustValue};

/// The majority-opinion defense.
#[derive(Debug, Clone, Copy)]
pub struct MajorityOpinion {
    /// Score threshold separating a "good" from a "bad" boolean opinion.
    pub threshold: f64,
}

impl Default for MajorityOpinion {
    fn default() -> Self {
        MajorityOpinion { threshold: 0.5 }
    }
}

/// Probability that the majority of `n` independent witnesses is honest
/// when each is a liar with probability `liar_fraction`. Ties count as
/// failure (even `n` is pessimistic; Sen & Sajja use odd query sizes).
pub fn majority_correct_probability(n: usize, liar_fraction: f64) -> f64 {
    let p_honest = 1.0 - liar_fraction.clamp(0.0, 1.0);
    let mut prob = 0.0;
    for k in (n / 2 + 1)..=n {
        prob += binomial_pmf(n, k, p_honest);
    }
    prob
}

/// The smallest odd witness count achieving at least `confidence`
/// probability of a correct majority at the given liar fraction. `None`
/// when the liar fraction is ≥ 0.5 (no count suffices) or confidence is
/// unreachable within `cap`.
pub fn witnesses_needed(liar_fraction: f64, confidence: f64, cap: usize) -> Option<usize> {
    if liar_fraction >= 0.5 {
        return None;
    }
    let mut n = 1;
    while n <= cap {
        if majority_correct_probability(n, liar_fraction) >= confidence {
            return Some(n);
        }
        n += 2;
    }
    None
}

fn binomial_pmf(n: usize, k: usize, p: f64) -> f64 {
    // log-space to stay stable for larger n.
    let ln = ln_choose(n, k) + (k as f64) * p.ln() + ((n - k) as f64) * (1.0 - p).ln();
    if p == 0.0 {
        return if k == 0 { 1.0 } else { 0.0 };
    }
    if p == 1.0 {
        return if k == n { 1.0 } else { 0.0 };
    }
    ln.exp()
}

fn ln_choose(n: usize, k: usize) -> f64 {
    ln_factorial(n) - ln_factorial(k) - ln_factorial(n - k)
}

fn ln_factorial(n: usize) -> f64 {
    (1..=n).map(|i| (i as f64).ln()).sum()
}

impl UnfairRatingDefense for MajorityOpinion {
    fn name(&self) -> &'static str {
        "majority"
    }

    fn estimate(
        &self,
        store: &FeedbackStore,
        _observer: AgentId,
        subject: SubjectId,
    ) -> Option<TrustEstimate> {
        let mut good = 0usize;
        let mut bad = 0usize;
        for f in store.about(subject) {
            if f.score >= self.threshold {
                good += 1;
            } else {
                bad += 1;
            }
        }
        let total = good + bad;
        if total == 0 {
            return None;
        }
        // The boolean majority decision rendered as a trust value: strong
        // majorities map near the extremes, ties to neutral.
        let value = good as f64 / total as f64;
        Some(TrustEstimate::new(
            TrustValue::new(value),
            evidence_confidence(total, 4.0),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wsrep_core::feedback::Feedback;
    use wsrep_core::id::ServiceId;
    use wsrep_core::time::Time;

    #[test]
    fn more_witnesses_help_against_liars() {
        let p3 = majority_correct_probability(3, 0.3);
        let p11 = majority_correct_probability(11, 0.3);
        let p51 = majority_correct_probability(51, 0.3);
        assert!(p11 > p3);
        assert!(p51 > p11);
        assert!(p51 > 0.99);
    }

    #[test]
    fn half_liars_defeat_any_majority() {
        assert_eq!(witnesses_needed(0.5, 0.9, 1001), None);
        assert_eq!(witnesses_needed(0.6, 0.9, 1001), None);
    }

    #[test]
    fn witness_bound_grows_with_liar_fraction() {
        let easy = witnesses_needed(0.1, 0.95, 1001).unwrap();
        let hard = witnesses_needed(0.4, 0.95, 1001).unwrap();
        assert!(hard > easy, "{hard} > {easy}");
        assert!(easy >= 1);
    }

    #[test]
    fn no_liars_needs_one_witness() {
        assert_eq!(witnesses_needed(0.0, 0.99, 100), Some(1));
    }

    #[test]
    fn binomial_pmf_sums_to_one() {
        let total: f64 = (0..=10).map(|k| binomial_pmf(10, k, 0.3)).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn majority_estimate_follows_the_crowd() {
        let mut store = FeedbackStore::new();
        for i in 0..7 {
            store.push(Feedback::scored(
                AgentId::new(i),
                ServiceId::new(1),
                0.9,
                Time::ZERO,
            ));
        }
        for i in 7..10 {
            store.push(Feedback::scored(
                AgentId::new(i),
                ServiceId::new(1),
                0.0,
                Time::ZERO,
            ));
        }
        let est = MajorityOpinion::default()
            .estimate(&store, AgentId::new(99), ServiceId::new(1).into())
            .unwrap();
        assert!((est.value.get() - 0.7).abs() < 1e-9);
    }

    #[test]
    fn empty_store_is_none() {
        assert!(MajorityOpinion::default()
            .estimate(
                &FeedbackStore::new(),
                AgentId::new(0),
                ServiceId::new(1).into()
            )
            .is_none());
    }
}
