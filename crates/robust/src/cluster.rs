//! Dellarocas's cluster filtering — reference \[5\] of the survey
//! ("Immunizing online reputation reporting systems against unfair ratings
//! and discriminatory behavior", EC 2000).
//!
//! The insight: unfairly *high* ratings (ballot stuffing) separate from
//! fair ratings when the ratings of a subject are clustered; using the
//! **lower cluster's mean** as the reputation estimate immunizes against
//! inflation at a bounded cost in precision. We run 1-D 2-means on the
//! scores; when the clusters are too close (no attack signature) the plain
//! mean is kept.

use crate::defense::UnfairRatingDefense;
use wsrep_core::id::{AgentId, SubjectId};
use wsrep_core::store::FeedbackStore;
use wsrep_core::trust::{evidence_confidence, TrustEstimate, TrustValue};

/// Which cluster survives the filter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClusterMode {
    /// Use the lower cluster's mean (immunizes against ballot stuffing,
    /// Dellarocas's original choice).
    Conservative,
    /// Keep the larger cluster and drop the minority (works against both
    /// directions when attackers are a minority).
    MajorityCluster,
}

/// The cluster-filtering defense.
#[derive(Debug, Clone, Copy)]
pub struct ClusterFiltering {
    /// Filtering mode.
    pub mode: ClusterMode,
    /// Minimum distance between cluster means for the filter to engage;
    /// below it, ratings are considered unimodal and all are kept.
    pub separation: f64,
}

impl Default for ClusterFiltering {
    fn default() -> Self {
        ClusterFiltering {
            mode: ClusterMode::MajorityCluster,
            separation: 0.25,
        }
    }
}

/// Result of clustering scores into two groups.
#[derive(Debug, Clone, PartialEq)]
pub struct Clusters {
    /// Lower-mean cluster values.
    pub low: Vec<f64>,
    /// Higher-mean cluster values.
    pub high: Vec<f64>,
}

impl Clusters {
    fn mean(values: &[f64]) -> f64 {
        if values.is_empty() {
            0.0
        } else {
            values.iter().sum::<f64>() / values.len() as f64
        }
    }

    /// Mean of the lower cluster.
    pub fn low_mean(&self) -> f64 {
        Self::mean(&self.low)
    }

    /// Mean of the higher cluster.
    pub fn high_mean(&self) -> f64 {
        Self::mean(&self.high)
    }

    /// Distance between the cluster means.
    pub fn separation(&self) -> f64 {
        if self.low.is_empty() || self.high.is_empty() {
            0.0
        } else {
            self.high_mean() - self.low_mean()
        }
    }
}

/// 1-D 2-means clustering with deterministic initialization (min and max
/// as seeds), iterated to fixpoint.
pub fn two_means(scores: &[f64]) -> Clusters {
    if scores.is_empty() {
        return Clusters {
            low: Vec::new(),
            high: Vec::new(),
        };
    }
    let mut c_low = scores.iter().copied().fold(f64::INFINITY, f64::min);
    let mut c_high = scores.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let mut low = Vec::new();
    let mut high = Vec::new();
    for _ in 0..50 {
        low.clear();
        high.clear();
        for &s in scores {
            if (s - c_low).abs() <= (s - c_high).abs() {
                low.push(s);
            } else {
                high.push(s);
            }
        }
        let new_low = if low.is_empty() {
            c_low
        } else {
            Clusters::mean(&low)
        };
        let new_high = if high.is_empty() {
            c_high
        } else {
            Clusters::mean(&high)
        };
        if (new_low - c_low).abs() < 1e-12 && (new_high - c_high).abs() < 1e-12 {
            break;
        }
        c_low = new_low;
        c_high = new_high;
    }
    Clusters { low, high }
}

impl UnfairRatingDefense for ClusterFiltering {
    fn name(&self) -> &'static str {
        "cluster"
    }

    fn estimate(
        &self,
        store: &FeedbackStore,
        _observer: AgentId,
        subject: SubjectId,
    ) -> Option<TrustEstimate> {
        let scores: Vec<f64> = store.about(subject).map(|f| f.score).collect();
        if scores.is_empty() {
            return None;
        }
        let clusters = two_means(&scores);
        let (value, kept) = if clusters.separation() < self.separation {
            (
                scores.iter().sum::<f64>() / scores.len() as f64,
                scores.len(),
            )
        } else {
            match self.mode {
                ClusterMode::Conservative => (clusters.low_mean(), clusters.low.len()),
                ClusterMode::MajorityCluster => {
                    if clusters.low.len() >= clusters.high.len() {
                        (clusters.low_mean(), clusters.low.len())
                    } else {
                        (clusters.high_mean(), clusters.high.len())
                    }
                }
            }
        };
        Some(TrustEstimate::new(
            TrustValue::new(value),
            evidence_confidence(kept, 4.0),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wsrep_core::feedback::Feedback;
    use wsrep_core::id::ServiceId;
    use wsrep_core::time::Time;

    fn store(scores: &[f64]) -> FeedbackStore {
        scores
            .iter()
            .enumerate()
            .map(|(i, &s)| {
                Feedback::scored(AgentId::new(i as u64), ServiceId::new(1), s, Time::ZERO)
            })
            .collect()
    }

    fn subject() -> SubjectId {
        ServiceId::new(1).into()
    }

    #[test]
    fn two_means_separates_bimodal_scores() {
        let c = two_means(&[0.1, 0.15, 0.2, 0.85, 0.9, 0.95]);
        assert_eq!(c.low.len(), 3);
        assert_eq!(c.high.len(), 3);
        assert!(c.separation() > 0.6);
    }

    #[test]
    fn unimodal_scores_pass_through() {
        let scores = [0.6, 0.62, 0.64, 0.66];
        let est = ClusterFiltering::default()
            .estimate(&store(&scores), AgentId::new(99), subject())
            .unwrap();
        let mean = scores.iter().sum::<f64>() / 4.0;
        assert!((est.value.get() - mean).abs() < 1e-9);
    }

    #[test]
    fn majority_mode_drops_the_stuffing_minority() {
        // 7 honest ~0.3, 3 ballot stuffers at 1.0.
        let scores = [0.3, 0.32, 0.28, 0.31, 0.29, 0.33, 0.3, 1.0, 1.0, 1.0];
        let est = ClusterFiltering::default()
            .estimate(&store(&scores), AgentId::new(99), subject())
            .unwrap();
        assert!(est.value.get() < 0.4, "stuffers filtered: {}", est.value);
    }

    #[test]
    fn majority_mode_drops_badmouthing_minority_too() {
        let scores = [0.8, 0.82, 0.78, 0.81, 0.79, 0.0, 0.0];
        let est = ClusterFiltering::default()
            .estimate(&store(&scores), AgentId::new(99), subject())
            .unwrap();
        assert!(est.value.get() > 0.7, "badmouthers filtered: {}", est.value);
    }

    #[test]
    fn conservative_mode_always_takes_the_lower_cluster() {
        let filter = ClusterFiltering {
            mode: ClusterMode::Conservative,
            separation: 0.25,
        };
        // Majority are stuffers: majority mode would be fooled, the
        // conservative mode is not.
        let scores = [0.3, 0.31, 1.0, 1.0, 1.0, 1.0, 1.0];
        let est = filter
            .estimate(&store(&scores), AgentId::new(99), subject())
            .unwrap();
        assert!(est.value.get() < 0.4, "got {}", est.value);
    }

    #[test]
    fn empty_store_is_none() {
        assert!(ClusterFiltering::default()
            .estimate(&FeedbackStore::new(), AgentId::new(0), subject())
            .is_none());
    }

    #[test]
    fn single_score_survives() {
        let est = ClusterFiltering::default()
            .estimate(&store(&[0.7]), AgentId::new(0), subject())
            .unwrap();
        assert!((est.value.get() - 0.7).abs() < 1e-9);
    }
}
