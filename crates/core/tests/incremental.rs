//! The incremental-fold contract, property-tested for every concrete
//! mechanism: absorbing a subject's feedback log through
//! [`ReputationMechanism::accumulator`] must answer exactly what
//! [`score_from_log`] answers after replaying the same log through a
//! fresh instance — including out-of-order timestamps and the trailing
//! decay refresh. Mechanisms without a fold fall back to replay in the
//! served registry, so they satisfy the contract by construction.

use proptest::prelude::*;
use wsrep_core::feedback::Feedback;
use wsrep_core::id::{AgentId, ServiceId, SubjectId};
use wsrep_core::mechanism::{score_from_log, ReputationMechanism};
use wsrep_core::mechanisms::all_figure4_mechanisms;
use wsrep_core::mechanisms::beta::BetaMechanism;
use wsrep_core::time::Time;

/// Every concrete mechanism: the Figure 4 set plus the beta building
/// block (the served registry's default).
fn mechanisms() -> Vec<Box<dyn ReputationMechanism>> {
    let mut all = all_figure4_mechanisms();
    all.push(Box::new(BetaMechanism::new()));
    all
}

/// Fold `log` through each mechanism's accumulator and compare with a
/// fresh-instance replay. `log` must contain only reports about
/// `subject`.
fn assert_fold_matches_replay(log: &[Feedback], subject: SubjectId) {
    for (i, prototype) in mechanisms().into_iter().enumerate() {
        let Some(mut acc) = prototype.accumulator() else {
            continue; // replay fallback: equal by construction
        };
        for feedback in log {
            acc.absorb(feedback);
        }
        let mut fresh = mechanisms().remove(i);
        let replayed = score_from_log(fresh.as_mut(), log, subject);
        assert_eq!(
            acc.estimate(),
            replayed,
            "fold != replay for `{}` over {log:?}",
            prototype.info().key
        );
    }
}

#[test]
fn folding_mechanisms_exist() {
    let with_fold = mechanisms()
        .iter()
        .filter(|m| m.accumulator().is_some())
        .count();
    assert!(
        with_fold >= 6,
        "expected at least beta/ebay/amazon/epinions/sporas/complaints, got {with_fold}"
    );
}

#[test]
fn empty_log_estimates_nothing() {
    for m in mechanisms() {
        if let Some(acc) = m.accumulator() {
            assert_eq!(acc.estimate(), None, "{}", m.info().key);
        }
    }
}

proptest! {
    /// Arbitrary scores and arbitrary (unsorted) timestamps: the exact
    /// workload the shard-resident accumulators see, since the ingest
    /// writer applies reports in arrival order, not timestamp order.
    #[test]
    fn fold_equals_replay_for_service_subjects(
        reports in proptest::collection::vec(
            (0.0f64..=1.0, 0u64..60, 0u64..5),
            1..40,
        )
    ) {
        let subject = ServiceId::new(7);
        let log: Vec<Feedback> = reports
            .into_iter()
            .map(|(score, at, rater)| {
                Feedback::scored(AgentId::new(rater), subject, score, Time::new(at))
            })
            .collect();
        assert_fold_matches_replay(&log, subject.into());
    }

    /// Agent subjects can appear as their own raters (self-ratings),
    /// which Sporas and the complaints index treat specially.
    #[test]
    fn fold_equals_replay_with_self_ratings(
        reports in proptest::collection::vec(
            (0.0f64..=1.0, 0u64..60, 0u64..3),
            1..40,
        )
    ) {
        let subject = AgentId::new(0);
        let log: Vec<Feedback> = reports
            .into_iter()
            .map(|(score, at, rater)| {
                Feedback::scored(AgentId::new(rater), subject, score, Time::new(at))
            })
            .collect();
        assert_fold_matches_replay(&log, subject.into());
    }

    /// Decay refresh: long idle gaps between bursts, so time-decayed
    /// mechanisms must agree on the pending-decay arithmetic too.
    #[test]
    fn fold_equals_replay_across_idle_gaps(
        burst_a in proptest::collection::vec(0.0f64..=1.0, 1..10),
        burst_b in proptest::collection::vec(0.0f64..=1.0, 1..10),
        gap in 1u64..200,
    ) {
        let subject = ServiceId::new(1);
        let mut log = Vec::new();
        for (i, &score) in burst_a.iter().enumerate() {
            log.push(Feedback::scored(AgentId::new(i as u64), subject, score, Time::new(i as u64)));
        }
        let resume = burst_a.len() as u64 + gap;
        for (i, &score) in burst_b.iter().enumerate() {
            log.push(Feedback::scored(
                AgentId::new(i as u64),
                subject,
                score,
                Time::new(resume + i as u64),
            ));
        }
        assert_fold_matches_replay(&log, subject.into());
    }
}
