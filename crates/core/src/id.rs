//! Identity newtypes for the entities of a web-service market.
//!
//! The paper's typology distinguishes *person/agent* systems from
//! *resource* systems; we therefore keep agents (consumers, raters, peers),
//! services (the resources selected) and providers (the businesses behind
//! them) statically distinct, and unify them only at the
//! [`SubjectId`] level where a mechanism scores "an entity".

use serde::{Deserialize, Serialize};
use std::fmt;

macro_rules! id_newtype {
    ($(#[$doc:meta])* $name:ident, $prefix:literal) => {
        $(#[$doc])*
        #[derive(
            Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize,
        )]
        pub struct $name(u64);

        impl $name {
            /// Wrap a raw index.
            pub const fn new(raw: u64) -> Self {
                $name(raw)
            }

            /// The raw index.
            pub const fn raw(self) -> u64 {
                self.0
            }

            /// The raw index as `usize`, for dense-array addressing.
            pub const fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl From<u64> for $name {
            fn from(raw: u64) -> Self {
                $name(raw)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }
    };
}

id_newtype!(
    /// A person or software agent: consumers, raters, peers in an overlay.
    AgentId,
    "a"
);
id_newtype!(
    /// A web service (or a general service in the mediated scenario).
    ServiceId,
    "s"
);
id_newtype!(
    /// A service provider — the business publishing one or more services.
    ProviderId,
    "p"
);

/// Anything a trust/reputation mechanism can score.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum SubjectId {
    /// A person or agent (eBay sellers, P2P peers, raters).
    Agent(AgentId),
    /// A service — the *resource* branch of the typology.
    Service(ServiceId),
    /// A provider — the paper's Section 5 argues reputation should also be
    /// built for providers, not just their services.
    Provider(ProviderId),
}

impl SubjectId {
    /// The agent inside, if this subject is an agent.
    pub fn as_agent(self) -> Option<AgentId> {
        match self {
            SubjectId::Agent(a) => Some(a),
            _ => None,
        }
    }

    /// The service inside, if this subject is a service.
    pub fn as_service(self) -> Option<ServiceId> {
        match self {
            SubjectId::Service(s) => Some(s),
            _ => None,
        }
    }

    /// The provider inside, if this subject is a provider.
    pub fn as_provider(self) -> Option<ProviderId> {
        match self {
            SubjectId::Provider(p) => Some(p),
            _ => None,
        }
    }
}

impl From<AgentId> for SubjectId {
    fn from(a: AgentId) -> Self {
        SubjectId::Agent(a)
    }
}

impl From<ServiceId> for SubjectId {
    fn from(s: ServiceId) -> Self {
        SubjectId::Service(s)
    }
}

impl From<ProviderId> for SubjectId {
    fn from(p: ProviderId) -> Self {
        SubjectId::Provider(p)
    }
}

impl fmt::Display for SubjectId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SubjectId::Agent(a) => write!(f, "{a}"),
            SubjectId::Service(s) => write!(f, "{s}"),
            SubjectId::Provider(p) => write!(f, "{p}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_round_trip_raw_values() {
        assert_eq!(AgentId::new(7).raw(), 7);
        assert_eq!(ServiceId::from(9u64).index(), 9);
        assert_eq!(ProviderId::new(0).to_string(), "p0");
    }

    #[test]
    fn subject_conversions_and_projections() {
        let s: SubjectId = ServiceId::new(3).into();
        assert_eq!(s.as_service(), Some(ServiceId::new(3)));
        assert_eq!(s.as_agent(), None);
        assert_eq!(s.as_provider(), None);
        assert_eq!(s.to_string(), "s3");
    }

    #[test]
    fn distinct_kinds_never_compare_equal() {
        let a: SubjectId = AgentId::new(1).into();
        let s: SubjectId = ServiceId::new(1).into();
        assert_ne!(a, s);
    }

    #[test]
    fn ids_are_ordered_by_raw_value() {
        assert!(AgentId::new(1) < AgentId::new(2));
        let mut v = [ServiceId::new(5), ServiceId::new(1)];
        v.sort();
        assert_eq!(v[0], ServiceId::new(1));
    }
}
