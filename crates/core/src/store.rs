//! The central feedback store — the "central QoS registry" of Figure 2.
//!
//! Centralized mechanisms keep their raw evidence here: an append-only log
//! with per-subject and per-rater indexes. The store itself is
//! mechanism-agnostic; mechanisms query it and derive their own statistics.

use crate::feedback::Feedback;
use crate::id::{AgentId, SubjectId};
use crate::time::Time;
use std::collections::BTreeMap;

/// Append-only feedback log with secondary indexes.
#[derive(Debug, Clone, Default)]
pub struct FeedbackStore {
    log: Vec<Feedback>,
    by_subject: BTreeMap<SubjectId, Vec<usize>>,
    by_rater: BTreeMap<AgentId, Vec<usize>>,
}

impl FeedbackStore {
    /// Empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append one feedback report.
    pub fn push(&mut self, feedback: Feedback) {
        let idx = self.log.len();
        self.by_subject
            .entry(feedback.subject)
            .or_default()
            .push(idx);
        self.by_rater.entry(feedback.rater).or_default().push(idx);
        self.log.push(feedback);
    }

    /// Every report about `subject`, oldest first.
    pub fn about(&self, subject: SubjectId) -> impl Iterator<Item = &Feedback> {
        self.by_subject
            .get(&subject)
            .into_iter()
            .flatten()
            .map(|&i| &self.log[i])
    }

    /// Every report filed by `rater`, oldest first.
    pub fn by(&self, rater: AgentId) -> impl Iterator<Item = &Feedback> {
        self.by_rater
            .get(&rater)
            .into_iter()
            .flatten()
            .map(|&i| &self.log[i])
    }

    /// Reports about `subject` not older than `window` rounds at `now`.
    pub fn about_recent(
        &self,
        subject: SubjectId,
        now: Time,
        window: u64,
    ) -> impl Iterator<Item = &Feedback> {
        self.about(subject)
            .filter(move |f| now.since(f.at) < window)
    }

    /// Rating filed by `rater` about `subject`, most recent one if several.
    pub fn latest(&self, rater: AgentId, subject: SubjectId) -> Option<&Feedback> {
        self.by(rater).filter(|f| f.subject == subject).last()
    }

    /// All distinct subjects with at least one report.
    pub fn subjects(&self) -> impl Iterator<Item = SubjectId> + '_ {
        self.by_subject.keys().copied()
    }

    /// All distinct raters.
    pub fn raters(&self) -> impl Iterator<Item = AgentId> + '_ {
        self.by_rater.keys().copied()
    }

    /// Total number of reports.
    pub fn len(&self) -> usize {
        self.log.len()
    }

    /// Whether the log is empty.
    pub fn is_empty(&self) -> bool {
        self.log.is_empty()
    }

    /// Iterate the full log, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &Feedback> {
        self.log.iter()
    }

    /// The mean score of reports about `subject`, if any.
    pub fn mean_score(&self, subject: SubjectId) -> Option<f64> {
        let (sum, n) = self
            .about(subject)
            .fold((0.0, 0usize), |(s, n), f| (s + f.score, n + 1));
        if n > 0 {
            Some(sum / n as f64)
        } else {
            None
        }
    }
}

impl Extend<Feedback> for FeedbackStore {
    fn extend<T: IntoIterator<Item = Feedback>>(&mut self, iter: T) {
        for f in iter {
            self.push(f);
        }
    }
}

impl FromIterator<Feedback> for FeedbackStore {
    fn from_iter<T: IntoIterator<Item = Feedback>>(iter: T) -> Self {
        let mut store = FeedbackStore::new();
        store.extend(iter);
        store
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::id::ServiceId;

    fn store() -> FeedbackStore {
        let s1 = ServiceId::new(1);
        let s2 = ServiceId::new(2);
        [
            Feedback::scored(AgentId::new(0), s1, 0.9, Time::new(0)),
            Feedback::scored(AgentId::new(1), s1, 0.7, Time::new(5)),
            Feedback::scored(AgentId::new(0), s2, 0.2, Time::new(9)),
            Feedback::scored(AgentId::new(0), s1, 0.5, Time::new(10)),
        ]
        .into_iter()
        .collect()
    }

    #[test]
    fn indexes_agree_with_log() {
        let st = store();
        assert_eq!(st.len(), 4);
        assert_eq!(st.about(ServiceId::new(1).into()).count(), 3);
        assert_eq!(st.by(AgentId::new(0)).count(), 3);
        assert_eq!(st.subjects().count(), 2);
        assert_eq!(st.raters().count(), 2);
    }

    #[test]
    fn recent_window_filters_by_age() {
        let st = store();
        let recent: Vec<_> = st
            .about_recent(ServiceId::new(1).into(), Time::new(10), 6)
            .collect();
        assert_eq!(recent.len(), 2); // t=5 and t=10
    }

    #[test]
    fn latest_returns_most_recent_pairing() {
        let st = store();
        let f = st
            .latest(AgentId::new(0), ServiceId::new(1).into())
            .unwrap();
        assert_eq!(f.at, Time::new(10));
        assert!(st
            .latest(AgentId::new(9), ServiceId::new(1).into())
            .is_none());
    }

    #[test]
    fn mean_score_averages() {
        let st = store();
        let m = st.mean_score(ServiceId::new(1).into()).unwrap();
        assert!((m - 0.7).abs() < 1e-12);
        assert_eq!(st.mean_score(ServiceId::new(99).into()), None);
    }

    #[test]
    fn empty_store_behaves() {
        let st = FeedbackStore::new();
        assert!(st.is_empty());
        assert_eq!(st.about(ServiceId::new(1).into()).count(), 0);
    }
}
