//! The common interface every trust/reputation mechanism implements.
//!
//! The survey compares some twenty systems; to make them interchangeable in
//! the selection engine and the experiments, they all speak the same small
//! protocol: feedback goes in ([`ReputationMechanism::submit`]), trust
//! estimates come out — either one **global** value per subject or a
//! **personalized** value per `(observer, subject)` pair, matching the
//! third axis of the typology.

use crate::feedback::Feedback;
use crate::id::{AgentId, SubjectId};
use crate::time::Time;
use crate::trust::TrustEstimate;
use crate::typology::MechanismInfo;
use std::fmt;

/// A trust/reputation mechanism.
///
/// Implementations are deterministic given the feedback sequence; any
/// internal iteration (e.g. EigenTrust's power method) happens lazily at
/// query time or explicitly in [`ReputationMechanism::refresh`].
///
/// The `Send` bound lets boxed mechanisms move across threads (the
/// parallel multi-seed market runner); every implementation is plain
/// owned data, so this costs nothing.
pub trait ReputationMechanism: fmt::Debug + Send {
    /// The mechanism's coordinates in the paper's Figure 4 typology.
    fn info(&self) -> MechanismInfo;

    /// Ingest one feedback report.
    fn submit(&mut self, feedback: &Feedback);

    /// An empty per-subject accumulator implementing this mechanism's
    /// **incremental fold**, or `None` when the mechanism genuinely needs
    /// a full-log pass (cross-subject state such as rater reputations
    /// learned from *other* subjects' logs, graph fixed points, or
    /// collaborative filtering over the whole rating matrix).
    ///
    /// Contract: after absorbing a subject's feedback log in order,
    /// [`SubjectAccumulator::estimate`] must equal
    /// [`score_from_log`] run over the same log through a **fresh
    /// instance configured like `self`** — including the trailing
    /// `refresh` to the newest absorbed timestamp that `score_from_log`
    /// performs. Callers that keep accumulators resident (the served
    /// registry's shards) therefore read in O(1) exactly what a replay
    /// would have recomputed in O(log length).
    ///
    /// The parameters of `self` (forgetting factors, thresholds, …) carry
    /// into the accumulator; its evidence starts empty.
    fn accumulator(&self) -> Option<Box<dyn SubjectAccumulator>> {
        None
    }

    /// The global (public) reputation of a subject, or `None` when the
    /// mechanism has no evidence about it yet.
    ///
    /// Personalized-only mechanisms answer with the population-wide
    /// aggregate so that every mechanism can serve both query styles (the
    /// paper notes personalized systems subsume a global view).
    fn global(&self, subject: SubjectId) -> Option<TrustEstimate>;

    /// The reputation of `subject` in the eyes of `observer`.
    ///
    /// Global mechanisms answer identically for every observer — the
    /// default implementation delegates to [`Self::global`].
    fn personalized(&self, observer: AgentId, subject: SubjectId) -> Option<TrustEstimate> {
        let _ = observer;
        self.global(subject)
    }

    /// Advance internal state to `now`: apply decay, re-run fixed-point
    /// iterations, drop expired windows. Called once per simulation round.
    fn refresh(&mut self, now: Time) {
        let _ = now;
    }

    /// Number of feedback reports ingested (for accounting in experiments).
    fn feedback_count(&self) -> usize;
}

/// Per-subject sufficient statistics of one mechanism's global estimate.
///
/// An accumulator is the resident, incremental form of
/// [`score_from_log`]: every report about its subject is folded forward
/// once ([`SubjectAccumulator::absorb`]), and the current estimate is an
/// O(1) read ([`SubjectAccumulator::estimate`]) no matter how long the
/// log has grown. Every feedback absorbed by one accumulator carries the
/// same `subject`; mechanisms that treat self-ratings specially (the
/// subject appearing as its own rater) may rely on that.
///
/// `estimate` is a pure read: time-decayed mechanisms apply the pending
/// decay (from the last absorbed update to the newest absorbed
/// timestamp) on the fly without mutating the resident state, mirroring
/// the `refresh(latest)` that [`score_from_log`] issues after replay.
pub trait SubjectAccumulator: fmt::Debug + Send + Sync {
    /// Fold one report about this accumulator's subject into the
    /// resident statistics.
    fn absorb(&mut self, feedback: &Feedback);

    /// The current global estimate, equal to what a full-log replay
    /// through a fresh mechanism would answer. `None` until evidence
    /// exists or while the mechanism abstains.
    fn estimate(&self) -> Option<TrustEstimate>;
}

/// Replay a feedback log through `mechanism` and answer with the global
/// estimate for `subject`.
///
/// This is the single scoring entry point shared by batch recomputation
/// (the served registry's cache rebuilds a subject's score from its shard
/// log through this function) and one-off offline analysis. `refresh` is
/// driven to the timestamp of the newest replayed report so windowed and
/// decaying mechanisms observe the same clock they would have seen live.
pub fn score_from_log<'a, M, I>(
    mechanism: &mut M,
    log: I,
    subject: SubjectId,
) -> Option<TrustEstimate>
where
    M: ReputationMechanism + ?Sized,
    I: IntoIterator<Item = &'a Feedback>,
{
    let mut latest: Option<Time> = None;
    for feedback in log {
        mechanism.submit(feedback);
        latest = Some(match latest {
            Some(t) if t >= feedback.at => t,
            _ => feedback.at,
        });
    }
    if let Some(now) = latest {
        mechanism.refresh(now);
    }
    mechanism.global(subject)
}

/// Convenience: rank `candidates` by a mechanism's estimate for `observer`,
/// best first. Subjects without evidence rank by the ignorance prior.
pub fn rank_candidates<M: ReputationMechanism + ?Sized>(
    mechanism: &M,
    observer: AgentId,
    candidates: &[SubjectId],
) -> Vec<(SubjectId, TrustEstimate)> {
    let mut ranked: Vec<(SubjectId, TrustEstimate)> = candidates
        .iter()
        .map(|&s| {
            (
                s,
                mechanism
                    .personalized(observer, s)
                    .unwrap_or_else(TrustEstimate::ignorance),
            )
        })
        .collect();
    ranked.sort_by(|a, b| {
        b.1.value
            .get()
            .partial_cmp(&a.1.value.get())
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    ranked
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::id::ServiceId;
    use crate::trust::TrustValue;
    use crate::typology::{Centralization, Scope, Subject};
    use std::collections::BTreeMap;

    /// Minimal mechanism used to exercise the trait's default methods.
    #[derive(Debug, Default)]
    struct MeanMechanism {
        sums: BTreeMap<SubjectId, (f64, usize)>,
    }

    impl ReputationMechanism for MeanMechanism {
        fn info(&self) -> MechanismInfo {
            MechanismInfo {
                key: "mean",
                display: "test mean",
                centralization: Centralization::Centralized,
                subject: Subject::Resource,
                scope: Scope::Global,
                citation: "-",
                proposed_for_web_services: false,
            }
        }

        fn submit(&mut self, feedback: &Feedback) {
            let e = self.sums.entry(feedback.subject).or_insert((0.0, 0));
            e.0 += feedback.score;
            e.1 += 1;
        }

        fn global(&self, subject: SubjectId) -> Option<TrustEstimate> {
            self.sums
                .get(&subject)
                .map(|&(sum, n)| TrustEstimate::new(TrustValue::new(sum / n as f64), 1.0))
        }

        fn feedback_count(&self) -> usize {
            self.sums.values().map(|&(_, n)| n).sum()
        }
    }

    #[test]
    fn personalized_defaults_to_global() {
        let mut m = MeanMechanism::default();
        let s = ServiceId::new(1);
        m.submit(&Feedback::scored(AgentId::new(0), s, 0.8, Time::ZERO));
        let g = m.global(s.into()).unwrap();
        let p = m.personalized(AgentId::new(42), s.into()).unwrap();
        assert_eq!(g, p);
        assert_eq!(m.feedback_count(), 1);
        assert!(
            m.accumulator().is_none(),
            "replay fallback is the default fold"
        );
    }

    #[test]
    fn score_from_log_matches_live_submission() {
        let s = ServiceId::new(1);
        let log = vec![
            Feedback::scored(AgentId::new(0), s, 0.9, Time::new(0)),
            Feedback::scored(AgentId::new(1), s, 0.5, Time::new(3)),
        ];
        let mut live = MeanMechanism::default();
        for f in &log {
            live.submit(f);
        }
        let mut replayed = MeanMechanism::default();
        let from_log = score_from_log(&mut replayed, &log, s.into());
        assert_eq!(from_log, live.global(s.into()));
        assert_eq!(
            score_from_log(&mut MeanMechanism::default(), &[], s.into()),
            None
        );
    }

    #[test]
    fn rank_orders_best_first_and_fills_ignorance() {
        let mut m = MeanMechanism::default();
        let good = ServiceId::new(1);
        let bad = ServiceId::new(2);
        let unknown = ServiceId::new(3);
        m.submit(&Feedback::scored(AgentId::new(0), good, 0.9, Time::ZERO));
        m.submit(&Feedback::scored(AgentId::new(0), bad, 0.1, Time::ZERO));
        let ranked = rank_candidates(
            &m,
            AgentId::new(0),
            &[bad.into(), unknown.into(), good.into()],
        );
        assert_eq!(ranked[0].0, good.into());
        assert_eq!(ranked[1].0, unknown.into()); // neutral 0.5 beats 0.1
        assert_eq!(ranked[2].0, bad.into());
        assert_eq!(ranked[1].1.confidence, 0.0);
    }
}
