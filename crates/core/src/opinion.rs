//! Subjective-logic opinions and Dempster–Shafer belief functions.
//!
//! Two of the survey's classified systems are belief-theoretic: Jøsang's
//! work on transitive trust (reference \[10\]) uses subjective-logic
//! opinions, and Yu & Singh's distributed reputation management
//! (references \[35, 36\]) rates witnesses with Dempster–Shafer belief
//! functions over `{trustworthy, untrustworthy}`. Both calculi live here.

use serde::{Deserialize, Serialize};

/// A binomial subjective-logic opinion `(belief, disbelief, uncertainty)`
/// with `b + d + u = 1`, plus a base rate `a` used for the probability
/// expectation `E = b + a·u`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Opinion {
    /// Belief mass.
    pub b: f64,
    /// Disbelief mass.
    pub d: f64,
    /// Uncertainty mass.
    pub u: f64,
    /// Base rate (prior expectation under total uncertainty).
    pub a: f64,
}

impl Opinion {
    /// Total ignorance: all mass on uncertainty.
    pub fn vacuous(base_rate: f64) -> Self {
        Opinion {
            b: 0.0,
            d: 0.0,
            u: 1.0,
            a: base_rate.clamp(0.0, 1.0),
        }
    }

    /// Build from positive/negative evidence counts via the beta mapping:
    /// `b = r/(r+s+2)`, `d = s/(r+s+2)`, `u = 2/(r+s+2)`.
    pub fn from_evidence(r: f64, s: f64, base_rate: f64) -> Self {
        let r = r.max(0.0);
        let s = s.max(0.0);
        let k = r + s + 2.0;
        Opinion {
            b: r / k,
            d: s / k,
            u: 2.0 / k,
            a: base_rate.clamp(0.0, 1.0),
        }
    }

    /// Probability expectation `E = b + a·u`.
    pub fn expectation(&self) -> f64 {
        self.b + self.a * self.u
    }

    /// Jøsang's *discounting* operator `⊗`: how much of `other`'s opinion
    /// about a subject survives when filtered through `self`'s opinion
    /// about `other` as a recommender. This is the algebra behind "Alice
    /// trusts her doctor and her doctor trusts an eye specialist, then
    /// Alice can trust the eye specialist" from Section 3.
    pub fn discount(&self, other: &Opinion) -> Opinion {
        Opinion {
            b: self.b * other.b,
            d: self.b * other.d,
            u: self.d + self.u + self.b * other.u,
            a: other.a,
        }
    }

    /// Jøsang's *consensus* (cumulative fusion) operator `⊕`: combine two
    /// independent opinions about the same subject.
    pub fn consensus(&self, other: &Opinion) -> Opinion {
        let k = self.u + other.u - self.u * other.u;
        if k <= f64::EPSILON {
            // Both opinions are (almost) dogmatic; average them.
            return Opinion {
                b: (self.b + other.b) / 2.0,
                d: (self.d + other.d) / 2.0,
                u: 0.0,
                a: (self.a + other.a) / 2.0,
            };
        }
        Opinion {
            b: (self.b * other.u + other.b * self.u) / k,
            d: (self.d * other.u + other.d * self.u) / k,
            u: (self.u * other.u) / k,
            a: (self.a + other.a) / 2.0,
        }
    }

    /// Whether `(b, d, u)` is a valid simplex point (sums to 1, all ≥ 0).
    pub fn is_valid(&self) -> bool {
        self.b >= -1e-9
            && self.d >= -1e-9
            && self.u >= -1e-9
            && (self.b + self.d + self.u - 1.0).abs() < 1e-6
    }
}

/// A Dempster–Shafer mass assignment over the frame
/// `{T}` (trustworthy), `{¬T}` (not trustworthy), `{T, ¬T}` (either).
///
/// Yu & Singh assign `m({T})` from the fraction of recent interactions
/// above an upper satisfaction threshold, `m({¬T})` from those below a
/// lower threshold, and put the rest on the whole frame.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BeliefMass {
    /// Mass on "trustworthy".
    pub trust: f64,
    /// Mass on "not trustworthy".
    pub distrust: f64,
    /// Mass on the whole frame (uncommitted).
    pub unknown: f64,
}

impl BeliefMass {
    /// Total ignorance.
    pub fn vacuous() -> Self {
        BeliefMass {
            trust: 0.0,
            distrust: 0.0,
            unknown: 1.0,
        }
    }

    /// Build and renormalize from non-negative masses.
    ///
    /// # Panics
    ///
    /// Panics if all masses are zero or any is negative.
    pub fn new(trust: f64, distrust: f64, unknown: f64) -> Self {
        assert!(
            trust >= 0.0 && distrust >= 0.0 && unknown >= 0.0,
            "masses must be non-negative"
        );
        let total = trust + distrust + unknown;
        assert!(total > 0.0, "at least one mass must be positive");
        BeliefMass {
            trust: trust / total,
            distrust: distrust / total,
            unknown: unknown / total,
        }
    }

    /// Yu–Singh style construction from interaction history: the fraction
    /// of `scores` at or above `upper` becomes trust mass, the fraction at
    /// or below `lower` becomes distrust mass, the remainder stays unknown.
    /// Empty history yields [`Self::vacuous`].
    pub fn from_scores(scores: &[f64], lower: f64, upper: f64) -> Self {
        if scores.is_empty() {
            return Self::vacuous();
        }
        let n = scores.len() as f64;
        let pos = scores.iter().filter(|&&s| s >= upper).count() as f64;
        let neg = scores.iter().filter(|&&s| s <= lower).count() as f64;
        BeliefMass::new(pos / n, neg / n, (n - pos - neg) / n)
    }

    /// Dempster's rule of combination. Returns `None` on total conflict
    /// (the normalization constant is zero).
    pub fn combine(&self, other: &BeliefMass) -> Option<BeliefMass> {
        let conflict = self.trust * other.distrust + self.distrust * other.trust;
        let k = 1.0 - conflict;
        if k <= f64::EPSILON {
            return None;
        }
        let trust =
            (self.trust * other.trust + self.trust * other.unknown + self.unknown * other.trust)
                / k;
        let distrust = (self.distrust * other.distrust
            + self.distrust * other.unknown
            + self.unknown * other.distrust)
            / k;
        let unknown = (self.unknown * other.unknown) / k;
        Some(BeliefMass {
            trust,
            distrust,
            unknown,
        })
    }

    /// Belief minus disbelief mapped onto `\[0, 1\]` — the scalar Yu & Singh
    /// compare against their trust threshold (they use `m(T) - m(¬T)` on
    /// `[-1, 1]`; we shift to the unit interval for the common API).
    pub fn trust_score(&self) -> f64 {
        ((self.trust - self.distrust) + 1.0) / 2.0
    }

    /// Whether the masses form a valid assignment.
    pub fn is_valid(&self) -> bool {
        self.trust >= -1e-9
            && self.distrust >= -1e-9
            && self.unknown >= -1e-9
            && (self.trust + self.distrust + self.unknown - 1.0).abs() < 1e-6
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn evidence_mapping_is_valid_and_sensible() {
        let o = Opinion::from_evidence(8.0, 2.0, 0.5);
        assert!(o.is_valid());
        assert!(o.b > o.d);
        assert!((o.expectation() - (8.0 / 12.0 + 0.5 * (2.0 / 12.0))).abs() < 1e-12);
    }

    #[test]
    fn vacuous_expectation_is_base_rate() {
        let o = Opinion::vacuous(0.3);
        assert!((o.expectation() - 0.3).abs() < 1e-12);
    }

    #[test]
    fn discounting_never_increases_belief() {
        let recommender = Opinion::from_evidence(5.0, 5.0, 0.5);
        let target = Opinion::from_evidence(20.0, 0.0, 0.5);
        let d = recommender.discount(&target);
        assert!(d.is_valid());
        assert!(d.b <= target.b + 1e-12);
        assert!(d.u >= target.u - 1e-12);
    }

    #[test]
    fn discount_through_full_distrust_is_vacuous_belief() {
        let distruster = Opinion {
            b: 0.0,
            d: 1.0,
            u: 0.0,
            a: 0.5,
        };
        let target = Opinion::from_evidence(100.0, 0.0, 0.5);
        let d = distruster.discount(&target);
        assert_eq!(d.b, 0.0);
        assert_eq!(d.u, 1.0);
    }

    #[test]
    fn consensus_reduces_uncertainty() {
        let a = Opinion::from_evidence(3.0, 1.0, 0.5);
        let b = Opinion::from_evidence(4.0, 0.0, 0.5);
        let c = a.consensus(&b);
        assert!(c.is_valid());
        assert!(c.u < a.u.min(b.u));
    }

    #[test]
    fn consensus_of_dogmatic_opinions_averages() {
        let a = Opinion {
            b: 1.0,
            d: 0.0,
            u: 0.0,
            a: 0.5,
        };
        let b = Opinion {
            b: 0.0,
            d: 1.0,
            u: 0.0,
            a: 0.5,
        };
        let c = a.consensus(&b);
        assert!((c.b - 0.5).abs() < 1e-12);
        assert!((c.d - 0.5).abs() < 1e-12);
    }

    #[test]
    fn belief_from_scores_buckets_correctly() {
        let m = BeliefMass::from_scores(&[0.9, 0.95, 0.1, 0.5], 0.3, 0.8);
        assert!((m.trust - 0.5).abs() < 1e-12);
        assert!((m.distrust - 0.25).abs() < 1e-12);
        assert!((m.unknown - 0.25).abs() < 1e-12);
        assert!(m.is_valid());
    }

    #[test]
    fn empty_scores_are_vacuous() {
        assert_eq!(
            BeliefMass::from_scores(&[], 0.3, 0.8),
            BeliefMass::vacuous()
        );
        assert_eq!(BeliefMass::vacuous().trust_score(), 0.5);
    }

    #[test]
    fn dempster_combination_reinforces_agreement() {
        let a = BeliefMass::new(0.6, 0.0, 0.4);
        let b = BeliefMass::new(0.7, 0.0, 0.3);
        let c = a.combine(&b).unwrap();
        assert!(c.trust > 0.7);
        assert!(c.is_valid());
    }

    #[test]
    fn total_conflict_yields_none() {
        let a = BeliefMass::new(1.0, 0.0, 0.0);
        let b = BeliefMass::new(0.0, 1.0, 0.0);
        assert_eq!(a.combine(&b), None);
    }

    #[test]
    #[should_panic(expected = "at least one mass")]
    fn zero_masses_panic() {
        BeliefMass::new(0.0, 0.0, 0.0);
    }

    proptest! {
        #[test]
        fn opinion_operators_preserve_simplex(
            r1 in 0.0f64..50.0, s1 in 0.0f64..50.0,
            r2 in 0.0f64..50.0, s2 in 0.0f64..50.0,
        ) {
            let a = Opinion::from_evidence(r1, s1, 0.5);
            let b = Opinion::from_evidence(r2, s2, 0.5);
            prop_assert!(a.discount(&b).is_valid());
            prop_assert!(a.consensus(&b).is_valid());
        }

        #[test]
        fn dempster_preserves_mass(
            t1 in 0.0f64..1.0, d1 in 0.0f64..1.0,
            t2 in 0.0f64..1.0, d2 in 0.0f64..1.0,
        ) {
            // Leave at least some unknown mass so conflict is never total.
            let a = BeliefMass::new(t1, d1, 0.5);
            let b = BeliefMass::new(t2, d2, 0.5);
            let c = a.combine(&b).expect("unknown mass prevents total conflict");
            prop_assert!(c.is_valid());
        }

        #[test]
        fn trust_score_in_unit_interval(t in 0.0f64..1.0, d in 0.0f64..1.0) {
            let m = BeliefMass::new(t, d, 0.1);
            prop_assert!((0.0..=1.0).contains(&m.trust_score()));
        }
    }
}
