//! The Figure 4 typology: three axes and the classification registry.
//!
//! The paper's central contribution is a three-level classification of
//! trust and reputation systems:
//!
//! * **Centralized vs. decentralized** — who manages reputation state;
//! * **Person/agent vs. resource** — whether people/agents or
//!   products/services are being scored;
//! * **Global vs. personalized** — whether everyone sees the same
//!   reputation or each member computes their own.
//!
//! Every mechanism in this crate self-reports its coordinates via
//! [`MechanismInfo`], and [`figure4`] reconstructs the paper's tree from
//! those reports — experiment `exp_fig4_tree` asserts the output matches
//! the published figure.

use serde::{Deserialize, Serialize};
use std::fmt;

/// First axis: where reputation state lives.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Centralization {
    /// "A central node will take all the responsibilities of managing
    /// reputations for all the members."
    Centralized,
    /// "The members in the system have to cooperate and share the
    /// responsibilities to manage reputation."
    Decentralized,
}

/// Second axis: what kind of entity is scored.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Subject {
    /// People or agents acting on behalf of people (eBay sellers, peers).
    PersonAgent,
    /// Resources: products or services (Amazon items, web services).
    Resource,
    /// Systems that score both (the paper's decentralized web-service
    /// branch is labelled "Person agent/resource").
    Both,
}

/// Third axis: whose opinion the reputation reflects.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Scope {
    /// One public value computed from the whole population.
    Global,
    /// Each member derives their own value from members they select.
    Personalized,
}

impl fmt::Display for Centralization {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Centralization::Centralized => "centralized",
            Centralization::Decentralized => "decentralized",
        })
    }
}

impl fmt::Display for Subject {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Subject::PersonAgent => "person/agent",
            Subject::Resource => "resource",
            Subject::Both => "person-agent/resource",
        })
    }
}

impl fmt::Display for Scope {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Scope::Global => "global",
            Scope::Personalized => "personalized",
        })
    }
}

/// A mechanism's coordinates in the typology, plus provenance.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct MechanismInfo {
    /// Short stable identifier (`"eigentrust"`, `"sporas"`, …).
    pub key: &'static str,
    /// Human-readable system name as the paper cites it.
    pub display: &'static str,
    /// First axis.
    pub centralization: Centralization,
    /// Second axis.
    pub subject: Subject,
    /// Third axis.
    pub scope: Scope,
    /// The survey's bracketed reference numbers for the system.
    pub citation: &'static str,
    /// Whether the paper marks it (bold + underline in Figure 4) as one of
    /// the mechanisms already proposed *for web services*.
    pub proposed_for_web_services: bool,
}

impl MechanismInfo {
    /// The `(centralization, subject, scope)` triple — the leaf position in
    /// Figure 4.
    pub fn coordinates(&self) -> (Centralization, Subject, Scope) {
        (self.centralization, self.subject, self.scope)
    }
}

impl fmt::Display for MechanismInfo {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} [{}]: {} / {} / {}",
            self.display, self.citation, self.centralization, self.subject, self.scope
        )
    }
}

/// The classification of every system named in Figure 4 of the paper, in
/// the figure's left-to-right order.
///
/// This is the *expected* classification; the mechanisms implemented in
/// [`crate::mechanisms`] each return their own [`MechanismInfo`], and the
/// test suite checks those agree with this table.
pub fn figure4() -> Vec<MechanismInfo> {
    use Centralization::*;
    use Scope::*;
    use Subject::*;
    vec![
        MechanismInfo {
            key: "ebay",
            display: "eBay",
            centralization: Centralized,
            subject: PersonAgent,
            scope: Global,
            citation: "7",
            proposed_for_web_services: false,
        },
        MechanismInfo {
            key: "sporas",
            display: "Sporas",
            centralization: Centralized,
            subject: PersonAgent,
            scope: Global,
            citation: "37",
            proposed_for_web_services: false,
        },
        MechanismInfo {
            key: "histos",
            display: "Histos",
            centralization: Centralized,
            subject: PersonAgent,
            scope: Personalized,
            citation: "37",
            proposed_for_web_services: false,
        },
        MechanismInfo {
            key: "pagerank",
            display: "Google PageRank",
            centralization: Centralized,
            subject: Resource,
            scope: Global,
            citation: "23",
            proposed_for_web_services: false,
        },
        MechanismInfo {
            key: "amazon",
            display: "Amazon",
            centralization: Centralized,
            subject: Resource,
            scope: Global,
            citation: "2",
            proposed_for_web_services: false,
        },
        MechanismInfo {
            key: "epinions",
            display: "Epinions",
            centralization: Centralized,
            subject: Resource,
            scope: Global,
            citation: "8",
            proposed_for_web_services: false,
        },
        MechanismInfo {
            key: "cf",
            display: "Collaborative filtering",
            centralization: Centralized,
            subject: Resource,
            scope: Personalized,
            citation: "3",
            proposed_for_web_services: false,
        },
        MechanismInfo {
            key: "maximilien",
            display: "E. M. Maximilien & M. P. Singh",
            centralization: Centralized,
            subject: Resource,
            scope: Personalized,
            citation: "18-21",
            proposed_for_web_services: true,
        },
        MechanismInfo {
            key: "lnz",
            display: "Y. Liu & A. Ngu & L. Zeng",
            centralization: Centralized,
            subject: Resource,
            scope: Personalized,
            citation: "16",
            proposed_for_web_services: true,
        },
        MechanismInfo {
            key: "manikrao",
            display: "U. S. Manikrao & T. V. Prabhakar",
            centralization: Centralized,
            subject: Resource,
            scope: Personalized,
            citation: "17",
            proposed_for_web_services: true,
        },
        MechanismInfo {
            key: "day",
            display: "J. Day",
            centralization: Centralized,
            subject: Resource,
            scope: Personalized,
            citation: "6",
            proposed_for_web_services: true,
        },
        MechanismInfo {
            key: "karta",
            display: "K. Karta",
            centralization: Centralized,
            subject: Resource,
            scope: Personalized,
            citation: "13",
            proposed_for_web_services: true,
        },
        MechanismInfo {
            key: "yu_singh",
            display: "B. Yu & M. Singh",
            centralization: Decentralized,
            subject: PersonAgent,
            scope: Personalized,
            citation: "35, 36",
            proposed_for_web_services: false,
        },
        MechanismInfo {
            key: "yolum_singh",
            display: "P. Yolum & M. Singh",
            centralization: Decentralized,
            subject: PersonAgent,
            scope: Personalized,
            citation: "34",
            proposed_for_web_services: false,
        },
        MechanismInfo {
            key: "damiani",
            display: "E. Damiani",
            centralization: Decentralized,
            subject: PersonAgent,
            scope: Personalized,
            citation: "4",
            proposed_for_web_services: false,
        },
        MechanismInfo {
            key: "wang_vassileva",
            display: "Y. Wang & J. Vassileva",
            centralization: Decentralized,
            subject: PersonAgent,
            scope: Personalized,
            citation: "30, 31",
            proposed_for_web_services: false,
        },
        MechanismInfo {
            key: "social",
            display: "Social-network topology analysis",
            centralization: Decentralized,
            subject: PersonAgent,
            scope: Global,
            citation: "24",
            proposed_for_web_services: false,
        },
        MechanismInfo {
            key: "complaints",
            display: "K. Aberer & Z. Despotovic",
            centralization: Decentralized,
            subject: PersonAgent,
            scope: Global,
            citation: "1",
            proposed_for_web_services: false,
        },
        MechanismInfo {
            key: "peertrust",
            display: "L. Xiong & L. Liu (PeerTrust)",
            centralization: Decentralized,
            subject: PersonAgent,
            scope: Global,
            citation: "33",
            proposed_for_web_services: false,
        },
        MechanismInfo {
            key: "eigentrust",
            display: "Kamvar, Schlosser & Garcia-Molina (EigenTrust)",
            centralization: Decentralized,
            subject: PersonAgent,
            scope: Global,
            citation: "11",
            proposed_for_web_services: false,
        },
        MechanismInfo {
            key: "vu",
            display: "L.-H. Vu, M. Hauswirth & K. Aberer",
            centralization: Decentralized,
            subject: Both,
            scope: Personalized,
            citation: "28, 29",
            proposed_for_web_services: true,
        },
    ]
}

/// Render the classification as the three-level tree of Figure 4. Systems
/// proposed for web services are marked with `*` (the paper uses bold and
/// underline).
pub fn render_figure4(entries: &[MechanismInfo]) -> String {
    use std::collections::BTreeMap;
    let mut tree: BTreeMap<(Centralization, Subject, Scope), Vec<&MechanismInfo>> = BTreeMap::new();
    for e in entries {
        tree.entry(e.coordinates()).or_default().push(e);
    }
    let mut out = String::from("Trust and Reputation System\n");
    let mut last: Option<(Centralization, Subject)> = None;
    for ((c, s, g), infos) in &tree {
        if last.map(|(lc, _)| lc) != Some(*c) {
            out.push_str(&format!("  {c}\n"));
        }
        if last != Some((*c, *s)) {
            out.push_str(&format!("    {s}\n"));
        }
        last = Some((*c, *s));
        out.push_str(&format!("      {g}\n"));
        for info in infos {
            let marker = if info.proposed_for_web_services {
                " *"
            } else {
                ""
            };
            out.push_str(&format!(
                "        {} [{}]{}\n",
                info.display, info.citation, marker
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure4_has_21_systems() {
        // The figure lists 21 system entries across its leaves.
        assert_eq!(figure4().len(), 21);
    }

    #[test]
    fn keys_are_unique() {
        let entries = figure4();
        let mut keys: Vec<_> = entries.iter().map(|e| e.key).collect();
        keys.sort();
        keys.dedup();
        assert_eq!(keys.len(), entries.len());
    }

    #[test]
    fn web_service_mechanisms_match_the_papers_bold_entries() {
        // The paper bolds [13, 16, 18-21] (plus Manikrao/Day in the
        // centralized-resource-personalized leaf) and Vu et al. in the
        // decentralized branch.
        let ws: Vec<_> = figure4()
            .into_iter()
            .filter(|e| e.proposed_for_web_services)
            .map(|e| e.key)
            .collect();
        assert_eq!(
            ws,
            vec!["maximilien", "lnz", "manikrao", "day", "karta", "vu"]
        );
    }

    #[test]
    fn all_ws_mechanisms_except_vu_are_centralized_resource_personalized() {
        // Section 5: "most of the current trust and reputation mechanisms
        // proposed for web services belong to one branch … centralized,
        // resources-based, and personalized".
        for e in figure4().iter().filter(|e| e.proposed_for_web_services) {
            if e.key == "vu" {
                assert_eq!(e.centralization, Centralization::Decentralized);
            } else {
                assert_eq!(
                    e.coordinates(),
                    (
                        Centralization::Centralized,
                        Subject::Resource,
                        Scope::Personalized
                    ),
                    "{}",
                    e.key
                );
            }
        }
    }

    #[test]
    fn ebay_is_centralized_person_global() {
        let e = figure4().into_iter().find(|e| e.key == "ebay").unwrap();
        assert_eq!(
            e.coordinates(),
            (
                Centralization::Centralized,
                Subject::PersonAgent,
                Scope::Global
            )
        );
    }

    #[test]
    fn eigentrust_is_decentralized_person_global() {
        let e = figure4()
            .into_iter()
            .find(|e| e.key == "eigentrust")
            .unwrap();
        assert_eq!(
            e.coordinates(),
            (
                Centralization::Decentralized,
                Subject::PersonAgent,
                Scope::Global
            )
        );
    }

    #[test]
    fn rendering_contains_all_axis_labels_and_marks() {
        let text = render_figure4(&figure4());
        for label in [
            "centralized",
            "decentralized",
            "person/agent",
            "resource",
            "global",
            "personalized",
        ] {
            assert!(text.contains(label), "missing {label}");
        }
        assert!(text.contains("EigenTrust"));
        assert!(text.contains("* ") || text.contains("]*") || text.contains("] *"));
    }

    #[test]
    fn display_formats_info() {
        let e = &figure4()[0];
        let s = e.to_string();
        assert!(s.contains("eBay"));
        assert!(s.contains("centralized"));
    }
}
