//! Amazon-style product reviews — reference \[2\].
//!
//! A *centralized, resource, global* system: items carry star ratings from
//! reviewers; the displayed reputation is an aggregate that weighs each
//! review by the reviewer's standing (Amazon surfaces "helpful" reviewers
//! and ranks them). We model reviewer standing as the fraction of helpful
//! votes their past reviews received.

use crate::feedback::Feedback;
use crate::id::{AgentId, SubjectId};
use crate::mechanism::{ReputationMechanism, SubjectAccumulator};
use crate::trust::{evidence_confidence, TrustEstimate, TrustValue};
use crate::typology::{Centralization, MechanismInfo, Scope, Subject};
use std::collections::BTreeMap;

/// One stored review.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Review {
    reviewer: AgentId,
    score: f64,
}

/// Amazon-style weighted review aggregation.
#[derive(Debug, Clone, Default)]
pub struct AmazonMechanism {
    reviews: BTreeMap<SubjectId, Vec<Review>>,
    /// Helpful/unhelpful votes per reviewer.
    helpfulness: BTreeMap<AgentId, (u64, u64)>,
    submitted: usize,
}

impl AmazonMechanism {
    /// Empty mechanism.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record a community vote on a reviewer's helpfulness ("Was this
    /// review helpful?").
    pub fn vote_helpful(&mut self, reviewer: AgentId, helpful: bool) {
        let e = self.helpfulness.entry(reviewer).or_insert((0, 0));
        if helpful {
            e.0 += 1;
        } else {
            e.1 += 1;
        }
    }

    /// A reviewer's weight in `[0.25, 1]`: Laplace-smoothed helpful
    /// fraction, floored so unknown reviewers still count somewhat.
    pub fn reviewer_weight(&self, reviewer: AgentId) -> f64 {
        match self.helpfulness.get(&reviewer) {
            None => 0.5,
            Some(&(h, u)) => ((h as f64 + 1.0) / ((h + u) as f64 + 2.0)).max(0.25),
        }
    }

    /// Number of reviews an item has.
    pub fn review_count(&self, subject: SubjectId) -> usize {
        self.reviews.get(&subject).map(Vec::len).unwrap_or(0)
    }
}

impl ReputationMechanism for AmazonMechanism {
    fn info(&self) -> MechanismInfo {
        MechanismInfo {
            key: "amazon",
            display: "Amazon",
            centralization: Centralization::Centralized,
            subject: Subject::Resource,
            scope: Scope::Global,
            citation: "2",
            proposed_for_web_services: false,
        }
    }

    fn submit(&mut self, feedback: &Feedback) {
        self.reviews
            .entry(feedback.subject)
            .or_default()
            .push(Review {
                reviewer: feedback.rater,
                score: feedback.score,
            });
        self.submitted += 1;
    }

    fn global(&self, subject: SubjectId) -> Option<TrustEstimate> {
        let reviews = self.reviews.get(&subject)?;
        if reviews.is_empty() {
            return None;
        }
        let mut num = 0.0;
        let mut den = 0.0;
        for r in reviews {
            let w = self.reviewer_weight(r.reviewer);
            num += w * r.score;
            den += w;
        }
        Some(TrustEstimate::new(
            TrustValue::new(num / den),
            evidence_confidence(reviews.len(), 4.0),
        ))
    }

    fn feedback_count(&self) -> usize {
        self.submitted
    }

    fn accumulator(&self) -> Option<Box<dyn SubjectAccumulator>> {
        Some(Box::new(AmazonAccumulator::default()))
    }
}

/// The Amazon fold. Helpfulness votes arrive out of band
/// ([`AmazonMechanism::vote_helpful`]), never through the feedback log,
/// so a replay through a fresh mechanism weighs every reviewer at the
/// neutral 0.5; the fold runs the same weighted sums incrementally (the
/// identical float operations, so estimates match replay bit-for-bit).
#[derive(Debug, Clone, Copy, Default)]
pub struct AmazonAccumulator {
    num: f64,
    den: f64,
    n: usize,
}

impl SubjectAccumulator for AmazonAccumulator {
    fn absorb(&mut self, feedback: &Feedback) {
        // `reviewer_weight` of a reviewer with no helpfulness votes.
        let w = 0.5;
        self.num += w * feedback.score;
        self.den += w;
        self.n += 1;
    }

    fn estimate(&self) -> Option<TrustEstimate> {
        if self.n == 0 {
            return None;
        }
        Some(TrustEstimate::new(
            TrustValue::new(self.num / self.den),
            evidence_confidence(self.n, 4.0),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::id::ServiceId;
    use crate::time::Time;

    fn fb(rater: u64, score: f64) -> Feedback {
        Feedback::scored(AgentId::new(rater), ServiceId::new(1), score, Time::ZERO)
    }

    #[test]
    fn unweighted_reviews_average() {
        let mut m = AmazonMechanism::new();
        m.submit(&fb(0, 1.0));
        m.submit(&fb(1, 0.0));
        let est = m.global(ServiceId::new(1).into()).unwrap();
        assert!((est.value.get() - 0.5).abs() < 1e-12);
        assert_eq!(m.review_count(ServiceId::new(1).into()), 2);
    }

    #[test]
    fn helpful_reviewers_move_the_aggregate() {
        let mut m = AmazonMechanism::new();
        // Reviewer 0 is highly helpful, reviewer 1 widely unhelpful.
        for _ in 0..20 {
            m.vote_helpful(AgentId::new(0), true);
            m.vote_helpful(AgentId::new(1), false);
        }
        m.submit(&fb(0, 1.0));
        m.submit(&fb(1, 0.0));
        let est = m.global(ServiceId::new(1).into()).unwrap();
        assert!(est.value.get() > 0.7, "got {}", est.value);
    }

    #[test]
    fn unhelpful_reviewer_weight_is_floored() {
        let mut m = AmazonMechanism::new();
        for _ in 0..100 {
            m.vote_helpful(AgentId::new(1), false);
        }
        assert!(m.reviewer_weight(AgentId::new(1)) >= 0.25);
    }

    #[test]
    fn unknown_reviewer_weight_is_neutral() {
        let m = AmazonMechanism::new();
        assert_eq!(m.reviewer_weight(AgentId::new(9)), 0.5);
    }

    #[test]
    fn unreviewed_item_has_no_reputation() {
        let m = AmazonMechanism::new();
        assert_eq!(m.global(ServiceId::new(9).into()), None);
    }

    #[test]
    fn confidence_grows_with_reviews() {
        let mut m = AmazonMechanism::new();
        m.submit(&fb(0, 0.8));
        let low = m.global(ServiceId::new(1).into()).unwrap().confidence;
        for i in 1..30 {
            m.submit(&fb(i, 0.8));
        }
        let high = m.global(ServiceId::new(1).into()).unwrap().confidence;
        assert!(high > low);
    }
}
