//! EigenTrust — Kamvar, Schlosser & Garcia-Molina (WWW 2003), ref. \[12\].
//!
//! *Decentralized, person/agent, global.* Each peer `i` holds normalized
//! local trust `c_ij = max(sat_ij, 0) / Σ_j max(sat_ij, 0)` derived from its
//! satisfaction with `j`; global trust is the stationary vector of
//!
//! ```text
//! t ← (1 − a) · Cᵀ t + a · p
//! ```
//!
//! where `p` puts mass on *pre-trusted* peers and `a` blends them in. This
//! module is the computation; `wsrep-net` runs the same iteration as a
//! message-passing protocol over a DHT, as the original system does.

use crate::feedback::Feedback;
use crate::id::SubjectId;
use crate::mechanism::ReputationMechanism;
use crate::time::Time;
use crate::trust::{TrustEstimate, TrustValue};
use crate::typology::{Centralization, MechanismInfo, Scope, Subject};
use std::collections::{BTreeMap, BTreeSet};

/// The EigenTrust computation.
#[derive(Debug, Clone)]
pub struct EigenTrustMechanism {
    /// Pre-trust mass `a` (the paper's recommendation is small, e.g. 0.1–0.2).
    alpha: f64,
    epsilon: f64,
    max_iter: usize,
    /// Satisfaction sums s_ij = Σ ratings (positive − negative mass).
    sat: BTreeMap<SubjectId, BTreeMap<SubjectId, f64>>,
    nodes: BTreeSet<SubjectId>,
    pre_trusted: BTreeSet<SubjectId>,
    cache: Option<BTreeMap<SubjectId, f64>>,
    submitted: usize,
}

impl Default for EigenTrustMechanism {
    fn default() -> Self {
        Self::new()
    }
}

impl EigenTrustMechanism {
    /// EigenTrust with `a = 0.15`, `ε = 1e-9`, 200 iterations max.
    pub fn new() -> Self {
        Self::with_params(0.15, 1e-9, 200)
    }

    /// EigenTrust with explicit parameters.
    ///
    /// # Panics
    ///
    /// Panics if `alpha` is outside `\[0, 1\]`.
    pub fn with_params(alpha: f64, epsilon: f64, max_iter: usize) -> Self {
        assert!((0.0..=1.0).contains(&alpha), "alpha must be in [0,1]");
        EigenTrustMechanism {
            alpha,
            epsilon,
            max_iter,
            sat: BTreeMap::new(),
            nodes: BTreeSet::new(),
            pre_trusted: BTreeSet::new(),
            cache: None,
            submitted: 0,
        }
    }

    /// Mark a subject as pre-trusted (a founding peer in the paper).
    pub fn pre_trust(&mut self, subject: impl Into<SubjectId>) {
        let s = subject.into();
        self.nodes.insert(s);
        self.pre_trusted.insert(s);
        self.cache = None;
    }

    /// Normalized local trust row of `i`: `c_ij` over all `j`.
    pub fn local_trust(&self, i: SubjectId) -> BTreeMap<SubjectId, f64> {
        let Some(row) = self.sat.get(&i) else {
            return BTreeMap::new();
        };
        let positives: BTreeMap<SubjectId, f64> = row
            .iter()
            .filter(|&(_, &v)| v > 0.0)
            .map(|(&j, &v)| (j, v))
            .collect();
        let total: f64 = positives.values().sum();
        if total <= 0.0 {
            return BTreeMap::new();
        }
        positives.into_iter().map(|(j, v)| (j, v / total)).collect()
    }

    /// Run (or reuse) the power iteration; the result sums to 1.
    pub fn global_trust(&mut self) -> BTreeMap<SubjectId, f64> {
        if let Some(c) = &self.cache {
            return c.clone();
        }
        let computed = self.compute();
        self.cache = Some(computed.clone());
        computed
    }

    /// Number of iterations the last computation would need (for the
    /// convergence benches): runs the iteration and returns the count.
    pub fn iterations_to_converge(&self) -> usize {
        self.run_iteration().1
    }

    fn compute(&self) -> BTreeMap<SubjectId, f64> {
        self.run_iteration().0
    }

    fn run_iteration(&self) -> (BTreeMap<SubjectId, f64>, usize) {
        let nodes: Vec<SubjectId> = self.nodes.iter().copied().collect();
        let n = nodes.len();
        if n == 0 {
            return (BTreeMap::new(), 0);
        }
        let index: BTreeMap<SubjectId, usize> =
            nodes.iter().enumerate().map(|(i, &s)| (s, i)).collect();
        // Pre-trust distribution p: uniform over pre-trusted peers, else
        // uniform over everyone (the paper's fallback).
        let p: Vec<f64> = if self.pre_trusted.is_empty() {
            vec![1.0 / n as f64; n]
        } else {
            let k = self.pre_trusted.len() as f64;
            nodes
                .iter()
                .map(|s| {
                    if self.pre_trusted.contains(s) {
                        1.0 / k
                    } else {
                        0.0
                    }
                })
                .collect()
        };
        // Normalized rows.
        let rows: Vec<BTreeMap<usize, f64>> = nodes
            .iter()
            .map(|&i| {
                self.local_trust(i)
                    .into_iter()
                    .map(|(j, v)| (index[&j], v))
                    .collect()
            })
            .collect();
        let mut t = p.clone();
        let mut iters = 0;
        for _ in 0..self.max_iter {
            iters += 1;
            let mut next = vec![0.0; n];
            let mut dangling = 0.0;
            for (i, row) in rows.iter().enumerate() {
                if row.is_empty() {
                    // Peers with no positive local trust defer to the
                    // pre-trusted distribution (the paper's c_ij = p_j rule).
                    dangling += t[i];
                } else {
                    for (&j, &c) in row {
                        next[j] += c * t[i];
                    }
                }
            }
            for (j, v) in next.iter_mut().enumerate() {
                *v = (1.0 - self.alpha) * (*v + dangling * p[j]) + self.alpha * p[j];
            }
            let delta: f64 = t.iter().zip(&next).map(|(a, b)| (a - b).abs()).sum();
            t = next;
            if delta < self.epsilon {
                break;
            }
        }
        (nodes.into_iter().zip(t).collect(), iters)
    }
}

impl ReputationMechanism for EigenTrustMechanism {
    fn info(&self) -> MechanismInfo {
        MechanismInfo {
            key: "eigentrust",
            display: "Kamvar, Schlosser & Garcia-Molina (EigenTrust)",
            centralization: Centralization::Decentralized,
            subject: Subject::PersonAgent,
            scope: Scope::Global,
            citation: "11",
            proposed_for_web_services: false,
        }
    }

    fn submit(&mut self, feedback: &Feedback) {
        let rater: SubjectId = feedback.rater.into();
        self.nodes.insert(rater);
        self.nodes.insert(feedback.subject);
        // sat_ij accumulates +1/−1 per the original's tr(i,j) definition.
        let delta = feedback.ebay_sign() as f64;
        *self
            .sat
            .entry(rater)
            .or_default()
            .entry(feedback.subject)
            .or_insert(0.0) += delta;
        self.cache = None;
        self.submitted += 1;
    }

    fn global(&self, subject: SubjectId) -> Option<TrustEstimate> {
        if !self.nodes.contains(&subject) {
            return None;
        }
        let trust = match &self.cache {
            Some(c) => c.clone(),
            None => self.compute(),
        };
        let max = trust.values().fold(f64::MIN, |a, &b| a.max(b));
        let v = trust.get(&subject).copied()?;
        let value = if max > 0.0 { v / max } else { 0.0 };
        Some(TrustEstimate::new(TrustValue::new(value), 1.0))
    }

    fn refresh(&mut self, _now: Time) {
        let _ = self.global_trust();
    }

    fn feedback_count(&self) -> usize {
        self.submitted
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::id::AgentId;

    fn fb(rater: u64, subject: u64, score: f64) -> Feedback {
        Feedback::scored(
            AgentId::new(rater),
            AgentId::new(subject),
            score,
            Time::ZERO,
        )
    }

    fn a(i: u64) -> SubjectId {
        AgentId::new(i).into()
    }

    /// 5 good peers rate each other up; 1 bad peer gets rated down.
    fn small_network() -> EigenTrustMechanism {
        let mut m = EigenTrustMechanism::new();
        m.pre_trust(AgentId::new(0));
        for i in 0..5u64 {
            for j in 0..5u64 {
                if i != j {
                    m.submit(&fb(i, j, 0.9));
                }
            }
            m.submit(&fb(i, 5, 0.1));
        }
        m
    }

    #[test]
    fn global_trust_sums_to_one() {
        let mut m = small_network();
        let t = m.global_trust();
        let total: f64 = t.values().sum();
        assert!((total - 1.0).abs() < 1e-6, "total={total}");
    }

    #[test]
    fn malicious_peer_gets_no_trust() {
        let mut m = small_network();
        let t = m.global_trust();
        let bad = t[&a(5)];
        for i in 0..5 {
            assert!(t[&a(i)] > bad, "peer {i} should outrank the bad peer");
        }
        let est = m.global(a(5)).unwrap();
        assert!(est.value.get() < 0.2);
    }

    #[test]
    fn pre_trusted_peers_anchor_the_computation() {
        // Nobody has rated anyone positively: all trust flows to p.
        let mut m = EigenTrustMechanism::new();
        m.pre_trust(AgentId::new(0));
        m.submit(&fb(1, 2, 0.1)); // a negative rating only
        let t = m.global_trust();
        let best = t
            .iter()
            .max_by(|x, y| x.1.partial_cmp(y.1).unwrap())
            .unwrap();
        assert_eq!(*best.0, a(0));
    }

    #[test]
    fn local_trust_rows_are_normalized() {
        let m = small_network();
        let row = m.local_trust(a(0));
        let total: f64 = row.values().sum();
        assert!((total - 1.0).abs() < 1e-9);
        assert!(!row.contains_key(&a(5)), "negative sat never normalizes in");
    }

    #[test]
    fn collusion_without_honest_inlinks_stays_low() {
        let mut m = EigenTrustMechanism::with_params(0.2, 1e-9, 200);
        // Honest cluster 0..3 with pre-trust.
        m.pre_trust(AgentId::new(0));
        for i in 0..3u64 {
            for j in 0..3u64 {
                if i != j {
                    m.submit(&fb(i, j, 0.9));
                }
            }
        }
        // Colluders 10, 11 praise each other madly but get no honest praise.
        for _ in 0..50 {
            m.submit(&fb(10, 11, 1.0));
            m.submit(&fb(11, 10, 1.0));
        }
        let t = m.global_trust();
        assert!(
            t[&a(10)] + t[&a(11)] < t[&a(0)],
            "collusion ring must not outrank the honest cluster"
        );
    }

    #[test]
    fn no_pre_trust_falls_back_to_uniform_prior() {
        let mut m = EigenTrustMechanism::new();
        m.submit(&fb(0, 1, 0.9));
        let t = m.global_trust();
        assert_eq!(t.len(), 2);
        assert!((t.values().sum::<f64>() - 1.0).abs() < 1e-6);
        assert!(t[&a(1)] > t[&a(0)], "rated-up peer gains");
    }

    #[test]
    fn empty_network_is_empty() {
        let mut m = EigenTrustMechanism::new();
        assert!(m.global_trust().is_empty());
        assert_eq!(m.global(a(0)), None);
    }

    #[test]
    fn iteration_count_is_reported() {
        let m = small_network();
        let iters = m.iterations_to_converge();
        assert!(iters > 0 && iters <= 200);
    }

    #[test]
    #[should_panic(expected = "alpha must be in [0,1]")]
    fn invalid_alpha_panics() {
        EigenTrustMechanism::with_params(1.5, 1e-9, 10);
    }
}
