//! Pujol, Sangüesa & Delgado — "Extracting reputation in multi agent
//! systems by means of social network topology" (AAMAS 2002), ref. \[24\].
//!
//! *Decentralized, person/agent, global.* NodeRanking infers reputation
//! purely from the **topology** of the social network — who is connected
//! to whom — without numeric ratings: an agent pointed to by well-regarded
//! agents is well-regarded. The ranking is a PageRank-flavoured recursive
//! authority measure that each node can compute from local knowledge.
//! Interactions (any feedback, positive or not) create social edges;
//! authority comes from the recursive rank.

use crate::feedback::Feedback;
use crate::id::SubjectId;
use crate::mechanism::ReputationMechanism;
use crate::time::Time;
use crate::trust::{TrustEstimate, TrustValue};
use crate::typology::{Centralization, MechanismInfo, Scope, Subject};
use std::collections::{BTreeMap, BTreeSet};

/// NodeRanking over the interaction-derived social graph.
#[derive(Debug, Clone)]
pub struct SocialMechanism {
    damping: f64,
    max_iter: usize,
    epsilon: f64,
    /// Directed social edges out of each node.
    out: BTreeMap<SubjectId, BTreeSet<SubjectId>>,
    nodes: BTreeSet<SubjectId>,
    cache: Option<BTreeMap<SubjectId, f64>>,
    submitted: usize,
}

impl Default for SocialMechanism {
    fn default() -> Self {
        Self::new()
    }
}

impl SocialMechanism {
    /// NodeRanking with damping 0.85.
    pub fn new() -> Self {
        SocialMechanism {
            damping: 0.85,
            max_iter: 100,
            epsilon: 1e-9,
            out: BTreeMap::new(),
            nodes: BTreeSet::new(),
            cache: None,
            submitted: 0,
        }
    }

    /// Add an explicit social edge.
    pub fn add_edge(&mut self, from: impl Into<SubjectId>, to: impl Into<SubjectId>) {
        let (from, to) = (from.into(), to.into());
        self.nodes.insert(from);
        self.nodes.insert(to);
        self.out.entry(from).or_default().insert(to);
        self.cache = None;
    }

    /// In-degree of a node (for the degree-baseline comparison).
    pub fn in_degree(&self, node: SubjectId) -> usize {
        self.out
            .values()
            .filter(|outs| outs.contains(&node))
            .count()
    }

    fn compute(&self) -> BTreeMap<SubjectId, f64> {
        let nodes: Vec<SubjectId> = self.nodes.iter().copied().collect();
        let n = nodes.len();
        if n == 0 {
            return BTreeMap::new();
        }
        let index: BTreeMap<SubjectId, usize> =
            nodes.iter().enumerate().map(|(i, &s)| (s, i)).collect();
        let mut rank = vec![1.0 / n as f64; n];
        for _ in 0..self.max_iter {
            let mut next = vec![(1.0 - self.damping) / n as f64; n];
            let mut dangling = 0.0;
            for (i, node) in nodes.iter().enumerate() {
                match self.out.get(node) {
                    Some(outs) if !outs.is_empty() => {
                        let share = self.damping * rank[i] / outs.len() as f64;
                        for o in outs {
                            next[index[o]] += share;
                        }
                    }
                    _ => dangling += self.damping * rank[i],
                }
            }
            let spread = dangling / n as f64;
            for v in next.iter_mut() {
                *v += spread;
            }
            let delta: f64 = rank.iter().zip(&next).map(|(a, b)| (a - b).abs()).sum();
            rank = next;
            if delta < self.epsilon {
                break;
            }
        }
        nodes.into_iter().zip(rank).collect()
    }
}

impl ReputationMechanism for SocialMechanism {
    fn info(&self) -> MechanismInfo {
        MechanismInfo {
            key: "social",
            display: "Social-network topology analysis",
            centralization: Centralization::Decentralized,
            subject: Subject::PersonAgent,
            scope: Scope::Global,
            citation: "24",
            proposed_for_web_services: false,
        }
    }

    fn submit(&mut self, feedback: &Feedback) {
        // Any interaction creates a social tie rater → subject; topology,
        // not the numeric score, is the signal (the paper's premise).
        let rater: SubjectId = feedback.rater.into();
        self.add_edge(rater, feedback.subject);
        self.submitted += 1;
    }

    fn global(&self, subject: SubjectId) -> Option<TrustEstimate> {
        if !self.nodes.contains(&subject) {
            return None;
        }
        let ranks = match &self.cache {
            Some(c) => c.clone(),
            None => self.compute(),
        };
        let max = ranks.values().fold(f64::MIN, |a, &b| a.max(b));
        let v = ranks.get(&subject).copied()?;
        Some(TrustEstimate::new(
            TrustValue::new(if max > 0.0 { v / max } else { 0.0 }),
            1.0,
        ))
    }

    fn refresh(&mut self, _now: Time) {
        if self.cache.is_none() {
            self.cache = Some(self.compute());
        }
    }

    fn feedback_count(&self) -> usize {
        self.submitted
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::id::AgentId;

    fn a(i: u64) -> SubjectId {
        AgentId::new(i).into()
    }

    #[test]
    fn hub_of_the_social_graph_ranks_highest() {
        let mut m = SocialMechanism::new();
        for i in 1..8 {
            m.add_edge(AgentId::new(i), AgentId::new(0));
        }
        m.add_edge(AgentId::new(1), AgentId::new(2));
        let hub = m.global(a(0)).unwrap();
        let other = m.global(a(2)).unwrap();
        assert_eq!(hub.value, TrustValue::MAX);
        assert!(other.value < hub.value);
    }

    #[test]
    fn interactions_create_ties_regardless_of_score() {
        let mut m = SocialMechanism::new();
        m.submit(&Feedback::scored(
            AgentId::new(1),
            AgentId::new(0),
            0.1, // even a bad interaction is a social tie here
            Time::ZERO,
        ));
        assert!(m.global(a(0)).is_some());
        assert_eq!(m.in_degree(a(0)), 1);
    }

    #[test]
    fn second_hand_standing_propagates() {
        let mut m = SocialMechanism::new();
        // 0 is a hub; 0 points at 5. Node 6 is pointed at by a nobody.
        for i in 1..6 {
            m.add_edge(AgentId::new(i), AgentId::new(0));
        }
        m.add_edge(AgentId::new(0), AgentId::new(50));
        m.add_edge(AgentId::new(40), AgentId::new(60));
        let via_hub = m.global(a(50)).unwrap();
        let via_nobody = m.global(a(60)).unwrap();
        assert!(via_hub.value > via_nobody.value);
    }

    #[test]
    fn unknown_node_is_none() {
        let m = SocialMechanism::new();
        assert_eq!(m.global(a(9)), None);
    }

    #[test]
    fn refresh_caches_ranks() {
        let mut m = SocialMechanism::new();
        m.add_edge(AgentId::new(0), AgentId::new(1));
        m.refresh(Time::ZERO);
        assert!(m.cache.is_some());
    }
}
