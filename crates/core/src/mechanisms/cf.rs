//! Collaborative filtering — Breese, Heckerman & Kadie \[3\]; Karta \[13\].
//!
//! The *centralized, resource, personalized* workhorse: predict how much
//! *this* consumer would like a service from the ratings of similar
//! consumers. Karta's technical report asks exactly which similarity
//! measure to use for web-service selection — Pearson correlation versus
//! vector (cosine) similarity — so both are implemented and selectable;
//! `exp_fig4_pers` reports them side by side.

use crate::feedback::Feedback;
use crate::id::{AgentId, SubjectId};
use crate::mechanism::ReputationMechanism;
use crate::trust::{evidence_confidence, TrustEstimate, TrustValue};
use crate::typology::{Centralization, MechanismInfo, Scope, Subject};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// The user–user similarity measure, Karta's design question.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Similarity {
    /// Pearson correlation over co-rated items (mean-centered).
    Pearson,
    /// Vector (cosine) similarity over co-rated items.
    Cosine,
}

/// Memory-based user–user collaborative filtering.
#[derive(Debug, Clone)]
pub struct CfMechanism {
    similarity: Similarity,
    /// Neighborhood size: only the top-k most similar users vote.
    top_k: usize,
    /// Identify as Karta's system in the typology (same algorithm family;
    /// the registry instantiates both leaves).
    karta_variant: bool,
    /// ratings[user][item] = latest score.
    ratings: BTreeMap<AgentId, BTreeMap<SubjectId, f64>>,
    submitted: usize,
}

impl CfMechanism {
    /// CF with the given similarity measure and a top-20 neighborhood.
    pub fn new(similarity: Similarity) -> Self {
        CfMechanism {
            similarity,
            top_k: 20,
            karta_variant: false,
            ratings: BTreeMap::new(),
            submitted: 0,
        }
    }

    /// The instantiation Karta \[13\] evaluated for web-service selection.
    pub fn karta() -> Self {
        CfMechanism {
            karta_variant: true,
            ..Self::new(Similarity::Pearson)
        }
    }

    /// Change the neighborhood size (builder style).
    pub fn with_top_k(mut self, k: usize) -> Self {
        self.top_k = k.max(1);
        self
    }

    /// Mean rating of a user over everything they rated.
    fn user_mean(&self, user: AgentId) -> Option<f64> {
        let r = self.ratings.get(&user)?;
        if r.is_empty() {
            return None;
        }
        Some(r.values().sum::<f64>() / r.len() as f64)
    }

    /// Similarity between two users over co-rated items, `None` if they
    /// share fewer than 2 items (1 for cosine).
    pub fn user_similarity(&self, a: AgentId, b: AgentId) -> Option<f64> {
        let ra = self.ratings.get(&a)?;
        let rb = self.ratings.get(&b)?;
        let common: Vec<(f64, f64)> = ra
            .iter()
            .filter_map(|(item, &va)| rb.get(item).map(|&vb| (va, vb)))
            .collect();
        match self.similarity {
            Similarity::Pearson => {
                if common.len() < 2 {
                    return None;
                }
                let ma = common.iter().map(|&(x, _)| x).sum::<f64>() / common.len() as f64;
                let mb = common.iter().map(|&(_, y)| y).sum::<f64>() / common.len() as f64;
                let mut num = 0.0;
                let mut da = 0.0;
                let mut db = 0.0;
                for &(x, y) in &common {
                    num += (x - ma) * (y - mb);
                    da += (x - ma) * (x - ma);
                    db += (y - mb) * (y - mb);
                }
                if da == 0.0 || db == 0.0 {
                    // Flat co-ratings: correlation undefined; agreeing flat
                    // raters are weakly similar.
                    return Some(0.0);
                }
                Some(num / (da.sqrt() * db.sqrt()))
            }
            Similarity::Cosine => {
                if common.is_empty() {
                    return None;
                }
                let num: f64 = common.iter().map(|&(x, y)| x * y).sum();
                let na: f64 = common.iter().map(|&(x, _)| x * x).sum::<f64>().sqrt();
                let nb: f64 = common.iter().map(|&(_, y)| y * y).sum::<f64>().sqrt();
                if na == 0.0 || nb == 0.0 {
                    return Some(0.0);
                }
                Some(num / (na * nb))
            }
        }
    }

    /// Predict `observer`'s rating for `item` by the standard
    /// deviation-from-mean weighted formula over the top-k neighbors.
    pub fn predict(&self, observer: AgentId, item: SubjectId) -> Option<f64> {
        // A user's own rating is the best prediction.
        if let Some(&own) = self.ratings.get(&observer).and_then(|r| r.get(&item)) {
            return Some(own);
        }
        let observer_mean = self.user_mean(observer).unwrap_or(0.5);
        let mut neighbors: Vec<(f64, f64, f64)> = Vec::new(); // (|sim|, sim, dev)
        for (&other, other_ratings) in &self.ratings {
            if other == observer {
                continue;
            }
            let Some(&rating) = other_ratings.get(&item) else {
                continue;
            };
            let Some(sim) = self.user_similarity(observer, other) else {
                continue;
            };
            if sim.abs() < 1e-9 {
                continue;
            }
            let other_mean = self.user_mean(other).unwrap_or(0.5);
            neighbors.push((sim.abs(), sim, rating - other_mean));
        }
        if neighbors.is_empty() {
            return None;
        }
        neighbors.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap_or(std::cmp::Ordering::Equal));
        neighbors.truncate(self.top_k);
        let num: f64 = neighbors.iter().map(|&(_, s, d)| s * d).sum();
        let den: f64 = neighbors.iter().map(|&(w, _, _)| w).sum();
        Some((observer_mean + num / den).clamp(0.0, 1.0))
    }

    /// Number of distinct users with ratings.
    pub fn user_count(&self) -> usize {
        self.ratings.len()
    }
}

impl ReputationMechanism for CfMechanism {
    fn info(&self) -> MechanismInfo {
        if self.karta_variant {
            MechanismInfo {
                key: "karta",
                display: "K. Karta",
                centralization: Centralization::Centralized,
                subject: Subject::Resource,
                scope: Scope::Personalized,
                citation: "13",
                proposed_for_web_services: true,
            }
        } else {
            MechanismInfo {
                key: "cf",
                display: "Collaborative filtering",
                centralization: Centralization::Centralized,
                subject: Subject::Resource,
                scope: Scope::Personalized,
                citation: "3",
                proposed_for_web_services: false,
            }
        }
    }

    fn submit(&mut self, feedback: &Feedback) {
        self.ratings
            .entry(feedback.rater)
            .or_default()
            .insert(feedback.subject, feedback.score);
        self.submitted += 1;
    }

    fn global(&self, subject: SubjectId) -> Option<TrustEstimate> {
        // Population view: mean of all users' latest ratings of the item.
        let ratings: Vec<f64> = self
            .ratings
            .values()
            .filter_map(|r| r.get(&subject).copied())
            .collect();
        if ratings.is_empty() {
            return None;
        }
        Some(TrustEstimate::new(
            TrustValue::new(ratings.iter().sum::<f64>() / ratings.len() as f64),
            evidence_confidence(ratings.len(), 3.0),
        ))
    }

    fn personalized(&self, observer: AgentId, subject: SubjectId) -> Option<TrustEstimate> {
        match self.predict(observer, subject) {
            Some(p) => Some(TrustEstimate::new(TrustValue::new(p), 0.8)),
            // Cold-start fallback: the population mean with its confidence.
            None => self.global(subject),
        }
    }

    fn feedback_count(&self) -> usize {
        self.submitted
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::id::ServiceId;
    use crate::time::Time;

    fn fb(rater: u64, item: u64, score: f64) -> Feedback {
        Feedback::scored(AgentId::new(rater), ServiceId::new(item), score, Time::ZERO)
    }

    /// Two taste camps: evens love items 0/1 and hate 2/3; odds opposite.
    fn two_camps(m: &mut CfMechanism) {
        for u in 0..8 {
            let loves_low = u % 2 == 0;
            for item in 0..4u64 {
                let good = (item < 2) == loves_low;
                m.submit(&fb(u, item, if good { 0.9 } else { 0.1 }));
            }
        }
    }

    #[test]
    fn pearson_detects_aligned_and_opposed_tastes() {
        let mut m = CfMechanism::new(Similarity::Pearson);
        two_camps(&mut m);
        let same = m.user_similarity(AgentId::new(0), AgentId::new(2)).unwrap();
        let opposite = m.user_similarity(AgentId::new(0), AgentId::new(1)).unwrap();
        assert!(same > 0.9);
        assert!(opposite < -0.9);
    }

    #[test]
    fn cosine_is_positive_for_nonnegative_ratings() {
        let mut m = CfMechanism::new(Similarity::Cosine);
        two_camps(&mut m);
        let sim = m.user_similarity(AgentId::new(0), AgentId::new(1)).unwrap();
        assert!(sim > 0.0, "cosine on non-negative data is non-negative");
    }

    #[test]
    fn prediction_follows_the_observers_camp() {
        let mut m = CfMechanism::new(Similarity::Pearson);
        two_camps(&mut m);
        // A new even-camp user who has rated only items 0 and 2.
        m.submit(&fb(100, 0, 0.9));
        m.submit(&fb(100, 2, 0.1));
        let p1 = m
            .predict(AgentId::new(100), ServiceId::new(1).into())
            .unwrap();
        let p3 = m
            .predict(AgentId::new(100), ServiceId::new(3).into())
            .unwrap();
        assert!(p1 > 0.7, "camp item predicted high, got {p1}");
        assert!(p3 < 0.3, "anti-camp item predicted low, got {p3}");
    }

    #[test]
    fn personalized_beats_global_for_polarized_items() {
        let mut m = CfMechanism::new(Similarity::Pearson);
        two_camps(&mut m);
        m.submit(&fb(100, 0, 0.9));
        m.submit(&fb(100, 2, 0.1));
        // Globally item 1 is a 50/50 split…
        let g = m.global(ServiceId::new(1).into()).unwrap();
        assert!((g.value.get() - 0.5).abs() < 0.05);
        // …but user 100's camp loves it.
        let p = m
            .personalized(AgentId::new(100), ServiceId::new(1).into())
            .unwrap();
        assert!(p.value.get() > 0.7);
    }

    #[test]
    fn own_rating_short_circuits_prediction() {
        let mut m = CfMechanism::new(Similarity::Pearson);
        two_camps(&mut m);
        m.submit(&fb(0, 0, 0.42));
        assert_eq!(
            m.predict(AgentId::new(0), ServiceId::new(0).into()),
            Some(0.42)
        );
    }

    #[test]
    fn cold_start_falls_back_to_population_mean() {
        let mut m = CfMechanism::new(Similarity::Pearson);
        m.submit(&fb(0, 0, 0.8));
        m.submit(&fb(1, 0, 0.6));
        // Observer 99 has no ratings at all.
        let est = m
            .personalized(AgentId::new(99), ServiceId::new(0).into())
            .unwrap();
        assert!((est.value.get() - 0.7).abs() < 1e-9);
    }

    #[test]
    fn no_data_yields_none() {
        let m = CfMechanism::new(Similarity::Cosine);
        assert_eq!(m.predict(AgentId::new(0), ServiceId::new(0).into()), None);
        assert_eq!(m.global(ServiceId::new(0).into()), None);
    }

    #[test]
    fn flat_corated_profile_gets_zero_similarity() {
        let mut m = CfMechanism::new(Similarity::Pearson);
        m.submit(&fb(0, 0, 0.5));
        m.submit(&fb(0, 1, 0.5));
        m.submit(&fb(1, 0, 0.5));
        m.submit(&fb(1, 1, 0.5));
        assert_eq!(
            m.user_similarity(AgentId::new(0), AgentId::new(1)),
            Some(0.0)
        );
    }

    #[test]
    fn too_few_corated_items_is_none_for_pearson() {
        let mut m = CfMechanism::new(Similarity::Pearson);
        m.submit(&fb(0, 0, 0.9));
        m.submit(&fb(1, 0, 0.9));
        assert_eq!(m.user_similarity(AgentId::new(0), AgentId::new(1)), None);
    }

    #[test]
    fn karta_variant_reports_its_own_identity() {
        assert_eq!(CfMechanism::karta().info().key, "karta");
        assert_eq!(CfMechanism::new(Similarity::Pearson).info().key, "cf");
    }

    #[test]
    fn predictions_are_clamped() {
        let mut m = CfMechanism::new(Similarity::Pearson).with_top_k(5);
        two_camps(&mut m);
        m.submit(&fb(100, 0, 1.0));
        m.submit(&fb(100, 2, 0.0));
        for item in 0..4u64 {
            if let Some(p) = m.predict(AgentId::new(100), ServiceId::new(item).into()) {
                assert!((0.0..=1.0).contains(&p));
            }
        }
    }
}
