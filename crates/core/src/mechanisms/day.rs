//! Day — "A Framework for Autonomic Web Service Selection" (MSc thesis,
//! University of Saskatchewan 2005), reference \[6\].
//!
//! *Centralized, resource, personalized.* Day proposed two selection
//! engines: a **rule-based expert system** over QoS attributes and a
//! **naïve Bayesian network** that classifies services as
//! acceptable/unacceptable from discretized QoS evidence. Both live here:
//! [`RuleEngine`] evaluates consumer-authored rules against a service's
//! observed QoS facets, and the mechanism's trust estimate is the naive
//! Bayes posterior P(good | facts).

use crate::feedback::Feedback;
use crate::id::{AgentId, SubjectId};
use crate::mechanism::ReputationMechanism;
use crate::trust::{evidence_confidence, TrustEstimate, TrustValue};
use crate::typology::{Centralization, MechanismInfo, Scope, Subject};
use std::collections::BTreeMap;
use wsrep_qos::metric::Metric;

/// Discretization level of an observed facet.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Level {
    /// Bottom tercile (normalized value < 1/3).
    Low,
    /// Middle tercile.
    Medium,
    /// Top tercile (normalized value ≥ 2/3).
    High,
}

impl Level {
    /// Discretize a normalized `\[0, 1\]` value into terciles.
    pub fn of(value: f64) -> Level {
        if value < 1.0 / 3.0 {
            Level::Low
        } else if value < 2.0 / 3.0 {
            Level::Medium
        } else {
            Level::High
        }
    }
}

/// A rule: "metric must be at least `level`".
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Rule {
    /// The facet the rule constrains.
    pub metric: Metric,
    /// The minimum acceptable level.
    pub at_least: Level,
}

/// Day's rule-based expert system: all rules must pass.
#[derive(Debug, Clone, Default)]
pub struct RuleEngine {
    rules: Vec<Rule>,
}

impl RuleEngine {
    /// Empty rule set (accepts everything).
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a rule (builder style).
    pub fn require(mut self, metric: Metric, at_least: Level) -> Self {
        self.rules.push(Rule { metric, at_least });
        self
    }

    /// Evaluate against per-facet normalized values. Missing facets fail
    /// their rule (no evidence, no pass).
    pub fn accepts(&self, facets: &BTreeMap<Metric, f64>) -> bool {
        self.rules.iter().all(|r| {
            facets
                .get(&r.metric)
                .map(|&v| Level::of(v) >= r.at_least)
                .unwrap_or(false)
        })
    }

    /// Number of rules.
    pub fn len(&self) -> usize {
        self.rules.len()
    }

    /// Whether the rule set is empty.
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }
}

/// Per-subject naive Bayes statistics.
#[derive(Debug, Clone, Default)]
struct Stats {
    good: f64,
    bad: f64,
    /// Per (metric, level): counts conditioned on class.
    facet_given_good: BTreeMap<(Metric, Level), f64>,
    facet_given_bad: BTreeMap<(Metric, Level), f64>,
    /// Most recent discretized facet profile of the subject.
    latest_facets: BTreeMap<Metric, Level>,
    n: usize,
}

/// Day's naive-Bayes service classifier.
#[derive(Debug, Clone, Default)]
pub struct DayMechanism {
    stats: BTreeMap<SubjectId, Stats>,
    /// Per-consumer rule sets for the expert-system path.
    rules: BTreeMap<AgentId, RuleEngine>,
    submitted: usize,
}

impl DayMechanism {
    /// Empty mechanism.
    pub fn new() -> Self {
        Self::default()
    }

    /// Install a consumer's rule set.
    pub fn set_rules(&mut self, consumer: AgentId, rules: RuleEngine) {
        self.rules.insert(consumer, rules);
    }

    /// Expert-system verdict: does `subject`'s latest facet profile pass
    /// `consumer`'s rules? `None` if the consumer has no rules installed.
    pub fn rules_accept(&self, consumer: AgentId, subject: SubjectId) -> Option<bool> {
        let engine = self.rules.get(&consumer)?;
        let facets: BTreeMap<Metric, f64> = self
            .stats
            .get(&subject)
            .map(|s| {
                s.latest_facets
                    .iter()
                    .map(|(&m, &l)| {
                        let v = match l {
                            Level::Low => 0.2,
                            Level::Medium => 0.5,
                            Level::High => 0.8,
                        };
                        (m, v)
                    })
                    .collect()
            })
            .unwrap_or_default();
        Some(engine.accepts(&facets))
    }

    /// Naive Bayes posterior P(good | subject's latest facet evidence),
    /// with Laplace smoothing.
    pub fn posterior(&self, subject: SubjectId) -> Option<f64> {
        let st = self.stats.get(&subject)?;
        if st.n == 0 {
            return None;
        }
        let total = st.good + st.bad;
        let p_good = (st.good + 1.0) / (total + 2.0);
        let p_bad = (st.bad + 1.0) / (total + 2.0);
        let mut log_good = p_good.ln();
        let mut log_bad = p_bad.ln();
        for (&metric, &level) in &st.latest_facets {
            let key = (metric, level);
            let fg = st.facet_given_good.get(&key).copied().unwrap_or(0.0);
            let fb = st.facet_given_bad.get(&key).copied().unwrap_or(0.0);
            // Laplace over the 3 levels.
            log_good += ((fg + 1.0) / (st.good + 3.0)).ln();
            log_bad += ((fb + 1.0) / (st.bad + 3.0)).ln();
        }
        let good = log_good.exp();
        let bad = log_bad.exp();
        Some(good / (good + bad))
    }
}

impl ReputationMechanism for DayMechanism {
    fn info(&self) -> MechanismInfo {
        MechanismInfo {
            key: "day",
            display: "J. Day",
            centralization: Centralization::Centralized,
            subject: Subject::Resource,
            scope: Scope::Personalized,
            citation: "6",
            proposed_for_web_services: true,
        }
    }

    fn submit(&mut self, feedback: &Feedback) {
        let st = self.stats.entry(feedback.subject).or_default();
        let good = feedback.is_positive(0.5);
        if good {
            st.good += 1.0;
        } else {
            st.bad += 1.0;
        }
        for (&metric, &rating) in &feedback.facet_ratings {
            let level = Level::of(rating);
            st.latest_facets.insert(metric, level);
            let table = if good {
                &mut st.facet_given_good
            } else {
                &mut st.facet_given_bad
            };
            *table.entry((metric, level)).or_insert(0.0) += 1.0;
        }
        st.n += 1;
        self.submitted += 1;
    }

    fn global(&self, subject: SubjectId) -> Option<TrustEstimate> {
        let posterior = self.posterior(subject)?;
        let n = self.stats.get(&subject).map(|s| s.n).unwrap_or(0);
        Some(TrustEstimate::new(
            TrustValue::new(posterior),
            evidence_confidence(n, 4.0),
        ))
    }

    fn personalized(&self, observer: AgentId, subject: SubjectId) -> Option<TrustEstimate> {
        let base = self.global(subject)?;
        // The expert system acts as a personalized veto: a service failing
        // the consumer's rules is floored to distrust.
        match self.rules_accept(observer, subject) {
            Some(false) => Some(TrustEstimate::new(TrustValue::MIN, base.confidence)),
            _ => Some(base),
        }
    }

    fn feedback_count(&self) -> usize {
        self.submitted
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::id::ServiceId;
    use crate::time::Time;

    fn fb(item: u64, score: f64, acc: f64) -> Feedback {
        Feedback::scored(AgentId::new(0), ServiceId::new(item), score, Time::ZERO)
            .with_facet(Metric::Accuracy, acc)
    }

    #[test]
    fn levels_discretize_terciles() {
        assert_eq!(Level::of(0.1), Level::Low);
        assert_eq!(Level::of(0.5), Level::Medium);
        assert_eq!(Level::of(0.9), Level::High);
        assert!(Level::High > Level::Low);
    }

    #[test]
    fn posterior_tracks_class_balance() {
        let mut m = DayMechanism::new();
        for _ in 0..2 {
            m.submit(&fb(1, 0.1, 0.1));
        }
        for _ in 0..10 {
            m.submit(&fb(1, 0.9, 0.9));
        }
        let p = m.posterior(ServiceId::new(1).into()).unwrap();
        assert!(p > 0.6, "got {p}");
    }

    #[test]
    fn facet_evidence_shifts_the_posterior() {
        let mut m = DayMechanism::new();
        // Good outcomes co-occur with high accuracy, bad with low.
        for _ in 0..10 {
            m.submit(&fb(1, 0.9, 0.9));
            m.submit(&fb(1, 0.1, 0.1));
        }
        // Latest evidence: high accuracy → should look good.
        m.submit(&fb(1, 0.9, 0.9));
        let p_high = m.posterior(ServiceId::new(1).into()).unwrap();
        // Now the latest evidence flips to low accuracy.
        m.submit(&fb(1, 0.1, 0.1));
        let p_low = m.posterior(ServiceId::new(1).into()).unwrap();
        assert!(p_high > p_low);
    }

    #[test]
    fn rules_all_must_pass() {
        let engine = RuleEngine::new()
            .require(Metric::Accuracy, Level::High)
            .require(Metric::ResponseTime, Level::Medium);
        let mut facets = BTreeMap::new();
        facets.insert(Metric::Accuracy, 0.9);
        facets.insert(Metric::ResponseTime, 0.5);
        assert!(engine.accepts(&facets));
        facets.insert(Metric::ResponseTime, 0.1);
        assert!(!engine.accepts(&facets));
    }

    #[test]
    fn missing_facet_fails_its_rule() {
        let engine = RuleEngine::new().require(Metric::Accuracy, Level::Low);
        assert!(!engine.accepts(&BTreeMap::new()));
        assert!(RuleEngine::new().accepts(&BTreeMap::new())); // vacuous
    }

    #[test]
    fn rule_veto_floors_personalized_trust() {
        let mut m = DayMechanism::new();
        for _ in 0..10 {
            m.submit(&fb(1, 0.9, 0.4)); // good service, medium accuracy
        }
        let s: SubjectId = ServiceId::new(1).into();
        m.set_rules(
            AgentId::new(5),
            RuleEngine::new().require(Metric::Accuracy, Level::High),
        );
        let vetoed = m.personalized(AgentId::new(5), s).unwrap();
        assert_eq!(vetoed.value, TrustValue::MIN);
        // An observer without rules sees the Bayes posterior.
        let plain = m.personalized(AgentId::new(6), s).unwrap();
        assert!(plain.value.get() > 0.6);
    }

    #[test]
    fn unknown_subject_is_none() {
        let m = DayMechanism::new();
        assert_eq!(m.posterior(ServiceId::new(9).into()), None);
        assert_eq!(m.global(ServiceId::new(9).into()), None);
    }
}
