//! The beta reputation system — Jøsang & Ismail; surveyed in reference \[11\].
//!
//! Not a leaf of Figure 4, but the probabilistic workhorse several leaves
//! build on (and the basis of the Whitby–Jøsang deviation filter in
//! `wsrep-robust`). Positive and negative evidence `(r, s)` accumulate with
//! a forgetting factor; the reputation is the expected value of the
//! Beta(r+1, s+1) posterior.

use crate::feedback::Feedback;
use crate::id::SubjectId;
use crate::mechanism::{ReputationMechanism, SubjectAccumulator};
use crate::time::Time;
use crate::trust::{evidence_confidence, TrustEstimate, TrustValue};
use crate::typology::{Centralization, MechanismInfo, Scope, Subject};
use std::collections::BTreeMap;

/// Accumulated beta evidence for one subject.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct BetaEvidence {
    /// Positive evidence mass `r`.
    pub r: f64,
    /// Negative evidence mass `s`.
    pub s: f64,
}

impl BetaEvidence {
    /// Expected value of the Beta(r+1, s+1) posterior.
    pub fn expectation(&self) -> f64 {
        (self.r + 1.0) / (self.r + self.s + 2.0)
    }

    /// Total evidence mass.
    pub fn total(&self) -> f64 {
        self.r + self.s
    }
}

/// Beta reputation with exponential forgetting.
#[derive(Debug, Clone)]
pub struct BetaMechanism {
    /// Forgetting factor `λ ∈ \[0, 1\]` applied per elapsed round:
    /// older evidence decays as `λ^age`. `1.0` disables forgetting.
    lambda: f64,
    evidence: BTreeMap<SubjectId, BetaEvidence>,
    last_update: BTreeMap<SubjectId, Time>,
    submitted: usize,
}

impl Default for BetaMechanism {
    fn default() -> Self {
        Self::new()
    }
}

impl BetaMechanism {
    /// Beta reputation with forgetting factor `λ = 0.98`.
    pub fn new() -> Self {
        Self::with_forgetting(0.98)
    }

    /// Beta reputation with an explicit forgetting factor.
    ///
    /// # Panics
    ///
    /// Panics if `lambda` is outside `\[0, 1\]`.
    pub fn with_forgetting(lambda: f64) -> Self {
        assert!((0.0..=1.0).contains(&lambda), "lambda must be in [0,1]");
        BetaMechanism {
            lambda,
            evidence: BTreeMap::new(),
            last_update: BTreeMap::new(),
            submitted: 0,
        }
    }

    /// The accumulated evidence about a subject.
    pub fn evidence(&self, subject: SubjectId) -> Option<BetaEvidence> {
        self.evidence.get(&subject).copied()
    }

    fn age_evidence(&mut self, subject: SubjectId, now: Time) {
        let last = self.last_update.get(&subject).copied().unwrap_or(now);
        let age = now.since(last);
        if age > 0 {
            if let Some(e) = self.evidence.get_mut(&subject) {
                let f = self.lambda.powi(age as i32);
                e.r *= f;
                e.s *= f;
            }
        }
        self.last_update.insert(subject, now);
    }
}

/// The beta fold: `(r, s)` mass plus the two timestamps the decay
/// schedule depends on. `absorb` mirrors `submit` (age to the report's
/// timestamp, then add mass); `estimate` applies the pending decay up to
/// the newest absorbed timestamp on the fly, exactly like the
/// `refresh(latest)` a log replay ends with.
#[derive(Debug, Clone, Copy)]
pub struct BetaAccumulator {
    lambda: f64,
    evidence: BetaEvidence,
    /// Timestamp the evidence mass is aged to (the last absorbed report's
    /// time — which moves *backwards* on out-of-order reports, exactly
    /// like `BetaMechanism::age_evidence` resetting `last_update`).
    aged_to: Time,
    /// Newest timestamp seen, the clock `estimate` decays forward to.
    latest: Time,
    absorbed: bool,
}

impl SubjectAccumulator for BetaAccumulator {
    fn absorb(&mut self, feedback: &Feedback) {
        if self.absorbed {
            let age = feedback.at.since(self.aged_to);
            if age > 0 {
                let f = self.lambda.powi(age as i32);
                self.evidence.r *= f;
                self.evidence.s *= f;
            }
        }
        self.aged_to = feedback.at;
        self.latest = self.latest.max(feedback.at);
        self.evidence.r += feedback.score;
        self.evidence.s += 1.0 - feedback.score;
        self.absorbed = true;
    }

    fn estimate(&self) -> Option<TrustEstimate> {
        if !self.absorbed {
            return None;
        }
        let mut e = self.evidence;
        let age = self.latest.since(self.aged_to);
        if age > 0 {
            let f = self.lambda.powi(age as i32);
            e.r *= f;
            e.s *= f;
        }
        Some(TrustEstimate::new(
            TrustValue::new(e.expectation()),
            evidence_confidence(e.total().round() as usize, 5.0),
        ))
    }
}

impl ReputationMechanism for BetaMechanism {
    fn info(&self) -> MechanismInfo {
        MechanismInfo {
            key: "beta",
            display: "Jøsang–Ismail beta reputation",
            centralization: Centralization::Centralized,
            subject: Subject::PersonAgent,
            scope: Scope::Global,
            citation: "11",
            proposed_for_web_services: false,
        }
    }

    fn submit(&mut self, feedback: &Feedback) {
        self.age_evidence(feedback.subject, feedback.at);
        let e = self.evidence.entry(feedback.subject).or_default();
        // A score of 0.8 contributes 0.8 positive and 0.2 negative mass —
        // the continuous-rating extension of the beta system.
        e.r += feedback.score;
        e.s += 1.0 - feedback.score;
        self.submitted += 1;
    }

    fn global(&self, subject: SubjectId) -> Option<TrustEstimate> {
        let e = self.evidence.get(&subject)?;
        Some(TrustEstimate::new(
            TrustValue::new(e.expectation()),
            evidence_confidence(e.total().round() as usize, 5.0),
        ))
    }

    fn refresh(&mut self, now: Time) {
        let subjects: Vec<SubjectId> = self.evidence.keys().copied().collect();
        for s in subjects {
            self.age_evidence(s, now);
        }
    }

    fn feedback_count(&self) -> usize {
        self.submitted
    }

    fn accumulator(&self) -> Option<Box<dyn SubjectAccumulator>> {
        Some(Box::new(BetaAccumulator {
            lambda: self.lambda,
            evidence: BetaEvidence::default(),
            aged_to: Time::ZERO,
            latest: Time::ZERO,
            absorbed: false,
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::id::{AgentId, ServiceId};
    use crate::mechanism::score_from_log;
    use proptest::prelude::*;

    fn fb(score: f64, t: u64) -> Feedback {
        Feedback::scored(AgentId::new(0), ServiceId::new(1), score, Time::new(t))
    }

    #[test]
    fn prior_is_one_half() {
        assert!((BetaEvidence::default().expectation() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn positive_history_raises_expectation() {
        let mut m = BetaMechanism::with_forgetting(1.0);
        for t in 0..10 {
            m.submit(&fb(1.0, t));
        }
        let est = m.global(ServiceId::new(1).into()).unwrap();
        assert!((est.value.get() - 11.0 / 12.0).abs() < 1e-12);
    }

    #[test]
    fn forgetting_rehabilitates_reformed_subjects() {
        let mut fast = BetaMechanism::with_forgetting(0.8);
        let mut never = BetaMechanism::with_forgetting(1.0);
        for t in 0..20 {
            let f = fb(0.0, t);
            fast.submit(&f);
            never.submit(&f);
        }
        for t in 50..70 {
            let f = fb(1.0, t);
            fast.submit(&f);
            never.submit(&f);
        }
        let fast_est = fast.global(ServiceId::new(1).into()).unwrap().value.get();
        let never_est = never.global(ServiceId::new(1).into()).unwrap().value.get();
        assert!(fast_est > 0.85, "old sins forgotten: {fast_est}");
        assert!(never_est < 0.6, "unforgetting stays sour: {never_est}");
    }

    #[test]
    fn refresh_decays_between_interactions() {
        let mut m = BetaMechanism::with_forgetting(0.5);
        m.submit(&fb(1.0, 0));
        let before = m.evidence(ServiceId::new(1).into()).unwrap().total();
        m.refresh(Time::new(4));
        let after = m.evidence(ServiceId::new(1).into()).unwrap().total();
        assert!((after - before * 0.5f64.powi(4)).abs() < 1e-12);
    }

    #[test]
    fn continuous_scores_split_mass() {
        let mut m = BetaMechanism::with_forgetting(1.0);
        m.submit(&fb(0.75, 0));
        let e = m.evidence(ServiceId::new(1).into()).unwrap();
        assert!((e.r - 0.75).abs() < 1e-12);
        assert!((e.s - 0.25).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "lambda must be in [0,1]")]
    fn bad_lambda_panics() {
        BetaMechanism::with_forgetting(1.2);
    }

    #[test]
    fn accumulator_matches_replay_with_out_of_order_timestamps() {
        let log = vec![fb(0.9, 5), fb(0.2, 2), fb(0.7, 9), fb(0.4, 9)];
        let mut acc = BetaMechanism::new().accumulator().unwrap();
        for f in &log {
            acc.absorb(f);
        }
        let replayed = score_from_log(&mut BetaMechanism::new(), &log, ServiceId::new(1).into());
        assert_eq!(acc.estimate(), replayed);
        assert_eq!(BetaMechanism::new().accumulator().unwrap().estimate(), None);
    }

    proptest! {
        #[test]
        fn expectation_always_in_unit_interval(
            scores in proptest::collection::vec((0.0f64..=1.0, 0u64..100), 1..50)
        ) {
            let mut m = BetaMechanism::new();
            let mut ts: Vec<_> = scores.clone();
            ts.sort_by_key(|&(_, t)| t);
            for (s, t) in ts {
                m.submit(&fb(s, t));
            }
            let est = m.global(ServiceId::new(1).into()).unwrap();
            prop_assert!((0.0..=1.0).contains(&est.value.get()));
        }
    }
}
