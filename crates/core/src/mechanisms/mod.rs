//! Implementations of every trust and reputation system classified in
//! Figure 4 of the survey, plus the beta-reputation building block.
//!
//! | module | system | typology leaf |
//! |---|---|---|
//! | [`ebay`] | eBay feedback profile \[7\] | centralized / person / global |
//! | [`sporas`] | Sporas \[37\] | centralized / person / global |
//! | [`histos`] | Histos \[37\] | centralized / person / personalized |
//! | [`pagerank`] | Google PageRank \[23\] | centralized / resource / global |
//! | [`amazon`] | Amazon reviews \[2\] | centralized / resource / global |
//! | [`epinions`] | Epinions \[8\] | centralized / resource / global |
//! | [`cf`] | Collaborative filtering \[3\], Karta \[13\] | centralized / resource / personalized |
//! | [`maximilien`] | Maximilien & Singh \[18-21\] | centralized / resource / personalized |
//! | [`lnz`] | Liu, Ngu & Zeng \[16\] | centralized / resource / personalized |
//! | [`manikrao`] | Manikrao & Prabhakar \[17\] | centralized / resource / personalized |
//! | [`day`] | Day \[6\] | centralized / resource / personalized |
//! | [`yu_singh`] | Yu & Singh \[35, 36\] | decentralized / person / personalized |
//! | [`yolum_singh`] | Yolum & Singh \[34\] | decentralized / person / personalized |
//! | [`damiani`] | Damiani et al. (XRep) \[4\] | decentralized / person / personalized |
//! | [`bayesian`] | Wang & Vassileva \[30, 31\] | decentralized / person / personalized |
//! | [`social`] | Pujol et al. NodeRanking \[24\] | decentralized / person / global |
//! | [`complaints`] | Aberer & Despotovic \[1\] | decentralized / person / global |
//! | [`peertrust`] | Xiong & Liu PeerTrust \[33\] | decentralized / person / global |
//! | [`eigentrust`] | Kamvar et al. EigenTrust \[12\] | decentralized / person / global |
//! | [`vu`] | Vu, Hauswirth & Aberer \[28, 29\] | decentralized / both / personalized |
//! | [`beta`] | Jøsang's beta reputation \[11\] | building block |
//!
//! The decentralized entries implement the mechanism's *computation*; the
//! message-passing embodiment on simulated overlays lives in `wsrep-net`.

pub mod amazon;
pub mod bayesian;
pub mod beta;
pub mod cf;
pub mod complaints;
pub mod damiani;
pub mod day;
pub mod ebay;
pub mod eigentrust;
pub mod epinions;
pub mod histos;
pub mod lnz;
pub mod manikrao;
pub mod maximilien;
pub mod pagerank;
pub mod peertrust;
pub mod social;
pub mod sporas;
pub mod vu;
pub mod yolum_singh;
pub mod yu_singh;

use crate::mechanism::ReputationMechanism;

/// One boxed instance of every Figure 4 mechanism, in the figure's order,
/// with default parameters. The experiment harness iterates this to fill
/// the typology grid.
pub fn all_figure4_mechanisms() -> Vec<Box<dyn ReputationMechanism>> {
    vec![
        Box::new(ebay::EbayMechanism::new()),
        Box::new(sporas::SporasMechanism::new()),
        Box::new(histos::HistosMechanism::new()),
        Box::new(pagerank::PageRankMechanism::new()),
        Box::new(amazon::AmazonMechanism::new()),
        Box::new(epinions::EpinionsMechanism::new()),
        Box::new(cf::CfMechanism::new(cf::Similarity::Pearson)),
        Box::new(maximilien::MaximilienMechanism::new()),
        Box::new(lnz::LnzMechanism::new()),
        Box::new(manikrao::ManikraoMechanism::new()),
        Box::new(day::DayMechanism::new()),
        Box::new(cf::CfMechanism::karta()),
        Box::new(yu_singh::YuSinghMechanism::new()),
        Box::new(yolum_singh::YolumSinghMechanism::new()),
        Box::new(damiani::DamianiMechanism::new()),
        Box::new(bayesian::BayesianMechanism::new()),
        Box::new(social::SocialMechanism::new()),
        Box::new(complaints::ComplaintsMechanism::new()),
        Box::new(peertrust::PeerTrustMechanism::new()),
        Box::new(eigentrust::EigenTrustMechanism::new()),
        Box::new(vu::VuMechanism::new()),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::typology::figure4;

    #[test]
    fn every_figure4_entry_is_implemented() {
        let implemented: Vec<&'static str> = all_figure4_mechanisms()
            .iter()
            .map(|m| m.info().key)
            .collect();
        for entry in figure4() {
            assert!(
                implemented.contains(&entry.key),
                "figure-4 system `{}` has no implementation",
                entry.key
            );
        }
    }

    #[test]
    fn implementations_agree_with_the_published_classification() {
        let expected = figure4();
        for m in all_figure4_mechanisms() {
            let info = m.info();
            let published = expected
                .iter()
                .find(|e| e.key == info.key)
                .unwrap_or_else(|| panic!("`{}` is not in Figure 4", info.key));
            assert_eq!(
                info.coordinates(),
                published.coordinates(),
                "`{}` classified differently from the paper",
                info.key
            );
        }
    }

    #[test]
    fn mechanisms_start_with_no_feedback() {
        for m in all_figure4_mechanisms() {
            assert_eq!(m.feedback_count(), 0, "{}", m.info().key);
        }
    }
}
