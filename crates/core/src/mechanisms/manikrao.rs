//! Manikrao & Prabhakar — "Dynamic Selection of Web Services with
//! Recommendation System" (NWeSP 2005), reference \[17\].
//!
//! *Centralized, resource, personalized.* Their selector combines a
//! recommendation-system core (user-based collaborative filtering over
//! service ratings) with a fallback for the sparse-data case: when the
//! requesting user has too little rating history for CF to find neighbors,
//! the system serves the community average and learns from the user's
//! subsequent feedback. That blend — CF prediction when available,
//! popularity prior otherwise, weighted by history size — is implemented
//! here on top of [`crate::mechanisms::cf`].

use crate::feedback::Feedback;
use crate::id::{AgentId, SubjectId};
use crate::mechanism::ReputationMechanism;
use crate::mechanisms::cf::{CfMechanism, Similarity};
use crate::trust::{evidence_confidence, TrustEstimate, TrustValue};
use crate::typology::{Centralization, MechanismInfo, Scope, Subject};
use std::collections::BTreeMap;

/// CF-backed recommender with a popularity fallback for sparse users.
#[derive(Debug)]
pub struct ManikraoMechanism {
    cf: CfMechanism,
    /// Ratings filed per user, to gauge how much CF can be trusted for them.
    user_history: BTreeMap<AgentId, usize>,
    /// How many own ratings make CF fully trusted (blend saturation).
    history_saturation: f64,
}

impl Default for ManikraoMechanism {
    fn default() -> Self {
        Self::new()
    }
}

impl ManikraoMechanism {
    /// Default: cosine similarity (their prototype's measure), saturation
    /// at 5 own ratings.
    pub fn new() -> Self {
        ManikraoMechanism {
            cf: CfMechanism::new(Similarity::Cosine),
            user_history: BTreeMap::new(),
            history_saturation: 5.0,
        }
    }

    /// How strongly the CF prediction is trusted for `observer` in `\[0,1\]`.
    pub fn cf_weight(&self, observer: AgentId) -> f64 {
        let n = self.user_history.get(&observer).copied().unwrap_or(0);
        evidence_confidence(n, self.history_saturation)
    }
}

impl ReputationMechanism for ManikraoMechanism {
    fn info(&self) -> MechanismInfo {
        MechanismInfo {
            key: "manikrao",
            display: "U. S. Manikrao & T. V. Prabhakar",
            centralization: Centralization::Centralized,
            subject: Subject::Resource,
            scope: Scope::Personalized,
            citation: "17",
            proposed_for_web_services: true,
        }
    }

    fn submit(&mut self, feedback: &Feedback) {
        self.cf.submit(feedback);
        *self.user_history.entry(feedback.rater).or_insert(0) += 1;
    }

    fn global(&self, subject: SubjectId) -> Option<TrustEstimate> {
        self.cf.global(subject)
    }

    fn personalized(&self, observer: AgentId, subject: SubjectId) -> Option<TrustEstimate> {
        let global = self.cf.global(subject);
        let prediction = self.cf.predict(observer, subject);
        match (prediction, global) {
            (Some(p), Some(g)) => {
                // Blend by history confidence: sparse users lean on the
                // community average, experienced users on CF.
                let w = self.cf_weight(observer);
                Some(TrustEstimate::new(
                    g.value.blend(TrustValue::new(p), w),
                    g.confidence.max(w),
                ))
            }
            (Some(p), None) => Some(TrustEstimate::new(TrustValue::new(p), 0.5)),
            (None, g) => g,
        }
    }

    fn feedback_count(&self) -> usize {
        self.cf.feedback_count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::id::ServiceId;
    use crate::time::Time;

    fn fb(rater: u64, item: u64, score: f64) -> Feedback {
        Feedback::scored(AgentId::new(rater), ServiceId::new(item), score, Time::ZERO)
    }

    #[test]
    fn sparse_user_gets_community_view() {
        let mut m = ManikraoMechanism::new();
        for u in 0..6 {
            m.submit(&fb(u, 0, 0.8));
        }
        // Observer 99 has never rated: fallback to community average.
        let est = m
            .personalized(AgentId::new(99), ServiceId::new(0).into())
            .unwrap();
        assert!((est.value.get() - 0.8).abs() < 1e-9);
        assert_eq!(m.cf_weight(AgentId::new(99)), 0.0);
    }

    #[test]
    fn experienced_user_leans_on_cf() {
        let mut m = ManikraoMechanism::new();
        // Two camps over items 0..4, like the CF tests.
        for u in 0..8 {
            let loves_low = u % 2 == 0;
            for item in 0..4u64 {
                let good = (item < 2) == loves_low;
                m.submit(&fb(u, item, if good { 0.9 } else { 0.1 }));
            }
        }
        // Experienced even-camp user.
        for item in [0u64, 2, 0, 2, 0, 2, 0, 2] {
            m.submit(&fb(100, item, if item == 0 { 0.9 } else { 0.1 }));
        }
        assert!(m.cf_weight(AgentId::new(100)) > 0.5);
        let est = m
            .personalized(AgentId::new(100), ServiceId::new(1).into())
            .unwrap();
        // Community view of item 1 is ~0.5; CF should push it up.
        assert!(est.value.get() > 0.6, "got {}", est.value);
    }

    #[test]
    fn global_equals_cf_global() {
        let mut m = ManikraoMechanism::new();
        m.submit(&fb(0, 0, 0.6));
        m.submit(&fb(1, 0, 0.8));
        let est = m.global(ServiceId::new(0).into()).unwrap();
        assert!((est.value.get() - 0.7).abs() < 1e-9);
    }

    #[test]
    fn unknown_item_is_none() {
        let m = ManikraoMechanism::new();
        assert_eq!(
            m.personalized(AgentId::new(0), ServiceId::new(9).into()),
            None
        );
    }
}
