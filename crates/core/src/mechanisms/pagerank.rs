//! PageRank — Page, Brin, Motwani & Winograd, reference \[23\].
//!
//! The survey classifies Google's PageRank as a *centralized, resource,
//! global* reputation system: a page's standing derives from the standing
//! of the pages endorsing it. Here an endorsement edge is created whenever
//! a rater gives positive feedback about a subject; rank is the standard
//! damped power iteration over the endorsement graph.

use crate::feedback::Feedback;
use crate::id::SubjectId;
use crate::mechanism::ReputationMechanism;
use crate::trust::{TrustEstimate, TrustValue};
use crate::typology::{Centralization, MechanismInfo, Scope, Subject};
use std::collections::{BTreeMap, BTreeSet};

/// Damped PageRank over an endorsement graph.
#[derive(Debug, Clone)]
pub struct PageRankMechanism {
    /// Damping factor `d` (0.85 in the original paper).
    damping: f64,
    /// Convergence threshold on the L1 change per iteration.
    epsilon: f64,
    /// Hard cap on iterations.
    max_iter: usize,
    /// Endorsement edges: endorser → set of endorsed subjects.
    edges: BTreeMap<SubjectId, BTreeSet<SubjectId>>,
    /// All nodes ever seen (isolated nodes still get the base rank).
    nodes: BTreeSet<SubjectId>,
    /// Cached ranks, invalidated on new edges.
    cache: Option<BTreeMap<SubjectId, f64>>,
    submitted: usize,
}

impl Default for PageRankMechanism {
    fn default() -> Self {
        Self::new()
    }
}

impl PageRankMechanism {
    /// PageRank with `d = 0.85`, `ε = 1e-9`, 200 iterations max.
    pub fn new() -> Self {
        Self::with_params(0.85, 1e-9, 200)
    }

    /// PageRank with explicit parameters.
    ///
    /// # Panics
    ///
    /// Panics if `damping` is outside `(0, 1)`.
    pub fn with_params(damping: f64, epsilon: f64, max_iter: usize) -> Self {
        assert!(damping > 0.0 && damping < 1.0, "damping must be in (0,1)");
        PageRankMechanism {
            damping,
            epsilon,
            max_iter,
            edges: BTreeMap::new(),
            nodes: BTreeSet::new(),
            cache: None,
            submitted: 0,
        }
    }

    /// Add an explicit endorsement edge (used when building link graphs
    /// directly rather than from feedback).
    pub fn endorse(&mut self, from: impl Into<SubjectId>, to: impl Into<SubjectId>) {
        let (from, to) = (from.into(), to.into());
        self.nodes.insert(from);
        self.nodes.insert(to);
        self.edges.entry(from).or_default().insert(to);
        self.cache = None;
    }

    /// Run (or reuse) the power iteration and return all ranks. Ranks sum
    /// to 1 over all nodes.
    pub fn ranks(&mut self) -> BTreeMap<SubjectId, f64> {
        if let Some(c) = &self.cache {
            return c.clone();
        }
        let computed = self.compute();
        self.cache = Some(computed.clone());
        computed
    }

    fn compute(&self) -> BTreeMap<SubjectId, f64> {
        let nodes: Vec<SubjectId> = self.nodes.iter().copied().collect();
        let n = nodes.len();
        if n == 0 {
            return BTreeMap::new();
        }
        let index: BTreeMap<SubjectId, usize> =
            nodes.iter().enumerate().map(|(i, &s)| (s, i)).collect();
        let mut rank = vec![1.0 / n as f64; n];
        for _ in 0..self.max_iter {
            let mut next = vec![(1.0 - self.damping) / n as f64; n];
            let mut dangling = 0.0;
            for (i, node) in nodes.iter().enumerate() {
                match self.edges.get(node) {
                    Some(outs) if !outs.is_empty() => {
                        let share = self.damping * rank[i] / outs.len() as f64;
                        for out in outs {
                            next[index[out]] += share;
                        }
                    }
                    // Dangling nodes spread their rank uniformly, keeping
                    // the distribution stochastic.
                    _ => dangling += self.damping * rank[i],
                }
            }
            let spread = dangling / n as f64;
            for v in next.iter_mut() {
                *v += spread;
            }
            let delta: f64 = rank.iter().zip(&next).map(|(a, b)| (a - b).abs()).sum();
            rank = next;
            if delta < self.epsilon {
                break;
            }
        }
        nodes.into_iter().zip(rank).collect()
    }
}

impl ReputationMechanism for PageRankMechanism {
    fn info(&self) -> MechanismInfo {
        MechanismInfo {
            key: "pagerank",
            display: "Google PageRank",
            centralization: Centralization::Centralized,
            subject: Subject::Resource,
            scope: Scope::Global,
            citation: "23",
            proposed_for_web_services: false,
        }
    }

    fn submit(&mut self, feedback: &Feedback) {
        // Positive feedback endorses; other feedback only registers nodes.
        let rater: SubjectId = feedback.rater.into();
        self.nodes.insert(rater);
        self.nodes.insert(feedback.subject);
        if feedback.ebay_sign() == 1 {
            self.edges
                .entry(rater)
                .or_default()
                .insert(feedback.subject);
        }
        self.cache = None;
        self.submitted += 1;
    }

    fn global(&self, subject: SubjectId) -> Option<TrustEstimate> {
        if !self.nodes.contains(&subject) {
            return None;
        }
        // Query without &mut self: use the cache when warm, else compute.
        let ranks = match &self.cache {
            Some(c) => c.clone(),
            None => self.compute(),
        };
        let max = ranks.values().fold(f64::MIN, |a, &b| a.max(b));
        let r = ranks.get(&subject).copied()?;
        // Normalize by the max rank so the best node maps to trust 1.
        let value = if max > 0.0 { r / max } else { 0.0 };
        Some(TrustEstimate::new(TrustValue::new(value), 1.0))
    }

    fn refresh(&mut self, _now: crate::time::Time) {
        // Recompute eagerly once per round so queries hit the cache.
        let _ = self.ranks();
    }

    fn feedback_count(&self) -> usize {
        self.submitted
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::id::{AgentId, ServiceId};
    use crate::time::Time;

    fn s(i: u64) -> SubjectId {
        ServiceId::new(i).into()
    }

    #[test]
    fn ranks_sum_to_one() {
        let mut m = PageRankMechanism::new();
        m.endorse(ServiceId::new(0), ServiceId::new(1));
        m.endorse(ServiceId::new(1), ServiceId::new(2));
        m.endorse(ServiceId::new(2), ServiceId::new(0));
        let total: f64 = m.ranks().values().sum();
        assert!((total - 1.0).abs() < 1e-6);
    }

    #[test]
    fn heavily_endorsed_node_outranks_others() {
        let mut m = PageRankMechanism::new();
        for i in 1..=5 {
            m.endorse(ServiceId::new(i), ServiceId::new(0));
        }
        m.endorse(ServiceId::new(1), ServiceId::new(2));
        let ranks = m.ranks();
        let hub = ranks[&s(0)];
        assert!(ranks.iter().all(|(&k, &v)| k == s(0) || v <= hub));
        let est = m.global(s(0)).unwrap();
        assert_eq!(est.value, TrustValue::MAX);
    }

    #[test]
    fn endorsement_from_important_node_counts_more() {
        let mut m = PageRankMechanism::new();
        // Node 0 is made important by many endorsements.
        for i in 10..20 {
            m.endorse(ServiceId::new(i), ServiceId::new(0));
        }
        // 0 endorses A; an unimportant node endorses B.
        m.endorse(ServiceId::new(0), ServiceId::new(100));
        m.endorse(ServiceId::new(50), ServiceId::new(101));
        let ranks = m.ranks();
        assert!(ranks[&s(100)] > ranks[&s(101)]);
    }

    #[test]
    fn feedback_builds_the_graph() {
        let mut m = PageRankMechanism::new();
        m.submit(&Feedback::scored(
            AgentId::new(0),
            ServiceId::new(1),
            0.9,
            Time::ZERO,
        ));
        m.submit(&Feedback::scored(
            AgentId::new(0),
            ServiceId::new(2),
            0.1, // negative: registers the node but adds no endorsement
            Time::ZERO,
        ));
        assert!(m.global(s(1)).unwrap().value.get() > m.global(s(2)).unwrap().value.get());
    }

    #[test]
    fn unknown_subject_is_none_and_empty_graph_is_empty() {
        let mut m = PageRankMechanism::new();
        assert_eq!(m.global(s(7)), None);
        assert!(m.ranks().is_empty());
    }

    #[test]
    fn dangling_nodes_do_not_leak_rank() {
        let mut m = PageRankMechanism::new();
        m.endorse(ServiceId::new(0), ServiceId::new(1)); // 1 is dangling
        let total: f64 = m.ranks().values().sum();
        assert!((total - 1.0).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "damping must be in (0,1)")]
    fn invalid_damping_panics() {
        PageRankMechanism::with_params(1.0, 1e-9, 10);
    }

    #[test]
    fn refresh_warms_the_cache() {
        let mut m = PageRankMechanism::new();
        m.endorse(ServiceId::new(0), ServiceId::new(1));
        m.refresh(Time::ZERO);
        assert!(m.cache.is_some());
        let est = m.global(s(1)).unwrap();
        assert!(est.value.get() > 0.0);
    }
}
