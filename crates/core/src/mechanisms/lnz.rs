//! Liu, Ngu & Zeng — "QoS computation and policing in dynamic web service
//! selection" (WWW 2004), reference \[16\].
//!
//! The canonical *centralized, resource, personalized* QoS-registry
//! algorithm: consumers report observed QoS values; the registry arranges
//! all matching services into the normalization matrix (see
//! [`wsrep_qos::normalize`]) and returns a per-consumer weighted overall
//! rating. The "policing" part — only accepting reports from consumers who
//! actually executed the service — appears here as report counting per
//! (rater, subject).

use crate::feedback::Feedback;
use crate::id::{AgentId, SubjectId};
use crate::mechanism::ReputationMechanism;
use crate::trust::{evidence_confidence, TrustEstimate, TrustValue};
use crate::typology::{Centralization, MechanismInfo, Scope, Subject};
use std::collections::BTreeMap;
use wsrep_qos::metric::Metric;
use wsrep_qos::normalize::NormalizationMatrix;
use wsrep_qos::preference::Preferences;
use wsrep_qos::value::QosVector;

/// The Liu–Ngu–Zeng QoS registry.
#[derive(Debug, Clone, Default)]
pub struct LnzMechanism {
    /// Running per-subject mean of reported QoS values (EMA).
    reported: BTreeMap<SubjectId, QosVector>,
    counts: BTreeMap<SubjectId, usize>,
    /// Per-consumer preference profiles (registered consumer profiles).
    profiles: BTreeMap<AgentId, Preferences>,
    submitted: usize,
}

impl LnzMechanism {
    /// Empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register (or update) a consumer's preference profile. Consumers
    /// without a profile are served the uniform-weight view.
    pub fn set_profile(&mut self, consumer: AgentId, prefs: Preferences) {
        self.profiles.insert(consumer, prefs);
    }

    /// The metrics any report has mentioned, in stable order.
    fn metrics(&self) -> Vec<Metric> {
        let mut ms: Vec<Metric> = self.reported.values().flat_map(|v| v.metrics()).collect();
        ms.sort();
        ms.dedup();
        ms
    }

    /// Compute the overall rating of every known subject under `prefs`,
    /// best first. This is the full "QoS computation" of the paper.
    pub fn rank(&self, prefs: &Preferences) -> Vec<(SubjectId, f64)> {
        let subjects: Vec<SubjectId> = self.reported.keys().copied().collect();
        let vectors: Vec<QosVector> = subjects.iter().map(|s| self.reported[s].clone()).collect();
        let metrics = self.metrics();
        let matrix = NormalizationMatrix::new(&vectors, &metrics);
        matrix
            .scores(prefs)
            .into_iter()
            .map(|sc| (subjects[sc.candidate], sc.score))
            .collect()
    }

    fn estimate_for(&self, prefs: &Preferences, subject: SubjectId) -> Option<TrustEstimate> {
        if !self.reported.contains_key(&subject) {
            return None;
        }
        let ranked = self.rank(prefs);
        let score = ranked.iter().find(|&&(s, _)| s == subject)?.1;
        let n = self.counts.get(&subject).copied().unwrap_or(0);
        Some(TrustEstimate::new(
            TrustValue::new(score),
            evidence_confidence(n, 3.0),
        ))
    }
}

impl ReputationMechanism for LnzMechanism {
    fn info(&self) -> MechanismInfo {
        MechanismInfo {
            key: "lnz",
            display: "Y. Liu & A. Ngu & L. Zeng",
            centralization: Centralization::Centralized,
            subject: Subject::Resource,
            scope: Scope::Personalized,
            citation: "16",
            proposed_for_web_services: true,
        }
    }

    fn submit(&mut self, feedback: &Feedback) {
        if feedback.observed.is_empty() {
            // LNZ consumes measured QoS; a bare score carries no signal for
            // the matrix but still counts as an execution report.
        } else {
            let entry = self.reported.entry(feedback.subject).or_default();
            entry.ema_update(&feedback.observed, 0.2);
        }
        *self.counts.entry(feedback.subject).or_insert(0) += 1;
        self.submitted += 1;
    }

    fn global(&self, subject: SubjectId) -> Option<TrustEstimate> {
        let metrics = self.metrics();
        let prefs = Preferences::uniform(metrics);
        self.estimate_for(&prefs, subject)
    }

    fn personalized(&self, observer: AgentId, subject: SubjectId) -> Option<TrustEstimate> {
        match self.profiles.get(&observer) {
            Some(prefs) => self.estimate_for(prefs, subject),
            None => self.global(subject),
        }
    }

    fn feedback_count(&self) -> usize {
        self.submitted
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::id::ServiceId;
    use crate::time::Time;

    fn report(rater: u64, item: u64, rt: f64, price: f64) -> Feedback {
        Feedback::scored(AgentId::new(rater), ServiceId::new(item), 0.5, Time::ZERO).with_observed(
            QosVector::from_pairs([(Metric::ResponseTime, rt), (Metric::Price, price)]),
        )
    }

    fn seeded() -> LnzMechanism {
        let mut m = LnzMechanism::new();
        m.submit(&report(0, 0, 50.0, 10.0)); // fast, pricey
        m.submit(&report(1, 1, 200.0, 1.0)); // slow, cheap
        m
    }

    #[test]
    fn personalized_ranking_follows_profile() {
        let mut m = seeded();
        m.set_profile(
            AgentId::new(7),
            Preferences::from_weights([(Metric::ResponseTime, 0.9), (Metric::Price, 0.1)]),
        );
        m.set_profile(
            AgentId::new(8),
            Preferences::from_weights([(Metric::ResponseTime, 0.1), (Metric::Price, 0.9)]),
        );
        let fast = SubjectId::from(ServiceId::new(0));
        let cheap = SubjectId::from(ServiceId::new(1));
        let speedster_view = m.personalized(AgentId::new(7), fast).unwrap();
        let speedster_other = m.personalized(AgentId::new(7), cheap).unwrap();
        assert!(speedster_view.value > speedster_other.value);
        let saver_view = m.personalized(AgentId::new(8), cheap).unwrap();
        let saver_other = m.personalized(AgentId::new(8), fast).unwrap();
        assert!(saver_view.value > saver_other.value);
    }

    #[test]
    fn unknown_profile_gets_global_view() {
        let m = seeded();
        let fast = SubjectId::from(ServiceId::new(0));
        assert_eq!(m.personalized(AgentId::new(99), fast), m.global(fast));
    }

    #[test]
    fn rank_orders_best_first() {
        let m = seeded();
        let prefs = Preferences::uniform([Metric::ResponseTime]);
        let ranked = m.rank(&prefs);
        assert_eq!(ranked[0].0, SubjectId::from(ServiceId::new(0)));
        assert!(ranked[0].1 >= ranked[1].1);
    }

    #[test]
    fn reports_accumulate_via_ema() {
        let mut m = LnzMechanism::new();
        m.submit(&report(0, 0, 100.0, 5.0));
        m.submit(&report(1, 0, 200.0, 5.0));
        let stored = m.reported[&SubjectId::from(ServiceId::new(0))]
            .get(Metric::ResponseTime)
            .unwrap();
        assert!(stored > 100.0 && stored < 200.0);
    }

    #[test]
    fn unreported_subject_is_none() {
        let m = seeded();
        assert_eq!(m.global(ServiceId::new(42).into()), None);
    }

    #[test]
    fn bare_scores_count_but_carry_no_qos() {
        let mut m = LnzMechanism::new();
        m.submit(&Feedback::scored(
            AgentId::new(0),
            ServiceId::new(0),
            0.9,
            Time::ZERO,
        ));
        assert_eq!(m.feedback_count(), 1);
        assert_eq!(m.global(ServiceId::new(0).into()), None);
    }
}
