//! Yu & Singh — "Distributed Reputation Management for Electronic
//! Commerce" (Computational Intelligence 2002) and the large-scale P2P
//! follow-up, references \[35, 36\].
//!
//! *Decentralized, person/agent, personalized.* Each agent keeps a window
//! of recent interaction qualities per partner and turns it into a
//! **Dempster–Shafer belief mass** over {trustworthy, ¬trustworthy} using
//! upper/lower satisfaction thresholds. When local evidence is
//! insufficient, the agent queries **witnesses** located through referral
//! chains in its acquaintance network and combines their testimonies with
//! Dempster's rule.

use crate::feedback::Feedback;
use crate::id::{AgentId, SubjectId};
use crate::mechanism::ReputationMechanism;
use crate::opinion::BeliefMass;
use crate::transitive::TrustGraph;
use crate::trust::{evidence_confidence, TrustEstimate, TrustValue};
use crate::typology::{Centralization, MechanismInfo, Scope, Subject};
use std::collections::BTreeMap;

/// The Yu–Singh belief-based reputation mechanism.
#[derive(Debug)]
pub struct YuSinghMechanism {
    /// Lower satisfaction threshold ω_L: at or below → distrust evidence.
    lower: f64,
    /// Upper satisfaction threshold ω_U: at or above → trust evidence.
    upper: f64,
    /// History window per (observer, subject).
    window: usize,
    /// Own evidence needed before skipping the witness query.
    min_local: usize,
    /// Referral horizon in the acquaintance graph.
    horizon: usize,
    histories: BTreeMap<(AgentId, SubjectId), Vec<f64>>,
    acquaintances: TrustGraph,
    submitted: usize,
}

impl YuSinghMechanism {
    /// Thresholds (0.3, 0.7), window 10, 4 local interactions suffice,
    /// referral horizon 3.
    pub fn new() -> Self {
        YuSinghMechanism {
            lower: 0.3,
            upper: 0.7,
            window: 10,
            min_local: 4,
            horizon: 3,
            histories: BTreeMap::new(),
            acquaintances: TrustGraph::new(),
            submitted: 0,
        }
    }

    /// Declare an acquaintance edge: `from` knows (and somewhat trusts)
    /// `to`, enabling referrals through it.
    pub fn add_acquaintance(&mut self, from: AgentId, to: AgentId) {
        self.acquaintances.set(
            from,
            to,
            crate::opinion::Opinion::from_evidence(4.0, 0.0, 0.5),
        );
    }

    /// The belief mass `observer` assigns `subject` from local history.
    pub fn local_belief(&self, observer: AgentId, subject: SubjectId) -> BeliefMass {
        match self.histories.get(&(observer, subject)) {
            None => BeliefMass::vacuous(),
            Some(scores) => BeliefMass::from_scores(scores, self.lower, self.upper),
        }
    }

    /// Discount a testimony before combination: second-hand evidence keeps
    /// some uncommitted mass (Yu & Singh weigh witness testimony below
    /// first-hand experience), which also prevents two dogmatic witnesses
    /// from producing total conflict under Dempster's rule.
    fn discount(mass: BeliefMass, gamma: f64) -> BeliefMass {
        BeliefMass::new(
            mass.trust * gamma,
            mass.distrust * gamma,
            mass.unknown * gamma + (1.0 - gamma),
        )
    }

    /// The witnesses `observer` can reach for testimony about `subject`:
    /// agents within the referral horizon that have local evidence.
    pub fn witnesses(&self, observer: AgentId, subject: SubjectId) -> Vec<AgentId> {
        let reachable = if self.acquaintances.is_empty() {
            // Without an explicit acquaintance network every evidence
            // holder is reachable (fully-connected referral fallback).
            self.histories
                .keys()
                .filter(|&&(a, s)| s == subject && a != observer)
                .map(|&(a, _)| a)
                .collect()
        } else {
            self.acquaintances
                .reachable(observer, self.horizon)
                .into_iter()
                .collect::<Vec<_>>()
        };
        reachable
            .into_iter()
            .filter(|&w| {
                w != observer
                    && self
                        .histories
                        .get(&(w, subject))
                        .map(|h| !h.is_empty())
                        .unwrap_or(false)
            })
            .collect()
    }
}

impl ReputationMechanism for YuSinghMechanism {
    fn info(&self) -> MechanismInfo {
        MechanismInfo {
            key: "yu_singh",
            display: "B. Yu & M. Singh",
            centralization: Centralization::Decentralized,
            subject: Subject::PersonAgent,
            scope: Scope::Personalized,
            citation: "35, 36",
            proposed_for_web_services: false,
        }
    }

    fn submit(&mut self, feedback: &Feedback) {
        let h = self
            .histories
            .entry((feedback.rater, feedback.subject))
            .or_default();
        h.push(feedback.score);
        if h.len() > self.window {
            let excess = h.len() - self.window;
            h.drain(0..excess);
        }
        self.submitted += 1;
    }

    fn global(&self, subject: SubjectId) -> Option<TrustEstimate> {
        // Combine every agent's local mass with Dempster's rule.
        let mut combined: Option<BeliefMass> = None;
        let mut n = 0usize;
        for ((_, s), scores) in &self.histories {
            if *s != subject || scores.is_empty() {
                continue;
            }
            let mass = Self::discount(BeliefMass::from_scores(scores, self.lower, self.upper), 0.8);
            n += scores.len();
            combined = Some(match combined {
                None => mass,
                // On total conflict keep the earlier consensus.
                Some(c) => c.combine(&mass).unwrap_or(c),
            });
        }
        let mass = combined?;
        Some(TrustEstimate::new(
            TrustValue::new(mass.trust_score()),
            evidence_confidence(n, 5.0),
        ))
    }

    fn personalized(&self, observer: AgentId, subject: SubjectId) -> Option<TrustEstimate> {
        let own_scores = self
            .histories
            .get(&(observer, subject))
            .cloned()
            .unwrap_or_default();
        let local = self.local_belief(observer, subject);
        if own_scores.len() >= self.min_local {
            return Some(TrustEstimate::new(
                TrustValue::new(local.trust_score()),
                evidence_confidence(own_scores.len(), 3.0),
            ));
        }
        // Query witnesses through referrals and combine testimonies.
        let witnesses = self.witnesses(observer, subject);
        if witnesses.is_empty() && own_scores.is_empty() {
            return None;
        }
        let mut combined = local;
        let mut n = own_scores.len();
        for w in witnesses {
            let mass = Self::discount(self.local_belief(w, subject), 0.8);
            n += self.histories.get(&(w, subject)).map(Vec::len).unwrap_or(0);
            combined = combined.combine(&mass).unwrap_or(combined);
        }
        Some(TrustEstimate::new(
            TrustValue::new(combined.trust_score()),
            evidence_confidence(n, 5.0),
        ))
    }

    fn feedback_count(&self) -> usize {
        self.submitted
    }
}

impl Default for YuSinghMechanism {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::Time;

    fn fb(rater: u64, subject: u64, score: f64) -> Feedback {
        Feedback::scored(
            AgentId::new(rater),
            AgentId::new(subject),
            score,
            Time::ZERO,
        )
    }

    fn s(i: u64) -> SubjectId {
        AgentId::new(i).into()
    }

    #[test]
    fn local_belief_buckets_by_thresholds() {
        let mut m = YuSinghMechanism::new();
        for score in [0.9, 0.9, 0.1, 0.5] {
            m.submit(&fb(0, 1, score));
        }
        let mass = m.local_belief(AgentId::new(0), s(1));
        assert!((mass.trust - 0.5).abs() < 1e-12);
        assert!((mass.distrust - 0.25).abs() < 1e-12);
    }

    #[test]
    fn sufficient_local_evidence_skips_witnesses() {
        let mut m = YuSinghMechanism::new();
        for _ in 0..5 {
            m.submit(&fb(0, 1, 0.9));
        }
        // Hostile witnesses should not matter.
        for _ in 0..10 {
            m.submit(&fb(7, 1, 0.05));
        }
        let est = m.personalized(AgentId::new(0), s(1)).unwrap();
        assert!(est.value.get() > 0.8, "got {}", est.value);
    }

    #[test]
    fn witnesses_fill_in_for_newcomers() {
        let mut m = YuSinghMechanism::new();
        for w in 1..4 {
            for _ in 0..6 {
                m.submit(&fb(w, 9, 0.9));
            }
        }
        // Observer 0 has never interacted with 9.
        let est = m.personalized(AgentId::new(0), s(9)).unwrap();
        assert!(est.value.get() > 0.7, "got {}", est.value);
    }

    #[test]
    fn referral_horizon_limits_witnesses() {
        let mut m = YuSinghMechanism::new();
        // Chain 0 -> 1 -> 2 -> 3 -> 4; witness 4 holds the only evidence.
        for i in 0..4 {
            m.add_acquaintance(AgentId::new(i), AgentId::new(i + 1));
        }
        for _ in 0..6 {
            m.submit(&fb(4, 9, 0.9));
        }
        // Horizon 3 reaches only agents 1..3 → no witness with evidence.
        assert!(m.witnesses(AgentId::new(0), s(9)).is_empty());
        // From agent 1, the chain reaches 4.
        assert_eq!(m.witnesses(AgentId::new(1), s(9)), vec![AgentId::new(4)]);
    }

    #[test]
    fn window_drops_old_scores() {
        let mut m = YuSinghMechanism::new();
        for _ in 0..10 {
            m.submit(&fb(0, 1, 0.1));
        }
        for _ in 0..10 {
            m.submit(&fb(0, 1, 0.9));
        }
        // Window 10: only the good recent scores remain.
        let mass = m.local_belief(AgentId::new(0), s(1));
        assert_eq!(mass.trust, 1.0);
    }

    #[test]
    fn conflicting_testimony_lands_in_the_middle() {
        let mut m = YuSinghMechanism::new();
        for _ in 0..6 {
            m.submit(&fb(1, 9, 0.9));
            m.submit(&fb(2, 9, 0.1));
        }
        let est = m.personalized(AgentId::new(0), s(9)).unwrap();
        assert!((est.value.get() - 0.5).abs() < 0.25, "got {}", est.value);
    }

    #[test]
    fn no_evidence_anywhere_is_none() {
        let m = YuSinghMechanism::new();
        assert_eq!(m.personalized(AgentId::new(0), s(1)), None);
        assert_eq!(m.global(s(1)), None);
    }
}
