//! Yolum & Singh — "Locating Trustworthy Services" (AP2PC 2002),
//! reference \[34\].
//!
//! *Decentralized, person/agent, personalized.* Agents locate services by
//! asking their neighbors; a neighbor either answers with a service it
//! knows (and its quality estimate) or **refers** the asker onward. Agents
//! adapt their neighbor set toward peers whose answers and referrals prove
//! useful, so the service-location graph self-organizes around trustworthy
//! paths. We model the agent network, referral-bounded search, and the
//! usefulness-driven neighbor weighting.

use crate::feedback::Feedback;
use crate::id::{AgentId, SubjectId};
use crate::mechanism::ReputationMechanism;
use crate::trust::{evidence_confidence, TrustEstimate, TrustValue};
use crate::typology::{Centralization, MechanismInfo, Scope, Subject};
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// Referral-based service location.
#[derive(Debug, Default)]
pub struct YolumSinghMechanism {
    /// Each agent's local quality estimates for services it used.
    local: BTreeMap<AgentId, BTreeMap<SubjectId, (f64, usize)>>,
    /// Weighted neighbor links: sociability/expertise weight in \[0, 1\].
    neighbors: BTreeMap<AgentId, BTreeMap<AgentId, f64>>,
    /// Referral time-to-live.
    ttl: usize,
    submitted: usize,
}

impl YolumSinghMechanism {
    /// Referral TTL of 3.
    pub fn new() -> Self {
        YolumSinghMechanism {
            ttl: 3,
            ..Default::default()
        }
    }

    /// Link `from` to neighbor `to` with initial weight 0.5.
    pub fn add_neighbor(&mut self, from: AgentId, to: AgentId) {
        self.neighbors.entry(from).or_default().insert(to, 0.5);
    }

    /// Strengthen or weaken a neighbor link after a useful/useless answer
    /// (the paper's learning rule: agents "change their neighbors" toward
    /// useful ones).
    pub fn reinforce(&mut self, from: AgentId, to: AgentId, useful: bool) {
        let w = self
            .neighbors
            .entry(from)
            .or_default()
            .entry(to)
            .or_insert(0.5);
        if useful {
            *w = (*w + 0.1).min(1.0);
        } else {
            *w = (*w - 0.1).max(0.0);
        }
        // Snap float residue so fully-weakened links really reach zero.
        if *w < 1e-9 {
            *w = 0.0;
        }
    }

    /// Current weight of a neighbor link.
    pub fn neighbor_weight(&self, from: AgentId, to: AgentId) -> Option<f64> {
        self.neighbors.get(&from)?.get(&to).copied()
    }

    /// Referral search: starting from `observer`'s neighbors, walk links
    /// (strong links first) up to the TTL, collecting answers about
    /// `subject`. Returns `(answers, agents_contacted)` where each answer
    /// is `(answering agent, estimate, evidence count, path weight)`.
    pub fn locate(
        &self,
        observer: AgentId,
        subject: SubjectId,
    ) -> (Vec<(AgentId, f64, usize, f64)>, usize) {
        let mut answers = Vec::new();
        let mut visited: BTreeSet<AgentId> = BTreeSet::new();
        visited.insert(observer);
        let mut queue: VecDeque<(AgentId, usize, f64)> = VecDeque::new();
        queue.push_back((observer, self.ttl, 1.0));
        let mut contacted = 0usize;
        while let Some((at, ttl, path_w)) = queue.pop_front() {
            if ttl == 0 {
                continue;
            }
            let Some(links) = self.neighbors.get(&at) else {
                continue;
            };
            let mut ordered: Vec<(&AgentId, &f64)> = links.iter().collect();
            ordered.sort_by(|a, b| b.1.partial_cmp(a.1).unwrap_or(std::cmp::Ordering::Equal));
            for (&next, &w) in ordered {
                if w <= 0.0 || !visited.insert(next) {
                    continue;
                }
                contacted += 1;
                let carried = path_w * w;
                if let Some(&(est, n)) = self.local.get(&next).and_then(|t| t.get(&subject)) {
                    answers.push((next, est, n, carried));
                } else {
                    // No answer: the agent refers onward.
                    queue.push_back((next, ttl - 1, carried));
                }
            }
        }
        (answers, contacted)
    }
}

impl ReputationMechanism for YolumSinghMechanism {
    fn info(&self) -> MechanismInfo {
        MechanismInfo {
            key: "yolum_singh",
            display: "P. Yolum & M. Singh",
            centralization: Centralization::Decentralized,
            subject: Subject::PersonAgent,
            scope: Scope::Personalized,
            citation: "34",
            proposed_for_web_services: false,
        }
    }

    fn submit(&mut self, feedback: &Feedback) {
        let e = self
            .local
            .entry(feedback.rater)
            .or_default()
            .entry(feedback.subject)
            .or_insert((0.5, 0));
        // Incremental mean.
        e.1 += 1;
        e.0 += (feedback.score - e.0) / e.1 as f64;
        self.submitted += 1;
    }

    fn global(&self, subject: SubjectId) -> Option<TrustEstimate> {
        let mut num = 0.0;
        let mut den = 0.0;
        let mut total = 0usize;
        for table in self.local.values() {
            if let Some(&(est, n)) = table.get(&subject) {
                num += est * n as f64;
                den += n as f64;
                total += n;
            }
        }
        if den == 0.0 {
            return None;
        }
        Some(TrustEstimate::new(
            TrustValue::new(num / den),
            evidence_confidence(total, 4.0),
        ))
    }

    fn personalized(&self, observer: AgentId, subject: SubjectId) -> Option<TrustEstimate> {
        // Own table first.
        if let Some(&(est, n)) = self.local.get(&observer).and_then(|t| t.get(&subject)) {
            if n >= 3 {
                return Some(TrustEstimate::new(
                    TrustValue::new(est),
                    evidence_confidence(n, 3.0),
                ));
            }
        }
        let (answers, _) = self.locate(observer, subject);
        if answers.is_empty() {
            // Fall back to whatever little own evidence exists, else the
            // population view (isolated agents in the experiments).
            if let Some(&(est, n)) = self.local.get(&observer).and_then(|t| t.get(&subject)) {
                return Some(TrustEstimate::new(
                    TrustValue::new(est),
                    evidence_confidence(n, 3.0),
                ));
            }
            return None;
        }
        let mut num = 0.0;
        let mut den = 0.0;
        let mut total = 0usize;
        for (_, est, n, path_w) in &answers {
            let w = path_w * *n as f64;
            num += w * est;
            den += w;
            total += n;
        }
        Some(TrustEstimate::new(
            TrustValue::new(num / den),
            evidence_confidence(total, 5.0),
        ))
    }

    fn feedback_count(&self) -> usize {
        self.submitted
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::id::ServiceId;
    use crate::time::Time;

    fn fb(rater: u64, subject: u64, score: f64) -> Feedback {
        Feedback::scored(
            AgentId::new(rater),
            ServiceId::new(subject),
            score,
            Time::ZERO,
        )
    }

    fn s(i: u64) -> SubjectId {
        ServiceId::new(i).into()
    }

    fn a(i: u64) -> AgentId {
        AgentId::new(i)
    }

    #[test]
    fn locate_walks_referral_chains() {
        let mut m = YolumSinghMechanism::new();
        m.add_neighbor(a(0), a(1));
        m.add_neighbor(a(1), a(2));
        for _ in 0..4 {
            m.submit(&fb(2, 9, 0.9));
        }
        let (answers, contacted) = m.locate(a(0), s(9));
        assert_eq!(answers.len(), 1);
        assert_eq!(answers[0].0, a(2));
        assert!(contacted >= 2);
        let est = m.personalized(a(0), s(9)).unwrap();
        assert!(est.value.get() > 0.8);
    }

    #[test]
    fn ttl_bounds_the_search() {
        let mut m = YolumSinghMechanism::new();
        // Chain of length 5; only the last agent knows the service.
        for i in 0..5 {
            m.add_neighbor(a(i), a(i + 1));
        }
        for _ in 0..4 {
            m.submit(&fb(5, 9, 0.9));
        }
        let (answers, _) = m.locate(a(0), s(9));
        assert!(answers.is_empty(), "TTL 3 cannot reach depth 5");
    }

    #[test]
    fn zero_weight_neighbors_are_pruned_from_search() {
        let mut m = YolumSinghMechanism::new();
        m.add_neighbor(a(0), a(1));
        for _ in 0..5 {
            m.reinforce(a(0), a(1), false);
        }
        assert_eq!(m.neighbor_weight(a(0), a(1)), Some(0.0));
        for _ in 0..4 {
            m.submit(&fb(1, 9, 0.9));
        }
        let (answers, _) = m.locate(a(0), s(9));
        assert!(answers.is_empty());
    }

    #[test]
    fn reinforcement_saturates() {
        let mut m = YolumSinghMechanism::new();
        m.add_neighbor(a(0), a(1));
        for _ in 0..20 {
            m.reinforce(a(0), a(1), true);
        }
        assert_eq!(m.neighbor_weight(a(0), a(1)), Some(1.0));
    }

    #[test]
    fn own_experience_dominates_when_sufficient() {
        let mut m = YolumSinghMechanism::new();
        m.add_neighbor(a(0), a(1));
        for _ in 0..5 {
            m.submit(&fb(0, 9, 0.2));
            m.submit(&fb(1, 9, 0.9));
        }
        let est = m.personalized(a(0), s(9)).unwrap();
        assert!(est.value.get() < 0.4);
    }

    #[test]
    fn answers_weighted_by_path_strength() {
        let mut m = YolumSinghMechanism::new();
        m.add_neighbor(a(0), a(1)); // will be reinforced
        m.add_neighbor(a(0), a(2)); // will be weakened
        for _ in 0..4 {
            m.reinforce(a(0), a(1), true);
            m.reinforce(a(0), a(2), false);
        }
        for _ in 0..4 {
            m.submit(&fb(1, 9, 0.9)); // strong neighbor praises
            m.submit(&fb(2, 9, 0.1)); // weak neighbor trashes
        }
        let est = m.personalized(a(0), s(9)).unwrap();
        assert!(est.value.get() > 0.6, "got {}", est.value);
    }

    #[test]
    fn no_route_and_no_evidence_is_none() {
        let m = YolumSinghMechanism::new();
        assert_eq!(m.personalized(a(0), s(1)), None);
        assert_eq!(m.global(s(1)), None);
    }
}
