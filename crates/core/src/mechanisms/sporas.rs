//! Sporas — Zacharia, Moukas & Maes (HICSS-32), reference \[37\].
//!
//! A *centralized, person/agent, global* mechanism designed to fix two eBay
//! weaknesses: unbounded accumulation and equal weighting of all raters.
//! Reputation lives in `(0, D]`; each new rating `W ∈ [0.1, 1]` updates
//!
//! ```text
//! R ← R + (1/θ) · Φ(R) · R_rater · (W − R/D)
//! Φ(R) = 1 − 1 / (1 + e^{−(R − D)/σ})
//! ```
//!
//! so high reputations change slowly (`Φ` damping), ratings from reputable
//! raters count more, and users can never fall below a newcomer — making
//! identity-switching unprofitable.

use crate::feedback::Feedback;
use crate::id::SubjectId;
use crate::mechanism::{ReputationMechanism, SubjectAccumulator};
use crate::trust::{evidence_confidence, TrustEstimate, TrustValue};
use crate::typology::{Centralization, MechanismInfo, Scope, Subject};
use std::collections::BTreeMap;

/// Sporas with the original paper's constants as defaults.
#[derive(Debug, Clone)]
pub struct SporasMechanism {
    /// Maximum reputation `D` (original paper uses 3000).
    max_reputation: f64,
    /// Effective number of ratings `θ` controlling adaptation speed.
    theta: f64,
    /// Damping width `σ`.
    sigma: f64,
    reputations: BTreeMap<SubjectId, f64>,
    counts: BTreeMap<SubjectId, usize>,
    submitted: usize,
}

impl Default for SporasMechanism {
    fn default() -> Self {
        Self::new()
    }
}

impl SporasMechanism {
    /// Sporas with `D = 3000`, `θ = 10`, `σ = D/12`.
    pub fn new() -> Self {
        Self::with_params(3000.0, 10.0, 250.0)
    }

    /// Sporas with explicit constants.
    ///
    /// # Panics
    ///
    /// Panics if any constant is not strictly positive.
    pub fn with_params(max_reputation: f64, theta: f64, sigma: f64) -> Self {
        assert!(max_reputation > 0.0 && theta > 0.0 && sigma > 0.0);
        SporasMechanism {
            max_reputation,
            theta,
            sigma,
            reputations: BTreeMap::new(),
            counts: BTreeMap::new(),
            submitted: 0,
        }
    }

    /// The damping function `Φ(R)`: near 1 for newcomers, approaching 1/2
    /// as reputation nears `D`, so established reputations move slowly.
    pub fn damping(&self, r: f64) -> f64 {
        1.0 - 1.0 / (1.0 + (-(r - self.max_reputation) / self.sigma).exp())
    }

    /// Raw Sporas reputation in `[0, D]`, if the subject has been rated.
    pub fn raw_reputation(&self, subject: SubjectId) -> Option<f64> {
        self.reputations.get(&subject).copied()
    }
}

impl ReputationMechanism for SporasMechanism {
    fn info(&self) -> MechanismInfo {
        MechanismInfo {
            key: "sporas",
            display: "Sporas",
            centralization: Centralization::Centralized,
            subject: Subject::PersonAgent,
            scope: Scope::Global,
            citation: "37",
            proposed_for_web_services: false,
        }
    }

    fn submit(&mut self, feedback: &Feedback) {
        // Ratings map onto Sporas's [0.1, 1] scale.
        let w = 0.1 + 0.9 * feedback.score;
        // The rater's own reputation; unrated raters count as mid-range,
        // which is how Sporas treats newcomers acting as raters.
        let rater_rep = self
            .reputations
            .get(&SubjectId::Agent(feedback.rater))
            .copied()
            .unwrap_or(self.max_reputation / 2.0);
        let r = self.reputations.entry(feedback.subject).or_insert(0.0);
        let phi = {
            // inline damping to satisfy the borrow checker
            1.0 - 1.0 / (1.0 + (-(*r - self.max_reputation) / self.sigma).exp())
        };
        *r += (1.0 / self.theta) * phi * rater_rep * (w - *r / self.max_reputation);
        *r = r.clamp(0.0, self.max_reputation);
        *self.counts.entry(feedback.subject).or_insert(0) += 1;
        self.submitted += 1;
    }

    fn global(&self, subject: SubjectId) -> Option<TrustEstimate> {
        let r = self.reputations.get(&subject)?;
        let n = self.counts.get(&subject).copied().unwrap_or(0);
        Some(TrustEstimate::new(
            TrustValue::new(r / self.max_reputation),
            evidence_confidence(n, 5.0),
        ))
    }

    fn feedback_count(&self) -> usize {
        self.submitted
    }

    fn accumulator(&self) -> Option<Box<dyn SubjectAccumulator>> {
        Some(Box::new(SporasAccumulator {
            max_reputation: self.max_reputation,
            theta: self.theta,
            sigma: self.sigma,
            reputation: 0.0,
            count: 0,
        }))
    }
}

/// The Sporas fold: the running reputation `R` *is* the sufficient
/// statistic — each rating updates it in place. In a per-subject log a
/// rater only ever has resident reputation when it rates itself (the
/// subject appearing as its own rater); everyone else counts at the
/// newcomer mid-range, exactly as a replay through a fresh mechanism
/// would weigh them.
#[derive(Debug, Clone, Copy)]
pub struct SporasAccumulator {
    max_reputation: f64,
    theta: f64,
    sigma: f64,
    reputation: f64,
    count: usize,
}

impl SubjectAccumulator for SporasAccumulator {
    fn absorb(&mut self, feedback: &Feedback) {
        let w = 0.1 + 0.9 * feedback.score;
        // A self-rating on the very first report still sees the newcomer
        // mid-range: `submit` reads the rater's reputation before the
        // subject's entry is created.
        let rater_rep = if SubjectId::from(feedback.rater) == feedback.subject && self.count > 0 {
            self.reputation
        } else {
            self.max_reputation / 2.0
        };
        let r = &mut self.reputation;
        let phi = 1.0 - 1.0 / (1.0 + (-(*r - self.max_reputation) / self.sigma).exp());
        *r += (1.0 / self.theta) * phi * rater_rep * (w - *r / self.max_reputation);
        *r = r.clamp(0.0, self.max_reputation);
        self.count += 1;
    }

    fn estimate(&self) -> Option<TrustEstimate> {
        if self.count == 0 {
            return None;
        }
        Some(TrustEstimate::new(
            TrustValue::new(self.reputation / self.max_reputation),
            evidence_confidence(self.count, 5.0),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::id::{AgentId, ServiceId};
    use crate::time::Time;
    use proptest::prelude::*;

    fn fb(score: f64) -> Feedback {
        Feedback::scored(AgentId::new(0), ServiceId::new(1), score, Time::ZERO)
    }

    #[test]
    fn newcomers_start_at_zero_and_climb() {
        let mut m = SporasMechanism::new();
        m.submit(&fb(1.0));
        let r1 = m.raw_reputation(ServiceId::new(1).into()).unwrap();
        assert!(r1 > 0.0);
        for _ in 0..50 {
            m.submit(&fb(1.0));
        }
        let r2 = m.raw_reputation(ServiceId::new(1).into()).unwrap();
        assert!(r2 > r1);
    }

    #[test]
    fn reputation_is_bounded_by_d() {
        let mut m = SporasMechanism::new();
        for _ in 0..5000 {
            m.submit(&fb(1.0));
        }
        let r = m.raw_reputation(ServiceId::new(1).into()).unwrap();
        assert!(r <= 3000.0);
        let t = m.global(ServiceId::new(1).into()).unwrap();
        assert!(t.value.get() <= 1.0);
    }

    #[test]
    fn damping_slows_highly_reputed_users() {
        let m = SporasMechanism::new();
        assert!(m.damping(0.0) > 0.99);
        assert!(m.damping(3000.0) < 0.51);
        assert!(m.damping(0.0) > m.damping(1500.0));
    }

    #[test]
    fn bad_ratings_lower_reputation() {
        let mut m = SporasMechanism::new();
        for _ in 0..100 {
            m.submit(&fb(1.0));
        }
        let high = m.raw_reputation(ServiceId::new(1).into()).unwrap();
        for _ in 0..100 {
            m.submit(&fb(0.0));
        }
        let low = m.raw_reputation(ServiceId::new(1).into()).unwrap();
        assert!(low < high);
        assert!(low >= 0.0, "never below a newcomer");
    }

    #[test]
    fn reputable_raters_move_scores_more() {
        // Rate the rater up first, then compare the impact of its rating
        // against an unknown rater's on two fresh subjects.
        let mut m = SporasMechanism::new();
        let reputable = AgentId::new(7);
        for _ in 0..200 {
            m.submit(&Feedback::scored(
                AgentId::new(1),
                reputable,
                1.0,
                Time::ZERO,
            ));
        }
        let rater_rep = m.raw_reputation(reputable.into()).unwrap();
        assert!(rater_rep > 1500.0);

        m.submit(&Feedback::scored(
            reputable,
            ServiceId::new(10),
            1.0,
            Time::ZERO,
        ));
        let by_reputable = m.raw_reputation(ServiceId::new(10).into()).unwrap();

        m.submit(&Feedback::scored(
            AgentId::new(99), // unknown rater: mid reputation
            ServiceId::new(11),
            1.0,
            Time::ZERO,
        ));
        let by_unknown = m.raw_reputation(ServiceId::new(11).into()).unwrap();
        assert!(by_reputable > by_unknown);
    }

    #[test]
    #[should_panic]
    fn non_positive_params_panic() {
        SporasMechanism::with_params(0.0, 10.0, 10.0);
    }

    proptest! {
        #[test]
        fn reputation_stays_in_unit_interval_after_any_history(
            scores in proptest::collection::vec(0.0f64..=1.0, 1..200)
        ) {
            let mut m = SporasMechanism::new();
            for s in scores {
                m.submit(&fb(s));
            }
            let t = m.global(ServiceId::new(1).into()).unwrap();
            prop_assert!((0.0..=1.0).contains(&t.value.get()));
        }
    }
}
