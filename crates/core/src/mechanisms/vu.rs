//! Vu, Hauswirth & Aberer — "QoS-based service selection and ranking with
//! trust and reputation management" (OTM/CoopIS 2005), references \[28, 29\].
//!
//! The survey's only *decentralized* web-service mechanism
//! (*person-agent/resource, personalized*): dedicated QoS registries on a
//! P-Grid collect consumer QoS reports; a small number of **trusted
//! monitoring agents** also probe services, and reporter credibility is
//! derived by comparing each reporter's claims with the trusted
//! measurements — reporters who deviate lose weight, neutralizing
//! dishonest feedback. Service ranking is the credibility-weighted
//! predicted QoS against the requester's requirements.
//!
//! The P-Grid storage/routing embodiment is in `wsrep-net`; this module is
//! the credibility and ranking computation.

use crate::feedback::Feedback;
use crate::id::{AgentId, SubjectId};
use crate::mechanism::ReputationMechanism;
use crate::trust::{evidence_confidence, TrustEstimate, TrustValue};
use crate::typology::{Centralization, MechanismInfo, Scope, Subject};
use std::collections::BTreeMap;
use wsrep_qos::metric::Metric;
use wsrep_qos::normalize::NormalizationMatrix;
use wsrep_qos::preference::Preferences;
use wsrep_qos::value::QosVector;

/// One stored QoS report.
#[derive(Debug, Clone)]
struct Report {
    reporter: AgentId,
    observed: QosVector,
    score: f64,
}

/// The Vu et al. QoS-with-trust mechanism.
#[derive(Debug, Clone)]
pub struct VuMechanism {
    /// Reporters whose credibility falls below this are treated as
    /// *detected dishonest* and their reports are discarded wholesale —
    /// the paper's algorithm filters dishonest feedback out rather than
    /// merely down-weighting it. Honest reporters sit near 1; neutral
    /// (never cross-checked) reporters sit at exactly 0.5 and are kept.
    dishonesty_threshold: f64,
    reports: BTreeMap<SubjectId, Vec<Report>>,
    /// Trusted monitor probes per subject (ground-truth-ish samples).
    trusted: BTreeMap<SubjectId, Vec<QosVector>>,
    /// Per-consumer preference profiles for personalized ranking.
    profiles: BTreeMap<AgentId, Preferences>,
    submitted: usize,
}

impl Default for VuMechanism {
    fn default() -> Self {
        Self::new()
    }
}

impl VuMechanism {
    /// Empty mechanism with the dishonesty threshold at 0.5.
    pub fn new() -> Self {
        VuMechanism {
            dishonesty_threshold: 0.5,
            reports: BTreeMap::new(),
            trusted: BTreeMap::new(),
            profiles: BTreeMap::new(),
            submitted: 0,
        }
    }

    /// Register a consumer's QoS requirements/preferences.
    pub fn set_profile(&mut self, consumer: AgentId, prefs: Preferences) {
        self.profiles.insert(consumer, prefs);
    }

    /// Ingest a probe from a trusted monitoring agent.
    pub fn submit_trusted(&mut self, subject: impl Into<SubjectId>, observed: QosVector) {
        self.trusted
            .entry(subject.into())
            .or_default()
            .push(observed);
    }

    /// Mean trusted observation per metric for a subject, if probed.
    fn trusted_mean(&self, subject: SubjectId) -> Option<QosVector> {
        let probes = self.trusted.get(&subject)?;
        if probes.is_empty() {
            return None;
        }
        let mut sums: BTreeMap<Metric, (f64, usize)> = BTreeMap::new();
        for p in probes {
            for (m, v) in p.iter() {
                let e = sums.entry(m).or_insert((0.0, 0));
                e.0 += v;
                e.1 += 1;
            }
        }
        Some(
            sums.into_iter()
                .map(|(m, (s, n))| (m, s / n as f64))
                .collect(),
        )
    }

    /// A reporter's credibility in `\[0, 1\]`: 1 minus its mean relative
    /// deviation from trusted measurements over all subjects it reported
    /// on that were also probed. Reporters never cross-checked keep a
    /// neutral 0.5.
    pub fn reporter_credibility(&self, reporter: AgentId) -> f64 {
        let mut dev_sum = 0.0;
        let mut n = 0usize;
        for (subject, reports) in &self.reports {
            let Some(truth) = self.trusted_mean(*subject) else {
                continue;
            };
            for r in reports.iter().filter(|r| r.reporter == reporter) {
                for (m, claimed) in r.observed.iter() {
                    let Some(actual) = truth.get(m) else {
                        continue;
                    };
                    let scale = actual.abs().max(1e-9);
                    dev_sum += ((claimed - actual).abs() / scale).min(1.0);
                    n += 1;
                }
            }
        }
        if n == 0 {
            0.5
        } else {
            (1.0 - dev_sum / n as f64).clamp(0.0, 1.0)
        }
    }

    /// Credibility-weighted per-metric estimate of a subject's delivered
    /// QoS, blending trusted probes (full weight) with reports.
    pub fn estimated_qos(&self, subject: SubjectId) -> Option<QosVector> {
        let mut acc: BTreeMap<Metric, (f64, f64)> = BTreeMap::new();
        if let Some(truth) = self.trusted_mean(subject) {
            for (m, v) in truth.iter() {
                let e = acc.entry(m).or_insert((0.0, 0.0));
                // Trusted probes carry the weight of several reports.
                e.0 += 3.0 * v;
                e.1 += 3.0;
            }
        }
        for r in self.reports.get(&subject).into_iter().flatten() {
            let w = self.reporter_credibility(r.reporter);
            if w < self.dishonesty_threshold {
                continue; // detected dishonest: report discarded
            }
            for (m, v) in r.observed.iter() {
                let e = acc.entry(m).or_insert((0.0, 0.0));
                e.0 += w * v;
                e.1 += w;
            }
        }
        if acc.is_empty() {
            return None;
        }
        Some(acc.into_iter().map(|(m, (s, w))| (m, s / w)).collect())
    }

    /// Rank all reported subjects under `prefs` via the normalization
    /// matrix over credibility-weighted QoS estimates.
    pub fn rank(&self, prefs: &Preferences) -> Vec<(SubjectId, f64)> {
        let mut subjects: Vec<SubjectId> = self.reports.keys().copied().collect();
        for s in self.trusted.keys() {
            if !subjects.contains(s) {
                subjects.push(*s);
            }
        }
        let vectors: Vec<QosVector> = subjects
            .iter()
            .map(|&s| self.estimated_qos(s).unwrap_or_default())
            .collect();
        let mut metrics: Vec<Metric> = vectors.iter().flat_map(|v| v.metrics()).collect();
        metrics.sort();
        metrics.dedup();
        let matrix = NormalizationMatrix::new(&vectors, &metrics);
        matrix
            .scores(prefs)
            .into_iter()
            .map(|sc| (subjects[sc.candidate], sc.score))
            .collect()
    }

    /// Credibility-weighted mean satisfaction score for a subject.
    fn weighted_score(&self, subject: SubjectId) -> Option<f64> {
        let reports = self.reports.get(&subject)?;
        let mut num = 0.0;
        let mut den = 0.0;
        for r in reports {
            let w = self.reporter_credibility(r.reporter);
            if w < self.dishonesty_threshold {
                continue;
            }
            num += w * r.score;
            den += w;
        }
        if den > 0.0 {
            Some(num / den)
        } else {
            None
        }
    }

    fn estimate_with(&self, prefs: &Preferences, subject: SubjectId) -> Option<TrustEstimate> {
        let known = self.reports.contains_key(&subject) || self.trusted.contains_key(&subject);
        if !known {
            return None;
        }
        let n = self.reports.get(&subject).map(Vec::len).unwrap_or(0)
            + self.trusted.get(&subject).map(Vec::len).unwrap_or(0);
        let subjects_known = self
            .reports
            .keys()
            .chain(self.trusted.keys())
            .collect::<std::collections::BTreeSet<_>>()
            .len();
        // A lone subject cannot be normalized against anything — the
        // comparative rank is vacuous, so use the credibility-weighted
        // satisfaction the reports carry instead.
        if subjects_known < 2 {
            // Trusted probes alone carry QoS but no satisfaction scale;
            // without any consumer report the estimate stays neutral.
            let score = self.weighted_score(subject).unwrap_or(0.5);
            return Some(TrustEstimate::new(
                TrustValue::new(score),
                evidence_confidence(n, 3.0),
            ));
        }
        let ranked = self.rank(prefs);
        let score = ranked.iter().find(|&&(s, _)| s == subject)?.1;
        Some(TrustEstimate::new(
            TrustValue::new(score),
            evidence_confidence(n, 3.0),
        ))
    }
}

impl ReputationMechanism for VuMechanism {
    fn info(&self) -> MechanismInfo {
        MechanismInfo {
            key: "vu",
            display: "L.-H. Vu, M. Hauswirth & K. Aberer",
            centralization: Centralization::Decentralized,
            subject: Subject::Both,
            scope: Scope::Personalized,
            citation: "28, 29",
            proposed_for_web_services: true,
        }
    }

    fn submit(&mut self, feedback: &Feedback) {
        self.reports
            .entry(feedback.subject)
            .or_default()
            .push(Report {
                reporter: feedback.rater,
                observed: feedback.observed.clone(),
                score: feedback.score,
            });
        self.submitted += 1;
    }

    fn global(&self, subject: SubjectId) -> Option<TrustEstimate> {
        let metrics: Vec<Metric> = self
            .estimated_qos(subject)
            .map(|v| v.metrics().collect())
            .unwrap_or_default();
        if metrics.is_empty() {
            // Fall back to score-based mean when reports carry no QoS.
            let reports = self.reports.get(&subject)?;
            if reports.is_empty() {
                return None;
            }
            let mean = reports.iter().map(|r| r.score).sum::<f64>() / reports.len() as f64;
            return Some(TrustEstimate::new(
                TrustValue::new(mean),
                evidence_confidence(reports.len(), 3.0),
            ));
        }
        self.estimate_with(&Preferences::uniform(metrics), subject)
    }

    fn personalized(&self, observer: AgentId, subject: SubjectId) -> Option<TrustEstimate> {
        match self.profiles.get(&observer) {
            Some(prefs) => self.estimate_with(prefs, subject),
            None => self.global(subject),
        }
    }

    fn feedback_count(&self) -> usize {
        self.submitted
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::id::ServiceId;
    use crate::time::Time;

    fn report(rater: u64, item: u64, rt: f64) -> Feedback {
        Feedback::scored(AgentId::new(rater), ServiceId::new(item), 0.5, Time::ZERO)
            .with_observed(QosVector::from_pairs([(Metric::ResponseTime, rt)]))
    }

    fn s(i: u64) -> SubjectId {
        ServiceId::new(i).into()
    }

    #[test]
    fn truthful_reporters_keep_high_credibility() {
        let mut m = VuMechanism::new();
        m.submit_trusted(
            ServiceId::new(1),
            QosVector::from_pairs([(Metric::ResponseTime, 100.0)]),
        );
        m.submit(&report(0, 1, 102.0)); // close to truth
        m.submit(&report(1, 1, 500.0)); // wild exaggeration
        assert!(m.reporter_credibility(AgentId::new(0)) > 0.9);
        assert!(m.reporter_credibility(AgentId::new(1)) < 0.3);
    }

    #[test]
    fn uncrosschecked_reporters_stay_neutral() {
        let mut m = VuMechanism::new();
        m.submit(&report(0, 1, 100.0));
        assert_eq!(m.reporter_credibility(AgentId::new(0)), 0.5);
    }

    #[test]
    fn liar_reports_are_dropped_from_estimates() {
        let mut m = VuMechanism::new();
        m.submit_trusted(
            ServiceId::new(1),
            QosVector::from_pairs([(Metric::ResponseTime, 100.0)]),
        );
        // Honest reports around 100; one liar claims 5.
        for r in 0..3 {
            m.submit(&report(r, 1, 100.0 + r as f64));
        }
        m.submit(&report(9, 1, 2000.0)); // blatantly wrong on the probed value
        let est = m.estimated_qos(s(1)).unwrap();
        let rt = est.get(Metric::ResponseTime).unwrap();
        assert!((rt - 100.0).abs() < 10.0, "got {rt}");
    }

    #[test]
    fn ranking_follows_requirements() {
        let mut m = VuMechanism::new();
        m.submit(&report(0, 1, 50.0)); // fast service
        m.submit(&report(0, 2, 500.0)); // slow service
        let prefs = Preferences::uniform([Metric::ResponseTime]);
        let ranked = m.rank(&prefs);
        assert_eq!(ranked[0].0, s(1));
    }

    #[test]
    fn personalized_profile_changes_ranking() {
        let mut m = VuMechanism::new();
        let fast = QosVector::from_pairs([(Metric::ResponseTime, 50.0), (Metric::Price, 10.0)]);
        let cheap = QosVector::from_pairs([(Metric::ResponseTime, 500.0), (Metric::Price, 1.0)]);
        m.submit(
            &Feedback::scored(AgentId::new(0), ServiceId::new(1), 0.5, Time::ZERO)
                .with_observed(fast),
        );
        m.submit(
            &Feedback::scored(AgentId::new(0), ServiceId::new(2), 0.5, Time::ZERO)
                .with_observed(cheap),
        );
        m.set_profile(AgentId::new(5), Preferences::uniform([Metric::Price]));
        let view_fast = m.personalized(AgentId::new(5), s(1)).unwrap();
        let view_cheap = m.personalized(AgentId::new(5), s(2)).unwrap();
        assert!(view_cheap.value > view_fast.value);
    }

    #[test]
    fn score_only_reports_still_give_reputation() {
        let mut m = VuMechanism::new();
        m.submit(&Feedback::scored(
            AgentId::new(0),
            ServiceId::new(1),
            0.8,
            Time::ZERO,
        ));
        let est = m.global(s(1)).unwrap();
        assert!((est.value.get() - 0.8).abs() < 1e-9);
    }

    #[test]
    fn trusted_probes_alone_support_estimates() {
        let mut m = VuMechanism::new();
        m.submit_trusted(
            ServiceId::new(1),
            QosVector::from_pairs([(Metric::ResponseTime, 100.0)]),
        );
        assert!(m.estimated_qos(s(1)).is_some());
    }

    #[test]
    fn unknown_subject_is_none() {
        let m = VuMechanism::new();
        assert_eq!(m.global(s(7)), None);
        assert_eq!(m.estimated_qos(s(7)), None);
    }
}
